//! End-to-end wire-protocol tests for `rrm_serve`: malformed input,
//! unknown tenants, deterministic overload rejection, deadline
//! enforcement, and concurrent clients checked bit-for-bit against an
//! in-process [`Session`].
//!
//! Every server here uses `scores_per_ms_override` so no test depends on
//! the startup microbenchmark, and overload tests use `workers: 0` —
//! admission and `stats` still answer on the reader threads, but no
//! query ever dispatches, so which request gets rejected is exact, not
//! timing-dependent.

use rank_regret::{Algorithm, ExecPolicy, Session, UpdateOp};
use rrm_serve::{
    effective_request, parse_request, Client, Json, ServerConfig, ServerHandle, SyntheticKind,
    TenantSpec,
};

fn test_config() -> ServerConfig {
    ServerConfig { workers: 1, scores_per_ms_override: Some(50_000.0), ..ServerConfig::default() }
}

fn small_tenant(name: &str) -> TenantSpec {
    TenantSpec::synthetic(name, SyntheticKind::Independent, 300, 3, 7)
}

fn str_field<'j>(json: &'j Json, key: &str) -> &'j str {
    json.get(key).and_then(Json::as_str).unwrap_or_else(|| panic!("{key} missing in {json:?}"))
}

#[test]
fn malformed_input_gets_bad_request_and_connection_survives() {
    let server = ServerHandle::start(test_config(), &[small_tenant("t")]).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Not JSON at all.
    let resp = client.call("{not json").expect("call");
    assert_eq!(str_field(&resp, "status"), "error");
    assert_eq!(str_field(&resp, "error"), "bad_request");

    // Valid JSON, but not a request: unknown key, missing op, zero param.
    for (line, expect_in_message) in [
        (r#"{"op":"minimize","tenant":"t","param":3,"bogus":1}"#, "bogus"),
        (r#"{"tenant":"t","param":3}"#, "op"),
        (r#"{"op":"minimize","tenant":"t","param":0,"id":9}"#, "param"),
    ] {
        let resp = client.call(line).expect("call");
        assert_eq!(str_field(&resp, "status"), "error", "{line}");
        assert_eq!(str_field(&resp, "error"), "bad_request", "{line}");
        let message = str_field(&resp, "message");
        assert!(message.contains(expect_in_message), "{line} -> {message}");
    }
    // The id is echoed even on a rejected request when it can be parsed.
    let resp = client.call(r#"{"op":"minimize","tenant":"t","param":0,"id":9}"#).expect("call");
    assert_eq!(resp.get("id").and_then(Json::as_usize), Some(9));

    // The same connection still serves real queries afterwards.
    let resp = client
        .call(r#"{"op":"minimize","tenant":"t","param":5,"algo":"hdrrm","samples":64,"id":1}"#)
        .expect("call");
    assert_eq!(str_field(&resp, "status"), "ok");
    assert_eq!(resp.get("id").and_then(Json::as_usize), Some(1));
    server.shutdown();
}

#[test]
fn unknown_tenant_is_a_structured_error() {
    let server = ServerHandle::start(test_config(), &[small_tenant("t")]).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let resp = client.call(r#"{"op":"minimize","tenant":"nope","param":3,"id":42}"#).expect("call");
    assert_eq!(str_field(&resp, "status"), "error");
    assert_eq!(str_field(&resp, "error"), "unknown_tenant");
    assert_eq!(resp.get("id").and_then(Json::as_usize), Some(42));
    assert!(str_field(&resp, "message").contains("nope"));
    server.shutdown();
}

#[test]
fn zero_deadline_on_a_cuttable_algorithm_returns_a_partial_answer() {
    let server = ServerHandle::start(test_config(), &[small_tenant("t")]).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    // deadline_ms:0 has always already elapsed by dispatch time. The
    // auto policy on a 3-D tenant resolves to HDRRM, which is cuttable:
    // instead of a deadline_exceeded error, the solver runs under an
    // already-expired cutoff and answers with its first incumbent.
    let resp = client
        .call(r#"{"op":"minimize","tenant":"t","param":3,"deadline_ms":0,"id":7}"#)
        .expect("call");
    assert_eq!(str_field(&resp, "status"), "ok", "{resp:?}");
    assert_eq!(resp.get("id").and_then(Json::as_usize), Some(7));
    assert_eq!(resp.get("partial"), Some(&Json::Bool(true)), "{resp:?}");
    assert_eq!(resp.get("size").and_then(Json::as_usize), Some(3), "best-so-far set is returned");
    let diagnostics = resp.get("diagnostics").expect("diagnostics attached");
    assert_eq!(diagnostics.get("terminated_by").and_then(Json::as_str), Some("time"));
    let gap = diagnostics.get("gap").and_then(Json::as_f64).expect("gap reported");
    assert!((0.0..=1.0).contains(&gap), "gap {gap} out of range");
    let bounds = diagnostics.get("bounds").expect("HDRRM certifies bounds");
    let lower = bounds.get("lower").and_then(Json::as_usize).expect("lower");
    let upper = bounds.get("upper").and_then(Json::as_usize).expect("upper");
    assert!(lower <= upper, "bounds [{lower}, {upper}] inverted");

    let stats = server.stats_json();
    let tenant = stats.get("tenants").and_then(|t| t.get("t")).expect("tenant stats");
    assert_eq!(tenant.get("deadline_exceeded").and_then(Json::as_usize), Some(0));
    assert_eq!(tenant.get("completed").and_then(Json::as_usize), Some(1));
    assert_eq!(tenant.get("partial_answers").and_then(Json::as_usize), Some(1));
    server.shutdown();
}

#[test]
fn zero_deadline_on_a_non_cuttable_algorithm_is_rejected_at_dispatch() {
    let server = ServerHandle::start(test_config(), &[small_tenant("t")]).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    // MDRMS has no anytime search to cut into, so the aged-out-in-queue
    // path still answers with the structured error and diagnostics.
    let resp = client
        .call(r#"{"op":"minimize","tenant":"t","param":3,"algo":"mdrms","deadline_ms":0,"id":7}"#)
        .expect("call");
    assert_eq!(str_field(&resp, "status"), "error");
    assert_eq!(str_field(&resp, "error"), "deadline_exceeded");
    assert_eq!(resp.get("id").and_then(Json::as_usize), Some(7));
    let diagnostics = resp.get("diagnostics").expect("diagnostics attached");
    assert!(diagnostics.get("queued_micros").and_then(Json::as_usize).is_some());
    assert_eq!(diagnostics.get("deadline_ms").and_then(Json::as_usize), Some(0));

    let stats = server.stats_json();
    let tenant = stats.get("tenants").and_then(|t| t.get("t")).expect("tenant stats");
    assert_eq!(tenant.get("deadline_exceeded").and_then(Json::as_usize), Some(1));
    assert_eq!(tenant.get("completed").and_then(Json::as_usize), Some(0));
    assert_eq!(tenant.get("partial_answers").and_then(Json::as_usize), Some(0));
    server.shutdown();
}

#[test]
fn per_tenant_inflight_cap_rejects_immediately() {
    // workers:0 — accepted queries sit in the queue forever, so the
    // third request on a cap of 2 is rejected with certainty.
    let config = ServerConfig { workers: 0, ..test_config() };
    let specs = [small_tenant("t").max_inflight(2)];
    let server = ServerHandle::start(config, &specs).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    for id in 0..2 {
        client
            .send(&format!(r#"{{"op":"minimize","tenant":"t","param":3,"id":{id}}}"#))
            .expect("send");
    }
    // The only response on this connection is the rejection of id 2.
    let resp = client.call(r#"{"op":"minimize","tenant":"t","param":3,"id":2}"#).expect("call");
    assert_eq!(str_field(&resp, "status"), "error");
    assert_eq!(str_field(&resp, "error"), "overloaded");
    assert_eq!(resp.get("id").and_then(Json::as_usize), Some(2));
    let diagnostics = resp.get("diagnostics").expect("diagnostics attached");
    assert_eq!(diagnostics.get("max_inflight").and_then(Json::as_usize), Some(2));

    // stats is answered inline on the reader thread even while the
    // queue is wedged — that is what makes rejections immediate too.
    let resp = client.call(r#"{"op":"stats","id":3}"#).expect("call");
    assert_eq!(str_field(&resp, "status"), "ok");
    let tenant =
        resp.get("stats").and_then(|s| s.get("tenants")).and_then(|t| t.get("t")).expect("stats");
    assert_eq!(tenant.get("accepted").and_then(Json::as_usize), Some(2));
    assert_eq!(tenant.get("rejected_overload").and_then(Json::as_usize), Some(1));
    assert_eq!(tenant.get("inflight").and_then(Json::as_usize), Some(2));
    server.shutdown();
}

#[test]
fn global_queue_cap_rejects_across_tenants() {
    let config = ServerConfig { workers: 0, queue_cap: 1, ..test_config() };
    let specs = [small_tenant("a").max_inflight(8), small_tenant("b").max_inflight(8)];
    let server = ServerHandle::start(config, &specs).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.send(r#"{"op":"minimize","tenant":"a","param":3,"id":0}"#).expect("send");
    let resp = client.call(r#"{"op":"minimize","tenant":"b","param":3,"id":1}"#).expect("call");
    assert_eq!(str_field(&resp, "error"), "overloaded");
    assert!(str_field(&resp, "message").contains("queue"));
    let diagnostics = resp.get("diagnostics").expect("diagnostics attached");
    assert_eq!(diagnostics.get("queue_cap").and_then(Json::as_usize), Some(1));
    server.shutdown();
}

#[test]
fn concurrent_clients_match_the_in_process_session() {
    let config = ServerConfig { workers: 2, warm: vec![Algorithm::Hdrrm], ..test_config() };
    let spec = small_tenant("t");
    let server = ServerHandle::start(config, std::slice::from_ref(&spec)).expect("start");
    let lines: Vec<String> = (0..4)
        .map(|c| {
            format!(
                r#"{{"op":"minimize","tenant":"t","param":{},"algo":"hdrrm","samples":64,"id":{c}}}"#,
                3 + c
            )
        })
        .collect();
    let responses: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = lines
            .iter()
            .map(|line| {
                scope.spawn(|| {
                    let mut client = Client::connect(server.addr()).expect("connect");
                    client.call(line).expect("call")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });

    // Replay each request through a fresh in-process session built from
    // the same spec and the server's calibration: bit-identical answers.
    let session = Session::new(spec.source.load().expect("load")).exec(ExecPolicy::sequential());
    let calibration = server.calibration();
    for (line, resp) in lines.iter().zip(&responses) {
        assert_eq!(str_field(resp, "status"), "ok", "{line} -> {resp:?}");
        let wire = parse_request(line).expect("parses");
        let request =
            effective_request(&wire, calibration, session.data().n(), session.data().dim())
                .expect("query");
        let expected = session.run(&request).expect("replay");
        let got: Vec<usize> = match resp.get("indices") {
            Some(Json::Arr(items)) => items.iter().map(|v| v.as_usize().unwrap()).collect(),
            other => panic!("no indices: {other:?}"),
        };
        let want: Vec<usize> = expected.solution.indices.iter().map(|&i| i as usize).collect();
        assert_eq!(got, want, "{line}");
        assert_eq!(
            resp.get("certified_regret").and_then(Json::as_usize),
            expected.solution.certified_regret,
            "{line}"
        );
        assert_eq!(
            resp.get("algorithm").and_then(Json::as_str),
            Some(expected.solution.algorithm.name()),
            "{line}"
        );
    }
    server.shutdown();
}

#[test]
fn update_op_publishes_a_new_epoch_and_queries_follow() {
    let spec = small_tenant("t");
    let server = ServerHandle::start(test_config(), std::slice::from_ref(&spec)).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Epoch 0 is reported per tenant in stats.
    let resp = client.call(r#"{"op":"stats","id":0}"#).expect("call");
    let tenant =
        resp.get("stats").and_then(|s| s.get("tenants")).and_then(|t| t.get("t")).expect("stats");
    assert_eq!(tenant.get("epoch").and_then(Json::as_usize), Some(0));

    // The same deterministic query twice: the second answer comes from
    // the tenant's budget-keyed result cache, bit-identical.
    let q = r#"{"op":"minimize","tenant":"t","param":4,"algo":"hdrrm","samples":64,"id":1}"#;
    let first = client.call(q).expect("call");
    assert_eq!(str_field(&first, "status"), "ok");
    let second = client.call(q).expect("call");
    assert_eq!(second.get("indices"), first.get("indices"));
    let resp = client.call(r#"{"op":"stats","id":2}"#).expect("call");
    let tenant =
        resp.get("stats").and_then(|s| s.get("tenants")).and_then(|t| t.get("t")).expect("stats");
    let cache = tenant.get("result_cache").expect("result_cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_usize), Some(1));
    assert_eq!(cache.get("entries").and_then(Json::as_usize), Some(1));

    // Apply an update batch: 3 deletes + 3 inserts, n stays 300.
    let upd = r#"{"op":"update","tenant":"t","delete":[0,1,2],"insert":[[0.9,0.8,0.7],[0.2,0.3,0.4],[0.99,0.01,0.5]],"id":3}"#;
    let resp = client.call(upd).expect("call");
    assert_eq!(str_field(&resp, "status"), "ok", "{resp:?}");
    assert_eq!(resp.get("epoch").and_then(Json::as_usize), Some(1));
    assert_eq!(resp.get("n").and_then(Json::as_usize), Some(300));

    // The cache was invalidated by the swap and the same query now
    // answers over the new rows — bit-identical to an in-process session
    // that applied the same batch.
    let session = Session::new(spec.source.load().expect("load")).exec(ExecPolicy::sequential());
    session
        .update(&[
            UpdateOp::Delete(0),
            UpdateOp::Delete(1),
            UpdateOp::Delete(2),
            UpdateOp::Insert(vec![0.9, 0.8, 0.7]),
            UpdateOp::Insert(vec![0.2, 0.3, 0.4]),
            UpdateOp::Insert(vec![0.99, 0.01, 0.5]),
        ])
        .expect("in-process update");
    let resp = client.call(q).expect("call");
    assert_eq!(str_field(&resp, "status"), "ok");
    let wire = parse_request(q).expect("parses");
    let request =
        effective_request(&wire, server.calibration(), session.data().n(), session.data().dim())
            .expect("query");
    let expected = session.run(&request).expect("replay");
    let got: Vec<usize> = match resp.get("indices") {
        Some(Json::Arr(items)) => items.iter().map(|v| v.as_usize().unwrap()).collect(),
        other => panic!("no indices: {other:?}"),
    };
    let want: Vec<usize> = expected.solution.indices.iter().map(|&i| i as usize).collect();
    assert_eq!(got, want, "post-update wire answer must match the in-process session");

    // An invalid batch is rejected atomically: error out, epoch unmoved.
    let resp = client.call(r#"{"op":"update","tenant":"t","delete":[999999],"id":4}"#).expect("c");
    assert_eq!(str_field(&resp, "status"), "error");
    let resp = client.call(r#"{"op":"stats","id":5}"#).expect("call");
    let tenant =
        resp.get("stats").and_then(|s| s.get("tenants")).and_then(|t| t.get("t")).expect("stats");
    assert_eq!(tenant.get("epoch").and_then(Json::as_usize), Some(1));
    assert_eq!(tenant.get("updates_applied").and_then(Json::as_usize), Some(1));
    server.shutdown();
}

#[test]
fn gap_cutoff_queries_answer_over_the_wire() {
    let server = ServerHandle::start(test_config(), &[small_tenant("t")]).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    // A generous gap target on a cuttable algorithm: the solve stops at
    // the certified gap, deterministically, and still answers ok.
    let resp = client
        .call(r#"{"op":"minimize","tenant":"t","param":4,"algo":"hdrrm","samples":64,"gap":0.9,"id":1}"#)
        .expect("call");
    assert_eq!(str_field(&resp, "status"), "ok", "{resp:?}");
    assert_eq!(resp.get("size").and_then(Json::as_usize), Some(4));
    server.shutdown();
}

#[test]
fn approx_queries_answer_at_sampled_fidelity_over_the_wire() {
    let server = ServerHandle::start(test_config(), &[small_tenant("t")]).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    // An approx request with no explicit algorithm routes to the sampled
    // tier, answers ok (not partial — a fidelity statement is not an
    // early stop), and echoes its confidence parameters.
    let resp = client
        .call(
            r#"{"op":"minimize","tenant":"t","param":4,"approx":{"eps":0.1,"delta":0.05},"id":1}"#,
        )
        .expect("call");
    assert_eq!(str_field(&resp, "status"), "ok", "{resp:?}");
    assert_eq!(str_field(&resp, "algorithm"), "Sampled");
    assert_eq!(str_field(&resp, "fidelity"), "approx");
    assert!(resp.get("partial").is_none(), "sampled answers are complete: {resp:?}");
    let confidence = resp.get("confidence").expect("confidence block");
    assert_eq!(confidence.get("eps").and_then(Json::as_f64), Some(0.1));
    assert_eq!(confidence.get("delta").and_then(Json::as_f64), Some(0.05));
    assert!(confidence.get("directions").and_then(Json::as_usize).unwrap() >= 1);

    // Sampled answers are seeded and deterministic, so the identical
    // repeat is a result-cache hit; an exact request is a distinct key.
    let repeat = client
        .call(
            r#"{"op":"minimize","tenant":"t","param":4,"approx":{"eps":0.1,"delta":0.05},"id":2}"#,
        )
        .expect("call");
    assert_eq!(repeat.get("indices"), resp.get("indices"));
    let exact = client
        .call(r#"{"op":"minimize","tenant":"t","param":4,"algo":"hdrrm","samples":64,"id":3}"#)
        .expect("call");
    assert_eq!(str_field(&exact, "fidelity"), "exact");
    assert!(exact.get("confidence").is_none(), "exact answers carry no confidence block");

    drop(client);
    let stats = server.shutdown();
    let tenant = stats.get("tenants").and_then(|t| t.get("t")).expect("tenant stats");
    assert_eq!(tenant.get("completed").and_then(Json::as_usize), Some(3));
    // Both sampled answers count — the fresh solve and the cached repeat
    // (it re-serves a Sampled solution) — but the exact query does not.
    assert_eq!(tenant.get("approx_answers").and_then(Json::as_usize), Some(2));
    let cache = tenant.get("result_cache").expect("result_cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_usize), Some(1));
}

#[test]
fn shutdown_returns_final_stats_with_latency_histogram() {
    let server = ServerHandle::start(test_config(), &[small_tenant("t")]).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    for id in 0..3 {
        let resp = client
            .call(&format!(
                r#"{{"op":"minimize","tenant":"t","param":4,"algo":"hdrrm","samples":64,"id":{id}}}"#
            ))
            .expect("call");
        assert_eq!(str_field(&resp, "status"), "ok");
    }
    drop(client);
    let stats = server.shutdown();
    let tenant = stats.get("tenants").and_then(|t| t.get("t")).expect("tenant stats");
    assert_eq!(tenant.get("completed").and_then(Json::as_usize), Some(3));
    assert_eq!(tenant.get("accepted").and_then(Json::as_usize), Some(3));
    let latency = tenant.get("latency").expect("latency block");
    assert_eq!(latency.get("count").and_then(Json::as_usize), Some(3));
    assert!(latency.get("p99_us").and_then(Json::as_usize).unwrap() > 0);
    // The warm/prepare economics show up too: one miss (first query
    // prepared HDRRM lazily); the identical repeats never reach the
    // solver at all — they're answered from the result cache.
    assert_eq!(tenant.get("prepare_misses").and_then(Json::as_usize), Some(1));
    let cache = tenant.get("result_cache").expect("result_cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_usize), Some(2));
}
