//! Property-based tests of the paper's theoretical claims, spanning
//! multiple crates (proptest).

use proptest::prelude::*;
use rank_regret::{Dataset, FullSpace};
use rrm_2d::{rrm_2d, rrr_exact_2d, Rrm2dOptions};
use rrm_eval::exact_rank_regret_2d;
use rrm_skyline::skyline;

/// Strategy: a small 2D dataset with values on a fine grid (exact-float
/// arithmetic keeps comparisons deterministic without being degenerate).
fn small_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0u32..10_000, 0u32..10_000), 3..40).prop_map(|pairs| {
        let rows: Vec<[f64; 2]> =
            pairs.into_iter().map(|(a, b)| [a as f64 / 10_000.0, b as f64 / 10_000.0]).collect();
        Dataset::from_rows(&rows).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: shifting every tuple by a constant vector changes
    /// neither the chosen set nor its certified rank-regret.
    #[test]
    fn shift_invariance(data in small_dataset(),
                        dx in -1000i32..1000,
                        dy in -1000i32..1000,
                        r in 1usize..4) {
        let shifted = data.shift(&[dx as f64 / 100.0, dy as f64 / 100.0]);
        let a = rrm_2d(&data, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        let b = rrm_2d(&shifted, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        prop_assert_eq!(a.certified_regret, b.certified_regret);
        prop_assert_eq!(a.indices, b.indices);
    }

    /// Rank-regret is monotone non-increasing in the size budget.
    #[test]
    fn monotone_in_budget(data in small_dataset()) {
        let mut prev = usize::MAX;
        for r in 1..=5 {
            let sol = rrm_2d(&data, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
            let k = sol.certified_regret.unwrap();
            prop_assert!(k <= prev);
            prop_assert!(sol.size() <= r);
            prev = k;
        }
    }

    /// Theorem 3: solutions live inside the skyline.
    #[test]
    fn solutions_within_skyline(data in small_dataset(), r in 1usize..5) {
        let sol = rrm_2d(&data, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        let sky = skyline(&data);
        for i in &sol.indices {
            prop_assert!(sky.contains(i), "{} not a skyline tuple", i);
        }
    }

    /// The certificate is the true worst-case rank of the returned set.
    #[test]
    fn certificate_is_exact(data in small_dataset(), r in 1usize..4) {
        let sol = rrm_2d(&data, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        let (actual, _) = exact_rank_regret_2d(&data, &sol.indices, 0.0, 1.0);
        prop_assert_eq!(actual, sol.certified_regret.unwrap());
    }

    /// RRM/RRR duality: the exact RRR answer for threshold k is the
    /// smallest r whose RRM optimum is ≤ k, and vice versa.
    #[test]
    fn rrm_rrr_duality(data in small_dataset(), k in 1usize..6) {
        let rrr = rrr_exact_2d(&data, k, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        prop_assert!(rrr.certified_regret.unwrap() <= k);
        // Minimality: one fewer tuple cannot achieve the threshold.
        if rrr.size() > 1 {
            let smaller =
                rrm_2d(&data, rrr.size() - 1, &FullSpace::new(2), Rrm2dOptions::default())
                    .unwrap();
            prop_assert!(smaller.certified_regret.unwrap() > k);
        }
    }

    /// The skyline achieves rank-regret 1 (its top tuple is always rank 1).
    #[test]
    fn skyline_has_regret_one(data in small_dataset()) {
        let sky = skyline(&data);
        let (k, _) = exact_rank_regret_2d(&data, &sky, 0.0, 1.0);
        prop_assert_eq!(k, 1);
    }

    /// Normalization does not change the *set* chosen (order-preserving
    /// per attribute, a special case of shift+scale invariance for ranks).
    #[test]
    fn normalization_preserves_solution(data in small_dataset(), r in 1usize..4) {
        let normalized = data.normalize();
        let a = rrm_2d(&data, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        let b = rrm_2d(&normalized, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        prop_assert_eq!(a.certified_regret, b.certified_regret);
    }
}
