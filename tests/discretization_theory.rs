//! Direct checks of the discretization theory behind HDRRM
//! (Theorems 6 and 7).

use rank_regret::{Dataset, FullSpace, UtilitySpace};
use rrm_core::{basis_indices, rank, utility};
use rrm_data::synthetic::independent;
use rrm_geom::polar::{grid_distance_bound, polar_grid};
use rrm_hd::{asms, build_vector_set};

/// Theorem 7's chain: if `∇D(S) ≤ k` and `B ⊆ S`, then for every direction
/// `u`, `w(u, S) ≥ (1 − ε) · w_k(u, D)` with `ε` determined by γ.
#[test]
fn theorem7_epsilon_utility_guarantee() {
    let data = independent(400, 3, 71);
    let d = 3;
    // γ large enough that ε = 2dσ < 1 and the bound has teeth (the
    // paper's default γ = 6 gives a vacuous ε at d = 3).
    let gamma = 24usize;
    let k = 5usize;
    let basis = basis_indices(&data);
    let disc = build_vector_set(d, &FullSpace::new(d), 200, gamma, 1);
    let s = asms(&data, k, &basis, &disc.dirs, None, rank_regret::Parallelism::Auto);

    // ε from the proof: w(u,t') ≥ w_k(u,D) − 2σ√d whenever w_k is large;
    // the basis covers the small-w_k case. Overall multiplicative slack:
    let sigma = grid_distance_bound(d, gamma);
    let eps = 2.0 * (d as f64) * sigma; // the paper's (1 − 2dσ) bound

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(72);
    let space = FullSpace::new(d);
    for _ in 0..2_000 {
        let u = space.sample_direction(&mut rng);
        let scores = utility::utilities(&data, &u);
        let wk = rank::kth_score(&scores, k);
        let ws = utility::best_score_of_set(&data, &u, &s);
        // The small-w_k branch of the proof uses w(u, B) ≥ 1/√d; either
        // branch implies the following joint bound.
        let floor = (1.0 - eps) * wk.min(1.0 / (1.0 - eps) / (d as f64).sqrt());
        assert!(ws >= floor - 1e-9, "w(u,S) = {ws} below (1-eps) floor {floor} for u = {u:?}");
    }
}

/// Theorem 6's engine: a set with `∇D(S) ≤ k` has rank ≤ k for *most* of
/// the sphere (the sampled coverage ratio Rat_k(S) approaches 1).
#[test]
fn theorem6_coverage_ratio() {
    let data = independent(500, 4, 73);
    let k = 8usize;
    let basis = basis_indices(&data);
    let disc = build_vector_set(4, &FullSpace::new(4), 3_000, 6, 2);
    let s = asms(&data, k, &basis, &disc.dirs, None, rank_regret::Parallelism::Auto);

    // Fresh directions (not the ones ASMS saw): the fraction with rank ≤ k
    // must be close to 1.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(74);
    let space = FullSpace::new(4);
    let trials = 5_000usize;
    let mut good = 0usize;
    for _ in 0..trials {
        let u = space.sample_direction(&mut rng);
        if rank::rank_regret_of_set(&data, &u, &s) <= k {
            good += 1;
        }
    }
    let ratio = good as f64 / trials as f64;
    assert!(ratio >= 0.97, "coverage ratio {ratio} too low");
}

/// The grid's covering radius really is what Theorem 7 needs: every
/// direction has a grid member within σ, and σ shrinks as 1/γ.
#[test]
fn grid_covering_radius_shrinks() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(75);
    let space = FullSpace::new(4);
    let mut prev_worst = f64::INFINITY;
    for gamma in [2usize, 4, 8] {
        let grid = polar_grid(4, gamma, true);
        let mut worst = 0.0f64;
        for _ in 0..500 {
            let u = space.sample_direction(&mut rng);
            let best = grid
                .iter()
                .map(|v| u.iter().zip(v).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt())
                .fold(f64::INFINITY, f64::min);
            worst = worst.max(best);
        }
        assert!(worst <= grid_distance_bound(4, gamma) + 1e-9);
        assert!(worst < prev_worst, "γ={gamma}: radius must shrink");
        prev_worst = worst;
    }
}

/// Percentage representation of rank-regret (Section II): same solution,
/// same percentage, across dataset scales of the same distribution.
#[test]
fn percentage_regret_comparable_across_sizes() {
    use rrm_2d::{rrm_2d, Rrm2dOptions};
    // The arc construction scales regret linearly with n (Theorem 2), the
    // setting where absolute rank-regret misleads across dataset sizes.
    let small = rrm_data::synthetic::lower_bound_arc(2_000, 2);
    let large = rrm_data::synthetic::lower_bound_arc(8_000, 2);
    let r = 4;
    let ks = rrm_2d(&small, r, &FullSpace::new(2), Rrm2dOptions::default())
        .unwrap()
        .certified_regret
        .unwrap();
    let kl = rrm_2d(&large, r, &FullSpace::new(2), Rrm2dOptions::default())
        .unwrap()
        .certified_regret
        .unwrap();
    let ps = 100.0 * ks as f64 / small.n() as f64;
    let pl = 100.0 * kl as f64 / large.n() as f64;
    // Absolute regrets differ by ~4x (they scale with n, Theorem 2), while
    // percentages land in the same ballpark.
    assert!(kl > 2 * ks, "absolute regret should grow with n: {ks} vs {kl}");
    assert!((ps - pl).abs() < ps.max(pl), "percentages should be comparable: {ps:.2}% vs {pl:.2}%");
}

/// Validation: solutions built from a tiny Dataset::prefix of a sweep
/// behave identically to a fresh generator call (harness correctness).
#[test]
fn prefix_matches_fresh_generation() {
    let big = independent(1_000, 3, 78);
    let prefix = big.prefix(300);
    assert_eq!(prefix.n(), 300);
    assert_eq!(prefix.row(299), big.row(299));
    let direct = Dataset::from_rows(&big.rows().take(300).collect::<Vec<_>>()).unwrap();
    assert_eq!(prefix, direct);
}
