//! Failure injection and degenerate-input robustness across the pipeline.

use rank_regret::prelude::*;
use rrm_2d::{rrm_2d, Rrm2dOptions};
use rrm_data::jitter;
use rrm_eval::exact_rank_regret_2d;
use rrm_hd::{hdrrm, HdrrmOptions};

fn quick_hd() -> HdrrmOptions {
    HdrrmOptions { m_override: Some(300), ..Default::default() }
}

#[test]
fn single_tuple_dataset() {
    let data = Dataset::from_rows(&[[0.3, 0.7]]).unwrap();
    let sol = rank_regret::minimize(&data).size(1).solve().unwrap();
    assert_eq!(sol.indices, vec![0]);
    assert_eq!(sol.certified_regret, Some(1));
    let sol = rank_regret::represent(&data).threshold(1).solve().unwrap();
    assert_eq!(sol.indices, vec![0]);
}

#[test]
fn two_identical_tuples() {
    let data = Dataset::from_rows(&[[0.5, 0.5], [0.5, 0.5]]).unwrap();
    let sol = rank_regret::minimize(&data).size(1).solve().unwrap();
    assert_eq!(sol.size(), 1);
    // Under index tie-breaking the first copy has rank 1 everywhere.
    assert_eq!(sol.certified_regret, Some(1));
}

#[test]
fn budget_larger_than_dataset() {
    let data = Dataset::from_rows(&[[0.1, 0.9], [0.9, 0.1], [0.5, 0.5]]).unwrap();
    let sol = rank_regret::minimize(&data).size(50).solve().unwrap();
    assert!(sol.size() <= 3);
    assert_eq!(sol.certified_regret, Some(1));
}

#[test]
fn threshold_larger_than_dataset() {
    let data = rrm_data::synthetic::independent(20, 3, 1);
    let sol =
        rank_regret::represent(&data).threshold(1000).hdrrm_options(quick_hd()).solve().unwrap();
    assert!(!sol.indices.is_empty());
}

#[test]
fn extreme_value_ranges() {
    // Mixed-unit data spanning 9 orders of magnitude: solvers must not
    // produce NaN or bogus certificates (exactness is float-limited, so
    // compare against the exact evaluator).
    let data = Dataset::from_rows(&[
        [1.0e9, 3.0e-4],
        [8.0e8, 5.0e-4],
        [2.0e8, 9.0e-4],
        [1.0e7, 9.9e-4],
        [9.9e8, 1.0e-6],
    ])
    .unwrap();
    let sol = rrm_2d(&data, 2, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
    let k = sol.certified_regret.unwrap();
    let (exact, _) = exact_rank_regret_2d(&data, &sol.indices, 0.0, 1.0);
    assert_eq!(k, exact);
    // Normalization gives the same certified value (order-preserving).
    let sol_n = rrm_2d(&data.normalize(), 2, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
    assert_eq!(sol_n.certified_regret, sol.certified_regret);
}

#[test]
fn heavily_tied_grid_data_with_jitter() {
    // A 5x5 grid duplicated 8 times: massive exact ties. Raw solving is
    // well-defined (index tie-breaks) but the general-position repair
    // (jitter) must keep certificates consistent with exact evaluation.
    let mut rows = Vec::new();
    for _ in 0..8 {
        for i in 0..5 {
            for j in 0..5 {
                rows.push([i as f64 / 4.0, j as f64 / 4.0]);
            }
        }
    }
    let data = Dataset::from_rows(&rows).unwrap();
    let jittered = jitter(&data, 1e-9, 42);
    let sol = rrm_2d(&jittered, 3, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
    let (exact, _) = exact_rank_regret_2d(&jittered, &sol.indices, 0.0, 1.0);
    assert_eq!(sol.certified_regret, Some(exact));
}

#[test]
fn hd_on_degenerate_low_rank_data() {
    // All tuples on a single line through attribute space: the skyline is
    // tiny and one tuple nearly dominates; HDRRM must terminate quickly
    // with a small certificate.
    let rows: Vec<[f64; 3]> = (0..200)
        .map(|i| {
            let t = i as f64 / 199.0;
            [t, 0.5 * t, 0.25 * t]
        })
        .collect();
    let data = Dataset::from_rows(&rows).unwrap();
    let sol = hdrrm(&data, 5, &FullSpace::new(3), quick_hd()).unwrap();
    assert_eq!(sol.certified_regret, Some(1), "the top tuple dominates everything");
}

#[test]
fn constant_attribute_everywhere() {
    // Attribute 2 never discriminates; the problem degenerates to 1D on
    // attribute 1 and the single best tuple has regret 1.
    let rows: Vec<[f64; 2]> = (0..50).map(|i| [i as f64 / 49.0, 0.7]).collect();
    let data = Dataset::from_rows(&rows).unwrap();
    let sol = rrm_2d(&data, 1, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
    assert_eq!(sol.certified_regret, Some(1));
    assert_eq!(sol.indices, vec![49]);
}

#[test]
fn nan_rejected_at_the_door() {
    assert!(Dataset::from_rows(&[[f64::NAN, 1.0]]).is_err());
    assert!(Dataset::from_flat(2, vec![0.1, f64::INFINITY]).is_err());
}

#[test]
fn negative_values_are_legal_inputs() {
    // Negated (smaller-is-better) attributes produce negative values; all
    // solvers must handle them (shift invariance means they change
    // nothing).
    let data = Dataset::from_rows(&[[0.9, 10.0], [0.5, 2.0], [0.1, 30.0]])
        .unwrap()
        .negate_attributes(&[1]);
    let sol = rrm_2d(&data, 1, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
    // Tuple 1 (quality 0.5, price 2) is never the worst pick; exactness:
    let (exact, _) = exact_rank_regret_2d(&data, &sol.indices, 0.0, 1.0);
    assert_eq!(sol.certified_regret, Some(exact));

    let data3 = Dataset::from_rows(&[
        [0.9, -10.0, 0.2],
        [0.5, -2.0, 0.8],
        [0.1, -30.0, 0.5],
        [0.7, -15.0, 0.6],
    ])
    .unwrap();
    let sol = hdrrm(&data3, 3, &FullSpace::new(3), quick_hd()).unwrap();
    assert!(sol.certified_regret.is_some());
}

#[test]
fn restricted_space_narrower_than_data_spread() {
    // A very tight weight box: every sampled direction nearly identical;
    // the solver must still terminate and certify.
    let data = rrm_data::synthetic::anticorrelated(300, 3, 9);
    let space = BoxSpace::around(&[0.5, 0.3, 0.2], 0.01);
    let sol = rank_regret::minimize(&data)
        .size(5)
        .space(space)
        .hdrrm_options(quick_hd())
        .solve()
        .unwrap();
    // With an (almost) single direction, a handful of tuples reach the
    // very top ranks.
    assert!(sol.certified_regret.unwrap() <= 5, "{:?}", sol.certified_regret);
}
