//! Incremental-update parity: a [`Session`] advanced through
//! [`Session::update`] must answer **bit-identically** to a session built
//! fresh over the same post-update rows — for every registered algorithm,
//! whether a warm handle was advanced in place (2DRRM, HDRRM) or the
//! algorithm fell back to lazy re-prepare on the new epoch. Correctness
//! must never depend on which path ran.
//!
//! Also here: multi-batch epoch chaining, and a reader/writer race — the
//! epoch swap is a pointer swap, so queries in flight during an update
//! must always see one coherent snapshot, never a torn mix.

use std::sync::atomic::{AtomicBool, Ordering};

use proptest::prelude::*;
use rank_regret::prelude::*;
use rank_regret::rrm_data::synthetic::independent;
use rank_regret::{apply_updates, Dataset};

/// Budget shared by updated and fresh paths: sample counts keep the
/// randomized solvers fast and the enumeration/LP caps keep MDRRR's exact
/// k-set enumeration bounded in debug builds. Parity is unaffected — both
/// sides see identical caps.
fn budget() -> Budget {
    Budget {
        samples: Some(400),
        max_enumerations: Some(300),
        max_lp_calls: Some(60),
        ..Budget::UNLIMITED
    }
}

/// Strategy: a small 2D dataset on a fine grid plus one churn batch —
/// up to 3 distinct deletes and up to 3 inserted rows. Sizes stay under
/// brute force's n <= 20 cap so *all eight* algorithms stay in play.
fn dataset_and_ops() -> impl Strategy<Value = (Dataset, Vec<UpdateOp>)> {
    proptest::collection::vec((0u32..1000, 0u32..1000), 4..14).prop_flat_map(|pairs| {
        let n = pairs.len();
        (
            Just(pairs),
            proptest::collection::vec(0..n, 0..3),
            proptest::collection::vec((0u32..1000, 0u32..1000), 0..4),
        )
            .prop_map(|(pairs, mut deletes, inserts)| {
                let rows: Vec<[f64; 2]> = pairs
                    .into_iter()
                    .map(|(a, b)| [a as f64 / 1000.0, b as f64 / 1000.0])
                    .collect();
                let data = Dataset::from_rows(&rows).unwrap();
                deletes.sort_unstable();
                deletes.dedup();
                let mut ops: Vec<UpdateOp> = deletes.into_iter().map(UpdateOp::Delete).collect();
                ops.extend(
                    inserts
                        .into_iter()
                        .map(|(a, b)| UpdateOp::Insert(vec![a as f64 / 1000.0, b as f64 / 1000.0])),
                );
                (data, ops)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole contract: update-then-query equals rebuild-then-query,
    /// all eight algorithms, at 1, 2, and 7 worker threads.
    #[test]
    fn updated_session_matches_fresh_session((data, ops) in dataset_and_ops()) {
        let upd = apply_updates(&data, &ops).unwrap();
        for threads in [1usize, 2, 7] {
            let session = Session::new(data.clone()).exec(ExecPolicy::threads(threads));
            // Warm every algorithm first so the incremental carry-over
            // path (not just lazy re-prepare) is exercised where it exists.
            session.warm(&Algorithm::ALL);
            prop_assert_eq!(session.update(&ops).unwrap(), 1);
            let fresh = Session::new(upd.new.clone()).exec(ExecPolicy::threads(threads));
            for algo in Algorithm::ALL {
                for request in [
                    Request::minimize(2).algo(algo).budget(budget()),
                    Request::represent(2).algo(algo).budget(budget()),
                ] {
                    let got = session.run(&request).map(|r| r.solution);
                    let want = fresh.run(&request).map(|r| r.solution);
                    prop_assert_eq!(got, want, "{} at {} threads, {:?}", algo, threads, request);
                }
            }
        }
    }
}

/// Chained batches: each epoch's answers must match a fresh session over
/// that epoch's rows, and the epoch counter must track the chain.
#[test]
fn chained_update_batches_stay_in_parity() {
    let data = independent(18, 2, 5);
    let session = Session::new(data.clone()).exec(ExecPolicy::sequential());
    session.warm(&Algorithm::ALL);
    let batches: [Vec<UpdateOp>; 3] = [
        vec![UpdateOp::Delete(2), UpdateOp::Insert(vec![0.91, 0.13])],
        vec![UpdateOp::Insert(vec![0.4, 0.77]), UpdateOp::Insert(vec![0.05, 0.95])],
        vec![UpdateOp::Delete(0), UpdateOp::Delete(7), UpdateOp::Delete(12)],
    ];
    let mut rows = data;
    for (b, ops) in batches.iter().enumerate() {
        rows = apply_updates(&rows, ops).unwrap().new;
        assert_eq!(session.update(ops).unwrap(), b as u64 + 1);
        assert_eq!(*session.data(), rows);
        let fresh = Session::new(rows.clone()).exec(ExecPolicy::sequential());
        for algo in Algorithm::ALL {
            let request = Request::minimize(3).algo(algo).budget(budget());
            let got = session.run(&request).map(|r| r.solution);
            let want = fresh.run(&request).map(|r| r.solution);
            assert_eq!(got, want, "batch {b}, {algo}");
        }
    }
    assert_eq!(session.epoch(), 3);
}

/// Readers race a writer applying epoch swaps. Every answer a reader gets
/// must be *the* correct answer for one of the published epochs — a torn
/// read (part old snapshot, part new) would produce something outside
/// that set. The expected answers are precomputed from fresh sessions.
#[test]
fn concurrent_readers_race_epoch_swaps_without_torn_reads() {
    let data = independent(300, 2, 11);
    let batches: Vec<Vec<UpdateOp>> = (0..4u64)
        .map(|b| {
            vec![
                UpdateOp::Delete(b as usize * 3),
                UpdateOp::Insert(vec![0.2 + 0.15 * b as f64, 0.9 - 0.11 * b as f64]),
            ]
        })
        .collect();
    let request = Request::minimize(3).algo(Algorithm::TwoDRrm);

    // The full set of correct answers, one per epoch.
    let mut expected = Vec::new();
    let mut rows = data.clone();
    expected.push(
        Session::new(rows.clone()).exec(ExecPolicy::sequential()).run(&request).unwrap().solution,
    );
    for ops in &batches {
        rows = apply_updates(&rows, ops).unwrap().new;
        expected.push(
            Session::new(rows.clone())
                .exec(ExecPolicy::sequential())
                .run(&request)
                .unwrap()
                .solution,
        );
    }

    let session = Session::new(data).exec(ExecPolicy::threads(2));
    session.warm(&[Algorithm::TwoDRrm]);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let solution = session.run(&request).expect("racing query").solution;
                    assert!(
                        expected.contains(&solution),
                        "torn read: answer matches no published epoch: {solution:?}"
                    );
                }
            });
        }
        for (b, ops) in batches.iter().enumerate() {
            assert_eq!(session.update(ops).expect("swap"), b as u64 + 1);
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(session.epoch(), batches.len() as u64);
    assert_eq!(*session.data(), rows);
}
