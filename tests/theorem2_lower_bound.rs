//! Theorem 2: there are datasets where *every* size-r set has rank-regret
//! Ω(n/r). The quarter-arc construction makes the bound concrete, and the
//! exact 2D solver lets us verify it against the true optimum.

use rank_regret::FullSpace;
use rrm_2d::{rrm_2d, Rrm2dOptions};
use rrm_data::synthetic::lower_bound_arc;
use rrm_eval::estimate_rank_regret_seq;

#[test]
fn arc_optimum_scales_like_n_over_r() {
    // The proof: r tuples leave an angular gap of at least π/(2(r+1)),
    // containing ≥ n/(r+1) − O(1) tuples that outrank both gap endpoints
    // near the gap's bisector direction.
    for &(n, r) in &[(200usize, 3usize), (400, 4), (800, 5), (800, 9)] {
        let data = lower_bound_arc(n, 2);
        let sol = rrm_2d(&data, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        let k = sol.certified_regret.unwrap();
        let bound = n / (2 * (r + 1)) - 2;
        assert!(k >= bound, "n={n} r={r}: optimal regret {k} below the Ω(n/r) bound {bound}");
        // And the optimum is not wildly above the bound either (the
        // construction is tight up to constants).
        assert!(k <= 2 * n / r.max(1), "n={n} r={r}: regret {k} unexpectedly large");
    }
}

#[test]
fn doubling_n_roughly_doubles_the_arc_regret() {
    let r = 4;
    let k1 = rrm_2d(&lower_bound_arc(300, 2), r, &FullSpace::new(2), Rrm2dOptions::default())
        .unwrap()
        .certified_regret
        .unwrap();
    let k2 = rrm_2d(&lower_bound_arc(600, 2), r, &FullSpace::new(2), Rrm2dOptions::default())
        .unwrap()
        .certified_regret
        .unwrap();
    let ratio = k2 as f64 / k1 as f64;
    assert!((1.5..=2.5).contains(&ratio), "scaling ratio {ratio} (k1={k1}, k2={k2})");
}

#[test]
fn higher_dims_inherit_the_bound() {
    // The construction pads dimensions ≥ 3 with constant 1; the bound
    // survives (checked with the sampled estimator on the HD solver's
    // input format).
    let n = 400;
    let data = lower_bound_arc(n, 4);
    // Evaluate the best *2D-optimal* choice embedded in 4D.
    let data2 = data.project(&[0, 1]).unwrap();
    let sol = rrm_2d(&data2, 4, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
    let est = estimate_rank_regret_seq(&data, &sol.indices, &FullSpace::new(4), 20_000, 11);
    assert!(est.max_rank >= n / 10 - 2, "embedded arc regret {} too small for n={n}", est.max_rank);
}
