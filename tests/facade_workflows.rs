//! End-to-end facade workflows: every space type through both query kinds,
//! plus the error paths a downstream user can hit.

use rank_regret::prelude::*;
use rank_regret::SolverChoice;
use rrm_data::synthetic::{anticorrelated, independent};
use rrm_eval::estimate_rank_regret;
use rrm_hd::HdrrmOptions;

fn quick_hd() -> HdrrmOptions {
    HdrrmOptions { m_override: Some(600), ..Default::default() }
}

#[test]
fn minimize_with_every_space_type() {
    let data = anticorrelated(800, 4, 90);
    let r = 10;
    let spaces: Vec<(&str, Box<dyn UtilitySpace>)> = vec![
        ("full", Box::new(FullSpace::new(4))),
        ("weak", Box::new(WeakRankingSpace::new(4, 2))),
        ("cone", Box::new(ConeSpace::new(4, vec![vec![1.0, 0.0, 0.0, -1.0]]))),
        ("box", Box::new(BoxSpace::around(&[0.4, 0.3, 0.2, 0.1], 0.15))),
        ("cap", Box::new(SphereCap::new(&[1.0, 1.0, 1.0, 1.0], 0.4))),
        ("biased", Box::new(BiasedOrthantSpace::new(&[0.5, 0.3, 0.1, 0.1], 4.0))),
    ];
    for (name, space) in spaces {
        let sol = match name {
            // The builder consumes the space; keep a clone for evaluation
            // via the original box.
            "full" => rank_regret::minimize(&data).size(r).hdrrm_options(quick_hd()).solve(),
            _ => {
                // Re-create the space inside the builder from its clone-able
                // concrete types.
                let b = rank_regret::minimize(&data).size(r).hdrrm_options(quick_hd());
                match name {
                    "weak" => b.space(WeakRankingSpace::new(4, 2)).solve(),
                    "cone" => b.space(ConeSpace::new(4, vec![vec![1.0, 0.0, 0.0, -1.0]])).solve(),
                    "box" => b.space(BoxSpace::around(&[0.4, 0.3, 0.2, 0.1], 0.15)).solve(),
                    "cap" => b.space(SphereCap::new(&[1.0, 1.0, 1.0, 1.0], 0.4)).solve(),
                    "biased" => {
                        b.space(BiasedOrthantSpace::new(&[0.5, 0.3, 0.1, 0.1], 4.0)).solve()
                    }
                    _ => unreachable!(),
                }
            }
        }
        .unwrap_or_else(|e| panic!("space {name}: {e}"));
        assert!(sol.size() <= r, "space {name}");
        assert!(sol.certified_regret.is_some(), "space {name}");
        // Sanity: regret over the space is meaningful.
        let est = estimate_rank_regret(&data, &sol.indices, space.as_ref(), 3_000, 91);
        assert!(est.max_rank >= 1 && est.max_rank <= data.n(), "space {name}");
    }
}

#[test]
fn represent_hd_path() {
    let data = independent(600, 3, 92);
    let sol = rank_regret::represent(&data).threshold(5).hdrrm_options(quick_hd()).solve().unwrap();
    assert_eq!(sol.certified_regret, Some(5));
    // Verify over fresh samples with slack (certificate is over D).
    let est = estimate_rank_regret(&data, &sol.indices, &FullSpace::new(3), 10_000, 93);
    assert!(est.max_rank <= 25, "measured {} far above threshold 5", est.max_rank);
}

#[test]
fn solver_choice_is_respected() {
    let data = independent(200, 2, 94);
    let exact = rank_regret::minimize(&data).size(4).solver(SolverChoice::Exact2d).solve().unwrap();
    assert_eq!(exact.algorithm, Algorithm::TwoDRrm);
    let hd = rank_regret::minimize(&data)
        .size(4)
        .solver(SolverChoice::Hdrrm)
        .hdrrm_options(quick_hd())
        .solve()
        .unwrap();
    assert_eq!(hd.algorithm, Algorithm::Hdrrm);
    // HDRRM's certified regret can never beat the exact optimum.
    assert!(hd.certified_regret.unwrap() >= exact.certified_regret.unwrap());
}

#[test]
fn error_paths_are_reported() {
    let data = independent(50, 3, 95);
    // Exact solver demanded on 3D data.
    assert!(matches!(
        rank_regret::minimize(&data).size(3).solver(SolverChoice::Exact2d).solve(),
        Err(RrmError::Unsupported(_))
    ));
    // Budget below the basis size.
    assert!(matches!(
        rank_regret::minimize(&data).size(1).hdrrm_options(quick_hd()).solve(),
        Err(RrmError::OutputSizeTooSmall { .. })
    ));
    // Mismatched space dimension.
    assert!(matches!(
        rank_regret::minimize(&data).size(5).space(FullSpace::new(4)).solve(),
        Err(RrmError::DimensionMismatch { .. })
    ));
    // Zero threshold for RRR.
    assert!(rank_regret::represent(&data).threshold(0).solve().is_err());
}

#[test]
fn shift_invariance_through_the_facade() {
    // Theorem 1 at the API level, both solver families.
    let data = independent(300, 2, 96);
    let shifted = data.shift(&[5.0, -2.0]);
    let a = rank_regret::minimize(&data).size(3).solve().unwrap();
    let b = rank_regret::minimize(&shifted).size(3).solve().unwrap();
    assert_eq!(a.indices, b.indices);
    assert_eq!(a.certified_regret, b.certified_regret);

    let data3 = independent(300, 3, 97);
    let shifted3 = data3.shift(&[1.0, 2.0, 3.0]);
    let a = rank_regret::minimize(&data3).size(8).hdrrm_options(quick_hd()).solve().unwrap();
    let b = rank_regret::minimize(&shifted3).size(8).hdrrm_options(quick_hd()).solve().unwrap();
    // HDRRM samples directions independently of the data, and ranks are
    // shift invariant, so the whole pipeline is deterministic under shift.
    assert_eq!(a.indices, b.indices);
    assert_eq!(a.certified_regret, b.certified_regret);
}
