//! Registry parity: every solver registered in the [`Engine`] runs on the
//! paper's Table I dataset through the single dispatch path, and the
//! capability matrix (Table III) is enforced — guarantees are real
//! certificates, restricted spaces either work or fail gracefully.

use rank_regret::prelude::*;

fn table1() -> Dataset {
    Dataset::from_rows(&[
        [0.0, 1.0],
        [0.4, 0.95],
        [0.57, 0.75],
        [0.79, 0.6],
        [0.2, 0.5],
        [0.35, 0.3],
        [1.0, 0.0],
    ])
    .unwrap()
}

/// Sampled direction budget: plenty for n = 7, keeps MDRRRr/MDRMS fast.
fn budget() -> Budget {
    Budget::with_samples(2_000)
}

#[test]
fn every_registered_solver_returns_a_valid_set() {
    let engine = Engine::new();
    let data = table1();
    let r = 3;
    assert_eq!(engine.registry().count(), Algorithm::ALL.len());
    for solver in engine.registry() {
        let algo = solver.algorithm();
        let sol = engine
            .run(&data, &FullSpace::new(2), &Request::minimize(r).algo(algo).budget(budget()))
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
        assert_eq!(sol.algorithm, algo, "{algo} mislabeled its solution");
        assert!(sol.size() >= 1 && sol.size() <= r, "{algo}: size {}", sol.size());
        assert!(
            sol.indices.iter().all(|&i| (i as usize) < data.n()),
            "{algo}: out-of-range index in {:?}",
            sol.indices
        );
        // Sorted + deduplicated is part of the Solution contract.
        assert!(sol.indices.windows(2).all(|w| w[0] < w[1]), "{algo}: {:?}", sol.indices);
    }
}

#[test]
fn certified_solvers_never_beat_the_brute_force_optimum() {
    let engine = Engine::new();
    let data = table1();
    let r = 2;
    // Ground truth: the exact optimum over all r-subsets (brute force with
    // a dense direction sample equals the 2D exact DP on this dataset).
    let optimum = engine
        .run(
            &data,
            &FullSpace::new(2),
            &Request::minimize(r).algo(Algorithm::BruteForce).budget(budget()),
        )
        .unwrap()
        .certified_regret
        .unwrap();
    let exact = engine
        .run(
            &data,
            &FullSpace::new(2),
            &Request::minimize(r).algo(Algorithm::TwoDRrm).budget(budget()),
        )
        .unwrap()
        .certified_regret
        .unwrap();
    assert_eq!(optimum, exact, "brute force disagrees with the exact 2D DP");

    for solver in engine.registry() {
        let algo = solver.algorithm();
        let sol = engine
            .run(&data, &FullSpace::new(2), &Request::minimize(r).algo(algo).budget(budget()))
            .unwrap_or_else(|e| panic!("{algo}: {e}"));
        if solver.has_regret_guarantee() {
            let certified = sol
                .certified_regret
                .unwrap_or_else(|| panic!("{algo} claims a guarantee but gave no certificate"));
            assert!(
                certified >= optimum,
                "{algo} certified {certified}, below the optimum {optimum}"
            );
        }
    }
}

#[test]
fn restricted_space_capability_is_enforced_not_panicked() {
    let engine = Engine::new();
    let data = table1();
    for solver in engine.registry() {
        let algo = solver.algorithm();
        let result = engine.run(
            &data,
            &WeakRankingSpace::new(2, 1),
            &Request::minimize(3).algo(algo).budget(budget()),
        );
        if solver.supports_restricted_space() {
            let sol = result.unwrap_or_else(|e| panic!("{algo} should accept RRRM: {e}"));
            assert!(sol.size() <= 3, "{algo}");
        } else {
            assert!(
                matches!(result, Err(RrmError::Unsupported(_))),
                "{algo} should reject RRRM with Unsupported, got {result:?}"
            );
        }
    }
}

#[test]
fn every_algorithm_answers_the_represent_direction() {
    let engine = Engine::new();
    let data = table1();
    for solver in engine.registry() {
        let algo = solver.algorithm();
        let sol = engine
            .run(&data, &FullSpace::new(2), &Request::represent(3).algo(algo).budget(budget()))
            .unwrap_or_else(|e| panic!("{algo} represent: {e}"));
        assert_eq!(sol.algorithm, algo);
        assert!(sol.size() >= 1 && sol.size() <= data.n(), "{algo}");
        // Guaranteed solvers certify a regret within the threshold.
        if solver.has_regret_guarantee() {
            assert!(sol.certified_regret.unwrap() <= 3, "{algo}: {:?}", sol.certified_regret);
        }
    }
}

#[test]
fn capability_matrix_is_consistent_between_enum_and_trait() {
    let engine = Engine::new();
    for solver in engine.registry() {
        let algo = solver.algorithm();
        assert_eq!(solver.has_regret_guarantee(), algo.has_regret_guarantee(), "{algo}");
        assert_eq!(solver.supports_restricted_space(), algo.supports_restricted_space(), "{algo}");
        assert_eq!(solver.supported_dims(), algo.supported_dims(), "{algo}");
        assert_eq!(solver.name(), algo.name(), "{algo}");
    }
}
