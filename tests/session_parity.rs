//! Session parity: the prepare-once / query-many path must return
//! *exactly* what the one-shot engine path returns — for every registered
//! algorithm, across repeated queries with varying `r`/`k`, over seeded
//! random datasets, and under concurrent access to a shared [`Session`].
//!
//! Preparation is a caching contract, never an approximation; these tests
//! are the enforcement.

use rank_regret::prelude::*;
use rank_regret::rrm_data::synthetic::independent;
use rank_regret::AlgoChoice;

/// Budget shared by both paths: sample counts keep the randomized solvers
/// fast, the enumeration/LP caps keep MDRRR's exact k-set enumeration
/// bounded in debug builds, and — being part of the request — the budget
/// exercises the per-budget caching of the prepared path. Parity is
/// unaffected: both paths see the identical caps.
fn budget() -> Budget {
    Budget {
        samples: Some(500),
        max_enumerations: Some(500),
        // Debug-profile LPs cost ~50ms each at these sizes; a tight cap
        // keeps MDRRR's enumeration bounded. Completeness is not under
        // test here — parity is, and both paths see the identical cap.
        max_lp_calls: Some(150),
        ..Budget::UNLIMITED
    }
}

/// One-shot result via the engine, as `Result` so error parity is checked
/// alongside solution parity.
fn one_shot(engine: &Engine, data: &Dataset, request: &Request) -> Result<Solution, RrmError> {
    engine.run(data, &FullSpace::new(data.dim()), request)
}

#[test]
fn prepared_path_matches_one_shot_for_all_algorithms_2d() {
    // d = 2 is the one dimensionality every algorithm supports (brute
    // force caps n at 20), so this covers the full registry.
    let engine = Engine::new();
    for seed in 0..2u64 {
        let data = independent(16, 2, seed);
        let session = Session::new(data.clone());
        for algo in Algorithm::ALL {
            for request in [
                Request::minimize(1).algo(algo).budget(budget()),
                Request::minimize(2).algo(algo).budget(budget()),
                Request::minimize(4).algo(algo).budget(budget()),
                Request::represent(1).algo(algo).budget(budget()),
                Request::represent(3).algo(algo).budget(budget()),
            ] {
                let expected = one_shot(&engine, &data, &request);
                let got = session.run(&request).map(|resp| resp.solution);
                assert_eq!(got, expected, "seed {seed}, {algo}, {request:?}");
            }
        }
    }
}

#[test]
fn prepared_path_matches_one_shot_in_higher_dimensions() {
    let engine = Engine::new();
    for seed in [7u64] {
        let data = independent(20, 3, seed);
        let session = Session::new(data.clone());
        for algo in [Algorithm::Hdrrm, Algorithm::MdrrrR, Algorithm::Mdrc, Algorithm::Mdrms] {
            for request in [
                Request::minimize(4).algo(algo).budget(budget()),
                Request::minimize(7).algo(algo).budget(budget()),
                Request::represent(3).algo(algo).budget(budget()),
                Request::represent(8).algo(algo).budget(budget()),
            ] {
                let expected = one_shot(&engine, &data, &request);
                let got = session.run(&request).map(|resp| resp.solution);
                assert_eq!(got, expected, "seed {seed}, {algo}, {request:?}");
            }
        }
        // MDRRR separately, on a smaller instance: its LP cost per
        // feasibility check grows with k·(n−k) rows and the one-shot side
        // of this comparison re-enumerates per probe.
        let data = independent(13, 3, seed);
        let session = Session::new(data.clone());
        for request in [
            Request::minimize(4).algo(Algorithm::Mdrrr).budget(budget()),
            Request::minimize(6).algo(Algorithm::Mdrrr).budget(budget()),
            Request::represent(2).algo(Algorithm::Mdrrr).budget(budget()),
            Request::represent(5).algo(Algorithm::Mdrrr).budget(budget()),
        ] {
            let expected = one_shot(&engine, &data, &request);
            let got = session.run(&request).map(|resp| resp.solution);
            assert_eq!(got, expected, "seed {seed}, MDRRR, {request:?}");
        }
    }
}

#[test]
fn one_prepared_handle_answers_many_parameters() {
    // A single PreparedSolver queried with a sweep of r and k values must
    // track fresh one-shot runs at every point — out of order, repeated,
    // and interleaved between the two problem directions.
    let engine = Engine::new();
    let data = independent(120, 2, 42);
    let prepared =
        engine.prepare(AlgoChoice::Fixed(Algorithm::TwoDRrm), &data, &FullSpace::new(2)).unwrap();
    let b = Budget::UNLIMITED;
    for r in [5usize, 1, 3, 5, 2] {
        let expected =
            one_shot(&engine, &data, &Request::minimize(r).algo(Algorithm::TwoDRrm)).unwrap();
        assert_eq!(prepared.solve_rrm(r, &b).unwrap(), expected, "r={r}");
    }
    for k in [4usize, 1, 2, 4] {
        let expected =
            one_shot(&engine, &data, &Request::represent(k).algo(Algorithm::TwoDRrm)).unwrap();
        assert_eq!(prepared.solve_rrr(k, &b).unwrap(), expected, "k={k}");
    }
}

#[test]
fn batch_equals_individual_runs() {
    let data = independent(60, 3, 17);
    let session = rank_regret::session(&data);
    let requests: Vec<Request> = vec![
        Request::minimize(5).budget(budget()),
        Request::minimize(8).budget(budget()),
        Request::represent(6).budget(budget()),
        Request::minimize(5).algo(Algorithm::Mdrms).budget(budget()),
        Request::minimize(0).budget(budget()), // typed failure mid-batch
        Request::represent(2).budget(budget()),
    ];
    let batched = session.run_batch(&requests);
    assert_eq!(batched.len(), requests.len());
    for (request, result) in requests.iter().zip(&batched) {
        let individual = session.run(request);
        match (result, &individual) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.solution, b.solution, "{request:?}");
                assert_eq!(&a.request, request);
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{request:?}"),
            other => panic!("batch/individual disagree for {request:?}: {other:?}"),
        }
    }
    assert!(matches!(batched[4], Err(RrmError::OutputSizeTooSmall { .. })));
}

#[test]
fn concurrent_queries_over_a_shared_session() {
    // The Send + Sync contract: one Session, many threads, read-only
    // queries — every thread must see exactly the sequential answers.
    let data = independent(150, 2, 99);
    let session = Session::new(data);
    let requests: Vec<Request> = (1..=4)
        .flat_map(|r| {
            [
                Request::minimize(r),
                Request::minimize(r).algo(Algorithm::TwoDRrr),
                Request::represent(r).budget(budget()),
                Request::minimize(r).algo(Algorithm::Mdrms).budget(budget()),
            ]
        })
        .collect();
    // Sequential ground truth first (also warms the prepared handles —
    // the threads below then exercise the shared-read path).
    let expected: Vec<Result<Solution, RrmError>> =
        requests.iter().map(|q| session.run(q).map(|resp| resp.solution)).collect();

    std::thread::scope(|scope| {
        for t in 0..4 {
            let session = &session;
            let requests = &requests;
            let expected = &expected;
            scope.spawn(move || {
                // Each thread walks the batch from a different offset so
                // lock orders interleave.
                for i in 0..requests.len() {
                    let idx = (i + t * 3) % requests.len();
                    let got = session.run(&requests[idx]).map(|resp| resp.solution);
                    assert_eq!(got, expected[idx], "thread {t}, request {idx}");
                }
            });
        }
    });
}

#[test]
fn cold_session_prepares_exactly_once_under_a_thundering_herd() {
    // Eight threads hit a cold Session with the same fixed-algorithm
    // request at once. The per-slot OnceLock must collapse the herd to a
    // single prepare — every other thread blocks on it and records a hit.
    let data = independent(150, 3, 23);
    let request = Request::minimize(5).algo(Algorithm::Hdrrm).budget(budget());
    // Ground truth from a separate session, so the one under test stays
    // genuinely cold until the herd hits it.
    let expected = Session::new(data.clone()).run(&request).map(|resp| resp.solution);
    let session = Session::new(data);
    assert_eq!(session.prepare_misses(), 0);
    assert_eq!(session.prepare_hits(), 0);

    std::thread::scope(|scope| {
        for t in 0..8 {
            let session = &session;
            let request = &request;
            let expected = &expected;
            scope.spawn(move || {
                let got = session.run(request).map(|resp| resp.solution);
                assert_eq!(&got, expected, "thread {t}");
            });
        }
    });

    assert_eq!(session.prepare_misses(), 1, "exactly one thread may run prepare");
    assert_eq!(session.prepare_hits(), 7, "the other seven reuse the handle");
}

#[test]
fn batch_isolates_unsupported_capability_errors() {
    // A request the chosen algorithm cannot serve on this dataset (2-D
    // solvers on 3-D data) must fail alone: per-item error, neighbouring
    // results intact, and the session not poisoned for later use.
    let data = independent(60, 3, 31);
    let session = rank_regret::session(&data);
    let requests: Vec<Request> = vec![
        Request::minimize(5).algo(Algorithm::Hdrrm).budget(budget()),
        Request::minimize(5).algo(Algorithm::TwoDRrm).budget(budget()), // d=3: unsupported
        Request::represent(4).algo(Algorithm::TwoDRrr).budget(budget()), // d=3: unsupported
        Request::minimize(5).algo(Algorithm::Mdrms).budget(budget()),
    ];
    let batched = session.run_batch(&requests);
    assert_eq!(batched.len(), 4);
    assert!(batched[0].is_ok(), "{:?}", batched[0]);
    assert!(matches!(batched[1], Err(RrmError::Unsupported(_))), "{:?}", batched[1]);
    assert!(matches!(batched[2], Err(RrmError::Unsupported(_))), "{:?}", batched[2]);
    assert!(batched[3].is_ok(), "{:?}", batched[3]);

    // Not poisoned: the same session still answers fresh runs, and they
    // agree with the batch results.
    let again = session.run(&requests[0]).expect("session survives the failed items");
    assert_eq!(&again.solution, &batched[0].as_ref().unwrap().solution);
    let again = session.run(&requests[1]);
    assert!(matches!(again, Err(RrmError::Unsupported(_))));
}

#[test]
fn facade_builders_ride_the_session_path() {
    // minimize()/represent() are documented as thin wrappers over a
    // one-shot session; their results must equal explicit session runs.
    let data = independent(80, 2, 5);
    let via_builder = rank_regret::minimize(&data).size(3).solve().unwrap();
    let via_session = rank_regret::session(&data).run(&Request::minimize(3)).unwrap().solution;
    assert_eq!(via_builder, via_session);

    let via_builder = rank_regret::represent(&data).threshold(2).solve().unwrap();
    let via_session = rank_regret::session(&data).run(&Request::represent(2)).unwrap().solution;
    assert_eq!(via_builder, via_session);
}
