//! Sequential ↔ parallel parity: the execution policy is a pure speed
//! knob. For every registered algorithm, running under 1, 2 and 7 worker
//! threads must produce **bit-identical** solutions (and identical typed
//! errors) — the determinism contract of the `rrm_par` runtime: fixed
//! chunk boundaries plus ordered merges, never racy reductions.
//!
//! A property test additionally pins the runtime primitive itself:
//! `par_map_reduce` equals the sequential left fold for arbitrary inputs,
//! chunk sizes and thread counts.

use proptest::prelude::*;
use rank_regret::prelude::*;
use rank_regret::rrm_data::synthetic::independent;

/// Budget shared by every path (same rationale as tests/session_parity.rs:
/// keep the randomized solvers fast and MDRRR's LP enumeration bounded;
/// every compared path sees identical caps).
fn budget() -> Budget {
    Budget {
        samples: Some(500),
        max_enumerations: Some(500),
        max_lp_calls: Some(150),
        ..Budget::UNLIMITED
    }
}

/// One session per thread policy over the same data; queries must agree.
fn assert_parity(
    data: &Dataset,
    algos: &[Algorithm],
    requests: impl Fn(Algorithm) -> Vec<Request>,
) {
    let sequential = Session::new(data.clone()).exec(ExecPolicy::sequential());
    let two = Session::new(data.clone()).exec(ExecPolicy::threads(2));
    let seven = Session::new(data.clone()).exec(ExecPolicy::threads(7));
    for &algo in algos {
        for request in requests(algo) {
            let baseline = sequential.run(&request).map(|resp| resp.solution);
            for (threads, session) in [(2usize, &two), (7, &seven)] {
                let got = session.run(&request).map(|resp| resp.solution);
                assert_eq!(got, baseline, "{algo}, {threads} threads, {request:?}");
            }
        }
    }
}

#[test]
fn every_algorithm_is_bit_identical_at_1_2_and_7_threads() {
    // d = 2 is the one dimensionality every algorithm supports (brute
    // force caps n at 20), so this covers the full registry.
    let data = independent(16, 2, 11);
    assert_parity(&data, &Algorithm::ALL, |algo| {
        vec![
            Request::minimize(2).algo(algo).budget(budget()),
            Request::minimize(4).algo(algo).budget(budget()),
            Request::represent(2).algo(algo).budget(budget()),
        ]
    });
}

#[test]
fn hd_algorithms_are_bit_identical_in_higher_dimensions() {
    let data = independent(60, 3, 12);
    assert_parity(
        &data,
        &[Algorithm::Hdrrm, Algorithm::MdrrrR, Algorithm::Mdrc, Algorithm::Mdrms],
        |algo| {
            vec![
                Request::minimize(5).algo(algo).budget(budget()),
                Request::represent(4).algo(algo).budget(budget()),
            ]
        },
    );
    // MDRRR separately on a tiny instance (LP cost per feasibility check).
    let data = independent(13, 3, 12);
    assert_parity(&data, &[Algorithm::Mdrrr], |algo| {
        vec![
            Request::minimize(4).algo(algo).budget(budget()),
            Request::represent(3).algo(algo).budget(budget()),
        ]
    });
}

#[test]
fn one_shot_engine_runs_are_bit_identical_across_thread_counts() {
    // The ctx-carrying one-shot path (Engine::run) — not just sessions.
    let data = independent(120, 2, 13);
    let space = FullSpace::new(2);
    let sequential = Engine::new().with_exec(ExecPolicy::sequential());
    for request in [
        Request::minimize(3),
        Request::minimize(6).algo(Algorithm::TwoDRrr),
        Request::represent(4).budget(budget()),
        Request::minimize(5).algo(Algorithm::Mdrms).budget(budget()),
    ] {
        let baseline = sequential.run(&data, &space, &request).unwrap();
        for threads in [2usize, 7] {
            let engine = Engine::new().with_exec(ExecPolicy::threads(threads));
            assert_eq!(
                engine.run(&data, &space, &request).unwrap(),
                baseline,
                "{threads} threads, {request:?}"
            );
        }
    }
}

#[test]
fn capability_errors_are_identical_across_thread_counts() {
    // A 2D-only solver on 3D data must fail with the same typed error at
    // any parallelism (failures are part of the parity contract).
    let data = independent(10, 3, 14);
    for threads in [1usize, 2, 7] {
        let session = Session::new(data.clone()).exec(ExecPolicy::threads(threads));
        let err = session.run(&Request::minimize(1).algo(Algorithm::TwoDRrm)).unwrap_err();
        assert!(matches!(err, RrmError::Unsupported(_)), "{threads} threads: {err}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `par_map_reduce` equals the sequential left fold for arbitrary
    /// items, chunk sizes and thread counts — including non-associative
    /// folds (saturating-sub chains are order sensitive).
    #[test]
    fn par_map_reduce_equals_sequential_fold(
        items in proptest::collection::vec(0u64..1000, 0..200),
        chunk_size in 1usize..40,
        threads in 1usize..9,
    ) {
        let expected = items
            .chunks(chunk_size)
            .map(|c| c.iter().copied().fold(0u64, |a, b| a.wrapping_mul(31) ^ b))
            .reduce(|a, b| a.saturating_sub(b).rotate_left(7) ^ b);
        let got = rrm_par::par_map_reduce(
            &items,
            chunk_size,
            Parallelism::fixed(threads),
            |_, c| c.iter().copied().fold(0u64, |a, b| a.wrapping_mul(31) ^ b),
            |a, b| a.saturating_sub(b).rotate_left(7) ^ b,
        );
        prop_assert_eq!(got, expected);
    }

    /// Floating-point sums — the classic non-associative reduction — are
    /// bit-identical at any thread count under a fixed chunk size.
    #[test]
    fn float_sums_are_bit_identical(
        items in proptest::collection::vec(-1.0e6f64..1.0e6, 1..300),
        chunk_size in 1usize..50,
    ) {
        let reference = rrm_par::par_map_reduce(
            &items,
            chunk_size,
            Parallelism::Sequential,
            |_, c| c.iter().sum::<f64>(),
            |a, b| a + b,
        ).unwrap();
        for threads in [2usize, 3, 8] {
            let got = rrm_par::par_map_reduce(
                &items,
                chunk_size,
                Parallelism::fixed(threads),
                |_, c| c.iter().sum::<f64>(),
                |a, b| a + b,
            ).unwrap();
            prop_assert_eq!(got.to_bits(), reference.to_bits());
        }
    }
}
