//! The scoring-kernel determinism contract, enforced end to end: the
//! cache-blocked SoA kernel must be **bit-identical** to the row-major
//! scalar reference for every `n`, `d`, tile geometry and [`Parallelism`]
//! setting (proptest), including the shapes the blocking logic finds
//! awkward — datasets smaller than one tile and dimensions outside the
//! specialized `2..=8` range (unit tests).

use proptest::prelude::*;
use rrm_core::kernel::{self, ScoreScratch};
use rrm_core::{rank, utility, Dataset, Parallelism};
use rrm_hd::common::{batch_top1_scores, batch_topk};

/// Row-major scalar reference: the pre-kernel hot loop, kept here so the
/// kernel is always measured against an implementation that never touches
/// the SoA mirror.
fn naive_scores(data: &Dataset, u: &[f64]) -> Vec<f64> {
    data.rows().map(|row| utility::dot(u, row)).collect()
}

/// Strategy: dataset dimensions spanning the generic fallback (1, 9..=10)
/// and every specialized dimension (2..=8), with n crossing the default
/// tuple-tile boundary in the interesting ways.
fn workload() -> impl Strategy<Value = (Dataset, Vec<Vec<f64>>)> {
    (1usize..=10, 1usize..2500, 1usize..24).prop_flat_map(|(d, n, dir_count)| {
        (
            proptest::collection::vec(0u32..100_000, n * d),
            proptest::collection::vec(proptest::collection::vec(1u32..10_000, d), dir_count),
        )
            .prop_map(move |(values, dirs)| {
                let values: Vec<f64> = values.into_iter().map(|v| v as f64 / 1e4).collect();
                let dirs: Vec<Vec<f64>> = dirs
                    .into_iter()
                    .map(|u| u.into_iter().map(|v| v as f64 / 1e4).collect())
                    .collect();
                (Dataset::from_flat(d, values).unwrap(), dirs)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked scoring == scalar reference, bit for bit, at any tile
    /// geometry — including degenerate 1×1 tiles and tiles far larger
    /// than the dataset.
    #[test]
    fn blocked_scores_bit_identical_at_any_tile_size(
        (data, dirs) in workload(),
        dir_tile in 1usize..=12,
        tuple_tile_exp in 0u32..=12,
    ) {
        let tuple_tile = 1usize << tuple_tile_exp; // 1 .. 4096
        let mut scratch = ScoreScratch::new();
        let mut blocked: Vec<(usize, Vec<f64>)> = Vec::new();
        kernel::for_each_scores_tiled(
            data.soa(), &dirs, dir_tile, tuple_tile, &mut scratch,
            |di, scores| blocked.push((di, scores.to_vec())),
        );
        prop_assert_eq!(blocked.len(), dirs.len());
        for (slot, (di, scores)) in blocked.iter().enumerate() {
            prop_assert_eq!(slot, *di, "directions must be consumed in order");
            let reference = naive_scores(&data, &dirs[*di]);
            prop_assert_eq!(scores.len(), reference.len());
            for (i, (a, b)) in scores.iter().zip(&reference).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "n={} d={} tiles={}x{} dir={} tuple={}",
                    data.n(), data.dim(), dir_tile, tuple_tile, di, i
                );
            }
        }
    }

    /// The kernel-backed batch entry points agree with per-direction
    /// scalar reference computations at every Parallelism setting.
    #[test]
    fn batch_paths_bit_identical_at_any_parallelism((data, dirs) in workload()) {
        prop_assume!(!dirs.is_empty());
        let set: Vec<u32> = (0..data.n() as u32).step_by(7).collect();
        let expected_rr: Vec<usize> = dirs
            .iter()
            .map(|u| rank::rank_regret_from_scores(&naive_scores(&data, u), &set))
            .collect();
        let expected_max = expected_rr.iter().copied().max();
        let expected_top1: Vec<f64> = dirs
            .iter()
            .map(|u| naive_scores(&data, u).into_iter().fold(f64::NEG_INFINITY, f64::max))
            .collect();
        let k = (data.n() / 2).max(1);
        let expected_topk: Vec<Vec<u32>> =
            dirs.iter().map(|u| rank::top_k(&naive_scores(&data, u), k).indices).collect();
        for pol in [Parallelism::Sequential, Parallelism::Fixed(2), Parallelism::Fixed(7)] {
            prop_assert_eq!(
                &rank::batch_rank_regret(&data, &dirs, &set, pol), &expected_rr,
                "batch_rank_regret {:?}", pol
            );
            prop_assert_eq!(
                rank::max_rank_regret(&data, &dirs, &set, pol), expected_max,
                "max_rank_regret {:?}", pol
            );
            let top1 = batch_top1_scores(&data, &dirs, pol);
            prop_assert_eq!(top1.len(), expected_top1.len());
            for (a, b) in top1.iter().zip(&expected_top1) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "batch_top1 {:?}", pol);
            }
            prop_assert_eq!(
                &batch_topk(&data, &dirs, k, pol), &expected_topk,
                "batch_topk {:?}", pol
            );
        }
    }
}

#[test]
fn n_smaller_than_one_tile() {
    // 5 tuples << TUPLE_TILE: a single ragged tile must still match.
    let data = Dataset::from_rows(&[
        [0.9, 0.1, 0.3],
        [0.2, 0.8, 0.5],
        [0.4, 0.4, 0.9],
        [0.7, 0.2, 0.2],
        [0.1, 0.9, 0.6],
    ])
    .unwrap();
    let dirs: Vec<Vec<f64>> = vec![vec![0.5, 0.3, 0.2], vec![1.0, 0.0, 0.0]];
    let mut scratch = ScoreScratch::new();
    kernel::for_each_scores(data.soa(), &dirs, &mut scratch, |di, scores| {
        assert_eq!(scores, naive_scores(&data, &dirs[di]).as_slice());
    });
}

#[test]
fn dimension_outside_specialized_range_uses_same_summation_order() {
    // d = 1 (below) and d = 11 (above) hit the generic fallback; results
    // must still be bit-identical to the scalar j-ascending reference.
    for d in [1usize, 11] {
        let n = 1500; // crosses the tuple-tile boundary
        let values: Vec<f64> = (0..n * d).map(|i| ((i * 37 + 11) % 997) as f64 / 997.0).collect();
        let data = Dataset::from_flat(d, values).unwrap();
        let u: Vec<f64> = (0..d).map(|j| (j + 1) as f64 / (d as f64 * 3.0)).collect();
        let reference = naive_scores(&data, &u);
        let mut out = Vec::new();
        kernel::scores_into(data.soa(), &u, &mut out);
        assert_eq!(out.len(), reference.len(), "d={d}");
        for (a, b) in out.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits(), "d={d}");
        }
        // Fused reductions on the generic path too.
        let mut scratch = ScoreScratch::new();
        let max = kernel::max_score(data.soa(), &u, &mut scratch);
        let want = reference.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(max.to_bits(), want.to_bits(), "d={d}");
        let t = reference[n / 2];
        assert_eq!(
            kernel::count_above(data.soa(), &u, t, &mut scratch),
            reference.iter().filter(|&&s| s > t).count(),
            "d={d}"
        );
    }
}

#[test]
fn utilities_into_is_the_kernel_path() {
    // The public batch scoring API routes through the kernel; spot-check
    // it against the scalar reference on a tile-crossing dataset.
    let n = 3000;
    let values: Vec<f64> = (0..n * 4).map(|i| ((i * 53 + 7) % 1009) as f64 / 1009.0).collect();
    let data = Dataset::from_flat(4, values).unwrap();
    let u = [0.4, 0.1, 0.3, 0.2];
    let mut out = Vec::new();
    utility::utilities_into(&data, &u, &mut out);
    let reference = naive_scores(&data, &u);
    for (a, b) in out.iter().zip(&reference) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
