//! Ground-truth validation of 2DRRM (Theorem 4): on small instances the
//! dynamic program must match exhaustive search over all candidate
//! subsets, evaluated with the exact arrangement evaluator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rank_regret::{Dataset, FullSpace, WeakRankingSpace};
use rrm_2d::{rrm_2d, weight_interval, Rrm2dOptions};
use rrm_eval::exact_rank_regret_2d;
use rrm_skyline::restricted::u_skyline_2d;

/// Exhaustive RRM over subsets of the candidate set.
fn brute_force_optimum(data: &Dataset, r: usize, c0: f64, c1: f64) -> usize {
    let candidates = u_skyline_2d(data, c0, c1);
    let s = candidates.len();
    let r = r.min(s);
    let mut best = usize::MAX;
    // Enumerate subsets of size exactly min(r, s) — regret is monotone in
    // the subset, so larger sets are never worse.
    let mut subset: Vec<usize> = (0..r).collect();
    loop {
        let set: Vec<u32> = subset.iter().map(|&i| candidates[i]).collect();
        let (k, _) = exact_rank_regret_2d(data, &set, c0, c1);
        best = best.min(k);
        // Next combination.
        let mut i = r;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if subset[i] != i + s - r {
                subset[i] += 1;
                for j in i + 1..r {
                    subset[j] = subset[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[test]
fn dp_matches_brute_force_full_space() {
    let mut rng = StdRng::seed_from_u64(1001);
    for trial in 0..30 {
        let n = rng.random_range(4..25);
        let rows: Vec<[f64; 2]> =
            (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        for r in 1..=3 {
            let sol = rrm_2d(&data, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
            let dp = sol.certified_regret.unwrap();
            let brute = brute_force_optimum(&data, r, 0.0, 1.0);
            assert_eq!(dp, brute, "trial {trial} r={r}: rows {rows:?}");
            // The certificate must also equal the exact regret of the
            // returned set.
            let (actual, _) = exact_rank_regret_2d(&data, &sol.indices, 0.0, 1.0);
            assert_eq!(actual, dp, "trial {trial} r={r}: certificate mismatch");
        }
    }
}

#[test]
fn dp_matches_brute_force_restricted_space() {
    let mut rng = StdRng::seed_from_u64(2002);
    let space = WeakRankingSpace::new(2, 1);
    let (c0, c1) = weight_interval(&space).unwrap();
    for trial in 0..20 {
        let n = rng.random_range(4..20);
        let rows: Vec<[f64; 2]> =
            (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        for r in 1..=2 {
            let sol = rrm_2d(&data, r, &space, Rrm2dOptions::default()).unwrap();
            let dp = sol.certified_regret.unwrap();
            let brute = brute_force_optimum(&data, r, c0, c1);
            assert_eq!(dp, brute, "trial {trial} r={r}: rows {rows:?}");
        }
    }
}

#[test]
fn dp_matches_brute_force_on_narrow_interval() {
    let mut rng = StdRng::seed_from_u64(3003);
    for trial in 0..15 {
        let n = rng.random_range(4..18);
        let rows: Vec<[f64; 2]> =
            (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let a = rng.random_range(0.0..0.8);
        let b = a + rng.random_range(0.05..0.2);
        use rrm_2d::rrm_2d_on_interval;
        let sol = rrm_2d_on_interval(&data, 2, a, b, Rrm2dOptions::default()).unwrap();
        let brute = brute_force_optimum(&data, 2, a, b);
        assert_eq!(sol.certified_regret.unwrap(), brute, "trial {trial} [{a},{b}]");
    }
}

#[test]
fn skyline_restriction_loses_nothing() {
    // Theorem 3 end-to-end: brute force over ALL subsets (not just skyline
    // candidates) on tiny instances agrees with the DP.
    let mut rng = StdRng::seed_from_u64(4004);
    for trial in 0..20 {
        let n = rng.random_range(3..10usize);
        let rows: Vec<[f64; 2]> =
            (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        for r in 1..=2usize {
            let mut best = usize::MAX;
            // All subsets of size r over the whole dataset.
            if r == 1 {
                for i in 0..n as u32 {
                    best = best.min(exact_rank_regret_2d(&data, &[i], 0.0, 1.0).0);
                }
            } else {
                for i in 0..n as u32 {
                    for j in i + 1..n as u32 {
                        best = best.min(exact_rank_regret_2d(&data, &[i, j], 0.0, 1.0).0);
                    }
                }
            }
            let sol = rrm_2d(&data, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
            assert_eq!(sol.certified_regret.unwrap(), best, "trial {trial} r={r}");
        }
    }
}

#[test]
fn envelope_is_the_minimal_rank1_set() {
    // Two independent routes to "the smallest set with rank-regret 1":
    // the upper envelope of the dual lines, and the exact RRR solver at
    // threshold 1 (binary search over the exact DP). They must agree in
    // size, and the envelope achieves regret 1.
    use rrm_2d::rrr_exact_2d;
    use rrm_geom::dual::DualLine;
    use rrm_geom::envelope::envelope_lines;
    let mut rng = StdRng::seed_from_u64(5005);
    for trial in 0..15 {
        let n = rng.random_range(3..60);
        let rows: Vec<[f64; 2]> =
            (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let lines = DualLine::from_dataset(&data);
        let envelope = envelope_lines(&lines, 0.0, 1.0);
        let (k, _) = exact_rank_regret_2d(&data, &envelope, 0.0, 1.0);
        assert_eq!(k, 1, "trial {trial}: envelope must have rank-regret 1");
        let rrr = rrr_exact_2d(&data, 1, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(rrr.size(), envelope.len(), "trial {trial}: minimality mismatch");
    }
}
