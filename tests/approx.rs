//! Contract tests for the sampled-ε approximate tier (ISSUE 10): seeded
//! coverage trials across the scenario matrix's workload shapes — the
//! `(ε, δ)` statement checked as an empirical pass rate, not taken on
//! faith — plus bit-identity of sampled answers at 1, 2, and 7 threads
//! through both the `Engine` and `Session` paths, and the fidelity
//! routing that makes `Request::approx` answer as `Sampled` everywhere.

use rank_regret::prelude::*;
use rank_regret::rrm_core::approx::{sample_directions, solve_rrm_sampled_with};
use rank_regret::rrm_core::kernel;
use rank_regret::rrm_data::scenario::{matrix, Region};
use rank_regret::{ApproxSpec, Fidelity, TerminatedBy};

/// Worst rank of `indices` over an independent direction sample — the
/// audit the certificate's `(ε, δ)` statement is checked against.
fn audited_violation_fraction(
    data: &Dataset,
    space: &dyn UtilitySpace,
    indices: &[u32],
    k_hat: usize,
    eval_dirs: usize,
    eval_seed: u64,
) -> f64 {
    let dirs = sample_directions(space, eval_dirs, eval_seed);
    let soa = data.soa();
    let mut scores = Vec::new();
    let mut violations = 0usize;
    for u in &dirs {
        kernel::scores_into(soa, u, &mut scores);
        let best = indices.iter().map(|&i| scores[i as usize]).fold(f64::NEG_INFINITY, f64::max);
        let rank = 1 + scores.iter().filter(|&&s| s > best).count();
        if rank > k_hat {
            violations += 1;
        }
    }
    violations as f64 / dirs.len() as f64
}

#[test]
fn coverage_holds_at_rate_one_minus_delta_across_scenario_shapes() {
    // Every workload shape at d = 4 under the full space: repeated sampled
    // solves under fresh seeds, each certificate audited on an independent
    // direction sample. A trial passes when the audited violation fraction
    // stays within ε; the pass rate must reach 1 − δ per shape.
    let spec = ApproxSpec { eps: 0.15, delta: 0.1 };
    let (n, r, trials, eval_dirs) = (300usize, 4usize, 12usize, 600usize);
    for cell in matrix().into_iter().filter(|c| c.d == 4 && c.region == Region::Full) {
        let data = cell.dataset(n);
        let space = cell.space();
        let mut passes = 0usize;
        for t in 0..trials {
            let seed = 0xBEEF_0000 + cell.seed + 31 * t as u64;
            let sol = solve_rrm_sampled_with(
                &data,
                r,
                space.as_ref(),
                spec,
                None,
                seed,
                ExecPolicy::default(),
            )
            .unwrap();
            let k_hat = sol.certified_regret.expect("sampled tier certifies over its sample");
            let frac = audited_violation_fraction(
                &data,
                space.as_ref(),
                &sol.indices,
                k_hat,
                eval_dirs,
                seed ^ 0x0DD5_EED5,
            );
            if frac <= spec.eps {
                passes += 1;
            }
        }
        let rate = passes as f64 / trials as f64;
        assert!(
            rate >= 1.0 - spec.delta,
            "{}: coverage {rate:.3} below 1 - delta ({passes}/{trials} within eps)",
            cell.name()
        );
    }
}

#[test]
fn sampled_answers_are_bit_identical_at_1_2_and_7_threads_via_engine() {
    // Parallelism is a pure speed knob for the sampled tier: the seeded
    // direction draw, ordered chunk merge, and strict-total-order greedy
    // cover make the answer a function of the request alone.
    for cell in matrix().into_iter().filter(|c| c.d == 4) {
        let data = cell.dataset(400);
        let space = cell.space();
        let request = Request::minimize(5).approx(0.1, 0.05);
        let baseline = Engine::new()
            .with_exec(ExecPolicy::threads(1))
            .run(&data, space.as_ref(), &request)
            .unwrap();
        assert!(matches!(baseline.terminated_by, TerminatedBy::Sampled { .. }));
        for threads in [2usize, 7] {
            let engine = Engine::new().with_exec(ExecPolicy::threads(threads));
            let sol = engine.run(&data, space.as_ref(), &request).unwrap();
            assert_eq!(sol, baseline, "{}, {threads} threads", cell.name());
        }
    }
}

#[test]
fn sampled_answers_are_bit_identical_at_1_2_and_7_threads_via_session() {
    let cell = matrix()
        .into_iter()
        .find(|c| c.d == 4 && c.region == Region::Full)
        .expect("matrix has d=4 full-space cells");
    let data = cell.dataset(400);
    let request = Request::minimize(5).approx(0.1, 0.05);
    let baseline = Session::new(data.clone()).exec(ExecPolicy::threads(1)).run(&request).unwrap();
    for threads in [2usize, 7] {
        let session = Session::new(data.clone()).exec(ExecPolicy::threads(threads));
        let got = session.run(&request).unwrap();
        assert_eq!(got.solution, baseline.solution, "{threads} threads");
    }
}

#[test]
fn approx_requests_answer_at_sampled_fidelity_through_engine_and_session() {
    let cell = matrix()
        .into_iter()
        .find(|c| c.d == 4 && c.region == Region::Full)
        .expect("matrix has d=4 full-space cells");
    let data = cell.dataset(300);
    let space = cell.space();
    let request = Request::minimize(4).approx(0.1, 0.05);
    assert_eq!(request.fidelity, Fidelity::Approx { eps: 0.1, delta: 0.05 });

    let via_engine = Engine::new().run(&data, space.as_ref(), &request).unwrap();
    let via_session = Session::new(data.clone()).run(&request).unwrap();
    for sol in [&via_engine, &via_session.solution] {
        assert_eq!(sol.algorithm, Algorithm::Sampled);
        match sol.terminated_by {
            TerminatedBy::Sampled { eps, delta, directions } => {
                assert_eq!((eps, delta), (0.1, 0.05));
                assert!(directions >= 1, "confidence must state the sample size");
            }
            ref other => panic!("expected Sampled termination, got {other:?}"),
        }
        // A fidelity statement is not an early stop: sampled answers are
        // complete answers under a weaker (stated) guarantee.
        assert!(!sol.terminated_by.is_early_stop());
    }
    // Same seed, same request: the two paths agree bit for bit.
    assert_eq!(via_engine, via_session.solution);
}

#[test]
fn weak_ranking_cells_are_served_and_certified_inside_the_region() {
    // The constrained-region cells of the matrix route through the same
    // sampled tier; the certificate is over directions drawn from the
    // restricted space, so the audit must sample that space too.
    for cell in matrix().into_iter().filter(|c| matches!(c.region, Region::WeakRanking(_))) {
        let data = cell.dataset(250);
        let space = cell.space();
        let sol = Engine::new()
            .run(&data, space.as_ref(), &Request::minimize(4).approx(0.15, 0.1))
            .unwrap();
        let k_hat = sol.certified_regret.expect("certifies in restricted regions too");
        let frac = audited_violation_fraction(
            &data,
            space.as_ref(),
            &sol.indices,
            k_hat,
            400,
            cell.seed ^ 0xFEED_F00D,
        );
        assert!(
            frac <= 0.15 + 0.1,
            "{}: audited violation fraction {frac:.3} far outside the stated eps",
            cell.name()
        );
    }
}
