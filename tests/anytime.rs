//! Contract tests for the anytime bound-and-prune machinery of the hard
//! HD solvers (ISSUE 8): deterministic counter cutoffs are bit-identical
//! at any thread count, the certified gap shrinks monotonically as the
//! budget grows, a generous counter budget reproduces the uncut answer
//! exactly (gap 0), and a served deadline that expires mid-solve comes
//! back as a `"partial": true` answer with a certified gap instead of a
//! `deadline_exceeded` error.

use rank_regret::prelude::*;
use rank_regret::rrm_data::synthetic::{anticorrelated, independent};
use rank_regret::TerminatedBy;
use rrm_serve::{Client, Json, ServerConfig, ServerHandle, SyntheticKind, TenantSpec};

/// A counter budget so tight (one probe) that no threshold search can
/// converge inside it: every cuttable solver must stop early with its
/// incumbent, deterministically.
fn one_probe() -> Budget {
    Budget {
        samples: Some(400),
        max_enumerations: Some(1),
        max_lp_calls: Some(1),
        ..Budget::UNLIMITED
    }
}

fn counter_budget(probes: usize) -> Budget {
    Budget {
        samples: Some(400),
        max_enumerations: Some(probes),
        max_lp_calls: Some(probes),
        ..Budget::UNLIMITED
    }
}

const CUTTABLE: [Algorithm; 4] =
    [Algorithm::Hdrrm, Algorithm::Mdrrr, Algorithm::MdrrrR, Algorithm::Mdrc];

#[test]
fn counter_cut_answers_are_bit_identical_at_1_2_and_7_threads() {
    // The counter cutoff depends only on probe counts, never wall clock,
    // so a cut-short answer obeys the same determinism contract as a
    // full solve: bit-identical Solutions (indices, bounds, gap,
    // termination reason — Solution's PartialEq covers them all) at any
    // parallelism. MDRRR runs on a smaller instance to bound LP cost.
    for (algo, data) in [
        (Algorithm::Hdrrm, anticorrelated(400, 3, 21)),
        (Algorithm::MdrrrR, anticorrelated(400, 3, 21)),
        (Algorithm::Mdrc, anticorrelated(400, 3, 21)),
        (Algorithm::Mdrrr, independent(13, 3, 21)),
    ] {
        let sequential = Session::new(data.clone()).exec(ExecPolicy::sequential());
        let request = Request::minimize(5).algo(algo).budget(one_probe());
        let baseline = sequential.run(&request).expect("cut solve succeeds").solution;
        assert_eq!(
            baseline.terminated_by,
            TerminatedBy::Counter,
            "{algo}: one probe must not be enough to complete"
        );
        // MDRC's probes say nothing about cell interiors, so it is the
        // one cuttable solver that attaches no rank bounds (mdrc.rs).
        if algo != Algorithm::Mdrc {
            assert!(baseline.bounds.is_some(), "{algo}: cut answers certify bounds");
        }
        for threads in [2usize, 7] {
            let session = Session::new(data.clone()).exec(ExecPolicy::threads(threads));
            let got = session.run(&request).expect("cut solve succeeds").solution;
            assert_eq!(got, baseline, "{algo} at {threads} threads");
        }
    }
    // The table above is exactly the cuttable set.
    assert!(CUTTABLE.iter().all(|a| a.is_cuttable()));
}

#[test]
fn gap_shrinks_monotonically_as_the_counter_budget_grows() {
    let data = anticorrelated(400, 3, 22);
    let session = Session::new(data).exec(ExecPolicy::sequential());
    let mut last_gap = f64::INFINITY;
    let mut completed = false;
    for probes in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let request = Request::minimize(5).algo(Algorithm::Hdrrm).budget(counter_budget(probes));
        let solution = session.run(&request).expect("solve succeeds").solution;
        let gap = solution.gap().expect("every anytime answer reports a gap");
        assert!(
            gap <= last_gap + 1e-12,
            "gap must not grow with budget: {gap} after {last_gap} at {probes} probes"
        );
        last_gap = gap;
        if solution.terminated_by == TerminatedBy::Completed {
            assert_eq!(gap, 0.0, "a completed search certifies gap 0");
            completed = true;
            break;
        }
    }
    assert!(completed, "128 probes must be enough to close the gap on n=400");
}

#[test]
fn a_generous_counter_budget_reproduces_the_uncut_answer_exactly() {
    let data = anticorrelated(300, 3, 23);
    let session = Session::new(data).exec(ExecPolicy::sequential());
    for algo in [Algorithm::Hdrrm, Algorithm::MdrrrR] {
        let uncut = session
            .run(
                &Request::minimize(4)
                    .algo(algo)
                    .budget(Budget { samples: Some(400), ..Budget::UNLIMITED }),
            )
            .expect("uncut solve")
            .solution;
        assert_eq!(uncut.terminated_by, TerminatedBy::Completed);
        let generous = session
            .run(&Request::minimize(4).algo(algo).budget(counter_budget(1_000_000)))
            .expect("budgeted solve")
            .solution;
        assert_eq!(generous.terminated_by, TerminatedBy::Completed, "{algo}");
        assert_eq!(generous.gap(), Some(0.0), "{algo}");
        assert_eq!(generous, uncut, "{algo}: a budget that never binds must change nothing");
    }
}

#[test]
fn a_deadline_expiring_mid_solve_is_served_as_a_partial_answer() {
    // Unlike the zero-deadline dispatch test in serve_protocol.rs, this
    // exercises the in-solve TimeBudget cutoff that effective_request
    // attaches for cuttable algorithms: the request is *not* aged out in
    // the queue, the search itself runs out of wall clock. n=1500 keeps
    // the HDRRM search far beyond a 10 ms budget, so the cutoff fires
    // mid-search and the incumbent comes back with a certified gap.
    let config = ServerConfig {
        workers: 1,
        scores_per_ms_override: Some(50_000.0),
        ..ServerConfig::default()
    };
    let spec = TenantSpec::synthetic("big", SyntheticKind::Independent, 1500, 3, 9);
    let server = ServerHandle::start(config, &[spec]).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let resp = client
        .call(r#"{"op":"minimize","tenant":"big","param":4,"deadline_ms":10,"id":1}"#)
        .expect("call");
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"), "{resp:?}");
    assert_eq!(resp.get("partial"), Some(&Json::Bool(true)), "{resp:?}");
    assert_eq!(resp.get("size").and_then(Json::as_usize), Some(4), "incumbent set is returned");
    let diagnostics = resp.get("diagnostics").expect("diagnostics attached");
    let reason = diagnostics.get("terminated_by").and_then(Json::as_str).expect("reason");
    assert!(reason == "time" || reason == "counter", "cut by budget, got {reason}");
    let gap = diagnostics.get("gap").and_then(Json::as_f64).expect("gap reported");
    assert!((0.0..=1.0).contains(&gap), "gap {gap} out of range");

    let stats = server.stats_json();
    let tenant = stats.get("tenants").and_then(|t| t.get("big")).expect("tenant stats");
    assert_eq!(tenant.get("completed").and_then(Json::as_usize), Some(1));
    assert_eq!(tenant.get("partial_answers").and_then(Json::as_usize), Some(1));
    assert_eq!(tenant.get("deadline_exceeded").and_then(Json::as_usize), Some(0));
    server.shutdown();
}
