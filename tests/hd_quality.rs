//! Cross-algorithm quality checks in HD, mirroring the qualitative
//! findings of the paper's Figures 13–21: HDRRM certifies its regret and
//! beats the no-guarantee baselines; MDRMS optimizes the wrong objective.

use rank_regret::{Dataset, FullSpace, WeakRankingSpace};
use rrm_data::synthetic::{anticorrelated, independent};
use rrm_eval::{estimate_rank_regret, estimate_regret_ratio};
use rrm_hd::{
    hdrrm, mdrc, mdrms, mdrrr_r_rrm, HdrrmOptions, MdrcOptions, MdrmsOptions, MdrrrROptions,
};

const SAMPLES: usize = 30_000;

fn measured_regret(data: &Dataset, set: &[u32], seed: u64) -> usize {
    estimate_rank_regret(data, set, &FullSpace::new(data.dim()), SAMPLES, seed).max_rank
}

#[test]
fn hdrrm_beats_heuristics_on_anticorrelated() {
    // The paper's headline quality ordering: HDRRM lowest rank-regret,
    // MDRC / MDRMS worst. Randomness means we assert the robust version:
    // HDRRM is no worse than either heuristic.
    let data = anticorrelated(2_000, 4, 404);
    let r = 10;
    // Paper-grade sample budget (the Theorem 10 formula, ~36K directions
    // here): a starved discretization loses the quality edge the figures
    // show.
    let h = hdrrm(&data, r, &FullSpace::new(4), HdrrmOptions::default()).unwrap();
    let c = mdrc(&data, r, &FullSpace::new(4), MdrcOptions::default()).unwrap();
    let m = mdrms(&data, r, &FullSpace::new(4), MdrmsOptions::default()).unwrap();

    let kh = measured_regret(&data, &h.indices, 1);
    let kc = measured_regret(&data, &c.indices, 1);
    let km = measured_regret(&data, &m.indices, 1);
    assert!(kh <= kc, "HDRRM {kh} vs MDRC {kc}");
    assert!(kh <= km, "HDRRM {kh} vs MDRMS {km}");
    // And the losers lose big on this distribution (the figures show
    // 1–2 orders of magnitude; require a decisive factor).
    assert!(kc.max(km) >= 3 * kh.max(1), "HDRRM {kh}, MDRC {kc}, MDRMS {km}");
}

#[test]
fn hdrrm_certificate_close_to_measured() {
    // Figures 13–28 plot the certified k (red cross) against the measured
    // regret over L (red squares) and find "the two lines basically fit".
    let data = independent(3_000, 4, 405);
    let sol = hdrrm(
        &data,
        10,
        &FullSpace::new(4),
        HdrrmOptions { m_override: Some(4_000), ..Default::default() },
    )
    .unwrap();
    let certified = sol.certified_regret.unwrap();
    let measured = measured_regret(&data, &sol.indices, 2);
    // The discretization can miss directions (measured may exceed
    // certified) and the estimator is a lower bound (measured may fall
    // short); they must agree within a small factor.
    assert!(
        measured <= 3 * certified.max(3) && certified <= 3 * measured.max(3),
        "certified {certified} vs measured {measured}"
    );
}

#[test]
fn mdrms_good_ratio_bad_rank() {
    // Section II: minimizing regret-ratio does not minimize rank-regret.
    let data = anticorrelated(2_000, 4, 406);
    let r = 10;
    let rms =
        mdrms(&data, r, &FullSpace::new(4), MdrmsOptions { samples: 8_000, ..Default::default() })
            .unwrap();
    let h = hdrrm(&data, r, &FullSpace::new(4), HdrrmOptions::default()).unwrap();
    let ratio_rms =
        estimate_regret_ratio(&data, &rms.indices, &FullSpace::new(4), SAMPLES, 3).max_ratio;
    let rank_rms = measured_regret(&data, &rms.indices, 4);
    let rank_h = measured_regret(&data, &h.indices, 4);
    // MDRMS does its own job adequately (a competitive worst ratio)...
    assert!(ratio_rms <= 0.25, "greedy RMS ratio unexpectedly weak: {ratio_rms}");
    // ...but loses on the rank objective, which is the paper's point.
    assert!(rank_h <= rank_rms, "HDRRM rank {rank_h} vs RMS {rank_rms}");
}

#[test]
fn rrrm_restriction_improves_quality() {
    // Figures 25–26: with U restricted (weak ranking, c = 2), outputs
    // serve U's users better than the full-space solution does.
    let data = anticorrelated(3_000, 4, 407);
    let space = WeakRankingSpace::new(4, 2);
    let r = 10;
    let restricted =
        hdrrm(&data, r, &space, HdrrmOptions { m_override: Some(2_500), ..Default::default() })
            .unwrap();
    let full = hdrrm(
        &data,
        r,
        &FullSpace::new(4),
        HdrrmOptions { m_override: Some(2_500), ..Default::default() },
    )
    .unwrap();
    let k_restricted =
        estimate_rank_regret(&data, &restricted.indices, &space, SAMPLES, 5).max_rank;
    let k_full_on_u = estimate_rank_regret(&data, &full.indices, &space, SAMPLES, 5).max_rank;
    assert!(
        k_restricted <= k_full_on_u,
        "restricted {k_restricted} vs full-space solution on U {k_full_on_u}"
    );
}

#[test]
fn mdrrr_r_quality_between_hdrrm_and_heuristics() {
    // MDRRRr with a healthy sample budget lands near HDRRM's quality but
    // without a certificate; with a starved budget it degrades.
    let data = anticorrelated(2_000, 3, 408);
    let r = 8;
    let h = hdrrm(
        &data,
        r,
        &FullSpace::new(3),
        HdrrmOptions { m_override: Some(2_000), ..Default::default() },
    )
    .unwrap();
    let healthy = mdrrr_r_rrm(
        &data,
        r,
        &FullSpace::new(3),
        MdrrrROptions { samples: 8_000, seed: 9, ..Default::default() },
    )
    .unwrap();
    let starved = mdrrr_r_rrm(
        &data,
        r,
        &FullSpace::new(3),
        MdrrrROptions { samples: 10, seed: 9, ..Default::default() },
    )
    .unwrap();
    let kh = measured_regret(&data, &h.indices, 6);
    let k_healthy = measured_regret(&data, &healthy.indices, 6);
    let k_starved = measured_regret(&data, &starved.indices, 6);
    assert!(k_healthy <= 4 * kh.max(2), "healthy MDRRRr {k_healthy} vs HDRRM {kh}");
    assert!(k_starved >= k_healthy, "starving samples should not help");
}
