//! The engine layer: one registry of [`Solver`]s, one dispatch path, and
//! the [`Session`] that binds it all to a dataset.
//!
//! Every way of running a rank-regret query — the [`minimize`]/
//! [`represent`] builders, the CLI, the bench harness — expresses the
//! query as a typed [`Request`] and runs it either one-shot
//! ([`Engine::run`]) or through a [`Session`], which prepares each
//! algorithm's dataset-dependent state once ([`Solver::prepare`]) and then
//! answers arbitrarily many requests cheaply ([`Session::run`],
//! [`Session::run_batch`]). The engine owns a solver per [`Algorithm`]
//! variant (indexed by discriminant — lookups are O(1)), resolves the
//! `Auto` policy (2DRRM when `d = 2`, HDRRM otherwise), checks
//! capabilities once, and delegates through the trait. Adding an algorithm
//! means implementing [`Solver`] and registering it here; nothing else in
//! the stack changes.
//!
//! [`minimize`]: crate::minimize
//! [`represent`]: crate::represent

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use rrm_core::{
    apply_updates, approx, Algorithm, ApproxSpec, Bounds, BruteForceOptions, BruteForceSolver,
    Budget, Cutoff, Dataset, ExecPolicy, Fidelity, FullSpace, PreparedSolver, RrmError,
    SampledOptions, SampledSolver, Solution, Solver, SolverCtx, TerminatedBy, UpdateOp,
    UtilitySpace,
};

use rrm_2d::{Rrm2dOptions, TwoDRrmSolver, TwoDRrrSolver};
use rrm_hd::{
    HdrrmOptions, HdrrmSolver, KsetLimits, MdrcOptions, MdrcSolver, MdrmsOptions, MdrmsSolver,
    MdrrrROptions, MdrrrRSolver, MdrrrSolver,
};

/// Which query a [`Request`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// RRM / RRRM: best set of at most `r` tuples.
    Minimize,
    /// RRR: smallest set with rank-regret at most `k`.
    Represent,
}

/// The task half of a [`Request`]: the constructor ties the parameter to
/// its problem direction, so "a size used as a threshold" (the old
/// `Query::param_from` footgun) is unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    Minimize { r: usize },
    Represent { k: usize },
}

/// A typed rank-regret query: the task (with its parameter bound at
/// construction), plus everything that shapes the answer — algorithm
/// selection, resource budget, answer [`Fidelity`], an optional
/// per-request utility subspace, and an optional execution policy. One
/// fluent builder replaces the former scatter of knobs (`Query::threads`,
/// engine-wide `Tuning.exec`, separately-plumbed cutoffs): Engine,
/// Session, the serve wire protocol and the CLI all construct this same
/// object.
///
/// ```
/// use std::time::Duration;
/// use rank_regret::{Request, Algorithm, Budget, Cutoff, Fidelity};
///
/// let q = Request::minimize(5).algo(Algorithm::Hdrrm).budget(Budget::with_samples(500));
/// assert_eq!(q.param(), 5);
///
/// // The sampled-ε approximate tier, with an in-solve time cutoff and a
/// // pinned thread count, in one expression:
/// let q = Request::minimize(5)
///     .approx(0.05, 0.05)
///     .cutoff(Cutoff::TimeBudget(Duration::from_millis(250)))
///     .threads(4);
/// assert_eq!(q.fidelity, Fidelity::Approx { eps: 0.05, delta: 0.05 });
/// ```
#[derive(Clone)]
pub struct Request {
    task: Task,
    /// Algorithm selection policy (default [`AlgoChoice::Auto`]).
    pub choice: AlgoChoice,
    /// Cross-algorithm resource budget (default unlimited).
    pub budget: Budget,
    /// Requested answer fidelity (default [`Fidelity::Exact`]).
    pub fidelity: Fidelity,
    /// Per-request utility subspace (RRM becomes RRRM); `None` runs over
    /// the engine/session's ambient space.
    pub space: Option<Arc<dyn UtilitySpace>>,
    /// Per-request execution policy override; `None` inherits the
    /// engine's. Purely a speed knob — answers are bit-identical.
    pub exec: Option<ExecPolicy>,
}

impl Request {
    /// RRM / RRRM: best set of at most `r` tuples.
    pub fn minimize(r: usize) -> Self {
        Self::from_task(Task::Minimize { r })
    }

    /// RRR: smallest set with rank-regret at most `k`.
    pub fn represent(k: usize) -> Self {
        Self::from_task(Task::Represent { k })
    }

    fn from_task(task: Task) -> Self {
        Self {
            task,
            choice: AlgoChoice::Auto,
            budget: Budget::UNLIMITED,
            fidelity: Fidelity::Exact,
            space: None,
            exec: None,
        }
    }

    /// Select a specific algorithm.
    pub fn algo(mut self, algorithm: Algorithm) -> Self {
        self.choice = AlgoChoice::Fixed(algorithm);
        self
    }

    /// Select by policy.
    pub fn choice(mut self, choice: AlgoChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Attach a resource budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Request the sampled-ε approximate tier: the answer carries a
    /// Hoeffding confidence statement — with probability at least
    /// `1 - delta` over the sampled directions, the reported regret is
    /// exceeded on at most an `eps`-fraction of the utility space.
    /// Under [`AlgoChoice::Auto`] this routes to [`Algorithm::Sampled`];
    /// with a fixed exact algorithm it solves on an `approx::reduce`
    /// coreset and re-certifies the answer by sampling.
    pub fn approx(mut self, eps: f64, delta: f64) -> Self {
        self.fidelity = Fidelity::Approx { eps, delta };
        self
    }

    /// Set the answer fidelity explicitly (builder form of the field).
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Attach an in-solve cutoff (time budget, gap target, counter
    /// budget) — shorthand for setting `budget.cutoff`.
    pub fn cutoff(mut self, cutoff: Cutoff) -> Self {
        self.budget.cutoff = cutoff;
        self
    }

    /// Override the direction-sample count used by randomized solvers —
    /// shorthand for setting `budget.samples`.
    pub fn samples(mut self, n: usize) -> Self {
        self.budget.samples = Some(n);
        self
    }

    /// Restrict this request to a utility subspace (RRM becomes RRRM)
    /// without rebinding the engine or session it runs on.
    pub fn within(mut self, space: impl UtilitySpace + 'static) -> Self {
        self.space = Some(Arc::from(space.clone_box()));
        self
    }

    /// [`Request::within`] for an already-shared space.
    pub fn within_arc(mut self, space: Arc<dyn UtilitySpace>) -> Self {
        self.space = Some(space);
        self
    }

    /// Thread budget for this request's solver kernels (`0` = all
    /// cores). Purely a speed knob: answers are bit-identical.
    pub fn threads(self, n: usize) -> Self {
        self.exec(ExecPolicy::threads(n))
    }

    /// Full per-request execution policy (see [`ExecPolicy`]).
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Which problem direction this request asks for.
    pub fn kind(&self) -> TaskKind {
        match self.task {
            Task::Minimize { .. } => TaskKind::Minimize,
            Task::Represent { .. } => TaskKind::Represent,
        }
    }

    /// The task parameter: `r` for minimize, `k` for represent.
    pub fn param(&self) -> usize {
        match self.task {
            Task::Minimize { r } => r,
            Task::Represent { k } => k,
        }
    }

    /// The budget this request actually runs under: the `(ε, δ)` spec
    /// from [`Request::approx`] injected into `budget.approx` (an
    /// explicit [`Budget::with_approx`] wins if both are set).
    pub fn effective_budget(&self) -> Budget {
        let mut budget = self.budget.clone();
        if budget.approx.is_none() {
            budget.approx = self.fidelity.spec();
        }
        budget
    }

    /// The algorithm this request resolves to on `d`-dimensional data:
    /// a fixed choice wins; `Auto` follows [`Engine::auto_policy`] for
    /// exact fidelity and the sampled tier for approximate fidelity.
    pub fn resolved_algorithm(&self, d: usize) -> Algorithm {
        match (self.choice, self.fidelity) {
            (AlgoChoice::Fixed(a), _) => a,
            (AlgoChoice::Auto, Fidelity::Exact) => Engine::auto_policy(d),
            (AlgoChoice::Auto, Fidelity::Approx { .. }) => Algorithm::Sampled,
        }
    }
}

/// Spaces don't implement `Debug`; show the request's space by label.
impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("task", &self.task)
            .field("choice", &self.choice)
            .field("budget", &self.budget)
            .field("fidelity", &self.fidelity)
            .field("space", &self.space.as_ref().map(|s| s.label()))
            .field("exec", &self.exec)
            .finish()
    }
}

/// Equality compares the space by its [`UtilitySpace::label`] (spaces
/// carry no structural equality of their own); everything else by value.
impl PartialEq for Request {
    fn eq(&self, other: &Self) -> bool {
        self.task == other.task
            && self.choice == other.choice
            && self.budget == other.budget
            && self.fidelity == other.fidelity
            && self.exec == other.exec
            && self.space.as_ref().map(|s| s.label()) == other.space.as_ref().map(|s| s.label())
    }
}

/// What a [`Session`] query returns: the solution plus per-query timing
/// and the request it answers (so batch responses stay correlated).
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request this response answers.
    pub request: Request,
    /// The solver's answer.
    pub solution: Solution,
    /// Wall-clock seconds spent answering *this query* — preparation time
    /// is paid once at first use and amortized away.
    pub seconds: f64,
}

/// Algorithm selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgoChoice {
    /// 2DRRM for `d = 2` (exact), HDRRM otherwise.
    #[default]
    Auto,
    /// A specific registered algorithm.
    Fixed(Algorithm),
}

/// Per-algorithm tuning carried by an [`Engine`]; `Default` mirrors the
/// paper's experimental settings.
#[derive(Debug, Clone, Default)]
pub struct Tuning {
    pub rrm2d: Rrm2dOptions,
    pub hdrrm: HdrrmOptions,
    pub mdrrr: KsetLimits,
    pub mdrrr_r: MdrrrROptions,
    pub mdrc: MdrcOptions,
    pub mdrms: MdrmsOptions,
    pub brute_force: BruteForceOptions,
    /// The sampled-ε approximate tier (default fidelity, direction seed).
    pub sampled: SampledOptions,
    /// Engine-wide execution policy: every dispatch (one-shot and
    /// prepared) runs its chunked kernels under this thread budget.
    /// Results are bit-identical at any setting; the default honours
    /// `RRM_THREADS`, else uses all cores. A per-request
    /// [`Request::exec`] override wins over this.
    pub exec: ExecPolicy,
}

/// A registry of solvers, one per [`Algorithm`] variant.
pub struct Engine {
    /// Indexed by [`Algorithm::index`] — construction order *is* the
    /// discriminant order, so lookups are a direct array access instead of
    /// a roster scan.
    solvers: Vec<Box<dyn Solver>>,
    /// Execution context handed to every solver entry point.
    ctx: SolverCtx,
}

impl Engine {
    /// Every algorithm with default (paper) tuning.
    pub fn new() -> Self {
        Self::with_tuning(&Tuning::default())
    }

    /// Every algorithm with explicit tuning.
    pub fn with_tuning(t: &Tuning) -> Self {
        let solvers: Vec<Box<dyn Solver>> = vec![
            Box::new(TwoDRrmSolver::new(t.rrm2d)),
            Box::new(TwoDRrrSolver),
            Box::new(HdrrmSolver::new(t.hdrrm)),
            Box::new(MdrrrSolver::new(t.mdrrr)),
            Box::new(MdrrrRSolver::new(t.mdrrr_r)),
            Box::new(MdrcSolver::new(t.mdrc)),
            Box::new(MdrmsSolver::new(t.mdrms)),
            Box::new(BruteForceSolver { options: t.brute_force }),
            Box::new(SampledSolver { options: t.sampled }),
        ];
        debug_assert!(
            solvers.iter().enumerate().all(|(i, s)| s.algorithm().index() == i),
            "registry must be built in Algorithm::ALL order"
        );
        Self { solvers, ctx: SolverCtx::with_exec(t.exec) }
    }

    /// Replace the engine-wide execution policy (thread budget for every
    /// solver kernel; `0` threads = all cores).
    pub fn with_exec(mut self, exec: ExecPolicy) -> Self {
        self.ctx = SolverCtx::with_exec(exec);
        self
    }

    /// The execution policy this engine dispatches under.
    pub fn exec(&self) -> ExecPolicy {
        self.ctx.exec
    }

    /// Iterate every registered solver, in [`Algorithm::ALL`] order.
    pub fn registry(&self) -> impl Iterator<Item = &dyn Solver> {
        self.solvers.iter().map(|s| s.as_ref())
    }

    /// Look up the solver for one algorithm — O(1) by discriminant index.
    pub fn solver(&self, algo: Algorithm) -> Option<&dyn Solver> {
        let solver = self.solvers.get(algo.index())?.as_ref();
        debug_assert_eq!(solver.algorithm(), algo);
        Some(solver)
    }

    /// The `Auto` policy: the exact planar solver when it applies, the
    /// scalable HD solver otherwise.
    pub fn auto_policy(d: usize) -> Algorithm {
        if d == 2 {
            Algorithm::TwoDRrm
        } else {
            Algorithm::Hdrrm
        }
    }

    /// Resolve a selection policy against the registry.
    pub fn resolve(&self, choice: AlgoChoice, d: usize) -> Result<&dyn Solver, RrmError> {
        let algo = match choice {
            AlgoChoice::Auto => Self::auto_policy(d),
            AlgoChoice::Fixed(a) => a,
        };
        self.solver(algo).ok_or_else(|| {
            RrmError::Unsupported(format!("algorithm {algo} is not registered in this engine"))
        })
    }

    /// One-shot dispatch for a typed [`Request`]: resolve the algorithm
    /// (honouring the request's [`Fidelity`]), check its capabilities
    /// against the data and space, and run the task through the
    /// [`Solver`] trait. A request-level [`Request::within`] space
    /// overrides `space`; a [`Request::exec`] policy overrides the
    /// engine's. For repeated queries over one dataset, bind a
    /// [`Session`] instead — it amortizes the per-dataset work this path
    /// redoes on every call.
    pub fn run(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
        request: &Request,
    ) -> Result<Solution, RrmError> {
        let space = request.space.as_deref().unwrap_or(space);
        let ctx = match request.exec {
            Some(exec) => SolverCtx::with_exec(exec),
            None => self.ctx,
        };
        let budget = request.effective_budget();
        let algo = request.resolved_algorithm(data.dim());
        if request.fidelity.is_approx() && algo != Algorithm::Sampled {
            // Approximate fidelity through a fixed exact algorithm: the
            // coreset path (reduce → exact solve → sampled re-certify).
            let spec = budget.approx.expect("approx fidelity injects its spec");
            return self.run_reduced(data, space, request, algo, spec, &budget, &ctx);
        }
        let solver = self.solver(algo).ok_or_else(|| {
            RrmError::Unsupported(format!("algorithm {algo} is not registered in this engine"))
        })?;
        solver.ensure_supported(data, space)?;
        match request.task {
            Task::Minimize { r } => solver.solve_rrm_ctx(data, r, space, &budget, &ctx),
            Task::Represent { k } => solver.solve_rrr_ctx(data, k, space, &budget, &ctx),
        }
    }

    /// Per-direction depth of the `approx::reduce` coreset on the
    /// minimize path: deep enough that the exact solver sees every tuple
    /// that can matter unless the optimum's regret is already large
    /// (in which case the sampled re-certification reports that regret
    /// honestly). The represent path uses its threshold `k` instead —
    /// tuples outside every direction's top-`k` cannot join a cover.
    const REDUCE_DEPTH: usize = 64;

    /// The coreset path for approximate requests pinned to an exact
    /// algorithm: shrink `n` with [`approx::reduce`] (union of sampled
    /// per-direction top lists), run the exact solver on the coreset, map
    /// the answer back, and re-certify its regret by measuring over the
    /// same sampled directions. The result keeps the exact algorithm's
    /// identity but carries the sampled `(ε, δ)` statement, because the
    /// exact certificate only covered the coreset.
    #[allow(clippy::too_many_arguments)]
    fn run_reduced(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
        request: &Request,
        algo: Algorithm,
        spec: ApproxSpec,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        spec.validate()?;
        let solver = self.solver(algo).ok_or_else(|| {
            RrmError::Unsupported(format!("algorithm {algo} is not registered in this engine"))
        })?;
        solver.ensure_supported(data, space)?;
        let m = budget.samples.unwrap_or_else(|| spec.directions()).max(1);
        let depth = match request.task {
            Task::Minimize { .. } => Self::REDUCE_DEPTH.min(data.n()),
            Task::Represent { k } => k.clamp(1, data.n()),
        };
        let reduced = approx::reduce(data, space, depth, m, approx::DEFAULT_SEED, ctx.exec)?;
        let sol = match request.task {
            Task::Minimize { r } => solver.solve_rrm_ctx(&reduced.data, r, space, budget, ctx)?,
            Task::Represent { k } => solver.solve_rrr_ctx(&reduced.data, k, space, budget, ctx)?,
        };
        let indices = reduced.original_indices(&sol.indices);
        let dirs = approx::sample_directions(space, m, approx::DEFAULT_SEED);
        let k_hat = rrm_core::rank::max_rank_regret(data, &dirs, &indices, ctx.exec.parallelism)
            .expect("m >= 1 directions were sampled");
        Ok(Solution::new(indices, Some(k_hat), algo, data)?
            .with_bounds(Bounds { lower: 1, upper: k_hat })
            .with_termination(TerminatedBy::Sampled {
                eps: spec.eps,
                delta: spec.delta,
                directions: m,
            }))
    }

    /// Prepare one algorithm selection against a dataset + space (resolve,
    /// then [`Solver::prepare`]). [`Session`] callers get this lazily and
    /// cached; call it directly to manage handles yourself.
    pub fn prepare(
        &self,
        choice: AlgoChoice,
        data: &Dataset,
        space: &dyn UtilitySpace,
    ) -> Result<Box<dyn PreparedSolver>, RrmError> {
        self.resolve(choice, data.dim())?.prepare_ctx(data, space, &self.ctx)
    }

    /// Consume the engine into a [`Session`] over `data` (full utility
    /// space; use [`Session::space`] to restrict it).
    pub fn session(self, data: Dataset) -> Session {
        Session::with_engine(self, data)
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

/// One immutable generation of a [`Session`]: the dataset plus the
/// lazily-built prepared handles over it. Snapshots are published behind
/// an `Arc` and swapped atomically by [`Session::update`], so readers that
/// grabbed one keep a fully consistent (data, prepared) view for as long
/// as they hold it — an epoch swap never tears an in-flight query.
struct Snapshot {
    /// Generation counter: 0 at bind, +1 per applied update batch.
    epoch: u64,
    data: Arc<Dataset>,
    /// One lazily-initialized prepared handle per [`Algorithm`] variant,
    /// indexed by discriminant. Failed preparations are cached too — a
    /// capability mismatch fails every query the same way. After an
    /// update, slots whose solver maintains its state incrementally are
    /// pre-filled by [`PreparedSolver::apply_update`]; the rest start
    /// empty and lazily re-prepare against the new data on first use.
    prepared: Vec<OnceLock<Result<Arc<dyn PreparedSolver>, RrmError>>>,
}

impl Snapshot {
    fn fresh(epoch: u64, data: Arc<Dataset>) -> Self {
        Self { epoch, data, prepared: empty_slots() }
    }
}

fn empty_slots() -> Vec<OnceLock<Result<Arc<dyn PreparedSolver>, RrmError>>> {
    (0..Algorithm::ALL.len()).map(|_| OnceLock::new()).collect()
}

/// An [`Engine`] bound to one dataset and utility space: the
/// *prepare-once / query-many* entry point.
///
/// The session lazily builds one [`PreparedSolver`] per algorithm on first
/// use and keeps it for the session's lifetime, so a stream of requests —
/// the paper's serving workload: one dataset, many users, varying `r`/`k`
/// — pays each algorithm's per-dataset cost exactly once. Results are
/// identical to one-shot [`Engine::run`] calls.
///
/// Sessions are `Send + Sync`; share one behind an `&` (or the prepared
/// handles behind their `Arc`s) and run read-only queries from many
/// threads concurrently.
///
/// The dataset is not frozen: [`Session::update`] applies a batch of
/// [`UpdateOp`]s (inserts/deletes) and publishes the result as a new
/// *epoch* via an atomic snapshot swap. Queries in flight keep the epoch
/// they started on; solvers that support it carry their prepared state
/// across the swap incrementally instead of re-preparing from scratch.
///
/// ```
/// use rank_regret::{Dataset, Request, Session, UpdateOp};
///
/// let data = Dataset::from_rows(&[[0.0, 1.0], [0.57, 0.75], [1.0, 0.0]]).unwrap();
/// let session = Session::new(data);
/// // Prepared state is shared across these queries.
/// for r in 1..=3 {
///     let resp = session.run(&Request::minimize(r)).unwrap();
///     assert!(resp.solution.size() <= r);
/// }
/// // Mutate the dataset in place; prepared state follows incrementally.
/// let epoch = session.update(&[UpdateOp::Insert(vec![0.9, 0.4])]).unwrap();
/// assert_eq!(epoch, 1);
/// assert_eq!(session.data().n(), 4);
/// ```
pub struct Session {
    engine: Engine,
    space: Box<dyn UtilitySpace>,
    /// The current generation. Readers take the read lock just long enough
    /// to clone the `Arc`; the writer swaps the pointer after building the
    /// next generation entirely off to the side.
    snapshot: RwLock<Arc<Snapshot>>,
    /// Serializes [`Session::update`] callers: the next generation is
    /// built from the latest one, so concurrent writers must queue (while
    /// readers proceed against the published snapshot untouched).
    writer: Mutex<()>,
    /// Calls to [`Session::prepared`] that found an already-built handle.
    prepare_hits: AtomicUsize,
    /// Calls that actually ran [`Solver::prepare`] — at most one per
    /// algorithm slot *per epoch*, however many threads race the first
    /// request (`tests/session_parity.rs` hammers this).
    prepare_misses: AtomicUsize,
}

impl Session {
    /// Bind the default engine (all nine algorithms, paper tuning) to
    /// `data` over the full utility space.
    pub fn new(data: Dataset) -> Self {
        Self::with_engine(Engine::new(), data)
    }

    /// Bind an explicitly tuned engine to `data`.
    pub fn with_engine(engine: Engine, data: Dataset) -> Self {
        let space: Box<dyn UtilitySpace> = Box::new(FullSpace::new(data.dim()));
        Self {
            engine,
            space,
            snapshot: RwLock::new(Arc::new(Snapshot::fresh(0, Arc::new(data)))),
            writer: Mutex::new(()),
            prepare_hits: AtomicUsize::new(0),
            prepare_misses: AtomicUsize::new(0),
        }
    }

    /// The currently published snapshot.
    fn current(&self) -> Arc<Snapshot> {
        self.snapshot.read().expect("snapshot lock poisoned").clone()
    }

    /// Restrict the utility space (RRM becomes RRRM). Resets any prepared
    /// state — it was built against the previous space.
    pub fn space(self, space: impl UtilitySpace + 'static) -> Self {
        self.boxed_space(Box::new(space))
    }

    /// [`Session::space`] for an already-boxed space.
    pub fn boxed_space(mut self, space: Box<dyn UtilitySpace>) -> Self {
        self.space = space;
        self.reset_prepared();
        self
    }

    /// Replace the execution policy (thread budget) future prepares and
    /// queries run under. Resets prepared state — handles capture the
    /// policy at prepare time. Solutions are bit-identical at any setting.
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.engine.ctx = SolverCtx::with_exec(exec);
        self.reset_prepared();
        self
    }

    fn reset_prepared(&mut self) {
        let snapshot = self.snapshot.get_mut().expect("snapshot lock poisoned");
        *snapshot = Arc::new(Snapshot::fresh(snapshot.epoch, snapshot.data.clone()));
        self.prepare_hits = AtomicUsize::new(0);
        self.prepare_misses = AtomicUsize::new(0);
    }

    /// The dataset this session currently serves (the published epoch's
    /// rows; queries already in flight may still be reading an older
    /// generation they pinned at dispatch).
    pub fn data(&self) -> Arc<Dataset> {
        self.current().data.clone()
    }

    /// The current epoch: 0 at bind, incremented by every applied
    /// [`Session::update`] batch.
    pub fn epoch(&self) -> u64 {
        self.current().epoch
    }

    /// Apply a batch of inserts/deletes and publish the result as the next
    /// epoch. Returns the new epoch number.
    ///
    /// The batch is validated and applied atomically ([`apply_updates`]):
    /// on any invalid op nothing changes and the current epoch keeps
    /// serving. On success the writer builds the next snapshot off to the
    /// side — carrying over every already-built prepared handle whose
    /// solver can advance its state incrementally
    /// ([`PreparedSolver::apply_update`]), leaving the rest to lazy
    /// re-preparation — and swaps it in with a pointer store. Readers
    /// never block on the build; queries dispatched before the swap finish
    /// against the old generation, queries after it see the new one.
    /// Answers are identical either way to a session freshly bound to the
    /// post-update rows.
    pub fn update(&self, ops: &[UpdateOp]) -> Result<u64, RrmError> {
        // One writer at a time: the next generation is derived from the
        // latest one. Readers are not blocked by this lock.
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let base = self.current();
        let upd = apply_updates(&base.data, ops)?;
        let next = Snapshot::fresh(base.epoch + 1, Arc::new(upd.new.clone()));
        for (slot, old) in next.prepared.iter().zip(&base.prepared) {
            // Only successfully-built handles can carry state forward;
            // empty and failed slots re-prepare lazily (and a capability
            // failure recurs identically — updates change neither the
            // dimensionality nor the space).
            if let Some(Ok(handle)) = old.get() {
                if let Some(advanced) = handle.apply_update(&upd) {
                    let _ = slot.set(Ok(Arc::from(advanced)));
                }
            }
        }
        let epoch = next.epoch;
        *self.snapshot.write().expect("snapshot lock poisoned") = Arc::new(next);
        Ok(epoch)
    }

    /// The utility space queries run over.
    pub fn utility_space(&self) -> &dyn UtilitySpace {
        self.space.as_ref()
    }

    /// The engine behind this session.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The shared prepared handle for one algorithm selection, built on
    /// first use. The returned `Arc` is `Send + Sync`: clone it out and
    /// query from as many threads as you like.
    pub fn prepared(&self, choice: AlgoChoice) -> Result<Arc<dyn PreparedSolver>, RrmError> {
        self.prepared_in(&self.current(), choice)
    }

    /// [`Session::prepared`] against one pinned snapshot (so a query
    /// resolves and runs against a single consistent generation even if an
    /// update swaps epochs mid-flight).
    fn prepared_in(
        &self,
        snap: &Snapshot,
        choice: AlgoChoice,
    ) -> Result<Arc<dyn PreparedSolver>, RrmError> {
        let algo = match choice {
            AlgoChoice::Auto => Engine::auto_policy(snap.data.dim()),
            AlgoChoice::Fixed(a) => a,
        };
        let slot = snap.prepared.get(algo.index()).ok_or_else(|| {
            RrmError::Unsupported(format!("algorithm {algo} is not registered in this engine"))
        })?;
        // `OnceLock::get_or_init` is the anti-thundering-herd mechanism:
        // when several threads race a cold slot, exactly one runs the
        // (possibly expensive) prepare and the rest block on *that slot
        // only* — queries for other algorithms proceed unimpeded. The
        // hit/miss counters make the contract observable (and let the
        // serving layer report prepare amortization per tenant).
        let mut ran_prepare = false;
        let result = slot
            .get_or_init(|| {
                ran_prepare = true;
                self.engine
                    .prepare(AlgoChoice::Fixed(algo), &snap.data, self.space.as_ref())
                    .map(Arc::from)
            })
            .clone();
        if ran_prepare {
            self.prepare_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.prepare_hits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Number of [`Session::prepared`] lookups answered from an
    /// already-built handle (including threads that blocked while another
    /// thread ran the build).
    pub fn prepare_hits(&self) -> usize {
        self.prepare_hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that actually executed [`Solver::prepare`] — at
    /// most one per algorithm slot for the session's lifetime.
    pub fn prepare_misses(&self) -> usize {
        self.prepare_misses.load(Ordering::Relaxed)
    }

    /// Eagerly build the prepared handles for `algos`, so the first real
    /// request pays no prepare latency spike (servers call this at
    /// startup; the CLI exposes it as `--warm`). Failures — capability
    /// mismatches, unsupported dimensionalities — are cached exactly as a
    /// lazy first request would cache them, and do not abort the rest of
    /// the warm-up. Returns the number of handles that built successfully.
    pub fn warm(&self, algos: &[Algorithm]) -> usize {
        algos.iter().filter(|&&algo| self.prepared(AlgoChoice::Fixed(algo)).is_ok()).count()
    }

    /// Answer one request through the prepared state. The query pins the
    /// snapshot current at dispatch — a concurrent [`Session::update`]
    /// neither blocks it nor changes the rows it answers over.
    ///
    /// Routing: requests resolve through the cached prepared handles
    /// (approximate fidelity under `Auto` resolves to the prepared
    /// [`Algorithm::Sampled`] handle, so the sampled tier amortizes like
    /// every other algorithm). Two shapes can't use a cached handle and
    /// run one-shot against the pinned snapshot instead — a per-request
    /// [`Request::within`] space (handles are built against the session
    /// space) and approximate fidelity pinned to an exact algorithm (the
    /// coreset path). Answers are identical either way; only the
    /// amortization differs. A [`Request::exec`] override is honoured on
    /// the one-shot path; prepared handles keep the policy they captured
    /// at prepare time (answers are bit-identical at any setting).
    pub fn run(&self, request: &Request) -> Result<Response, RrmError> {
        let snap = self.current();
        let choice = match (request.fidelity, request.choice) {
            (Fidelity::Approx { .. }, AlgoChoice::Auto) => AlgoChoice::Fixed(Algorithm::Sampled),
            (_, choice) => choice,
        };
        let one_shot = request.space.is_some()
            || (request.fidelity.is_approx() && choice != AlgoChoice::Fixed(Algorithm::Sampled));
        let start = Instant::now();
        let solution = if one_shot {
            self.engine.run(&snap.data, self.space.as_ref(), request)?
        } else {
            let prepared = self.prepared_in(&snap, choice)?;
            let budget = request.effective_budget();
            match request.task {
                Task::Minimize { r } => prepared.solve_rrm(r, &budget),
                Task::Represent { k } => prepared.solve_rrr(k, &budget),
            }?
        };
        Ok(Response { request: request.clone(), solution, seconds: start.elapsed().as_secs_f64() })
    }

    /// Answer a batch of requests, one result per request in order. A
    /// failing request (capability mismatch, infeasible parameter) does
    /// not abort the rest of the batch.
    pub fn run_batch(&self, requests: &[Request]) -> Vec<Result<Response, RrmError>> {
        requests.iter().map(|request| self.run(request)).collect()
    }
}

/// A fluent query against an [`Engine`]: data, task, space, algorithm
/// selection and budget. Built by [`crate::minimize`] / [`crate::represent`].
pub struct Query<'a> {
    data: &'a Dataset,
    kind: TaskKind,
    /// `r` for minimize, `k` for represent.
    param: usize,
    /// Which task the parameter setter belonged to — [`Query::size`] on a
    /// represent query (or [`Query::threshold`] on a minimize query) is a
    /// caller bug that the merged builder can no longer reject at compile
    /// time, so [`Query::solve`] rejects it with a typed error instead of
    /// silently running the wrong problem.
    param_from: Option<TaskKind>,
    space: Option<Box<dyn UtilitySpace>>,
    choice: AlgoChoice,
    budget: Budget,
    fidelity: Fidelity,
    exec: Option<ExecPolicy>,
    tuning: Tuning,
}

impl<'a> Query<'a> {
    pub(crate) fn new(data: &'a Dataset, kind: TaskKind) -> Self {
        Self {
            data,
            kind,
            param: 1,
            param_from: None,
            space: None,
            choice: AlgoChoice::Auto,
            budget: Budget::UNLIMITED,
            fidelity: Fidelity::Exact,
            exec: None,
            tuning: Tuning::default(),
        }
    }

    /// Output size bound `r` (minimize queries; default 1).
    pub fn size(mut self, r: usize) -> Self {
        self.param = r;
        self.param_from = Some(TaskKind::Minimize);
        self
    }

    /// Rank-regret threshold `k` (represent queries; default 1).
    pub fn threshold(mut self, k: usize) -> Self {
        self.param = k;
        self.param_from = Some(TaskKind::Represent);
        self
    }

    /// Restrict the utility space (turns RRM into RRRM).
    pub fn space(mut self, space: impl UtilitySpace + 'static) -> Self {
        self.space = Some(Box::new(space));
        self
    }

    /// Select a specific algorithm from the registry.
    pub fn algo(mut self, algorithm: Algorithm) -> Self {
        self.choice = AlgoChoice::Fixed(algorithm);
        self
    }

    /// Select by policy ([`AlgoChoice::Auto`] or fixed); see also the
    /// [`crate::SolverChoice`] compatibility shim.
    pub fn choice(mut self, choice: AlgoChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Cross-algorithm resource budget (sample counts, enumeration caps).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Request the sampled-ε approximate answer tier (see
    /// [`Request::approx`]).
    pub fn approx(mut self, eps: f64, delta: f64) -> Self {
        self.fidelity = Fidelity::Approx { eps, delta };
        self
    }

    /// Thread budget for the query's solver kernels (`0` = all cores).
    /// Purely a speed knob: solutions are bit-identical at any setting.
    /// Carried on the typed [`Request`] ([`Request::threads`]), not as a
    /// separate engine knob.
    pub fn threads(mut self, n: usize) -> Self {
        self.exec = Some(ExecPolicy::threads(n));
        self
    }

    /// Full execution policy (see [`ExecPolicy`]); carried on the typed
    /// [`Request`].
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Tune HDRRM (γ, δ, sample count, seed).
    pub fn hdrrm_options(mut self, options: HdrrmOptions) -> Self {
        self.tuning.hdrrm = options;
        self
    }

    /// Tune the 2D solver (event chunking, paper-faithful sweep).
    pub fn rrm2d_options(mut self, options: Rrm2dOptions) -> Self {
        self.tuning.rrm2d = options;
        self
    }

    /// Replace the whole tuning bundle.
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// The typed [`Request`] this builder describes, or the mis-pairing
    /// error when a parameter setter was used on the wrong query kind (the
    /// merged builder cannot reject that at compile time; [`Request`]'s
    /// own constructors can — prefer them in new code).
    pub fn request(&self) -> Result<Request, RrmError> {
        if let Some(from) = self.param_from {
            if from != self.kind {
                let (got, want) = match self.kind {
                    TaskKind::Minimize => (".threshold()", "minimize queries take .size()"),
                    TaskKind::Represent => (".size()", "represent queries take .threshold()"),
                };
                return Err(RrmError::Unsupported(format!(
                    "{got} used on the wrong query kind: {want}"
                )));
            }
        }
        let request = match self.kind {
            TaskKind::Minimize => Request::minimize(self.param),
            TaskKind::Represent => Request::represent(self.param),
        };
        let mut request =
            request.choice(self.choice).budget(self.budget.clone()).fidelity(self.fidelity);
        if let Some(exec) = self.exec {
            request = request.exec(exec);
        }
        Ok(request)
    }

    /// Bind the query's data, space and tuning into a [`Session`] — the
    /// prepare-once / query-many handle. The dataset is cloned into the
    /// session (sessions own their data so prepared handles can outlive
    /// the borrow and cross threads). A [`Query::threads`]/[`Query::exec`]
    /// policy becomes the session's engine-wide policy, so prepared
    /// handles capture it too.
    pub fn session(&self) -> Session {
        let mut tuning = self.tuning.clone();
        if let Some(exec) = self.exec {
            tuning.exec = exec;
        }
        let session = Engine::with_tuning(&tuning).session(self.data.clone());
        match &self.space {
            Some(space) => session.boxed_space(space.clone_box()),
            None => session,
        }
    }

    /// Run the query: a thin wrapper over a one-shot [`Session`].
    pub fn solve(self) -> Result<Solution, RrmError> {
        let request = self.request()?;
        self.session().run(&request).map(|response| response.solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_every_algorithm_once() {
        let engine = Engine::new();
        let mut algos: Vec<Algorithm> = engine.registry().map(|s| s.algorithm()).collect();
        assert_eq!(algos.len(), Algorithm::ALL.len());
        algos.dedup();
        assert_eq!(algos, Algorithm::ALL.to_vec());
        for a in Algorithm::ALL {
            assert!(engine.solver(a).is_some(), "{a} missing from registry");
        }
    }

    #[test]
    fn auto_policy_matches_the_paper() {
        assert_eq!(Engine::auto_policy(2), Algorithm::TwoDRrm);
        assert_eq!(Engine::auto_policy(3), Algorithm::Hdrrm);
        assert_eq!(Engine::auto_policy(7), Algorithm::Hdrrm);
    }

    #[test]
    fn run_rejects_capability_mismatch_uniformly() {
        let engine = Engine::new();
        let data =
            Dataset::from_rows(&[[0.1, 0.9, 0.5], [0.9, 0.1, 0.5], [0.5, 0.5, 0.5]]).unwrap();
        let err = engine
            .run(&data, &FullSpace::new(3), &Request::minimize(1).algo(Algorithm::TwoDRrm))
            .unwrap_err();
        assert!(matches!(err, RrmError::Unsupported(_)), "{err}");
    }

    #[test]
    fn request_constructors_bind_parameters_to_their_task() {
        let q = Request::minimize(7);
        assert_eq!(q.kind(), TaskKind::Minimize);
        assert_eq!(q.param(), 7);
        assert_eq!(q.choice, AlgoChoice::Auto);
        assert_eq!(q.budget, Budget::UNLIMITED);
        let q = Request::represent(3).algo(Algorithm::Hdrrm).budget(Budget::with_samples(10));
        assert_eq!(q.kind(), TaskKind::Represent);
        assert_eq!(q.param(), 3);
        assert_eq!(q.choice, AlgoChoice::Fixed(Algorithm::Hdrrm));
        assert_eq!(q.budget.samples, Some(10));
    }

    #[test]
    fn session_matches_one_shot_engine_run() {
        let data = Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap();
        let engine = Engine::new();
        let session = Session::new(data.clone());
        for r in 1..=4 {
            let request = Request::minimize(r);
            let one_shot = engine.run(&data, &FullSpace::new(2), &request).unwrap();
            let response = session.run(&request).unwrap();
            assert_eq!(response.solution, one_shot, "r={r}");
            assert_eq!(response.request, request);
            assert!(response.seconds >= 0.0);
        }
    }

    #[test]
    fn session_batch_isolates_per_request_failures() {
        let data = Dataset::from_rows(&[[0.0, 1.0], [0.57, 0.75], [1.0, 0.0]]).unwrap();
        let session = Session::new(data);
        let batch = [
            Request::minimize(1),
            Request::minimize(0), // infeasible: typed error, not an abort
            Request::represent(2),
        ];
        let results = session.run_batch(&batch);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(RrmError::OutputSizeTooSmall { .. })));
        assert!(results[2].is_ok());
    }

    #[test]
    fn session_caches_prepared_failures() {
        // 2DRRM on 3D data: the first query fails at prepare, the second
        // hits the cached error — same type both times.
        let data =
            Dataset::from_rows(&[[0.1, 0.9, 0.5], [0.9, 0.1, 0.5], [0.5, 0.5, 0.5]]).unwrap();
        let session = Session::new(data);
        for _ in 0..2 {
            let err = session.run(&Request::minimize(1).algo(Algorithm::TwoDRrm)).unwrap_err();
            assert!(matches!(err, RrmError::Unsupported(_)), "{err}");
        }
    }

    #[test]
    fn engine_exec_policy_never_changes_answers() {
        let data = Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap();
        let sequential = Engine::new().with_exec(ExecPolicy::sequential());
        assert_eq!(sequential.exec(), ExecPolicy::sequential());
        let request = Request::minimize(2);
        let space = FullSpace::new(2);
        let baseline = sequential.run(&data, &space, &request).unwrap();
        for threads in [2usize, 7] {
            let engine = Engine::new().with_exec(ExecPolicy::threads(threads));
            assert_eq!(engine.run(&data, &space, &request).unwrap(), baseline, "t={threads}");
            let session = Session::new(data.clone()).exec(ExecPolicy::threads(threads));
            assert_eq!(session.run(&request).unwrap().solution, baseline, "t={threads}");
        }
    }

    #[test]
    fn warm_builds_handles_and_counts_hits_and_misses() {
        let data = Dataset::from_rows(&[[0.0, 1.0], [0.57, 0.75], [1.0, 0.0]]).unwrap();
        let session = Session::new(data);
        // Warm everything: the 2D solvers, HD solvers (d >= 2), brute
        // force and the sampled tier all accept d = 2, so all nine
        // handles build.
        let ok = session.warm(&Algorithm::ALL);
        assert_eq!(ok, 9);
        assert_eq!(session.prepare_misses(), 9);
        assert_eq!(session.prepare_hits(), 0);
        // Every later query is a hit; no new prepare runs.
        session.run(&Request::minimize(1)).unwrap();
        session.run(&Request::minimize(2).algo(Algorithm::Hdrrm)).unwrap();
        assert_eq!(session.prepare_misses(), 9);
        assert_eq!(session.prepare_hits(), 2);
        // Warming again is all hits.
        assert_eq!(session.warm(&Algorithm::ALL), 9);
        assert_eq!(session.prepare_misses(), 9);
    }

    #[test]
    fn warm_caches_failures_without_aborting() {
        // 3D data: the 2D-only solvers fail to prepare; the rest build.
        let data =
            Dataset::from_rows(&[[0.1, 0.9, 0.5], [0.9, 0.1, 0.5], [0.5, 0.5, 0.5]]).unwrap();
        let session = Session::new(data);
        let ok = session.warm(&Algorithm::ALL);
        assert_eq!(ok, 7, "all but the two planar solvers");
        // The cached failure surfaces identically on a real request.
        let err = session.run(&Request::minimize(1).algo(Algorithm::TwoDRrm)).unwrap_err();
        assert!(matches!(err, RrmError::Unsupported(_)), "{err}");
        assert_eq!(session.prepare_misses(), 9, "failures consumed their one miss");
    }

    #[test]
    fn update_publishes_new_epoch_and_matches_fresh_session() {
        let data = Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap();
        let session = Session::new(data);
        session.warm(&Algorithm::ALL);
        assert_eq!(session.epoch(), 0);
        let ops = [UpdateOp::Delete(3), UpdateOp::Insert(vec![0.6, 0.62]), UpdateOp::Delete(0)];
        assert_eq!(session.update(&ops).unwrap(), 1);
        assert_eq!(session.epoch(), 1);
        assert_eq!(session.data().n(), 6);
        // Every algorithm answers exactly like a session freshly bound to
        // the post-update rows — whether its state was carried forward
        // incrementally or lazily re-prepared.
        let fresh = Session::new(session.data().as_ref().clone());
        let budget = Budget::with_samples(64);
        for algo in Algorithm::ALL {
            for r in [2usize, 3] {
                let request = Request::minimize(r).algo(algo).budget(budget.clone());
                assert_eq!(
                    session.run(&request).unwrap().solution,
                    fresh.run(&request).unwrap().solution,
                    "{algo} r={r}"
                );
            }
        }
    }

    #[test]
    fn update_carries_incremental_handles_without_reprepare() {
        let data = Dataset::from_rows(&[[0.0, 1.0], [0.57, 0.75], [1.0, 0.0]]).unwrap();
        let session = Session::new(data);
        session.warm(&Algorithm::ALL);
        assert_eq!(session.prepare_misses(), 9);
        session.update(&[UpdateOp::Insert(vec![0.8, 0.5])]).unwrap();
        // 2DRRM and HDRRM maintain their prepared state across the swap:
        // querying them on the new epoch must not re-run prepare.
        session.run(&Request::minimize(2).algo(Algorithm::TwoDRrm)).unwrap();
        session.run(&Request::minimize(2).algo(Algorithm::Hdrrm)).unwrap();
        assert_eq!(session.prepare_misses(), 9, "incremental slots were pre-filled");
        // A solver without incremental maintenance lazily re-prepares.
        session.run(&Request::minimize(2).algo(Algorithm::Mdrc)).unwrap();
        assert_eq!(session.prepare_misses(), 10);
    }

    #[test]
    fn update_rejects_invalid_batches_atomically() {
        let data = Dataset::from_rows(&[[0.0, 1.0], [0.57, 0.75], [1.0, 0.0]]).unwrap();
        let session = Session::new(data.clone());
        let err = session.update(&[UpdateOp::Delete(9)]).unwrap_err();
        assert!(matches!(err, RrmError::Unsupported(_)), "{err}");
        assert_eq!(session.epoch(), 0, "failed batches must not advance the epoch");
        assert_eq!(*session.data(), data);
    }

    #[test]
    fn in_flight_handles_survive_an_epoch_swap() {
        let data = Dataset::from_rows(&[[0.0, 1.0], [0.57, 0.75], [1.0, 0.0]]).unwrap();
        let session = Session::new(data);
        let handle = session.prepared(AlgoChoice::Auto).unwrap();
        let before = handle.solve_rrm(2, &Budget::UNLIMITED).unwrap();
        session.update(&[UpdateOp::Delete(1)]).unwrap();
        // The pinned handle still answers over the generation it was built
        // on — the swap invalidates nothing a reader already holds.
        assert_eq!(handle.solve_rrm(2, &Budget::UNLIMITED).unwrap(), before);
        assert_eq!(handle.dataset().n(), 3);
        assert_eq!(session.data().n(), 2);
    }

    #[test]
    fn session_prepared_handles_are_shareable() {
        let data = Dataset::from_rows(&[[0.0, 1.0], [0.57, 0.75], [1.0, 0.0]]).unwrap();
        let session = Session::new(data);
        let handle = session.prepared(AlgoChoice::Auto).unwrap();
        let again = session.prepared(AlgoChoice::Fixed(Algorithm::TwoDRrm)).unwrap();
        // Auto resolves to 2DRRM on d = 2; both asks share one handle.
        assert!(Arc::ptr_eq(&handle, &again));
        assert_eq!(handle.algorithm(), Algorithm::TwoDRrm);
    }

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn approx_requests_resolve_to_the_sampled_tier() {
        let q = Request::minimize(2).approx(0.1, 0.05);
        assert_eq!(q.fidelity, Fidelity::Approx { eps: 0.1, delta: 0.05 });
        assert_eq!(q.resolved_algorithm(2), Algorithm::Sampled);
        assert_eq!(q.resolved_algorithm(5), Algorithm::Sampled);
        // Exact fidelity keeps the old auto policy.
        assert_eq!(Request::minimize(2).resolved_algorithm(2), Algorithm::TwoDRrm);
        assert_eq!(Request::minimize(2).resolved_algorithm(5), Algorithm::Hdrrm);
        // A fixed algorithm always wins the resolution.
        assert_eq!(
            Request::minimize(2).approx(0.1, 0.05).algo(Algorithm::Hdrrm).resolved_algorithm(4),
            Algorithm::Hdrrm
        );
        // The budget the solve runs under carries the spec.
        assert_eq!(q.effective_budget().approx, Some(ApproxSpec { eps: 0.1, delta: 0.05 }));
        assert_eq!(Request::minimize(2).effective_budget().approx, None);
    }

    #[test]
    fn approx_answers_match_between_engine_and_session() {
        let data = table1();
        let request = Request::minimize(1).approx(0.05, 0.05);
        let engine = Engine::new();
        let one_shot = engine.run(&data, &FullSpace::new(2), &request).unwrap();
        assert_eq!(one_shot.algorithm, Algorithm::Sampled);
        assert!(matches!(one_shot.terminated_by, TerminatedBy::Sampled { .. }));
        // Table I: the best single representative is t3 (index 2).
        assert_eq!(one_shot.indices, vec![2]);
        let session = Session::new(data);
        assert_eq!(session.run(&request).unwrap().solution, one_shot);
        // The sampled handle is cached like any other algorithm's.
        session.run(&request).unwrap();
        assert!(session.prepare_hits() >= 1);
    }

    #[test]
    fn approx_through_an_exact_algorithm_uses_the_coreset_path() {
        let data = table1();
        let request = Request::minimize(2).approx(0.1, 0.1).algo(Algorithm::TwoDRrm);
        let engine = Engine::new();
        let sol = engine.run(&data, &FullSpace::new(2), &request).unwrap();
        // The exact algorithm keeps its identity but the certificate is
        // the sampled statement (the exact one covered only the coreset).
        assert_eq!(sol.algorithm, Algorithm::TwoDRrm);
        match sol.terminated_by {
            TerminatedBy::Sampled { eps, delta, directions } => {
                assert_eq!((eps, delta), (0.1, 0.1));
                assert!(directions >= 1);
            }
            other => panic!("expected a sampled certificate, got {other:?}"),
        }
        // n = 7 fits entirely inside the coreset depth, so the answer is
        // the exact optimum with a sampled measurement of its regret.
        let exact = engine
            .run(&data, &FullSpace::new(2), &Request::minimize(2).algo(Algorithm::TwoDRrm))
            .unwrap();
        assert_eq!(sol.indices, exact.indices);
        // Session routes the same shape one-shot; answers agree.
        let session = Session::new(table1());
        assert_eq!(session.run(&request).unwrap().solution, sol);
    }

    #[test]
    fn per_request_space_turns_rrm_into_rrrm() {
        use rrm_core::WeakRankingSpace;
        let data = table1();
        let engine = Engine::new();
        let restricted = Request::minimize(2).within(WeakRankingSpace::new(2, 1));
        let via_request = engine.run(&data, &FullSpace::new(2), &restricted).unwrap();
        let via_ambient =
            engine.run(&data, &WeakRankingSpace::new(2, 1), &Request::minimize(2)).unwrap();
        assert_eq!(via_request, via_ambient, "within() must equal an ambient-space run");
        // Sessions route per-request spaces one-shot against the pinned
        // snapshot — same answer as the engine.
        let session = Session::new(data);
        assert_eq!(session.run(&restricted).unwrap().solution, via_request);
    }

    #[test]
    fn per_request_exec_override_never_changes_answers() {
        let data = table1();
        let engine = Engine::new().with_exec(ExecPolicy::sequential());
        let baseline = engine.run(&data, &FullSpace::new(2), &Request::minimize(2)).unwrap();
        for threads in [2usize, 7] {
            let request = Request::minimize(2).threads(threads);
            assert_eq!(engine.run(&data, &FullSpace::new(2), &request).unwrap(), baseline);
        }
    }

    #[test]
    fn request_equality_covers_the_new_dimensions() {
        use rrm_core::WeakRankingSpace;
        let base = Request::minimize(2);
        assert_eq!(base, Request::minimize(2));
        assert_ne!(base, Request::minimize(2).approx(0.1, 0.1));
        assert_ne!(base, Request::minimize(2).threads(3));
        assert_ne!(base, Request::minimize(2).within(WeakRankingSpace::new(2, 1)));
        assert_eq!(
            Request::minimize(2).within(WeakRankingSpace::new(2, 1)),
            Request::minimize(2).within(WeakRankingSpace::new(2, 1))
        );
        assert_ne!(base, Request::minimize(2).cutoff(Cutoff::GapAtMost(0.5)));
        let shown = format!("{:?}", Request::minimize(2).approx(0.1, 0.1));
        assert!(shown.contains("Approx"), "{shown}");
    }
}
