//! The engine layer: one registry of [`Solver`]s, one dispatch path.
//!
//! Every way of running a rank-regret query — the [`minimize`]/
//! [`represent`] builders, the CLI, the bench harness — funnels into
//! [`Engine::run`]. The engine owns a solver per [`Algorithm`] variant,
//! resolves the `Auto` policy (2DRRM when `d = 2`, HDRRM otherwise),
//! checks capabilities once, and delegates through the trait. Adding an
//! algorithm means implementing [`Solver`] and registering it here;
//! nothing else in the stack changes.
//!
//! [`minimize`]: crate::minimize
//! [`represent`]: crate::represent

use rrm_core::{
    Algorithm, BruteForceOptions, BruteForceSolver, Budget, Dataset, FullSpace, RrmError, Solution,
    Solver, UtilitySpace,
};

use rrm_2d::{Rrm2dOptions, TwoDRrmSolver, TwoDRrrSolver};
use rrm_hd::{
    HdrrmOptions, HdrrmSolver, KsetLimits, MdrcOptions, MdrcSolver, MdrmsOptions, MdrmsSolver,
    MdrrrROptions, MdrrrRSolver, MdrrrSolver,
};

/// Which query the engine should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// RRM / RRRM: best set of at most `param` tuples.
    Minimize,
    /// RRR: smallest set with rank-regret at most `param`.
    Represent,
}

/// Algorithm selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgoChoice {
    /// 2DRRM for `d = 2` (exact), HDRRM otherwise.
    #[default]
    Auto,
    /// A specific registered algorithm.
    Fixed(Algorithm),
}

/// Per-algorithm tuning carried by an [`Engine`]; `Default` mirrors the
/// paper's experimental settings.
#[derive(Debug, Clone, Default)]
pub struct Tuning {
    pub rrm2d: Rrm2dOptions,
    pub hdrrm: HdrrmOptions,
    pub mdrrr: KsetLimits,
    pub mdrrr_r: MdrrrROptions,
    pub mdrc: MdrcOptions,
    pub mdrms: MdrmsOptions,
    pub brute_force: BruteForceOptions,
}

/// A registry of solvers, one per [`Algorithm`] variant.
pub struct Engine {
    solvers: Vec<Box<dyn Solver>>,
}

impl Engine {
    /// All eight algorithms with default (paper) tuning.
    pub fn new() -> Self {
        Self::with_tuning(&Tuning::default())
    }

    /// All eight algorithms with explicit tuning.
    pub fn with_tuning(t: &Tuning) -> Self {
        let solvers: Vec<Box<dyn Solver>> = vec![
            Box::new(TwoDRrmSolver::new(t.rrm2d)),
            Box::new(TwoDRrrSolver),
            Box::new(HdrrmSolver::new(t.hdrrm)),
            Box::new(MdrrrSolver::new(t.mdrrr)),
            Box::new(MdrrrRSolver::new(t.mdrrr_r)),
            Box::new(MdrcSolver::new(t.mdrc)),
            Box::new(MdrmsSolver::new(t.mdrms)),
            Box::new(BruteForceSolver { options: t.brute_force }),
        ];
        Self { solvers }
    }

    /// Iterate every registered solver, in [`Algorithm::ALL`] order.
    pub fn registry(&self) -> impl Iterator<Item = &dyn Solver> {
        self.solvers.iter().map(|s| s.as_ref())
    }

    /// Look up the solver for one algorithm.
    pub fn solver(&self, algo: Algorithm) -> Option<&dyn Solver> {
        self.registry().find(|s| s.algorithm() == algo)
    }

    /// The `Auto` policy: the exact planar solver when it applies, the
    /// scalable HD solver otherwise.
    pub fn auto_policy(d: usize) -> Algorithm {
        if d == 2 {
            Algorithm::TwoDRrm
        } else {
            Algorithm::Hdrrm
        }
    }

    /// Resolve a selection policy against the registry.
    pub fn resolve(&self, choice: AlgoChoice, d: usize) -> Result<&dyn Solver, RrmError> {
        let algo = match choice {
            AlgoChoice::Auto => Self::auto_policy(d),
            AlgoChoice::Fixed(a) => a,
        };
        self.solver(algo).ok_or_else(|| {
            RrmError::Unsupported(format!("algorithm {algo} is not registered in this engine"))
        })
    }

    /// The single dispatch path behind every facade query: resolve the
    /// algorithm, check its capabilities against the data and space, and
    /// run the task through the [`Solver`] trait.
    pub fn run(
        &self,
        data: &Dataset,
        kind: TaskKind,
        param: usize,
        space: &dyn UtilitySpace,
        choice: AlgoChoice,
        budget: &Budget,
    ) -> Result<Solution, RrmError> {
        let solver = self.resolve(choice, data.dim())?;
        solver.ensure_supported(data, space)?;
        match kind {
            TaskKind::Minimize => solver.solve_rrm(data, param, space, budget),
            TaskKind::Represent => solver.solve_rrr(data, param, space, budget),
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

/// A fluent query against an [`Engine`]: data, task, space, algorithm
/// selection and budget. Built by [`crate::minimize`] / [`crate::represent`].
pub struct Query<'a> {
    data: &'a Dataset,
    kind: TaskKind,
    /// `r` for minimize, `k` for represent.
    param: usize,
    /// Which task the parameter setter belonged to — [`Query::size`] on a
    /// represent query (or [`Query::threshold`] on a minimize query) is a
    /// caller bug that the merged builder can no longer reject at compile
    /// time, so [`Query::solve`] rejects it with a typed error instead of
    /// silently running the wrong problem.
    param_from: Option<TaskKind>,
    space: Option<Box<dyn UtilitySpace>>,
    choice: AlgoChoice,
    budget: Budget,
    tuning: Tuning,
}

impl<'a> Query<'a> {
    pub(crate) fn new(data: &'a Dataset, kind: TaskKind) -> Self {
        Self {
            data,
            kind,
            param: 1,
            param_from: None,
            space: None,
            choice: AlgoChoice::Auto,
            budget: Budget::UNLIMITED,
            tuning: Tuning::default(),
        }
    }

    /// Output size bound `r` (minimize queries; default 1).
    pub fn size(mut self, r: usize) -> Self {
        self.param = r;
        self.param_from = Some(TaskKind::Minimize);
        self
    }

    /// Rank-regret threshold `k` (represent queries; default 1).
    pub fn threshold(mut self, k: usize) -> Self {
        self.param = k;
        self.param_from = Some(TaskKind::Represent);
        self
    }

    /// Restrict the utility space (turns RRM into RRRM).
    pub fn space(mut self, space: impl UtilitySpace + 'static) -> Self {
        self.space = Some(Box::new(space));
        self
    }

    /// Select a specific algorithm from the registry.
    pub fn algo(mut self, algorithm: Algorithm) -> Self {
        self.choice = AlgoChoice::Fixed(algorithm);
        self
    }

    /// Select by policy ([`AlgoChoice::Auto`] or fixed); see also the
    /// [`crate::SolverChoice`] compatibility shim.
    pub fn choice(mut self, choice: AlgoChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Cross-algorithm resource budget (sample counts, enumeration caps).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Tune HDRRM (γ, δ, sample count, seed).
    pub fn hdrrm_options(mut self, options: HdrrmOptions) -> Self {
        self.tuning.hdrrm = options;
        self
    }

    /// Tune the 2D solver (event chunking, paper-faithful sweep).
    pub fn rrm2d_options(mut self, options: Rrm2dOptions) -> Self {
        self.tuning.rrm2d = options;
        self
    }

    /// Replace the whole tuning bundle.
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Run the query through [`Engine::run`].
    pub fn solve(self) -> Result<Solution, RrmError> {
        if let Some(from) = self.param_from {
            if from != self.kind {
                let (got, want) = match self.kind {
                    TaskKind::Minimize => (".threshold()", "minimize queries take .size()"),
                    TaskKind::Represent => (".size()", "represent queries take .threshold()"),
                };
                return Err(RrmError::Unsupported(format!(
                    "{got} used on the wrong query kind: {want}"
                )));
            }
        }
        let engine = Engine::with_tuning(&self.tuning);
        let space: Box<dyn UtilitySpace> =
            self.space.unwrap_or_else(|| Box::new(FullSpace::new(self.data.dim())));
        engine.run(self.data, self.kind, self.param, space.as_ref(), self.choice, &self.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_eight_algorithms_once() {
        let engine = Engine::new();
        let mut algos: Vec<Algorithm> = engine.registry().map(|s| s.algorithm()).collect();
        assert_eq!(algos.len(), Algorithm::ALL.len());
        algos.dedup();
        assert_eq!(algos, Algorithm::ALL.to_vec());
        for a in Algorithm::ALL {
            assert!(engine.solver(a).is_some(), "{a} missing from registry");
        }
    }

    #[test]
    fn auto_policy_matches_the_paper() {
        assert_eq!(Engine::auto_policy(2), Algorithm::TwoDRrm);
        assert_eq!(Engine::auto_policy(3), Algorithm::Hdrrm);
        assert_eq!(Engine::auto_policy(7), Algorithm::Hdrrm);
    }

    #[test]
    fn run_rejects_capability_mismatch_uniformly() {
        let engine = Engine::new();
        let data =
            Dataset::from_rows(&[[0.1, 0.9, 0.5], [0.9, 0.1, 0.5], [0.5, 0.5, 0.5]]).unwrap();
        let err = engine
            .run(
                &data,
                TaskKind::Minimize,
                1,
                &FullSpace::new(3),
                AlgoChoice::Fixed(Algorithm::TwoDRrm),
                &Budget::UNLIMITED,
            )
            .unwrap_err();
        assert!(matches!(err, RrmError::Unsupported(_)), "{err}");
    }
}
