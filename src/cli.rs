//! Implementation of the `rrm` command-line tool (see `src/bin/rrm.rs`).
//!
//! Hand-rolled argument parsing (no CLI dependency): three subcommands over
//! a numeric CSV file.
//!
//! ```text
//! rrm minimize  --input cars.csv --size 5 [common flags]
//! rrm represent --input cars.csv --threshold 10 [common flags]
//! rrm frontier  --input cars.csv --max-size 10 [common flags]   (d = 2 only)
//!
//! common flags:
//!   --algo NAME            pick an algorithm (2drrm, 2drrr, hdrrm, mdrrr,
//!                          mdrrr-r, mdrc, mdrms, bruteforce, sampled);
//!                          default: auto
//!   --format text|json     report format (default: text); json emits a
//!                          machine-readable solution report with timings
//!   --no-header            first CSV line is data, not column names
//!   --columns 0,2,3        use only these columns (0-based)
//!   --negate 1,2           smaller-is-better columns to negate first
//!   --no-normalize         skip min-max normalization to [0, 1]
//!   --weak-ranking c       restrict to u[0] >= u[1] >= ... >= u[c]
//!   --quick                smaller HDRRM sample budget (delta = 0.1)
//!   --threads N            worker threads for solver kernels (0 = all
//!                          cores, the default; RRM_THREADS also honored).
//!                          Purely a speed knob: answers are bit-identical
//!   --warm                 eagerly prepare every registered algorithm
//!                          before answering (what a server does at
//!                          startup); reports how many built and the cost
//!   --time-limit-ms MS     in-solve wall-clock cutoff for the anytime
//!                          solvers: return the best incumbent with
//!                          certified bounds instead of running out
//!   --gap G                stop once the relative optimality gap is <= G
//!                          (deterministic); ignored if --time-limit-ms is
//!                          also given
//!   --approx EPS[,DELTA]   answer at approximate fidelity: a sampled-ε
//!                          solve whose certificate holds with probability
//!                          >= 1-DELTA (default DELTA 0.05). Seeded and
//!                          bit-deterministic at any --threads value
//! ```
//!
//! `--algo` resolves through the engine registry ([`crate::Engine`]);
//! an unknown name errors with the list of valid ones. Queries run through
//! a [`crate::Session`] — one prepare, then the query — and both phases
//! are timed separately in the report.

use std::time::Instant;

use crate::{
    AlgoChoice, Algorithm, ApproxSpec, Dataset, Engine, ExecPolicy, Request, RrmError, Solution,
    Tuning, WeakRankingSpace,
};
use rrm_2d::{pareto_frontier, Rrm2dOptions};
use rrm_core::FullSpace;
use rrm_data::csv::read_csv_file;
use rrm_hd::HdrrmOptions;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    pub command: Command,
    pub input: String,
    pub algo: Option<Algorithm>,
    pub format: Format,
    pub has_header: bool,
    pub columns: Option<Vec<usize>>,
    pub negate: Vec<usize>,
    pub normalize: bool,
    pub weak_ranking: Option<usize>,
    pub quick: bool,
    /// Worker threads for solver kernels; `None` = auto (`RRM_THREADS`,
    /// else all cores), `Some(0)` = all cores explicitly.
    pub threads: Option<usize>,
    /// Eagerly prepare every registered algorithm before the query
    /// ([`crate::Session::warm`]); failures are cached, not fatal.
    pub warm: bool,
    /// In-solve wall-clock cutoff in milliseconds for the anytime
    /// solvers (best incumbent + certified bounds on expiry).
    pub time_limit_ms: Option<u64>,
    /// Stop once the relative optimality gap is at most this value
    /// (deterministic). `--time-limit-ms` takes precedence.
    pub gap: Option<f64>,
    /// Approximate fidelity: answer via the sampled-ε tier with this
    /// `(eps, delta)` Hoeffding confidence statement.
    pub approx: Option<ApproxSpec>,
}

/// Report format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable table (the default).
    #[default]
    Text,
    /// Hand-rolled machine-readable JSON: indices, certified regret,
    /// algorithm, and prepare/query timings.
    Json,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    Minimize { size: usize },
    Represent { threshold: usize },
    Frontier { max_size: usize },
}

/// Parse an argument vector (without the program name).
pub fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut it = argv.iter();
    let sub = it.next().ok_or_else(usage)?;
    let mut input: Option<String> = None;
    let mut algo: Option<Algorithm> = None;
    let mut format = Format::Text;
    let mut has_header = true;
    let mut columns = None;
    let mut negate = Vec::new();
    let mut normalize = true;
    let mut weak_ranking = None;
    let mut quick = false;
    let mut threads: Option<usize> = None;
    let mut warm = false;
    let mut time_limit_ms: Option<u64> = None;
    let mut gap: Option<f64> = None;
    let mut approx: Option<ApproxSpec> = None;
    let mut size: Option<usize> = None;
    let mut threshold: Option<usize> = None;
    let mut max_size: Option<usize> = None;

    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--input" => input = Some(value("--input")?),
            "--algo" => {
                algo = Some(Algorithm::from_name(&value("--algo")?).map_err(|e| e.to_string())?)
            }
            "--format" => {
                format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("--format: expected text or json, got {other:?}")),
                }
            }
            "--no-header" => has_header = false,
            "--columns" => columns = Some(parse_index_list(&value("--columns")?)?),
            "--negate" => negate = parse_index_list(&value("--negate")?)?,
            "--no-normalize" => normalize = false,
            "--weak-ranking" => {
                weak_ranking = Some(parse_usize("--weak-ranking", &value("--weak-ranking")?)?)
            }
            "--quick" => quick = true,
            "--threads" => threads = Some(parse_usize("--threads", &value("--threads")?)?),
            "--warm" => warm = true,
            "--time-limit-ms" => {
                time_limit_ms =
                    Some(parse_usize("--time-limit-ms", &value("--time-limit-ms")?)? as u64)
            }
            "--gap" => {
                let v = value("--gap")?;
                let g: f64 = v.parse().map_err(|_| format!("--gap: bad number {v:?}"))?;
                if !(0.0..=1.0).contains(&g) {
                    return Err(format!("--gap: expected a value in [0, 1], got {v}"));
                }
                gap = Some(g);
            }
            "--approx" => {
                let v = value("--approx")?;
                let (eps_s, delta_s) = match v.split_once(',') {
                    Some((e, d)) => (e.trim(), Some(d.trim())),
                    None => (v.trim(), None),
                };
                let eps: f64 = eps_s.parse().map_err(|_| format!("--approx: bad eps {eps_s:?}"))?;
                let delta: f64 = match delta_s {
                    Some(s) => s.parse().map_err(|_| format!("--approx: bad delta {s:?}"))?,
                    None => ApproxSpec::default().delta,
                };
                approx = Some(ApproxSpec::new(eps, delta).map_err(|e| e.to_string())?);
            }
            "--size" => size = Some(parse_usize("--size", &value("--size")?)?),
            "--threshold" => threshold = Some(parse_usize("--threshold", &value("--threshold")?)?),
            "--max-size" => max_size = Some(parse_usize("--max-size", &value("--max-size")?)?),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    let input = input.ok_or("--input is required".to_string())?;
    let command = match sub.as_str() {
        "minimize" => Command::Minimize { size: size.ok_or("--size is required")? },
        "represent" => {
            Command::Represent { threshold: threshold.ok_or("--threshold is required")? }
        }
        "frontier" => Command::Frontier { max_size: max_size.ok_or("--max-size is required")? },
        other => return Err(format!("unknown subcommand {other}\n{}", usage())),
    };
    Ok(Args {
        command,
        input,
        algo,
        format,
        has_header,
        columns,
        negate,
        normalize,
        weak_ranking,
        quick,
        threads,
        warm,
        time_limit_ms,
        gap,
        approx,
    })
}

fn usage() -> String {
    "usage: rrm <minimize|represent|frontier> --input FILE \
     [--size R | --threshold K | --max-size R] [--algo NAME] [--format text|json] \
     [--no-header] [--columns LIST] [--negate LIST] [--no-normalize] \
     [--weak-ranking C] [--quick] [--threads N] [--warm] \
     [--time-limit-ms MS] [--gap G] [--approx EPS[,DELTA]]"
        .to_string()
}

fn parse_index_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().map_err(|_| format!("bad index {p:?}")))
        .collect()
}

fn parse_usize(flag: &str, s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("{flag}: bad number {s:?}"))
}

/// Load, transform and solve; returns the rendered report.
pub fn run(args: &Args) -> Result<String, RrmError> {
    let table = read_csv_file(&args.input, args.has_header)?;
    let mut headers = table.headers.clone();
    let mut data = table.data;
    if let Some(cols) = &args.columns {
        data = data.project(cols)?;
        headers = cols
            .iter()
            .map(|&c| headers.get(c).cloned().unwrap_or_else(|| format!("col{c}")))
            .collect();
    }
    if !args.negate.is_empty() {
        data = data.negate_attributes(&args.negate);
    }
    if args.normalize {
        data = data.normalize();
    }
    let d = data.dim();

    let exec = match args.threads {
        Some(n) => ExecPolicy::threads(n),
        None => ExecPolicy::default(),
    };
    let tuning = Tuning {
        hdrrm: if args.quick {
            HdrrmOptions { delta: 0.1, ..Default::default() }
        } else {
            HdrrmOptions::default()
        },
        exec,
        ..Default::default()
    };
    let choice = match args.algo {
        Some(a) => AlgoChoice::Fixed(a),
        None => AlgoChoice::Auto,
    };

    // In-solve cutoff for the anytime solvers: an explicit wall-clock
    // limit wins over a gap target.
    let cutoff = if let Some(ms) = args.time_limit_ms {
        crate::Cutoff::TimeBudget(std::time::Duration::from_millis(ms))
    } else if let Some(g) = args.gap {
        crate::Cutoff::GapAtMost(g)
    } else {
        crate::Cutoff::None
    };

    match args.command {
        Command::Minimize { .. } | Command::Represent { .. } => {
            let mut request = match args.command {
                Command::Minimize { size } => Request::minimize(size),
                Command::Represent { threshold } => Request::represent(threshold),
                Command::Frontier { .. } => unreachable!(),
            }
            .choice(choice)
            .cutoff(cutoff);
            if let Some(spec) = args.approx {
                request = request.approx(spec.eps, spec.delta);
            }
            // Prepare-once / query-once through the session, with the two
            // phases timed separately.
            let mut session = Engine::with_tuning(&tuning).session(data);
            if let Some(c) = args.weak_ranking {
                session = session.space(WeakRankingSpace::new(d, c));
            }
            // --warm: what a server does at startup — build every
            // prepared handle eagerly so no query pays first-use latency.
            let warm = if args.warm {
                let warm_start = Instant::now();
                let ok = session.warm(&Algorithm::ALL);
                Some((ok, warm_start.elapsed().as_secs_f64()))
            } else {
                None
            };
            // An approx request under the auto policy dispatches to the
            // sampled tier — prepare that handle so the timing split
            // attributes its build cost to the prepare phase.
            let prepare_choice = if args.approx.is_some() && choice == AlgoChoice::Auto {
                AlgoChoice::Fixed(Algorithm::Sampled)
            } else {
                choice
            };
            let prepare_start = Instant::now();
            session.prepared(prepare_choice)?;
            let prepare_seconds = prepare_start.elapsed().as_secs_f64();
            let response = session.run(&request)?;
            match args.format {
                Format::Text => Ok(render_text(
                    args,
                    &headers,
                    &session.data(),
                    &response.solution,
                    warm,
                    prepare_seconds,
                    response.seconds,
                )),
                Format::Json => Ok(render_json(
                    args,
                    &session.data(),
                    &request,
                    &response.solution,
                    warm,
                    prepare_seconds,
                    response.seconds,
                    exec.effective_threads(),
                )),
            }
        }
        Command::Frontier { max_size } => {
            if d != 2 {
                return Err(RrmError::Unsupported(
                    "frontier requires exactly 2 columns (use --columns)".into(),
                ));
            }
            // The frontier is a property of the exact 2D sweep; silently
            // computing it with 2DRRM after the user asked for another
            // algorithm would misattribute the output.
            if let Some(a) = args.algo {
                if a != Algorithm::TwoDRrm {
                    return Err(RrmError::Unsupported(format!(
                        "frontier is computed by the exact 2D sweep (2DRRM); --algo {a} is not supported here"
                    )));
                }
            }
            let start = Instant::now();
            let options = Rrm2dOptions { exec, ..Default::default() };
            let points = pareto_frontier(&data, max_size, &FullSpace::new(2), options)?;
            let seconds = start.elapsed().as_secs_f64();
            match args.format {
                Format::Text => {
                    let mut out = String::new();
                    use std::fmt::Write as _;
                    let _ = writeln!(out, "{}", loaded_line(args, &data));
                    let _ = writeln!(out, "{:>6} {:>18}", "size", "best worst-rank");
                    for p in &points {
                        let _ = writeln!(out, "{:>6} {:>18}", p.r, p.regret);
                    }
                    Ok(out)
                }
                Format::Json => {
                    let mut out = String::new();
                    use std::fmt::Write as _;
                    let _ = write!(
                        out,
                        "{{\"command\":\"frontier\",\"input\":{},\"n\":{},\"d\":{},\
                         \"algorithm\":\"2DRRM\",\"threads\":{},\"max_size\":{max_size},\
                         \"frontier\":[",
                        json_string(&args.input),
                        data.n(),
                        data.dim(),
                        exec.effective_threads(),
                    );
                    for (i, p) in points.iter().enumerate() {
                        let sep = if i == 0 { "" } else { "," };
                        let _ = write!(out, "{sep}{{\"r\":{},\"regret\":{}}}", p.r, p.regret);
                    }
                    let _ = writeln!(out, "],\"seconds\":{}}}", json_f64(seconds));
                    Ok(out)
                }
            }
        }
    }
}

fn loaded_line(args: &Args, data: &Dataset) -> String {
    let summary = rrm_data::stats::summarize(data);
    format!(
        "loaded {} tuples x {} attributes from {} (mean pairwise correlation {:+.2})",
        data.n(),
        data.dim(),
        args.input,
        summary.mean_pairwise_correlation()
    )
}

#[allow(clippy::too_many_arguments)]
fn render_text(
    args: &Args,
    headers: &[String],
    data: &Dataset,
    sol: &Solution,
    warm: Option<(usize, f64)>,
    prepare_seconds: f64,
    query_seconds: f64,
) -> String {
    let mut out = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(out, "{}", loaded_line(args, data));
    if let Some((ok, seconds)) = warm {
        let _ =
            writeln!(out, "warmed {ok}/{} prepared solvers in {seconds:.3}s", Algorithm::ALL.len());
    }
    let _ = writeln!(
        out,
        "{}: {} tuples, certified rank-regret {} (prepared in {:.3}s, answered in {:.3}s)",
        sol.algorithm,
        sol.size(),
        sol.certified_regret.map_or("n/a".into(), |k| k.to_string()),
        prepare_seconds,
        query_seconds,
    );
    if let crate::TerminatedBy::Sampled { eps, delta, directions } = sol.terminated_by {
        // Not an early stop: the sampled tier ran to completion at its
        // requested fidelity.
        let _ = writeln!(
            out,
            "approx: regret certified over {directions} sampled directions \
             (holds on all but an eps = {eps} fraction of directions with \
             probability >= {:.3})",
            1.0 - delta,
        );
    } else if sol.terminated_by.is_early_stop() {
        let _ = match sol.bounds {
            Some(b) => writeln!(
                out,
                "anytime: stopped early ({}); optimum within [{}, {}], gap {:.3}",
                sol.terminated_by.name(),
                b.lower,
                b.upper,
                b.gap(),
            ),
            None => writeln!(out, "anytime: stopped early ({})", sol.terminated_by.name()),
        };
    }
    let _ = writeln!(out, "{:>8}  {}", "row", headers.join("  "));
    for &i in &sol.indices {
        let vals: Vec<String> = data.row(i as usize).iter().map(|v| format!("{v:.4}")).collect();
        let _ = writeln!(out, "{:>8}  {}", i, vals.join("  "));
    }
    out
}

/// Hand-rolled JSON solution report (the offline-vendor constraint rules
/// out serde; the grammar here is tiny and fully escaped).
#[allow(clippy::too_many_arguments)]
fn render_json(
    args: &Args,
    data: &Dataset,
    request: &Request,
    sol: &Solution,
    warm: Option<(usize, f64)>,
    prepare_seconds: f64,
    query_seconds: f64,
    threads: usize,
) -> String {
    let command = match args.command {
        Command::Minimize { .. } => "minimize",
        Command::Represent { .. } => "represent",
        Command::Frontier { .. } => "frontier",
    };
    let indices: Vec<String> = sol.indices.iter().map(|i| i.to_string()).collect();
    let certified = sol.certified_regret.map_or("null".to_string(), |k| k.to_string());
    let warmed = warm.map_or(String::new(), |(ok, seconds)| {
        format!("\"warmed\":{ok},\"warm_seconds\":{},", json_f64(seconds))
    });
    let bounds = sol
        .bounds
        .map_or("null".to_string(), |b| format!("{{\"lower\":{},\"upper\":{}}}", b.lower, b.upper));
    let gap = sol.gap().map_or("null".to_string(), json_f64);
    let confidence = match sol.terminated_by {
        crate::TerminatedBy::Sampled { eps, delta, directions } => format!(
            "{{\"eps\":{},\"delta\":{},\"directions\":{directions}}}",
            json_f64(eps),
            json_f64(delta),
        ),
        _ => "null".to_string(),
    };
    format!(
        "{{\"command\":\"{command}\",\"input\":{input},\"n\":{n},\"d\":{d},\
         \"param\":{param},\"algorithm\":\"{algo}\",\"fidelity\":\"{fidelity}\",\
         \"threads\":{threads},\
         \"indices\":[{indices}],\
         \"size\":{size},\"certified_regret\":{certified},\
         \"bounds\":{bounds},\"gap\":{gap},\"confidence\":{confidence},\
         \"terminated_by\":\"{terminated}\",{warmed}\
         \"prepare_seconds\":{prep},\"query_seconds\":{query}}}\n",
        input = json_string(&args.input),
        n = data.n(),
        d = data.dim(),
        param = request.param(),
        algo = sol.algorithm,
        fidelity = request.fidelity.name(),
        indices = indices.join(","),
        size = sol.size(),
        terminated = sol.terminated_by.name(),
        prep = json_f64(prepare_seconds),
        query = json_f64(query_seconds),
    )
}

/// Escape a string per RFC 8259.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Infinity; timings are finite, but keep the encoder
/// total anyway.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_minimize() {
        let a = parse_args(&argv("minimize --input cars.csv --size 5")).unwrap();
        assert_eq!(a.command, Command::Minimize { size: 5 });
        assert_eq!(a.input, "cars.csv");
        assert!(a.has_header && a.normalize && !a.quick);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse_args(&argv(
            "represent --input x.csv --threshold 7 --no-header --columns 0,2 \
             --negate 1 --no-normalize --weak-ranking 1 --quick",
        ))
        .unwrap();
        assert_eq!(a.command, Command::Represent { threshold: 7 });
        assert!(!a.has_header && !a.normalize && a.quick);
        assert_eq!(a.columns, Some(vec![0, 2]));
        assert_eq!(a.negate, vec![1]);
        assert_eq!(a.weak_ranking, Some(1));
    }

    #[test]
    fn parses_algo_flag_through_the_registry() {
        let a = parse_args(&argv("minimize --input x.csv --size 3 --algo mdrc")).unwrap();
        assert_eq!(a.algo, Some(Algorithm::Mdrc));
        let a = parse_args(&argv("minimize --input x.csv --size 3 --algo MDRRR-r")).unwrap();
        assert_eq!(a.algo, Some(Algorithm::MdrrrR));
        // A typo errors and lists every valid name.
        let err = parse_args(&argv("minimize --input x.csv --size 3 --algo mdrx")).unwrap_err();
        assert!(err.contains("valid names"), "{err}");
        assert!(err.contains("HDRRM"), "{err}");
    }

    #[test]
    fn algo_flag_drives_the_solver_end_to_end() {
        let dir = std::env::temp_dir().join("rrm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("algo.csv");
        std::fs::write(
            &path,
            "hp,mpg\n0.0,1.0\n0.4,0.95\n0.57,0.75\n0.79,0.6\n0.2,0.5\n0.35,0.3\n1.0,0.0\n",
        )
        .unwrap();
        let base = format!("minimize --input {} --size 1 --no-normalize", path.display());
        // Brute force agrees with the exact 2D solver on Table I.
        let report =
            run(&parse_args(&argv(&format!("{base} --algo bruteforce"))).unwrap()).unwrap();
        assert!(report.contains("BruteForce: 1 tuples"), "{report}");
        assert!(report.contains("certified rank-regret 3"), "{report}");
        // A no-guarantee baseline reports n/a instead of a certificate.
        let report = run(&parse_args(&argv(&format!("{base} --algo mdrms"))).unwrap()).unwrap();
        assert!(report.contains("MDRMS"), "{report}");
        assert!(report.contains("n/a"), "{report}");
        // Capability mismatch surfaces as a clean error: MDRRR + RRRM.
        let res =
            run(&parse_args(&argv(&format!("{base} --algo mdrrr --weak-ranking 1"))).unwrap());
        assert!(matches!(res, Err(RrmError::Unsupported(_))), "{res:?}");
        // Frontier is 2DRRM-only: any other --algo errors instead of being
        // silently ignored.
        let frontier = format!("frontier --input {} --max-size 3", path.display());
        let res = run(&parse_args(&argv(&format!("{frontier} --algo hdrrm"))).unwrap());
        assert!(
            matches!(&res, Err(RrmError::Unsupported(msg)) if msg.contains("2DRRM")),
            "{res:?}"
        );
        assert!(run(&parse_args(&argv(&format!("{frontier} --algo 2drrm"))).unwrap()).is_ok());
    }

    #[test]
    fn parses_threads_flag() {
        let a = parse_args(&argv("minimize --input x.csv --size 1")).unwrap();
        assert_eq!(a.threads, None);
        let a = parse_args(&argv("minimize --input x.csv --size 1 --threads 4")).unwrap();
        assert_eq!(a.threads, Some(4));
        let a = parse_args(&argv("minimize --input x.csv --size 1 --threads 0")).unwrap();
        assert_eq!(a.threads, Some(0), "0 = all cores");
        assert!(parse_args(&argv("minimize --input x.csv --size 1 --threads four")).is_err());
    }

    #[test]
    fn threads_flag_is_a_pure_speed_knob() {
        // Same CSV, 1 vs 7 threads: byte-identical text reports apart from
        // the timing fields — compare the solution lines only.
        let dir = std::env::temp_dir().join("rrm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("threads.csv");
        std::fs::write(
            &path,
            "hp,mpg\n0.0,1.0\n0.4,0.95\n0.57,0.75\n0.79,0.6\n0.2,0.5\n0.35,0.3\n1.0,0.0\n",
        )
        .unwrap();
        let run_with = |t: usize| {
            let args = parse_args(&argv(&format!(
                "minimize --input {} --size 2 --no-normalize --threads {t} --format json",
                path.display()
            )))
            .unwrap();
            run(&args).unwrap()
        };
        let one = run_with(1);
        let seven = run_with(7);
        assert!(one.contains("\"threads\":1"), "{one}");
        assert!(seven.contains("\"threads\":7"), "{seven}");
        let indices = |s: &str| {
            let start = s.find("\"indices\"").unwrap();
            s[start..s.find(",\"size\"").unwrap()].to_string()
        };
        assert_eq!(indices(&one), indices(&seven), "thread count changed the answer");
        // Frontier JSON reports the thread count too.
        let args = parse_args(&argv(&format!(
            "frontier --input {} --max-size 3 --threads 2 --format json",
            path.display()
        )))
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("\"threads\":2"), "{report}");
    }

    #[test]
    fn warm_flag_prepares_everything_up_front() {
        let a = parse_args(&argv("minimize --input x.csv --size 1")).unwrap();
        assert!(!a.warm);
        let a = parse_args(&argv("minimize --input x.csv --size 1 --warm")).unwrap();
        assert!(a.warm);

        let dir = std::env::temp_dir().join("rrm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.csv");
        std::fs::write(
            &path,
            "hp,mpg\n0.0,1.0\n0.4,0.95\n0.57,0.75\n0.79,0.6\n0.2,0.5\n0.35,0.3\n1.0,0.0\n",
        )
        .unwrap();
        let report = run(&parse_args(&argv(&format!(
            "minimize --input {} --size 1 --no-normalize --warm --quick",
            path.display()
        )))
        .unwrap())
        .unwrap();
        assert!(report.contains("warmed 9/9 prepared solvers"), "{report}");
        let report = run(&parse_args(&argv(&format!(
            "minimize --input {} --size 1 --no-normalize --warm --quick --format json",
            path.display()
        )))
        .unwrap())
        .unwrap();
        assert!(report.contains("\"warmed\":9,\"warm_seconds\":"), "{report}");
        // The answer itself is unchanged by warming.
        assert!(report.contains("\"indices\":[2]"), "{report}");
    }

    #[test]
    fn parses_format_flag() {
        let a = parse_args(&argv("minimize --input x.csv --size 1")).unwrap();
        assert_eq!(a.format, Format::Text);
        let a = parse_args(&argv("minimize --input x.csv --size 1 --format json")).unwrap();
        assert_eq!(a.format, Format::Json);
        let a = parse_args(&argv("minimize --input x.csv --size 1 --format text")).unwrap();
        assert_eq!(a.format, Format::Text);
        let err = parse_args(&argv("minimize --input x.csv --size 1 --format xml")).unwrap_err();
        assert!(err.contains("expected text or json"), "{err}");
    }

    #[test]
    fn json_report_is_machine_readable() {
        let dir = std::env::temp_dir().join("rrm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("json.csv");
        std::fs::write(
            &path,
            "hp,mpg\n0.0,1.0\n0.4,0.95\n0.57,0.75\n0.79,0.6\n0.2,0.5\n0.35,0.3\n1.0,0.0\n",
        )
        .unwrap();
        let args = parse_args(&argv(&format!(
            "minimize --input {} --size 1 --no-normalize --format json",
            path.display()
        )))
        .unwrap();
        let report = run(&args).unwrap();
        // Table I ground truth, now as JSON fields.
        assert!(report.contains("\"command\":\"minimize\""), "{report}");
        assert!(report.contains("\"algorithm\":\"2DRRM\""), "{report}");
        assert!(report.contains("\"indices\":[2]"), "{report}");
        assert!(report.contains("\"certified_regret\":3"), "{report}");
        assert!(report.contains("\"n\":7,\"d\":2"), "{report}");
        assert!(report.contains("\"prepare_seconds\":"), "{report}");
        assert!(report.contains("\"query_seconds\":"), "{report}");
        // No-certificate algorithms emit null, not a fake number.
        let args = parse_args(&argv(&format!(
            "minimize --input {} --size 1 --no-normalize --format json --algo mdrms",
            path.display()
        )))
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("\"certified_regret\":null"), "{report}");
        // Frontier as JSON.
        let args = parse_args(&argv(&format!(
            "frontier --input {} --max-size 3 --format json",
            path.display()
        )))
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("\"command\":\"frontier\""), "{report}");
        assert!(report.contains("\"frontier\":[{\"r\":1,\"regret\":"), "{report}");
    }

    #[test]
    fn parses_anytime_flags() {
        let a = parse_args(&argv("minimize --input x.csv --size 5")).unwrap();
        assert_eq!(a.time_limit_ms, None);
        assert_eq!(a.gap, None);
        let a = parse_args(&argv("minimize --input x.csv --size 5 --time-limit-ms 250")).unwrap();
        assert_eq!(a.time_limit_ms, Some(250));
        let a = parse_args(&argv("minimize --input x.csv --size 5 --gap 0.25")).unwrap();
        assert_eq!(a.gap, Some(0.25));
        assert!(parse_args(&argv("minimize --input x.csv --size 5 --gap 1.5")).is_err());
        assert!(parse_args(&argv("minimize --input x.csv --size 5 --gap nope")).is_err());
        assert!(parse_args(&argv("minimize --input x.csv --size 5 --time-limit-ms x")).is_err());
    }

    #[test]
    fn json_report_carries_anytime_fields() {
        let dir = std::env::temp_dir().join("rrm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("anytime.csv");
        std::fs::write(
            &path,
            "hp,mpg\n0.0,1.0\n0.4,0.95\n0.57,0.75\n0.79,0.6\n0.2,0.5\n0.35,0.3\n1.0,0.0\n",
        )
        .unwrap();
        // The exact 2D solver tracks no anytime bounds.
        let args = parse_args(&argv(&format!(
            "minimize --input {} --size 1 --no-normalize --format json",
            path.display()
        )))
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("\"bounds\":null,\"gap\":null"), "{report}");
        assert!(report.contains("\"terminated_by\":\"completed\""), "{report}");
        // A completed HDRRM run certifies a closed bound (gap 0).
        let args = parse_args(&argv(&format!(
            "minimize --input {} --size 2 --no-normalize --format json --algo hdrrm --quick",
            path.display()
        )))
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("\"terminated_by\":\"completed\""), "{report}");
        assert!(report.contains("\"gap\":0"), "{report}");
        assert!(report.contains("\"bounds\":{\"lower\":"), "{report}");
        // A trivially satisfied gap target stops the search immediately
        // and deterministically, returning the incumbent with its bounds.
        let args = parse_args(&argv(&format!(
            "minimize --input {} --size 2 --no-normalize --format json --algo hdrrm --quick \
             --gap 1.0",
            path.display()
        )))
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("\"terminated_by\":\"gap\""), "{report}");
        // Same cut in text mode announces the early stop with the bounds.
        let args = parse_args(&argv(&format!(
            "minimize --input {} --size 2 --no-normalize --algo hdrrm --quick --gap 1.0",
            path.display()
        )))
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("anytime: stopped early (gap)"), "{report}");
    }

    #[test]
    fn parses_approx_flag() {
        let a = parse_args(&argv("minimize --input x.csv --size 5")).unwrap();
        assert_eq!(a.approx, None);
        let a = parse_args(&argv("minimize --input x.csv --size 5 --approx 0.1")).unwrap();
        assert_eq!(a.approx, Some(ApproxSpec { eps: 0.1, delta: ApproxSpec::default().delta }));
        let a = parse_args(&argv("minimize --input x.csv --size 5 --approx 0.1,0.01")).unwrap();
        assert_eq!(a.approx, Some(ApproxSpec { eps: 0.1, delta: 0.01 }));
        assert!(parse_args(&argv("minimize --input x.csv --size 5 --approx nope")).is_err());
        assert!(parse_args(&argv("minimize --input x.csv --size 5 --approx 1.5")).is_err());
        assert!(parse_args(&argv("minimize --input x.csv --size 5 --approx 0.1,2.0")).is_err());
    }

    #[test]
    fn approx_flag_answers_at_sampled_fidelity() {
        let dir = std::env::temp_dir().join("rrm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("approx.csv");
        std::fs::write(
            &path,
            "hp,mpg\n0.0,1.0\n0.4,0.95\n0.57,0.75\n0.79,0.6\n0.2,0.5\n0.35,0.3\n1.0,0.0\n",
        )
        .unwrap();
        let report = run(&parse_args(&argv(&format!(
            "minimize --input {} --size 1 --no-normalize --approx 0.05 --format json",
            path.display()
        )))
        .unwrap())
        .unwrap();
        assert!(report.contains("\"algorithm\":\"Sampled\""), "{report}");
        assert!(report.contains("\"fidelity\":\"approx\""), "{report}");
        assert!(report.contains("\"terminated_by\":\"sampled\""), "{report}");
        assert!(report.contains("\"confidence\":{\"eps\":0.05,\"delta\":0.05"), "{report}");
        // Table I: {t3} stays the size-1 optimum at sampled fidelity.
        assert!(report.contains("\"indices\":[2]"), "{report}");
        // Text mode announces the confidence statement, not an early stop.
        let report = run(&parse_args(&argv(&format!(
            "minimize --input {} --size 1 --no-normalize --approx 0.05",
            path.display()
        )))
        .unwrap())
        .unwrap();
        assert!(report.contains("approx: regret certified over"), "{report}");
        assert!(!report.contains("stopped early"), "{report}");
        // Exact runs say so in JSON.
        let report = run(&parse_args(&argv(&format!(
            "minimize --input {} --size 1 --no-normalize --format json",
            path.display()
        )))
        .unwrap())
        .unwrap();
        assert!(report.contains("\"fidelity\":\"exact\""), "{report}");
        assert!(report.contains("\"confidence\":null"), "{report}");
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("plain.csv"), "\"plain.csv\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(json_string("ctrl\u{1}"), "\"ctrl\\u0001\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn rejects_missing_required() {
        assert!(parse_args(&argv("minimize --size 5")).is_err());
        assert!(parse_args(&argv("minimize --input x.csv")).is_err());
        assert!(parse_args(&argv("frontier --input x.csv")).is_err());
        assert!(parse_args(&argv("bogus --input x.csv")).is_err());
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&argv("minimize --input x.csv --size five")).is_err());
        assert!(parse_args(&argv("minimize --input x.csv --size 5 --wat")).is_err());
    }

    #[test]
    fn end_to_end_minimize_on_temp_csv() {
        let dir = std::env::temp_dir().join("rrm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cars.csv");
        std::fs::write(
            &path,
            "hp,mpg\n0.0,1.0\n0.4,0.95\n0.57,0.75\n0.79,0.6\n0.2,0.5\n0.35,0.3\n1.0,0.0\n",
        )
        .unwrap();
        let args = parse_args(&argv(&format!(
            "minimize --input {} --size 1 --no-normalize",
            path.display()
        )))
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("7 tuples x 2 attributes"));
        assert!(report.contains("certified rank-regret 3"), "{report}");
        assert!(report.contains("0.5700"), "{report}"); // t3's HP
    }

    #[test]
    fn end_to_end_frontier_and_errors() {
        let dir = std::env::temp_dir().join("rrm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.csv");
        std::fs::write(&path, "a,b,c\n1,2,3\n3,2,1\n2,3,1\n1,1,1\n").unwrap();
        // Frontier on 3 columns: rejected.
        let args = parse_args(&argv(&format!("frontier --input {} --max-size 3", path.display())))
            .unwrap();
        assert!(run(&args).is_err());
        // Projected to 2 columns: works.
        let args = parse_args(&argv(&format!(
            "frontier --input {} --max-size 3 --columns 0,1",
            path.display()
        )))
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("best worst-rank"), "{report}");
    }

    #[test]
    fn negate_makes_smaller_better() {
        let dir = std::env::temp_dir().join("rrm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("price.csv");
        // Tuple 0 dominates once price (col 1) is negated: best quality,
        // lowest price.
        std::fs::write(&path, "quality,price\n0.9,10\n0.8,50\n0.7,90\n").unwrap();
        let args =
            parse_args(&argv(&format!("minimize --input {} --size 1 --negate 1", path.display())))
                .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("certified rank-regret 1"), "{report}");
    }
}
