//! `rrm` — rank-regret queries over CSV files from the command line.
//!
//! ```text
//! rrm minimize  --input cars.csv --size 5
//! rrm represent --input cars.csv --threshold 10
//! rrm frontier  --input cars.csv --max-size 10 --columns 0,1
//! ```
//!
//! See [`rank_regret::cli`] for the full flag reference.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match rank_regret::cli::parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match rank_regret::cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
