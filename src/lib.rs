//! # rank-regret
//!
//! Rank-regret minimizing representatives for multi-criteria
//! decision-making — a Rust implementation of *Rank-Regret Minimization*
//! (Xiao & Li, ICDE 2022), including the paper's exact 2D algorithm
//! (**2DRRM**), its high-dimensional discretize-and-cover algorithm
//! (**HDRRM**), the restricted-space problem variant (**RRRM**), the dual
//! threshold problem (**RRR**), and the baselines it is evaluated against
//! (2DRRR, MDRRR, MDRRRr, MDRC, MDRMS) — all behind one [`Solver`] trait
//! and one [`Engine`] dispatch path.
//!
//! ## The problem
//!
//! Pick `r` tuples from a dataset so that, whatever linear utility
//! function a user has, one of the chosen tuples ranks among the top-`k`
//! of the whole dataset — with `k` (the *rank-regret*) as small as
//! possible. Unlike regret-*ratio* methods (RMS), rank-regret is
//! scale-free and *shift invariant*: translating any attribute leaves the
//! answer unchanged (Theorem 1 of the paper).
//!
//! ## Quickstart: prepare once, query many
//!
//! The recommended way to use this library is a [`Session`]: bind the
//! engine to a dataset once, then answer as many typed [`Request`]s as
//! you like. All per-dataset work — skyline/Pareto filtering, dual
//! arrangements, discretization grids, k-set state — happens at first use
//! and is reused by every later query, so a query stream (the paper's
//! serving workload: one catalog, many users, varying `r`/`k`) runs
//! orders of magnitude faster than re-solving from scratch.
//!
//! ```
//! use rank_regret::prelude::*;
//!
//! // A small car catalog: (miles-per-gallon, horsepower), both scaled.
//! let cars = Dataset::from_rows(&[
//!     [0.0, 1.0], [0.4, 0.95], [0.57, 0.75], [0.79, 0.6],
//!     [0.2, 0.5], [0.35, 0.3], [1.0, 0.0],
//! ]).unwrap();
//!
//! // Bind once. `Auto` picks the exact 2D solver here (d = 2).
//! let session = Session::new(cars);
//!
//! // The best single representative for *any* linear preference.
//! let resp = session.run(&Request::minimize(1)).unwrap();
//! assert_eq!(resp.solution.indices, vec![2]);          // t3 of Table I
//! assert_eq!(resp.solution.certified_regret, Some(3)); // exact rank-regret
//!
//! // More queries against the same prepared state: different sizes, the
//! // dual threshold problem, other algorithms — all cheap now.
//! let batch = [
//!     Request::minimize(2),
//!     Request::represent(2),
//!     Request::minimize(1).algo(Algorithm::BruteForce).budget(Budget::with_samples(2_000)),
//! ];
//! for result in session.run_batch(&batch) {
//!     let resp = result.unwrap();
//!     assert!(resp.solution.size() >= 1);
//! }
//!
//! // Requests are impossible to mis-pair: `minimize` takes the size `r`,
//! // `represent` takes the threshold `k`, bound at construction.
//! assert_eq!(Request::represent(2).param(), 2);
//! ```
//!
//! Prepared handles are `Send + Sync` — share a session across threads
//! and run read-only queries concurrently (see
//! `examples/session_reuse.rs`).
//!
//! ## One-shot queries
//!
//! For a single ad-hoc query, the [`minimize`]/[`represent`] builders are
//! thin wrappers that bind a one-shot session behind the scenes:
//!
//! ```
//! use rank_regret::prelude::*;
//!
//! let cars = Dataset::from_rows(&[
//!     [0.0, 1.0], [0.4, 0.95], [0.57, 0.75], [0.79, 0.6],
//!     [0.2, 0.5], [0.35, 0.3], [1.0, 0.0],
//! ]).unwrap();
//!
//! let sol = rank_regret::minimize(&cars).size(1).solve().unwrap();
//! assert_eq!(sol.indices, vec![2]);
//!
//! // A user who cares about MPG at least as much as HP (RRRM):
//! let sol = rank_regret::minimize(&cars)
//!     .size(1)
//!     .space(WeakRankingSpace::new(2, 1))
//!     .solve()
//!     .unwrap();
//! assert!(sol.certified_regret.unwrap() <= 3);
//!
//! // Capability mismatches fail gracefully: MDRRR has no RRRM mode
//! // (Table III), so a restricted space is a typed error, not a panic.
//! let err = rank_regret::minimize(&cars)
//!     .size(1)
//!     .algo(Algorithm::Mdrrr)
//!     .space(WeakRankingSpace::new(2, 1))
//!     .solve()
//!     .unwrap_err();
//! assert!(matches!(err, RrmError::Unsupported(_)));
//! ```
//!
//! ## Approximate solving
//!
//! [`Request::approx`] selects the sampled-ε tier: instead of certifying
//! the answer over *every* direction, the solver certifies it over a
//! Hoeffding-sized direction sample and says so in the result — the
//! reported regret is exceeded on at most an `eps`-fraction of the
//! utility space with probability at least `1 - delta`
//! ([`TerminatedBy::Sampled`] carries the statement). That is a
//! *fidelity* change, not an early stop: the answer is complete under a
//! weaker, stated guarantee, and it is bit-identical at any thread
//! count. `repro approx` measures the trade on the scenario matrix
//! (≥ 5x end-to-end over exact at the paper's scales, coverage asserted
//! in-run).
//!
//! ```
//! use rank_regret::prelude::*;
//! use rank_regret::TerminatedBy;
//!
//! let data = rank_regret::rrm_data::synthetic::independent(400, 4, 7);
//! let session = Session::new(data);
//! let resp = session.run(&Request::minimize(5).approx(0.1, 0.05)).unwrap();
//! match resp.solution.terminated_by {
//!     TerminatedBy::Sampled { eps, delta, directions } => {
//!         assert_eq!((eps, delta), (0.1, 0.05));
//!         assert!(directions >= 150); // ceil(ln(2/δ)/(2ε²))
//!     }
//!     _ => unreachable!("approx answers state their confidence"),
//! }
//! ```
//!
//! The same dimension flows end to end: over the serve wire protocol
//! (`"approx": {"eps": 0.05, "delta": 0.05}` in a request; responses echo
//! `"fidelity"` and a `"confidence"` block) and on the CLI
//! (`rrm --approx 0.05,0.05 ...`).
//!
//! ## Migrating to the `Request` builder
//!
//! Older layers each had their own knobs: positional
//! `Solver::solve_rrm(r, budget, cutoff, exec)`-style wrappers,
//! `Query::threads`, engine-wide `Tuning.exec`, and separately-plumbed
//! cutoffs. These collapsed into the one fluent [`Request`] builder —
//! `Request::minimize(r).algo(...).budget(...).cutoff(...).threads(...)
//! .approx(...)` — which Engine, Session, the serve protocol and the CLI
//! all construct. Solver implementations take a [`SolverCtx`]; the old
//! 4-arg trait wrappers are gone. `Query` remains as a thin
//! source-compatibility shim over `Request`.
//!
//! ## The engine layer
//!
//! [`Engine`] holds one [`Solver`] per [`Algorithm`] variant (indexed by
//! discriminant — lookups are O(1)). Iterate them, query capabilities,
//! dispatch a typed request one-shot, or prepare handles yourself:
//!
//! ```
//! use rank_regret::prelude::*;
//! use rank_regret::{Engine, AlgoChoice};
//!
//! let engine = Engine::new();
//! assert_eq!(engine.registry().count(), 9);
//! for solver in engine.registry() {
//!     let _ = (solver.name(), solver.has_regret_guarantee(),
//!              solver.supports_restricted_space(), solver.supported_dims());
//! }
//!
//! let cars = Dataset::from_rows(&[[0.0, 1.0], [0.6, 0.7], [1.0, 0.0]]).unwrap();
//! let sol = engine.run(&cars, &FullSpace::new(2), &Request::minimize(1)).unwrap();
//! assert_eq!(sol.size(), 1);
//!
//! // Or hold a prepared handle directly (what Session does lazily):
//! let prepared = engine
//!     .prepare(AlgoChoice::Auto, &cars, &FullSpace::new(2))
//!     .unwrap();
//! assert_eq!(prepared.solve_rrm(1, &Budget::UNLIMITED).unwrap(), sol);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`core`](rrm_core) | datasets, utility spaces, ranking primitives, the [`Solver`] trait, [`Budget`], brute force, the sampled-ε approximate tier (`rrm_core::approx`) |
//! | [`algos2d`](rrm_2d) | 2DRRM (exact) + 2DRRR baseline solvers, Pareto frontier |
//! | [`algoshd`](rrm_hd) | HDRRM/ASMS, MDRRR, MDRRRr, MDRC, MDRMS solvers |
//! | [`skyline`](rrm_skyline) | skyline and restricted U-skyline |
//! | [`geom`](rrm_geom) | dual arrangement, polar grids |
//! | [`lp`](rrm_lp) | dense two-phase simplex |
//! | [`setcover`](rrm_setcover) | lazy greedy set cover, interval cover |
//! | [`data`](rrm_data) | synthetic + simulated-real workloads, the approx scenario matrix |
//! | [`eval`](rrm_eval) | regret estimators (sampled and exact-2D), solver reports |
//! | `rank_regret` (this crate) | the [`Engine`]/[`Query`] layer, builders, CLI |

pub use rrm_2d;
pub use rrm_core;
pub use rrm_data;
pub use rrm_eval;
pub use rrm_geom;
pub use rrm_hd;
pub use rrm_lp;
pub use rrm_par;
pub use rrm_setcover;
pub use rrm_skyline;

pub use rrm_core::{
    apply_updates, Algorithm, AppliedUpdate, ApproxSpec, BiasedOrthantSpace, Bounds, BoxSpace,
    Budget, ConeSpace, Cutoff, Dataset, DimRange, ExecPolicy, Fidelity, FullSpace, Parallelism,
    PreparedSolver, RrmError, SampledOptions, Solution, Solver, SolverCtx, SphereCap, TerminatedBy,
    UpdateOp, UtilitySpace, WeakRankingSpace,
};

pub mod cli;
pub mod engine;

pub use engine::{AlgoChoice, Engine, Query, Request, Response, Session, TaskKind, Tuning};

/// Everything a typical caller needs.
pub mod prelude {
    pub use crate::{
        minimize, represent, session, Algorithm, ApproxSpec, BiasedOrthantSpace, BoxSpace, Budget,
        ConeSpace, Cutoff, Dataset, Engine, ExecPolicy, Fidelity, FullSpace, Parallelism,
        PreparedSolver, Request, Response, RrmError, Session, Solution, Solver, SphereCap,
        UpdateOp, UtilitySpace, WeakRankingSpace,
    };
}

/// Pre-engine solver selector, kept for source compatibility. Maps onto
/// [`AlgoChoice`]; new code should pass an [`Algorithm`] to
/// [`Query::algo`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// 2DRRM for `d = 2` (exact), HDRRM otherwise.
    #[default]
    Auto,
    /// Force the exact 2D dynamic program (errors when `d ≠ 2`).
    Exact2d,
    /// Force HDRRM (works for any `d ≥ 2`).
    Hdrrm,
}

impl From<SolverChoice> for AlgoChoice {
    fn from(choice: SolverChoice) -> AlgoChoice {
        match choice {
            SolverChoice::Auto => AlgoChoice::Auto,
            SolverChoice::Exact2d => AlgoChoice::Fixed(Algorithm::TwoDRrm),
            SolverChoice::Hdrrm => AlgoChoice::Fixed(Algorithm::Hdrrm),
        }
    }
}

impl<'a> Query<'a> {
    /// Source-compatibility shim for the pre-engine API.
    pub fn solver(self, choice: SolverChoice) -> Self {
        self.choice(choice.into())
    }
}

/// Start a rank-regret **minimization** query (RRM, or RRRM with
/// [`Query::space`]): best set of at most `r` tuples.
pub fn minimize(data: &Dataset) -> Query<'_> {
    Query::new(data, TaskKind::Minimize)
}

/// Start a rank-regret **representative** query (RRR): smallest set with
/// rank-regret at most `k`.
pub fn represent(data: &Dataset) -> Query<'_> {
    Query::new(data, TaskKind::Represent)
}

/// Bind a [`Session`] over a clone of `data` with the default engine —
/// the prepare-once / query-many entry point. Use [`Session::with_engine`]
/// or [`Query::session`] for tuned engines or restricted spaces.
pub fn session(data: &Dataset) -> Session {
    Session::new(data.clone())
}

/// Pre-engine name for [`Query`], kept for source compatibility.
pub type MinimizeBuilder<'a> = Query<'a>;
/// Pre-engine name for [`Query`], kept for source compatibility.
pub type RepresentBuilder<'a> = Query<'a>;

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_hd::HdrrmOptions;

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn minimize_auto_2d() {
        let sol = minimize(&table1()).size(1).solve().unwrap();
        assert_eq!(sol.indices, vec![2]);
        assert_eq!(sol.algorithm, Algorithm::TwoDRrm);
    }

    #[test]
    fn minimize_auto_hd() {
        let data = rrm_data::synthetic::independent(300, 3, 1);
        let sol = minimize(&data)
            .size(8)
            .hdrrm_options(HdrrmOptions { m_override: Some(200), ..Default::default() })
            .solve()
            .unwrap();
        assert!(sol.size() <= 8);
        assert_eq!(sol.algorithm, Algorithm::Hdrrm);
    }

    #[test]
    fn forced_hdrrm_on_2d() {
        let data = rrm_data::synthetic::independent(200, 2, 2);
        let sol = minimize(&data)
            .size(5)
            .solver(SolverChoice::Hdrrm)
            .hdrrm_options(HdrrmOptions { m_override: Some(150), ..Default::default() })
            .solve()
            .unwrap();
        assert_eq!(sol.algorithm, Algorithm::Hdrrm);
    }

    #[test]
    fn forced_exact_on_hd_fails() {
        let data = rrm_data::synthetic::independent(50, 3, 3);
        assert!(minimize(&data).size(5).solver(SolverChoice::Exact2d).solve().is_err());
    }

    #[test]
    fn represent_2d_exact() {
        let sol = represent(&table1()).threshold(2).solve().unwrap();
        assert!(sol.certified_regret.unwrap() <= 2);
        // Exact RRR: no smaller set achieves threshold 2; check against
        // the frontier.
        let frontier = rrm_2d::pareto_frontier(
            &table1(),
            5,
            &FullSpace::new(2),
            rrm_2d::Rrm2dOptions::default(),
        )
        .unwrap();
        let min_size = frontier.iter().find(|p| p.regret <= 2).unwrap().r;
        assert_eq!(sol.size(), min_size);
    }

    #[test]
    fn restricted_space_via_builder() {
        let sol = minimize(&table1()).size(1).space(WeakRankingSpace::new(2, 1)).solve().unwrap();
        assert!(sol.certified_regret.unwrap() <= 3);
    }

    #[test]
    fn every_algorithm_is_reachable_from_the_facade() {
        // The acceptance bar for the engine refactor: all nine variants
        // runnable with one selector, on the Table I dataset.
        for algo in Algorithm::ALL {
            let sol = minimize(&table1())
                .size(3)
                .algo(algo)
                .budget(Budget::with_samples(400))
                .solve()
                .unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert_eq!(sol.algorithm, algo, "{algo}");
            assert!(sol.size() <= 3, "{algo}");
        }
    }

    #[test]
    fn mismatched_setter_is_rejected_not_misrun() {
        // The merged Query can no longer reject this at compile time, so
        // it must be a typed runtime error, never a silently-wrong query.
        let err = minimize(&table1()).threshold(2).solve().unwrap_err();
        assert!(matches!(&err, RrmError::Unsupported(msg) if msg.contains(".size()")), "{err}");
        let err = represent(&table1()).size(2).solve().unwrap_err();
        assert!(
            matches!(&err, RrmError::Unsupported(msg) if msg.contains(".threshold()")),
            "{err}"
        );
    }

    #[test]
    fn solver_choice_shim_maps_to_algo_choice() {
        assert_eq!(AlgoChoice::from(SolverChoice::Auto), AlgoChoice::Auto);
        assert_eq!(AlgoChoice::from(SolverChoice::Exact2d), AlgoChoice::Fixed(Algorithm::TwoDRrm));
        assert_eq!(AlgoChoice::from(SolverChoice::Hdrrm), AlgoChoice::Fixed(Algorithm::Hdrrm));
    }
}
