//! # rank-regret
//!
//! Rank-regret minimizing representatives for multi-criteria
//! decision-making — a Rust implementation of *Rank-Regret Minimization*
//! (Xiao & Li, ICDE 2022), including the paper's exact 2D algorithm
//! (**2DRRM**), its high-dimensional discretize-and-cover algorithm
//! (**HDRRM**), the restricted-space problem variant (**RRRM**), the dual
//! threshold problem (**RRR**), and the baselines it is evaluated against
//! (2DRRR, MDRRR, MDRRRr, MDRC, MDRMS).
//!
//! ## The problem
//!
//! Pick `r` tuples from a dataset so that, whatever linear utility
//! function a user has, one of the chosen tuples ranks among the top-`k`
//! of the whole dataset — with `k` (the *rank-regret*) as small as
//! possible. Unlike regret-*ratio* methods (RMS), rank-regret is
//! scale-free and *shift invariant*: translating any attribute leaves the
//! answer unchanged (Theorem 1 of the paper).
//!
//! ## Quickstart
//!
//! ```
//! use rank_regret::prelude::*;
//!
//! // A small car catalog: (miles-per-gallon, horsepower), both scaled.
//! let cars = Dataset::from_rows(&[
//!     [0.0, 1.0], [0.4, 0.95], [0.57, 0.75], [0.79, 0.6],
//!     [0.2, 0.5], [0.35, 0.3], [1.0, 0.0],
//! ]).unwrap();
//!
//! // The best single representative for *any* linear preference:
//! let sol = rank_regret::minimize(&cars).size(1).solve().unwrap();
//! assert_eq!(sol.indices, vec![2]);              // t3 of the paper's Table I
//! assert_eq!(sol.certified_regret, Some(3));     // its exact rank-regret
//!
//! // A user who cares about MPG at least as much as HP (RRRM):
//! let sol = rank_regret::minimize(&cars)
//!     .size(1)
//!     .space(WeakRankingSpace::new(2, 1))
//!     .solve()
//!     .unwrap();
//! assert!(sol.certified_regret.unwrap() <= 3);
//!
//! // The dual question (RRR): how few tuples guarantee top-2 for everyone?
//! let sol = rank_regret::represent(&cars).threshold(2).solve().unwrap();
//! assert!(sol.certified_regret.unwrap() <= 2);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`core`](rrm_core) | datasets, utility spaces, ranking primitives |
//! | [`algos2d`](rrm_2d) | 2DRRM (exact), 2DRRR baseline, Pareto frontier |
//! | [`algoshd`](rrm_hd) | HDRRM/ASMS, MDRRR, MDRRRr, MDRC, MDRMS |
//! | [`skyline`](rrm_skyline) | skyline and restricted U-skyline |
//! | [`geom`](rrm_geom) | dual arrangement, polar grids |
//! | [`lp`](rrm_lp) | dense two-phase simplex |
//! | [`setcover`](rrm_setcover) | lazy greedy set cover, interval cover |
//! | [`data`](rrm_data) | synthetic + simulated-real workloads |
//! | [`eval`](rrm_eval) | regret estimators (sampled and exact-2D) |

pub use rrm_2d;
pub use rrm_core;
pub use rrm_data;
pub use rrm_eval;
pub use rrm_geom;
pub use rrm_hd;
pub use rrm_lp;
pub use rrm_setcover;
pub use rrm_skyline;

pub use rrm_core::{
    Algorithm, BiasedOrthantSpace, BoxSpace, ConeSpace, Dataset, FullSpace, RrmError,
    Solution, SphereCap, UtilitySpace, WeakRankingSpace,
};

pub mod cli;

/// Everything a typical caller needs.
pub mod prelude {
    pub use crate::{
        minimize, represent, Algorithm, BiasedOrthantSpace, BoxSpace, ConeSpace, Dataset,
        FullSpace, RrmError, Solution, SphereCap, UtilitySpace, WeakRankingSpace,
    };
}

use ::rrm_2d::{rrm_2d as rrm_2d_solve, rrr_exact_2d, Rrm2dOptions};
use ::rrm_hd::{hdrrm, hdrrr, HdrrmOptions};

/// Which solver the facade should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// 2DRRM for `d = 2` (exact), HDRRM otherwise.
    #[default]
    Auto,
    /// Force the exact 2D dynamic program (errors when `d ≠ 2`).
    Exact2d,
    /// Force HDRRM (works for any `d ≥ 2`).
    Hdrrm,
}

/// Start a rank-regret **minimization** query (RRM, or RRRM with
/// [`MinimizeBuilder::space`]): best set of at most `r` tuples.
pub fn minimize(data: &Dataset) -> MinimizeBuilder<'_> {
    MinimizeBuilder {
        data,
        r: 1,
        space: None,
        solver: SolverChoice::Auto,
        hdrrm_options: HdrrmOptions::default(),
        rrm2d_options: Rrm2dOptions::default(),
    }
}

/// Start a rank-regret **representative** query (RRR): smallest set with
/// rank-regret at most `k`.
pub fn represent(data: &Dataset) -> RepresentBuilder<'_> {
    RepresentBuilder {
        data,
        k: 1,
        space: None,
        solver: SolverChoice::Auto,
        hdrrm_options: HdrrmOptions::default(),
        rrm2d_options: Rrm2dOptions::default(),
    }
}

/// Builder for [`minimize`].
pub struct MinimizeBuilder<'a> {
    data: &'a Dataset,
    r: usize,
    space: Option<Box<dyn UtilitySpace>>,
    solver: SolverChoice,
    hdrrm_options: HdrrmOptions,
    rrm2d_options: Rrm2dOptions,
}

impl<'a> MinimizeBuilder<'a> {
    /// Output size bound `r` (default 1).
    pub fn size(mut self, r: usize) -> Self {
        self.r = r;
        self
    }

    /// Restrict the utility space (turns RRM into RRRM).
    pub fn space(mut self, space: impl UtilitySpace + 'static) -> Self {
        self.space = Some(Box::new(space));
        self
    }

    /// Force a specific solver.
    pub fn solver(mut self, solver: SolverChoice) -> Self {
        self.solver = solver;
        self
    }

    /// Tune HDRRM (γ, δ, sample count, seed).
    pub fn hdrrm_options(mut self, options: HdrrmOptions) -> Self {
        self.hdrrm_options = options;
        self
    }

    /// Tune the 2D solver (event chunking, paper-faithful sweep).
    pub fn rrm2d_options(mut self, options: Rrm2dOptions) -> Self {
        self.rrm2d_options = options;
        self
    }

    /// Run the query.
    pub fn solve(self) -> Result<Solution, RrmError> {
        let d = self.data.dim();
        let space: Box<dyn UtilitySpace> =
            self.space.unwrap_or_else(|| Box::new(FullSpace::new(d)));
        let use_exact = match self.solver {
            SolverChoice::Exact2d if d != 2 => {
                return Err(RrmError::Unsupported("the exact solver requires d = 2".into()))
            }
            SolverChoice::Exact2d => true,
            SolverChoice::Hdrrm => false,
            SolverChoice::Auto => d == 2,
        };
        if use_exact {
            rrm_2d_solve(self.data, self.r, space.as_ref(), self.rrm2d_options)
        } else {
            hdrrm(self.data, self.r, space.as_ref(), self.hdrrm_options)
        }
    }
}

/// Builder for [`represent`].
pub struct RepresentBuilder<'a> {
    data: &'a Dataset,
    k: usize,
    space: Option<Box<dyn UtilitySpace>>,
    solver: SolverChoice,
    hdrrm_options: HdrrmOptions,
    rrm2d_options: Rrm2dOptions,
}

impl<'a> RepresentBuilder<'a> {
    /// Rank-regret threshold `k` (default 1: contain everyone's top-1).
    pub fn threshold(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Restrict the utility space (restricted RRR).
    pub fn space(mut self, space: impl UtilitySpace + 'static) -> Self {
        self.space = Some(Box::new(space));
        self
    }

    /// Force a specific solver.
    pub fn solver(mut self, solver: SolverChoice) -> Self {
        self.solver = solver;
        self
    }

    /// Tune HDRRM (γ, δ, sample count, seed).
    pub fn hdrrm_options(mut self, options: HdrrmOptions) -> Self {
        self.hdrrm_options = options;
        self
    }

    /// Tune the 2D solver.
    pub fn rrm2d_options(mut self, options: Rrm2dOptions) -> Self {
        self.rrm2d_options = options;
        self
    }

    /// Run the query.
    pub fn solve(self) -> Result<Solution, RrmError> {
        let d = self.data.dim();
        let space: Box<dyn UtilitySpace> =
            self.space.unwrap_or_else(|| Box::new(FullSpace::new(d)));
        let use_exact = match self.solver {
            SolverChoice::Exact2d if d != 2 => {
                return Err(RrmError::Unsupported("the exact solver requires d = 2".into()))
            }
            SolverChoice::Exact2d => true,
            SolverChoice::Hdrrm => false,
            SolverChoice::Auto => d == 2,
        };
        if use_exact {
            rrr_exact_2d(self.data, self.k, space.as_ref(), self.rrm2d_options)
        } else {
            hdrrr(self.data, self.k, space.as_ref(), self.hdrrm_options)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn minimize_auto_2d() {
        let sol = minimize(&table1()).size(1).solve().unwrap();
        assert_eq!(sol.indices, vec![2]);
        assert_eq!(sol.algorithm, Algorithm::TwoDRrm);
    }

    #[test]
    fn minimize_auto_hd() {
        let data = rrm_data::synthetic::independent(300, 3, 1);
        let sol = minimize(&data)
            .size(8)
            .hdrrm_options(HdrrmOptions { m_override: Some(200), ..Default::default() })
            .solve()
            .unwrap();
        assert!(sol.size() <= 8);
        assert_eq!(sol.algorithm, Algorithm::Hdrrm);
    }

    #[test]
    fn forced_hdrrm_on_2d() {
        let data = rrm_data::synthetic::independent(200, 2, 2);
        let sol = minimize(&data)
            .size(5)
            .solver(SolverChoice::Hdrrm)
            .hdrrm_options(HdrrmOptions { m_override: Some(150), ..Default::default() })
            .solve()
            .unwrap();
        assert_eq!(sol.algorithm, Algorithm::Hdrrm);
    }

    #[test]
    fn forced_exact_on_hd_fails() {
        let data = rrm_data::synthetic::independent(50, 3, 3);
        assert!(minimize(&data).size(5).solver(SolverChoice::Exact2d).solve().is_err());
    }

    #[test]
    fn represent_2d_exact() {
        let sol = represent(&table1()).threshold(2).solve().unwrap();
        assert!(sol.certified_regret.unwrap() <= 2);
        // Exact RRR: no smaller set achieves threshold 2; check against
        // the frontier.
        let frontier = rrm_2d::pareto_frontier(
            &table1(),
            5,
            &FullSpace::new(2),
            rrm_2d::Rrm2dOptions::default(),
        )
        .unwrap();
        let min_size = frontier.iter().find(|p| p.regret <= 2).unwrap().r;
        assert_eq!(sol.size(), min_size);
    }

    #[test]
    fn restricted_space_via_builder() {
        let sol = minimize(&table1())
            .size(1)
            .space(WeakRankingSpace::new(2, 1))
            .solve()
            .unwrap();
        assert!(sol.certified_regret.unwrap() <= 3);
    }
}
