//! Offline stand-in for `proptest`, covering the subset the workspace's
//! property tests use: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], and the `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics differ from upstream in one deliberate way: failing cases are
//! *not shrunk*. Every case is generated from a seed derived
//! deterministically from the test name and case index, so a failure
//! message's case number is enough to reproduce it exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assert*` failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the case is outside the property's domain.
    Reject,
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG for one generated case.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    // FNV-1a over the test name keeps seeds stable across runs and
    // distinct across tests.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of test inputs. Unlike upstream there is no shrinking tree;
/// a strategy is just a seeded generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Element-count bound for [`vec()`]: an exact count or a half-open
    /// range, mirroring upstream's `SizeRange` conversions.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}: {}", a, b, format!($($fmt)+));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{:?} == {:?}", a, b);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { @config($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    (@config($config:expr)
     $( $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rejected: u32 = 0;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case as u64);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: $crate::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match __outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => __rejected += 1,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}/{}: {}",
                                stringify!($name),
                                __case,
                                __config.cases,
                                msg
                            );
                        }
                    }
                }
                assert!(
                    __rejected < __config.cases,
                    "proptest {}: every case was rejected by prop_assume!",
                    stringify!($name)
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u32, u32)>> {
        crate::collection::vec((0u32..100, 0u32..100), 1..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size((_, v) in (0u32..5, crate::collection::vec(0u32..9, 2..6))) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in v {
                prop_assert!(e < 9);
            }
        }

        #[test]
        fn flat_map_and_assume(v in pairs()) {
            prop_assume!(!v.is_empty());
            let doubled: Vec<u64> = v.iter().map(|&(a, b)| (a + b) as u64 * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
        }
    }

    #[test]
    fn determinism_across_runs() {
        let a = pairs().generate(&mut crate::case_rng("t", 9));
        let b = pairs().generate(&mut crate::case_rng("t", 9));
        assert_eq!(a, b);
    }
}
