//! Offline stand-in for `criterion`, covering the subset the bench crate
//! uses: `criterion_group!`/`criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`] with `bench_function`/`bench_with_input`/`finish`,
//! [`BenchmarkId`], and [`Bencher::iter`].
//!
//! Instead of upstream's statistical machinery it times `sample_size`
//! repetitions of each closure and prints min/mean wall-clock times — good
//! enough for relative comparisons in an offline container, and API
//! compatible so the real crate can be swapped back in where crates.io is
//! reachable.

use std::fmt::Display;
use std::time::Instant;

/// Named benchmark identifier (`group/function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the measured closure.
pub struct Bencher {
    iters: u64,
    /// Total time spent inside `iter` closures.
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
    }
}

/// Top-level handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed repetitions per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    /// Upstream parses CLI filters here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let sample_size = self.sample_size;
        run_benchmark(&id.to_string(), sample_size, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut times_ns: Vec<u128> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { iters: 1, elapsed_ns: 0 };
        f(&mut bencher);
        times_ns.push(bencher.elapsed_ns);
    }
    let min = *times_ns.iter().min().unwrap_or(&0);
    let mean = times_ns.iter().sum::<u128>() / times_ns.len().max(1) as u128;
    println!(
        "bench {label:<50} min {:>12} mean {:>12}  ({} samples)",
        format_ns(min),
        format_ns(mean),
        sample_size
    );
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Mirrors `criterion::black_box`; prefer `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50u32), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn group_and_bencher_run() {
        let mut c = Criterion::default().sample_size(2);
        trivial_bench(&mut c);
        c.bench_function("top-level", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
