//! Offline stand-in for the `rand` crate, exposing the 0.9-era subset this
//! workspace uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait (`random`, `random_range`, `random_bool`) and [`rngs::StdRng`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim via a path dependency. `StdRng` here is xoshiro256**
//! seeded through SplitMix64 — a different stream than upstream's ChaCha12,
//! but every consumer in this workspace only relies on *seeded
//! determinism* and reasonable uniformity, not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        (**self).fill_bytes(dst)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        (**self).fill_bytes(dst)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Derive a full seed from a `u64` via SplitMix64 (the upstream
    /// convention for cheap deterministic seeding).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(out.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Marker distribution for `Rng::random` (upstream: `StandardUniform`).
pub struct StandardUniform;

/// Types a [`StandardUniform`] draw can produce.
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // Guard before adding 1: for a full-width u64/usize range
                // the +1 would overflow (a debug-build panic).
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Two's-complement distance; wrapping_sub is exact even
                // when the signed subtraction would overflow (e.g.
                // i64::MIN..i64::MAX).
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i64).wrapping_sub(lo as i64) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (width + 1)) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dst: &mut [u8]) {
            for chunk in dst.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 0xAEF1_7502_B3DE_23A1, 1];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&w));
            let f = rng.random_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn extreme_ranges_do_not_overflow() {
        // Full-width and near-full-width ranges must not panic in debug
        // builds (the +1 / signed-subtraction overflow traps).
        let mut rng = StdRng::seed_from_u64(2);
        let _ = rng.random_range(0u64..=u64::MAX);
        let _ = rng.random_range(0usize..=usize::MAX);
        let _ = rng.random_range(i64::MIN..=i64::MAX);
        let _ = rng.random_range(i64::MIN..i64::MAX);
        let v = rng.random_range(u64::MAX - 1..=u64::MAX);
        assert!(v >= u64::MAX - 1);
        let w = rng.random_range(i32::MIN..=i32::MIN + 1);
        assert!(w <= i32::MIN + 1);
    }

    #[test]
    fn dyn_rng_core_works_through_extension_trait() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn super::RngCore = &mut rng;
        let v: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&v));
    }
}
