//! Set cover and interval cover.
//!
//! * [`greedy`] — Chvátal's greedy set cover with the lazy-evaluation
//!   optimization, the engine inside HDRRM's `ASMS` solver and the MDRRR
//!   baselines (paper Section V-B). Guarantees the classic
//!   `1 + ln |universe|` approximation ratio.
//! * [`interval`] — optimal cover of a segment by intervals, the engine of
//!   the 2DRRR baseline (minimum number of `[a_l, b_l]` windows covering
//!   the normalized weight range).

pub mod greedy;
pub mod interval;

pub use greedy::{greedy_set_cover, greedy_set_cover_capped, naive_greedy_set_cover};
pub use interval::{cover_segment, Interval};
