//! Optimal segment cover by intervals — the combinatorial core of the
//! 2DRRR baseline.
//!
//! Each candidate tuple contributes one window `[lo, hi]` of normalized
//! weights where its rank stays acceptable; covering `[seg_lo, seg_hi]`
//! with the fewest windows is solved exactly by the classic greedy scan
//! (among windows starting at or before the current frontier, extend
//! furthest).

/// A closed interval `[lo, hi]` tagged with the id of the tuple (or line)
/// that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
    pub id: u32,
}

impl Interval {
    pub fn new(lo: f64, hi: f64, id: u32) -> Self {
        debug_assert!(lo <= hi, "malformed interval [{lo}, {hi}]");
        Self { lo, hi, id }
    }
}

/// Minimum-cardinality cover of `[seg_lo, seg_hi]` by the given intervals.
///
/// Returns the chosen intervals in left-to-right order, or `None` when no
/// cover exists. `tol` absorbs floating-point gaps: an interval starting
/// within `tol` of the current frontier is considered touching.
pub fn cover_segment(
    intervals: &[Interval],
    seg_lo: f64,
    seg_hi: f64,
    tol: f64,
) -> Option<Vec<Interval>> {
    if seg_lo > seg_hi {
        return Some(Vec::new());
    }
    let mut sorted: Vec<&Interval> = intervals.iter().collect();
    sorted.sort_unstable_by(|a, b| {
        a.lo.partial_cmp(&b.lo).expect("finite").then(b.hi.partial_cmp(&a.hi).expect("finite"))
    });

    let mut chosen = Vec::new();
    let mut frontier = seg_lo;
    let mut i = 0;
    loop {
        // Among intervals starting at or before the frontier, take the one
        // reaching furthest.
        let mut best: Option<&Interval> = None;
        while i < sorted.len() && sorted[i].lo <= frontier + tol {
            if best.is_none_or(|b| sorted[i].hi > b.hi) {
                best = Some(sorted[i]);
            }
            i += 1;
        }
        let Some(b) = best else {
            return None; // gap at `frontier`
        };
        if b.hi <= frontier + tol && b.hi < seg_hi - tol {
            return None; // cannot advance: zero-progress pick
        }
        chosen.push(*b);
        frontier = b.hi;
        if frontier >= seg_hi - tol {
            return Some(chosen);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn iv(lo: f64, hi: f64, id: u32) -> Interval {
        Interval::new(lo, hi, id)
    }

    #[test]
    fn single_interval_covers() {
        let c = cover_segment(&[iv(0.0, 1.0, 7)], 0.0, 1.0, TOL).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].id, 7);
    }

    #[test]
    fn greedy_is_optimal_three_vs_two() {
        // Two long intervals suffice even though three shorter ones are
        // listed first.
        let intervals = vec![
            iv(0.0, 0.4, 0),
            iv(0.3, 0.7, 1),
            iv(0.6, 1.0, 2),
            iv(0.0, 0.55, 3),
            iv(0.5, 1.0, 4),
        ];
        let c = cover_segment(&intervals, 0.0, 1.0, TOL).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].id, 3);
        assert_eq!(c[1].id, 4);
    }

    #[test]
    fn gap_detected() {
        let intervals = vec![iv(0.0, 0.4, 0), iv(0.5, 1.0, 1)];
        assert!(cover_segment(&intervals, 0.0, 1.0, TOL).is_none());
    }

    #[test]
    fn touching_endpoints_cover() {
        let intervals = vec![iv(0.0, 0.5, 0), iv(0.5, 1.0, 1)];
        let c = cover_segment(&intervals, 0.0, 1.0, TOL).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn sub_segment_cover() {
        // Covering only [0.2, 0.6] needs a single window.
        let intervals = vec![iv(0.0, 0.3, 0), iv(0.1, 0.7, 1), iv(0.5, 1.0, 2)];
        let c = cover_segment(&intervals, 0.2, 0.6, TOL).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].id, 1);
    }

    #[test]
    fn empty_segment_needs_nothing() {
        let c = cover_segment(&[], 0.5, 0.4, TOL).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn no_intervals_no_cover() {
        assert!(cover_segment(&[], 0.0, 1.0, TOL).is_none());
    }

    #[test]
    fn point_segment() {
        let c = cover_segment(&[iv(0.4, 0.6, 3)], 0.5, 0.5, TOL).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn tolerance_bridges_float_noise() {
        let eps = 1e-13;
        let intervals = vec![iv(0.0, 0.5, 0), iv(0.5 + eps, 1.0, 1)];
        // Strict tol = 0 fails, practical tol bridges it.
        assert!(cover_segment(&intervals, 0.0, 1.0, 0.0).is_none());
        assert!(cover_segment(&intervals, 0.0, 1.0, 1e-9).is_some());
    }

    #[test]
    fn greedy_matches_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..200 {
            let n = rng.random_range(1..10usize);
            let intervals: Vec<Interval> = (0..n)
                .map(|i| {
                    let a = rng.random::<f64>();
                    let b = rng.random::<f64>();
                    iv(a.min(b), a.max(b), i as u32)
                })
                .collect();
            let greedy = cover_segment(&intervals, 0.0, 1.0, TOL);
            // Brute force over all subsets.
            let mut best: Option<usize> = None;
            for mask in 1u32..(1 << n) {
                let subset: Vec<&Interval> =
                    (0..n).filter(|&i| mask & (1 << i) != 0).map(|i| &intervals[i]).collect();
                let mut pts: Vec<f64> = subset.iter().flat_map(|v| [v.lo, v.hi]).collect();
                pts.push(0.0);
                pts.push(1.0);
                pts.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
                // Subset covers [0,1] iff every gap midpoint is inside some
                // member and 0/1 are inside members.
                let covered = |x: f64| subset.iter().any(|v| v.lo <= x && x <= v.hi);
                let ok = (0.0f64..=1.0).contains(&0.0)
                    && covered(0.0)
                    && covered(1.0)
                    && pts.windows(2).all(|w| {
                        let mid = 0.5 * (w[0] + w[1]);
                        !(0.0..=1.0).contains(&mid) || covered(mid)
                    });
                if ok {
                    let k = mask.count_ones() as usize;
                    best = Some(best.map_or(k, |b: usize| b.min(k)));
                }
            }
            match (greedy, best) {
                (Some(g), Some(b)) => assert_eq!(g.len(), b, "trial {trial}"),
                (None, None) => {}
                (g, b) => panic!("trial {trial}: greedy {g:?} vs brute {b:?}"),
            }
        }
    }
}
