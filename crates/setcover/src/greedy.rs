//! Greedy set cover (Chvátal 1979) with lazy evaluation.
//!
//! The universe is `0..universe_size`; each candidate set is a list of
//! element ids. The greedy algorithm repeatedly takes the set covering the
//! most still-uncovered elements, achieving a `1 + ln(universe)` size
//! approximation — the bound Theorem 9 inherits.
//!
//! The lazy variant keeps stale coverage counts in a max-heap and
//! recomputes a count only when a set reaches the top. Because coverage
//! counts only decrease as elements get covered, the first entry whose
//! recomputed count equals its stale key is the true maximum. This is the
//! standard submodular-maximization trick and cuts the `O(|U|·|V|)` naive
//! cost down to roughly the total size of the inputs for typical instances
//! (measured in `ablation_lazy_greedy`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Greedy set cover with lazy evaluation.
///
/// Returns the indices of chosen sets, in pick order.
///
/// # Panics
/// Panics when some universe element is covered by no set (the instances
/// built by ASMS always cover: every vector is covered by its own top-1
/// tuple).
pub fn greedy_set_cover(universe_size: usize, sets: &[Vec<u32>]) -> Vec<usize> {
    greedy_set_cover_capped(universe_size, sets, usize::MAX).0
}

/// Greedy set cover that aborts once more than `cap` sets have been chosen.
///
/// Greedy picks are monotone and deterministic, so the first `cap + 1` picks
/// of the capped run are exactly the first `cap + 1` picks of the uncapped
/// run. Callers that only need to decide "does the greedy cover fit in `cap`
/// sets?" can therefore abort early without changing the decision — the
/// prune used by the anytime feasibility probes.
///
/// Returns `(chosen, complete)`: `complete` is `false` iff the run aborted
/// because `chosen.len()` exceeded `cap` (the returned prefix then has
/// `cap + 1` picks, proving the full cover is larger than `cap`).
///
/// # Panics
/// Panics when some uncovered universe element is covered by no set before
/// the cap is hit (the instances built by ASMS always cover: every vector is
/// covered by its own top-1 tuple).
pub fn greedy_set_cover_capped(
    universe_size: usize,
    sets: &[Vec<u32>],
    cap: usize,
) -> (Vec<usize>, bool) {
    if universe_size == 0 {
        return (Vec::new(), true);
    }
    let mut covered = vec![false; universe_size];
    let mut remaining = universe_size;
    // Heap of (stale_count, Reverse(set_index)): ties on count prefer the
    // smallest index, making the pick sequence identical to the naive
    // reference implementation.
    let mut heap: BinaryHeap<(usize, Reverse<usize>)> = sets
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(i, s)| (s.len(), Reverse(i)))
        .collect();
    let mut chosen = Vec::new();

    while remaining > 0 {
        if chosen.len() > cap {
            return (chosen, false);
        }
        let Some((stale, Reverse(i))) = heap.pop() else {
            panic!("set-cover instance is infeasible: {remaining} elements uncoverable");
        };
        // Recompute the true residual coverage of set i.
        let fresh = sets[i].iter().filter(|&&e| !covered[e as usize]).count();
        if fresh == 0 {
            continue;
        }
        if fresh < stale {
            // Another set may now be better; push back with the true count.
            heap.push((fresh, Reverse(i)));
            continue;
        }
        // fresh == stale: counts only decrease, so i is the true maximum.
        chosen.push(i);
        for &e in &sets[i] {
            if !covered[e as usize] {
                covered[e as usize] = true;
                remaining -= 1;
            }
        }
    }
    (chosen, true)
}

/// Textbook greedy without lazy evaluation — `O(rounds · Σ|set|)`. Kept as
/// the reference implementation for tests and the `ablation_lazy_greedy`
/// benchmark.
pub fn naive_greedy_set_cover(universe_size: usize, sets: &[Vec<u32>]) -> Vec<usize> {
    if universe_size == 0 {
        return Vec::new();
    }
    let mut covered = vec![false; universe_size];
    let mut remaining = universe_size;
    let mut chosen = Vec::new();
    while remaining > 0 {
        let mut best = usize::MAX;
        let mut best_count = 0;
        for (i, s) in sets.iter().enumerate() {
            let c = s.iter().filter(|&&e| !covered[e as usize]).count();
            if c > best_count {
                best_count = c;
                best = i;
            }
        }
        assert!(best != usize::MAX, "set-cover instance is infeasible");
        chosen.push(best);
        for &e in &sets[best] {
            if !covered[e as usize] {
                covered[e as usize] = true;
                remaining -= 1;
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn covers(universe: usize, sets: &[Vec<u32>], chosen: &[usize]) -> bool {
        let mut covered = vec![false; universe];
        for &i in chosen {
            for &e in &sets[i] {
                covered[e as usize] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    #[test]
    fn simple_instance() {
        let sets = vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![0, 4]];
        let c = greedy_set_cover(5, &sets);
        assert!(covers(5, &sets, &c));
        assert!(c.len() <= 3);
    }

    #[test]
    fn greedy_picks_biggest_first() {
        let sets = vec![vec![0], vec![0, 1, 2, 3], vec![4]];
        let c = greedy_set_cover(5, &sets);
        assert_eq!(c[0], 1);
        assert!(covers(5, &sets, &c));
    }

    #[test]
    fn empty_universe() {
        assert!(greedy_set_cover(0, &[vec![0]]).is_empty());
        assert!(naive_greedy_set_cover(0, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_instance_panics() {
        greedy_set_cover(3, &[vec![0, 1]]);
    }

    #[test]
    fn duplicate_elements_in_a_set() {
        let sets = vec![vec![0, 0, 1], vec![1, 2]];
        let c = greedy_set_cover(3, &sets);
        assert!(covers(3, &sets, &c));
    }

    #[test]
    fn lazy_matches_naive_cover_size_on_random_instances() {
        // The two variants may pick different (tie-broken) sets, but both
        // must produce valid covers; on tie-free instances the sizes agree.
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..50 {
            let universe = rng.random_range(1..80);
            let nsets = rng.random_range(1..40);
            let mut sets: Vec<Vec<u32>> = (0..nsets)
                .map(|_| {
                    let len = rng.random_range(1..=universe);
                    (0..len).map(|_| rng.random_range(0..universe as u32)).collect()
                })
                .collect();
            // Guarantee feasibility.
            sets.push((0..universe as u32).collect());
            let lazy = greedy_set_cover(universe, &sets);
            let naive = naive_greedy_set_cover(universe, &sets);
            assert!(covers(universe, &sets, &lazy), "trial {trial}");
            assert!(covers(universe, &sets, &naive), "trial {trial}");
            // Identical tie-breaking (smallest index among maxima) makes
            // the two executions pick the exact same sequence.
            assert_eq!(lazy, naive, "trial {trial}");
        }
    }

    #[test]
    fn capped_run_is_a_prefix_of_the_uncapped_run() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..30 {
            let universe = rng.random_range(1..80);
            let nsets = rng.random_range(1..40);
            let mut sets: Vec<Vec<u32>> = (0..nsets)
                .map(|_| {
                    let len = rng.random_range(1..=universe);
                    (0..len).map(|_| rng.random_range(0..universe as u32)).collect()
                })
                .collect();
            sets.push((0..universe as u32).collect());
            let (full, complete) = greedy_set_cover_capped(universe, &sets, usize::MAX);
            assert!(complete, "trial {trial}");
            for cap in 0..=full.len() {
                let (capped, ok) = greedy_set_cover_capped(universe, &sets, cap);
                if ok {
                    // A complete run always reproduces the uncapped cover,
                    // even when its last pick lands past the cap.
                    assert_eq!(capped, full, "trial {trial} cap {cap}");
                } else {
                    assert_eq!(capped.len(), cap + 1, "trial {trial} cap {cap}");
                    assert_eq!(capped, full[..cap + 1], "trial {trial} cap {cap}");
                }
                // The feasibility decision "cover fits in cap sets" is
                // unchanged by the abort.
                assert_eq!(capped.len() <= cap, full.len() <= cap, "trial {trial} cap {cap}");
            }
        }
    }

    #[test]
    fn approximation_ratio_on_known_optimum() {
        // Universe 0..8, optimum is 2 disjoint sets; greedy must stay
        // within 1 + ln(8) ≈ 3.08 of it.
        let sets = vec![
            vec![0, 1, 2, 3],
            vec![4, 5, 6, 7],
            vec![0, 4],
            vec![1, 5],
            vec![2, 6],
            vec![3, 7],
        ];
        let c = greedy_set_cover(8, &sets);
        assert!(covers(8, &sets, &c));
        assert!(c.len() <= 6); // (1 + ln 8) * 2 ≈ 6.2
    }
}
