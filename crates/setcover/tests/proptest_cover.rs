//! Property-based tests for set cover and interval cover.

use proptest::prelude::*;
use rrm_setcover::interval::{cover_segment, Interval};
use rrm_setcover::{greedy_set_cover, naive_greedy_set_cover};

fn instance() -> impl Strategy<Value = (usize, Vec<Vec<u32>>)> {
    (1usize..60).prop_flat_map(|universe| {
        let set = proptest::collection::vec(0..universe as u32, 1..universe + 1);
        proptest::collection::vec(set, 0..25).prop_map(move |mut sets| {
            // Guarantee feasibility.
            sets.push((0..universe as u32).collect());
            (universe, sets)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Greedy always returns a valid cover, identical between the lazy and
    /// naive implementations (shared tie-breaking).
    #[test]
    fn greedy_validity_and_equivalence((universe, sets) in instance()) {
        let lazy = greedy_set_cover(universe, &sets);
        let naive = naive_greedy_set_cover(universe, &sets);
        prop_assert_eq!(&lazy, &naive);
        let mut covered = vec![false; universe];
        for &i in &lazy {
            for &e in &sets[i] {
                covered[e as usize] = true;
            }
        }
        prop_assert!(covered.into_iter().all(|c| c));
        // No chosen set is fully redundant at pick time: picks are distinct.
        let mut sorted = lazy.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), lazy.len());
    }

    /// The greedy cover never exceeds (1 + ln u) times the optimum —
    /// checked against the exhaustive optimum on small instances.
    #[test]
    fn greedy_respects_chvatal_bound((universe, sets) in instance()) {
        prop_assume!(sets.len() <= 12);
        let greedy = greedy_set_cover(universe, &sets);
        // Exhaustive minimum cover.
        let mut best = usize::MAX;
        for mask in 1u32..(1 << sets.len()) {
            let mut covered = vec![false; universe];
            for (i, s) in sets.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    for &e in s {
                        covered[e as usize] = true;
                    }
                }
            }
            if covered.into_iter().all(|c| c) {
                best = best.min(mask.count_ones() as usize);
            }
        }
        let bound = ((1.0 + (universe as f64).ln()) * best as f64).ceil() as usize;
        prop_assert!(
            greedy.len() <= bound,
            "greedy {} > (1+ln {universe})·{best} = {bound}", greedy.len()
        );
    }
}

fn intervals() -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec((0u32..1000, 0u32..1000), 1..12).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (a, b))| {
                let (a, b) = (a.min(b) as f64 / 1000.0, a.max(b) as f64 / 1000.0);
                Interval::new(a, b, i as u32)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// When greedy finds a cover it is valid; when it fails, no subset
    /// covers (verified exhaustively).
    #[test]
    fn interval_cover_correct(ivs in intervals()) {
        let result = cover_segment(&ivs, 0.0, 1.0, 1e-12);
        let covers = |chosen: &[&Interval]| -> bool {
            // The union covers [0,1] iff sweeping by right endpoints never
            // leaves a gap.
            let mut frontier: f64 = 0.0;
            let mut remaining: Vec<&&Interval> = chosen.iter().collect();
            remaining.sort_by(|a, b| a.lo.partial_cmp(&b.lo).unwrap());
            for iv in remaining {
                if iv.lo > frontier {
                    return false;
                }
                frontier = frontier.max(iv.hi);
            }
            frontier >= 1.0
        };
        match result {
            Some(chosen) => {
                let refs: Vec<&Interval> = chosen.iter().collect();
                prop_assert!(covers(&refs), "invalid cover: {chosen:?}");
                // Minimality vs exhaustive search.
                let mut best = usize::MAX;
                for mask in 1u32..(1 << ivs.len()) {
                    let subset: Vec<&Interval> = (0..ivs.len())
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(|i| &ivs[i])
                        .collect();
                    if covers(&subset) {
                        best = best.min(mask.count_ones() as usize);
                    }
                }
                prop_assert_eq!(chosen.len(), best);
            }
            None => {
                let all: Vec<&Interval> = ivs.iter().collect();
                prop_assert!(!covers(&all), "greedy missed an existing cover");
            }
        }
    }
}
