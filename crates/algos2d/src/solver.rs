//! [`Solver`] implementations for the 2D algorithms: the paper's exact
//! dynamic program (2DRRM) and the interval-cover baseline of Asudeh et
//! al. (2DRRR).
//!
//! Both are planar (`d = 2` exactly); the trait's `supported_dims`
//! advertises that, and engines turn it into a uniform
//! `RrmError::Unsupported` before dispatch.

use rrm_core::{
    Algorithm, AppliedUpdate, Budget, Dataset, PreparedSolver, RrmError, Solution, Solver,
    SolverCtx, UtilitySpace,
};

use crate::pareto::rrr_exact_2d;
use crate::rrm2d::{rrm_2d, Prepared2d, Rrm2dOptions};
use crate::rrr2d::{rrm_via_rrr_2d_with_exec, rrr_2d_with_exec, PreparedRrr2d};

/// **2DRRM** (paper Section IV): exact RRM/RRRM via the dual-line sweep,
/// exact RRR via binary search on the DP.
#[derive(Debug, Clone, Default)]
pub struct TwoDRrmSolver {
    pub options: Rrm2dOptions,
}

impl TwoDRrmSolver {
    pub fn new(options: Rrm2dOptions) -> Self {
        Self { options }
    }

    /// Options with the context's execution policy applied (an explicit
    /// engine policy overrides the options' default).
    fn with_ctx(&self, ctx: &SolverCtx) -> Rrm2dOptions {
        let mut options = self.options;
        options.exec = ctx.exec.or(options.exec);
        options
    }
}

impl Solver for TwoDRrmSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::TwoDRrm
    }

    fn solve_rrm_ctx(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        _budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        rrm_2d(data, r, space, self.with_ctx(ctx))
    }

    fn solve_rrr_ctx(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        _budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        rrr_exact_2d(data, k, space, self.with_ctx(ctx))
    }

    fn prepare_ctx(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
        ctx: &SolverCtx,
    ) -> Result<Box<dyn PreparedSolver>, RrmError> {
        self.ensure_supported(data, space)?;
        Ok(Box::new(PreparedTwoDRrm { inner: Prepared2d::new(data, space, self.with_ctx(ctx))? }))
    }
}

/// [`Prepared2d`] behind the [`PreparedSolver`] contract (the 2D solvers
/// take no budget knobs, so the budget is ignored exactly as in the
/// one-shot path).
struct PreparedTwoDRrm {
    inner: Prepared2d,
}

impl PreparedSolver for PreparedTwoDRrm {
    fn algorithm(&self) -> Algorithm {
        Algorithm::TwoDRrm
    }

    fn dataset(&self) -> &Dataset {
        self.inner.dataset()
    }

    fn solve_rrm(&self, r: usize, _budget: &Budget) -> Result<Solution, RrmError> {
        self.inner.solve_rrm(r)
    }

    fn solve_rrr(&self, k: usize, _budget: &Budget) -> Result<Solution, RrmError> {
        self.inner.solve_rrr(k)
    }

    fn apply_update(&self, upd: &AppliedUpdate) -> Option<Box<dyn PreparedSolver>> {
        Some(Box::new(PreparedTwoDRrm { inner: self.inner.apply_update(upd) }))
    }
}

/// **2DRRR** (Asudeh et al.): native RRR via rank-window interval cover
/// (size ≤ optimal, regret ≤ 2k−1), adapted to RRM with doubling + binary
/// search. No certificate tight enough to count as a guarantee, and no
/// restricted-space mode (Table III).
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoDRrrSolver;

impl Solver for TwoDRrrSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::TwoDRrr
    }

    fn solve_rrm_ctx(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        _budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        self.ensure_supported(data, space)?;
        rrm_via_rrr_2d_with_exec(data, r, space, ctx.exec)
    }

    fn solve_rrr_ctx(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        _budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        self.ensure_supported(data, space)?;
        rrr_2d_with_exec(data, k, space, ctx.exec)
    }

    fn prepare_ctx(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
        ctx: &SolverCtx,
    ) -> Result<Box<dyn PreparedSolver>, RrmError> {
        self.ensure_supported(data, space)?;
        Ok(Box::new(PreparedTwoDRrr {
            inner: PreparedRrr2d::new_with_exec(data, space, ctx.exec)?,
        }))
    }
}

/// [`PreparedRrr2d`] behind the [`PreparedSolver`] contract.
struct PreparedTwoDRrr {
    inner: PreparedRrr2d,
}

impl PreparedSolver for PreparedTwoDRrr {
    fn algorithm(&self) -> Algorithm {
        Algorithm::TwoDRrr
    }

    fn dataset(&self) -> &Dataset {
        self.inner.dataset()
    }

    fn solve_rrm(&self, r: usize, _budget: &Budget) -> Result<Solution, RrmError> {
        self.inner.solve_rrm(r)
    }

    fn solve_rrr(&self, k: usize, _budget: &Budget) -> Result<Solution, RrmError> {
        self.inner.solve_rrr(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::FullSpace;

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn trait_and_function_agree() {
        let solver = TwoDRrmSolver::default();
        let ctx = rrm_core::SolverCtx::default();
        let via_trait = solver
            .solve_rrm_ctx(&table1(), 2, &FullSpace::new(2), &Budget::default(), &ctx)
            .unwrap();
        let direct = rrm_2d(&table1(), 2, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(via_trait, direct);
        assert_eq!(solver.algorithm(), Algorithm::TwoDRrm);
        assert!(solver.has_regret_guarantee());
    }

    #[test]
    fn two_d_solvers_reject_hd_data() {
        let data = Dataset::from_rows(&[[0.1, 0.2, 0.3], [0.3, 0.2, 0.1]]).unwrap();
        let err = TwoDRrrSolver
            .solve_rrm_ctx(&data, 1, &FullSpace::new(3), &Budget::default(), &Default::default())
            .unwrap_err();
        assert!(matches!(err, RrmError::Unsupported(_)), "{err}");
    }

    #[test]
    fn two_d_rrr_solver_covers_threshold() {
        let solver = TwoDRrrSolver;
        let sol = solver
            .solve_rrr_ctx(
                &table1(),
                2,
                &FullSpace::new(2),
                &Budget::default(),
                &Default::default(),
            )
            .unwrap();
        assert!(sol.certified_regret.unwrap() <= 3); // 2k-1
        assert_eq!(sol.algorithm, Algorithm::TwoDRrr);
        assert!(!solver.supports_restricted_space());
    }
}
