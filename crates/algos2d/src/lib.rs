//! 2D rank-regret algorithms (paper Section IV).
//!
//! * [`rrm2d`] — **2DRRM**, the paper's exact dynamic program over the dual
//!   line arrangement: optimal RRM/RRRM solutions in 2D (Theorem 4),
//!   `O(n² log n)` time (Theorem 5).
//! * [`rrr2d`] — **2DRRR**, the baseline of Asudeh et al.: for a threshold
//!   `k` it covers the weight range with per-tuple "rank ≤ k" windows,
//!   guaranteeing size ≤ optimal and rank-regret ≤ 2k − 1; adapted to RRM
//!   with the doubling + binary search of Section V-B.2.
//! * [`pareto`] — the full size/regret trade-off curve from one DP run,
//!   plus the exact RRR solver built on 2DRRM ("2DRRM can be easily adopted
//!   for RRR by a binary search").
//!
//! All solvers accept either the full space `L` or a restricted 2D space
//! rendered onto a weight interval `[c0, c1]` (Section IV-C).

pub mod matrix;
pub mod pareto;
pub mod rrm2d;
pub mod rrr2d;
pub mod solver;

pub use pareto::{pareto_frontier, rrr_exact_2d, ParetoPoint};
pub use rrm2d::{
    rrm_2d, rrm_2d_on_interval, rrm_2d_with_stats, weight_interval, Prepared2d, Rrm2dOptions,
    SweepStats,
};
pub use rrr2d::{rrm_via_rrr_2d, rrr_2d, rrr_2d_on_interval, PreparedRrr2d};
pub use solver::{TwoDRrmSolver, TwoDRrrSolver};
