//! **2DRRR** — the 2D baseline of Asudeh et al. (SIGMOD 2019), adapted to
//! RRM as in the paper's experiments.
//!
//! For a threshold `k`, every candidate tuple contributes the window
//! `[first, last]` of weights where its rank is at most `k`. A straight
//! line that ranks ≤ k at two weights ranks ≤ 2k − 1 anywhere between them
//! (any line above it in the middle must be above it at one of the two
//! ends — lines cross once), so covering the weight range with the fewest
//! windows yields a set that is no larger than the optimal rank-k
//! representative while guaranteeing rank-regret ≤ 2k − 1.
//!
//! The RRM adaptation binary-searches the smallest `k` whose cover fits
//! the size budget `r`, using the doubling + halving scheme of Section
//! V-B.2 ("improved binary search").

use std::collections::HashMap;
use std::sync::Mutex;

use rrm_core::{Algorithm, Dataset, ExecPolicy, RrmError, Solution, UtilitySpace};
use rrm_geom::dual::DualLine;
use rrm_geom::events::{crossings_with_tracked_capped_par, initial_ranks, Crossing};
use rrm_setcover::interval::{cover_segment, Interval};
use rrm_skyline::restricted::u_skyline_2d;

use crate::rrm2d::weight_interval;

const COVER_TOL: f64 = 1e-9;

/// Reusable sweep state shared by every threshold probed during the binary
/// search: candidates, their crossing events (sorted), and initial ranks.
struct SweepCache {
    sky: Vec<u32>,
    events: Vec<Crossing>,
    init_rank: Vec<usize>,
    c0: f64,
    c1: f64,
}

impl SweepCache {
    fn build(data: &Dataset, c0: f64, c1: f64, exec: ExecPolicy) -> Self {
        let sky = u_skyline_2d(data, c0, c1);
        let lines = DualLine::from_dataset(data);
        // Crossing classification chunked per tracked line; the merged
        // stream is bit-identical at any thread count.
        let events =
            crossings_with_tracked_capped_par(&lines, &sky, c0, c1, usize::MAX, exec.parallelism)
                .expect("uncapped enumeration always materializes");
        let init_rank = initial_ranks(&lines, c0);
        Self { sky, events, init_rank, c0, c1 }
    }

    /// The rank ≤ k window `[first, last]` of every candidate, skipping
    /// candidates that never reach rank ≤ k.
    fn windows(&self, k: usize) -> Vec<Interval> {
        let mut lo: Vec<f64> = vec![f64::NAN; self.sky.len()];
        let mut hi: Vec<f64> = vec![f64::NAN; self.sky.len()];
        let mut row_of = std::collections::HashMap::new();
        for (i, &id) in self.sky.iter().enumerate() {
            row_of.insert(id, i);
        }
        let mut rank: Vec<usize> = self.init_rank.clone();
        // Initial state at c0.
        for (i, &id) in self.sky.iter().enumerate() {
            if rank[id as usize] <= k {
                lo[i] = self.c0;
                hi[i] = self.c0;
            }
        }
        for ev in &self.events {
            rank[ev.down as usize] += 1;
            rank[ev.up as usize] -= 1;
            // Entering the window (rank drops to k) or leaving it (rank
            // rises past k) both happen at ev.x.
            if let Some(&i) = row_of.get(&ev.up) {
                if rank[ev.up as usize] <= k {
                    if lo[i].is_nan() {
                        lo[i] = ev.x;
                    }
                    hi[i] = ev.x;
                }
            }
            if let Some(&i) = row_of.get(&ev.down) {
                if rank[ev.down as usize] == k + 1 && !lo[i].is_nan() {
                    hi[i] = ev.x; // rank was ≤ k right up to this point
                }
            }
        }
        // A line still within rank ≤ k at the end extends to c1.
        for (i, &id) in self.sky.iter().enumerate() {
            if rank[id as usize] <= k && !lo[i].is_nan() {
                hi[i] = self.c1;
            }
        }
        self.sky
            .iter()
            .enumerate()
            .filter(|(i, _)| !lo[*i].is_nan())
            .map(|(i, &id)| Interval::new(lo[i], hi[i], id))
            .collect()
    }

    /// Minimum single-window cover for threshold `k`, if one exists.
    fn cover(&self, k: usize) -> Option<Vec<u32>> {
        let windows = self.windows(k);
        cover_segment(&windows, self.c0, self.c1, COVER_TOL)
            .map(|ivs| ivs.into_iter().map(|iv| iv.id).collect())
    }
}

/// The 2DRRR baseline bound to one dataset and weight interval: the sweep
/// cache (candidates, sorted crossings, initial ranks) is built once, and
/// per-threshold covers are memoized, so repeated queries — and the RRM
/// adaptation's whole binary search — replay cached state.
///
/// Queries return exactly what [`rrr_2d`] / [`rrm_via_rrr_2d`] return.
pub struct PreparedRrr2d {
    data: Dataset,
    cache: SweepCache,
    covers: Mutex<HashMap<usize, Option<Vec<u32>>>>,
}

impl PreparedRrr2d {
    pub fn new(data: &Dataset, space: &dyn UtilitySpace) -> Result<Self, RrmError> {
        Self::new_with_exec(data, space, ExecPolicy::default())
    }

    /// [`PreparedRrr2d::new`] under an explicit execution policy for the
    /// sweep-cache construction (queries are identical either way).
    pub fn new_with_exec(
        data: &Dataset,
        space: &dyn UtilitySpace,
        exec: ExecPolicy,
    ) -> Result<Self, RrmError> {
        if data.dim() != 2 {
            return Err(RrmError::DimensionMismatch { expected: 2, got: data.dim() });
        }
        let (c0, c1) = weight_interval(space)?;
        Ok(Self {
            data: data.clone(),
            cache: SweepCache::build(data, c0, c1, exec),
            covers: Mutex::new(HashMap::new()),
        })
    }

    /// The dataset this state was prepared on.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    fn cover(&self, k: usize) -> Option<Vec<u32>> {
        if let Some(cover) = self.covers.lock().expect("cover memo poisoned").get(&k) {
            return cover.clone();
        }
        // Compute outside the lock so concurrent queries never serialize
        // on a cache miss (the cover is deterministic per threshold).
        let cover = self.cache.cover(k);
        self.covers.lock().expect("cover memo poisoned").entry(k).or_insert(cover).clone()
    }

    /// RRR for one threshold (identical to [`rrr_2d`]).
    pub fn solve_rrr(&self, k: usize) -> Result<Solution, RrmError> {
        if k == 0 {
            return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
        }
        let ids = self.cover(k).expect(
            "rank-k windows always cover the range (the top-1 line is in every window set)",
        );
        Solution::new(ids, Some((2 * k).saturating_sub(1)), Algorithm::TwoDRrr, &self.data)
    }

    /// RRM via the smallest feasible threshold (identical to
    /// [`rrm_via_rrr_2d`], with every probed cover memoized).
    pub fn solve_rrm(&self, r: usize) -> Result<Solution, RrmError> {
        if r == 0 {
            return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
        }
        let n = self.data.n();

        // Doubling phase.
        let mut k = 1usize;
        let mut feasible: Option<(usize, Vec<u32>)> = None;
        while k <= n {
            if let Some(ids) = self.cover(k) {
                if ids.len() <= r {
                    feasible = Some((k, ids));
                    break;
                }
            }
            k *= 2;
        }
        let (found_k, mut best_ids) =
            feasible.unwrap_or_else(|| (n, self.cover(n).expect("k = n always covers")));
        // Binary phase on (found_k/2, found_k].
        let mut lo = found_k / 2 + 1;
        let mut hi = found_k;
        let mut best_k = found_k;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.cover(mid) {
                Some(ids) if ids.len() <= r => {
                    best_ids = ids;
                    best_k = mid;
                    hi = mid;
                }
                _ => lo = mid + 1,
            }
        }
        best_ids.truncate(r);
        Solution::new(
            best_ids,
            Some((2 * best_k).saturating_sub(1)),
            Algorithm::TwoDRrr,
            &self.data,
        )
    }
}

/// RRR baseline: a set of size at most the optimal rank-k representative's
/// size, with certified rank-regret at most `2k − 1`.
pub fn rrr_2d(data: &Dataset, k: usize, space: &dyn UtilitySpace) -> Result<Solution, RrmError> {
    rrr_2d_with_exec(data, k, space, ExecPolicy::default())
}

/// [`rrr_2d`] under an explicit execution policy (the solver path;
/// answers are identical at any thread count).
pub fn rrr_2d_with_exec(
    data: &Dataset,
    k: usize,
    space: &dyn UtilitySpace,
    exec: ExecPolicy,
) -> Result<Solution, RrmError> {
    if k == 0 {
        return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
    }
    PreparedRrr2d::new_with_exec(data, space, exec)?.solve_rrr(k)
}

/// [`rrr_2d`] over an explicit weight interval.
pub fn rrr_2d_on_interval(
    data: &Dataset,
    k: usize,
    c0: f64,
    c1: f64,
) -> Result<Solution, RrmError> {
    if data.dim() != 2 {
        return Err(RrmError::DimensionMismatch { expected: 2, got: data.dim() });
    }
    if k == 0 {
        return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
    }
    let cache = SweepCache::build(data, c0, c1, ExecPolicy::default());
    let ids = cache
        .cover(k)
        .expect("rank-k windows always cover the range (the top-1 line is in every window set)");
    Solution::new(ids, Some((2 * k).saturating_sub(1)), Algorithm::TwoDRrr, data)
}

/// RRM via the 2DRRR baseline: the smallest `k` whose interval cover fits
/// in `r` tuples (doubling then binary search, as the paper benchmarks it).
pub fn rrm_via_rrr_2d(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
) -> Result<Solution, RrmError> {
    rrm_via_rrr_2d_with_exec(data, r, space, ExecPolicy::default())
}

/// [`rrm_via_rrr_2d`] under an explicit execution policy.
pub fn rrm_via_rrr_2d_with_exec(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    exec: ExecPolicy,
) -> Result<Solution, RrmError> {
    if r == 0 {
        return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
    }
    PreparedRrr2d::new_with_exec(data, space, exec)?.solve_rrm(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rrm_core::FullSpace;
    use rrm_geom::events::crossings_with_tracked;

    use crate::rrm2d::{rrm_2d, Rrm2dOptions};

    fn random_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<[f64; 2]> =
            (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        Dataset::from_rows(&rows).unwrap()
    }

    /// Exact rank-regret of a set over the full weight range, brute-forced
    /// through every arrangement gap (test-only; small n).
    fn exact_regret(data: &Dataset, set: &[u32]) -> usize {
        let lines = DualLine::from_dataset(data);
        let all: Vec<u32> = (0..data.n() as u32).collect();
        let events = crossings_with_tracked(&lines, &all, 0.0, 1.0);
        let mut xs = vec![0.0, 1.0];
        xs.extend(events.iter().map(|e| e.x));
        xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let mut probes: Vec<f64> = xs.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
        probes.push(0.0);
        probes.push(1.0);
        let mut worst = 0usize;
        for &x in &probes {
            let best =
                set.iter().map(|&i| lines[i as usize].eval(x)).fold(f64::NEG_INFINITY, f64::max);
            let above = lines.iter().filter(|l| l.eval(x) > best).count();
            worst = worst.max(above + 1);
        }
        worst
    }

    #[test]
    fn guarantee_holds_on_random_data() {
        for seed in 0..15 {
            let d = random_dataset(40, seed);
            for k in [1usize, 2, 3] {
                let sol = rrr_2d(&d, k, &FullSpace::new(2)).unwrap();
                let regret = exact_regret(&d, &sol.indices);
                assert!(regret < 2 * k, "seed {seed} k={k}: regret {regret} > {}", 2 * k - 1);
            }
        }
    }

    #[test]
    fn size_never_exceeds_exact_rrr() {
        // The cover size is ≤ the minimum size of an exact rank-k set,
        // because every exact set's windows also cover the segment.
        for seed in 20..30 {
            let d = random_dataset(30, seed);
            for k in [1usize, 2, 3] {
                let approx = rrr_2d(&d, k, &FullSpace::new(2)).unwrap();
                let exact =
                    crate::pareto::rrr_exact_2d(&d, k, &FullSpace::new(2), Rrm2dOptions::default())
                        .unwrap();
                assert!(
                    approx.size() <= exact.size(),
                    "seed {seed} k={k}: approx {} > exact {}",
                    approx.size(),
                    exact.size()
                );
            }
        }
    }

    #[test]
    fn rrm_adaptation_respects_budget_and_2dr_rm_beats_it() {
        for seed in 40..50 {
            let d = random_dataset(60, seed);
            for r in [2usize, 4] {
                let baseline = rrm_via_rrr_2d(&d, r, &FullSpace::new(2)).unwrap();
                assert!(baseline.size() <= r);
                let exact = rrm_2d(&d, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
                let exact_k = exact.certified_regret.unwrap();
                let baseline_k = exact_regret(&d, &baseline.indices);
                assert!(
                    exact_k <= baseline_k,
                    "seed {seed} r={r}: 2DRRM {exact_k} vs 2DRRR {baseline_k}"
                );
            }
        }
    }

    #[test]
    fn threshold_one_picks_upper_envelope() {
        let d =
            Dataset::from_rows(&[[0.0, 1.0], [0.4, 0.95], [0.57, 0.75], [0.79, 0.6], [1.0, 0.0]])
                .unwrap();
        let sol = rrr_2d(&d, 1, &FullSpace::new(2)).unwrap();
        // Rank ≤ 1 windows: only upper-envelope lines; certified 2·1−1 = 1.
        assert_eq!(sol.certified_regret, Some(1));
        assert_eq!(exact_regret(&d, &sol.indices), 1);
    }

    #[test]
    fn zero_threshold_rejected() {
        let d = random_dataset(10, 60);
        assert!(rrr_2d(&d, 0, &FullSpace::new(2)).is_err());
    }
}
