//! Size/regret trade-off curve and the exact RRR solver.
//!
//! One DP run with `r = s` fills every column of the matrix, so the whole
//! Pareto frontier "best achievable rank-regret per size budget" falls out
//! of a single sweep. The exact RRR solver ("find the minimum set with
//! rank-regret ≤ k") follows the paper's remark that 2DRRM adapts to RRR
//! with a binary search; for small instances the frontier route is also
//! exposed because it answers *all* thresholds at once.

use rrm_core::{Dataset, RrmError, Solution, UtilitySpace};

use crate::rrm2d::{Prepared2d, Rrm2dOptions};

/// One point of the trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParetoPoint {
    /// Size budget `r`.
    pub r: usize,
    /// Optimal rank-regret among sets of at most `r` candidate tuples.
    pub regret: usize,
}

/// The optimal rank-regret for every size budget `1..=max_r` (clamped to
/// the candidate-set size). Increasing `r` never worsens the regret.
pub fn pareto_frontier(
    data: &Dataset,
    max_r: usize,
    space: &dyn UtilitySpace,
    options: Rrm2dOptions,
) -> Result<Vec<ParetoPoint>, RrmError> {
    // One DP replay per budget over shared prepared state: the skyline,
    // event stream and initial ranks are computed once for the whole curve.
    // (A single run with r = max_r would fill all columns, but the final
    // fold state of lower columns is only valid for the *last* event, so
    // per-budget replays are the straightforward correct choice — and
    // being independent, they fill the memo concurrently under the
    // options' exec policy.)
    let prepared = Prepared2d::new(data, space, options)?;
    // Budgets at or past the candidate count answer with the whole
    // candidate set (regret 1) — no replay needed.
    let replay_max = max_r.min(prepared.candidates());
    // Doubling waves ([1,1], [2,3], [4,7], ...) keep the old early exit —
    // once a wave reaches regret 1, larger budgets are never replayed —
    // while each wave's replays fill the memo concurrently. At most 2x
    // the early-exit point's work, instead of all of `replay_max`.
    let mut out = Vec::with_capacity(max_r);
    let mut prev = usize::MAX;
    let mut next = 1usize;
    'waves: while next <= replay_max {
        let hi = (2 * next - 1).min(replay_max);
        let rs: Vec<usize> = (next..=hi).collect();
        let solutions = prepared.solve_rrm_many(&rs)?;
        for (r, sol) in rs.iter().zip(&solutions) {
            let k = sol.certified_regret.expect("2DRRM always certifies");
            debug_assert!(k <= prev, "frontier must be monotone");
            prev = k;
            out.push(ParetoPoint { r: *r, regret: k });
            if k == 1 {
                break 'waves;
            }
        }
        next = hi + 1;
    }
    // Larger budgets cannot improve on rank-regret 1 (and the whole
    // candidate set always achieves it).
    for r in out.len() + 1..=max_r {
        out.push(ParetoPoint { r, regret: 1 });
    }
    Ok(out)
}

/// Exact RRR in 2D: the minimum-size set with rank-regret at most `k`,
/// found by binary search on the output size over the exact 2DRRM solver
/// (the extra `log n` factor the paper mentions).
///
/// Errors with [`RrmError::Unsupported`] when even the full candidate set
/// misses the threshold — impossible for `k ≥ 1` since the whole
/// (restricted) skyline achieves rank-regret 1.
pub fn rrr_exact_2d(
    data: &Dataset,
    k: usize,
    space: &dyn UtilitySpace,
    options: Rrm2dOptions,
) -> Result<Solution, RrmError> {
    if k == 0 {
        return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
    }
    // Prepare-then-query: the binary search's probes all share one sweep
    // cache (and the memo lets repeated probe sizes cost nothing).
    Prepared2d::new(data, space, options)?.solve_rrr(k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rrm_core::FullSpace;

    fn random_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<[f64; 2]> =
            (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn frontier_is_monotone_and_hits_one() {
        let d = random_dataset(150, 1);
        let f = pareto_frontier(&d, 12, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(f.len(), 12);
        for w in f.windows(2) {
            assert!(w[1].regret <= w[0].regret);
        }
        // A large enough budget always reaches regret 1 (the skyline).
        let d_small = random_dataset(20, 2);
        let f = pareto_frontier(&d_small, 20, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(f.last().unwrap().regret, 1);
    }

    #[test]
    fn rrr_exact_matches_frontier() {
        let d = random_dataset(80, 3);
        let f = pareto_frontier(&d, 15, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        for k in [1usize, 2, 3, 5, 8] {
            let expected_size = f.iter().find(|p| p.regret <= k).map(|p| p.r);
            let sol = rrr_exact_2d(&d, k, &FullSpace::new(2), Rrm2dOptions::default());
            match expected_size {
                Some(sz) => {
                    let sol = sol.unwrap();
                    assert_eq!(sol.size(), sz, "k={k}");
                    assert!(sol.certified_regret.unwrap() <= k);
                }
                None => {
                    // Threshold needs more than 15 tuples — solver must
                    // still succeed with a bigger set.
                    let sol = sol.unwrap();
                    assert!(sol.size() > 15);
                }
            }
        }
    }

    #[test]
    fn rrr_threshold_one_returns_skyline_size() {
        let d = random_dataset(60, 4);
        let sol = rrr_exact_2d(&d, 1, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        let sky = rrm_skyline::skyline(&d);
        // Rank-regret 1 requires containing the top-1 for every direction:
        // exactly the set of tuples that are top-1 somewhere (the convex
        // hull part of the skyline), so size ≤ |skyline|.
        assert!(sol.size() <= sky.len());
        assert_eq!(sol.certified_regret, Some(1));
    }

    #[test]
    fn rrr_rejects_zero_threshold() {
        let d = random_dataset(10, 5);
        assert!(rrr_exact_2d(&d, 0, &FullSpace::new(2), Rrm2dOptions::default()).is_err());
    }
}
