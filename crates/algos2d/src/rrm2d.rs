//! **2DRRM** — the exact 2D dynamic program (Algorithm 1, Theorems 4–5).
//!
//! The solver sweeps a vertical line across the dual arrangement,
//! maintaining for every skyline line `lg(i)` and every budget `j ≤ r` the
//! best convex chain ending in `lg(i)` with at most `j` lines
//! ([`crate::matrix::DpMatrix`]). At each crossing where a skyline line's
//! rank increases, the affected chains' maximum ranks are folded; when the
//! other line is also a skyline line, a cheaper chain may be extended onto
//! it. The best column-`r` cell at the end is the optimal solution.
//!
//! # Event machinery
//!
//! The paper maintains all `n` lines in a sorted list and pops adjacent
//! intersections from a heap (`O(n² log n)`); only crossings that involve
//! a skyline line ever change a rank the DP reads, so the default here
//! replays exactly those `O(s·n)` crossings from a pre-sorted stream
//! ([`rrm_geom::events`]). Set [`Rrm2dOptions::use_full_sweep`] to run the
//! paper's original full-arrangement sweep instead (identical output;
//! compared in the `ablation_sweep` benchmark).
//!
//! # Degeneracies
//!
//! The paper assumes no two tuples tie under any utility function. Exact
//! duplicates are deduplicated among candidates (they share one dual line);
//! concurrent crossings at exactly equal `x` are processed in a
//! deterministic order, which can momentarily over-count a rank at a
//! measure-zero point — the usual general-position caveat.

use rrm_core::{Algorithm, Dataset, RrmError, Solution, UtilitySpace};
use rrm_geom::dual::{normalized_interval_2d, DualLine};
use rrm_geom::events::{initial_ranks, stream_crossings};
use rrm_geom::sweep::arrangement_sweep;
use rrm_skyline::restricted::u_skyline_2d;

use crate::matrix::DpMatrix;

/// Tuning knobs for [`rrm_2d`].
#[derive(Debug, Clone, Copy)]
pub struct Rrm2dOptions {
    /// Run the paper-faithful full arrangement sweep instead of the
    /// skyline-crossing event stream. Same output, more events.
    pub use_full_sweep: bool,
    /// Upper bound on crossings materialized at once by the event stream.
    pub chunk_target: usize,
}

impl Default for Rrm2dOptions {
    fn default() -> Self {
        Self { use_full_sweep: false, chunk_target: 4 << 20 }
    }
}

/// The weight interval `[c0, c1]` a 2D utility space occupies after
/// normalization (`u → (c, 1-c)`), i.e. the paper's "render the scene"
/// step. Errors when the space is empty or not polyhedral.
pub fn weight_interval(space: &dyn UtilitySpace) -> Result<(f64, f64), RrmError> {
    if space.dim() != 2 {
        return Err(RrmError::DimensionMismatch { expected: 2, got: space.dim() });
    }
    if space.is_full() {
        return Ok((0.0, 1.0));
    }
    let rows = space
        .cone_rows()
        .ok_or_else(|| RrmError::InvalidSpace("2D solvers need a polyhedral space".into()))?;
    normalized_interval_2d(&rows)
        .ok_or_else(|| RrmError::InvalidSpace("the 2D cone contains no direction".into()))
}

/// Work counters from one 2DRRM run (the quantities behind Theorem 5's
/// cost analysis and the `ablation_sweep` benchmark).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Candidate (restricted-skyline, deduplicated) lines `s`.
    pub candidates: usize,
    /// Crossings replayed (the `O(s·n)` event stream; `O(n²)` with the
    /// paper-faithful full sweep).
    pub events: usize,
    /// Events where a candidate's rank increased (the paper's case 1 —
    /// each costs an `O(r)` matrix fold).
    pub case1_events: usize,
    /// Chain extension opportunities (crossings of two candidate lines,
    /// Algorithm 1 lines 17–19).
    pub extensions: usize,
}

/// Solve RRM (`space = L`) or RRRM (restricted `space`) exactly in 2D.
pub fn rrm_2d(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    options: Rrm2dOptions,
) -> Result<Solution, RrmError> {
    let (c0, c1) = weight_interval(space)?;
    rrm_2d_on_interval(data, r, c0, c1, options)
}

/// [`rrm_2d`] with work counters.
pub fn rrm_2d_with_stats(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    options: Rrm2dOptions,
) -> Result<(Solution, SweepStats), RrmError> {
    let (c0, c1) = weight_interval(space)?;
    let mut stats = SweepStats::default();
    let sol = rrm_2d_impl(data, r, c0, c1, options, Some(&mut stats))?;
    Ok((sol, stats))
}

/// Solve the 2D problem for utility directions `(c, 1-c)`, `c ∈ [c0, c1]`.
pub fn rrm_2d_on_interval(
    data: &Dataset,
    r: usize,
    c0: f64,
    c1: f64,
    options: Rrm2dOptions,
) -> Result<Solution, RrmError> {
    rrm_2d_impl(data, r, c0, c1, options, None)
}

fn rrm_2d_impl(
    data: &Dataset,
    r: usize,
    c0: f64,
    c1: f64,
    options: Rrm2dOptions,
    mut stats: Option<&mut SweepStats>,
) -> Result<Solution, RrmError> {
    if data.dim() != 2 {
        return Err(RrmError::DimensionMismatch { expected: 2, got: data.dim() });
    }
    if r == 0 {
        return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
    }
    assert!(c0 <= c1, "empty weight interval");

    // Theorem 3: candidates are the (restricted) skyline.
    let candidates = u_skyline_2d(data, c0, c1);
    let lines = DualLine::from_dataset(data);

    // Deduplicate identical dual lines among candidates (exact duplicate
    // tuples): a convex chain uses strictly increasing slopes, so at most
    // one copy could ever appear in a solution.
    let mut sky: Vec<u32> = Vec::with_capacity(candidates.len());
    {
        let mut seen: Vec<(f64, f64)> = Vec::new();
        for &c in &candidates {
            let l = &lines[c as usize];
            if !seen.iter().any(|&(s, b)| s == l.slope && b == l.intercept) {
                seen.push((l.slope, l.intercept));
                sky.push(c);
            }
        }
    }
    // Sort skyline lines by slope ascending (the paper's g(1..s) order).
    sky.sort_unstable_by(|&a, &b| {
        lines[a as usize]
            .slope
            .partial_cmp(&lines[b as usize].slope)
            .expect("finite slopes")
            .then(a.cmp(&b))
    });
    let s = sky.len();

    if let Some(st) = stats.as_deref_mut() {
        st.candidates = s;
    }

    // The whole candidate set has rank-regret 1 (the top-1 for any u in the
    // space is never U-dominated, hence a candidate).
    if s <= r {
        return Solution::new(sky, Some(1), Algorithm::TwoDRrm, data);
    }

    // Row lookup: line id -> skyline row (usize::MAX = not a skyline line).
    let mut row_of = vec![usize::MAX; lines.len()];
    for (i, &id) in sky.iter().enumerate() {
        row_of[id as usize] = i;
    }

    let all_ranks = initial_ranks(&lines, c0);
    let mut rank: Vec<u32> = all_ranks.iter().map(|&v| v as u32).collect();
    let sky_ranks: Vec<u32> = sky.iter().map(|&id| rank[id as usize]).collect();
    let mut m = DpMatrix::new(&sky, &sky_ranks, r);

    // Event replay: at each crossing the `down` line's rank increases.
    // `extend` must see `M[i_down, h-1]` pre-fold, hence extend-then-fold.
    let mut counters = SweepStats::default();
    let mut apply = |x: f64, down: u32, up: u32| {
        let _ = x;
        counters.events += 1;
        rank[down as usize] += 1;
        rank[up as usize] -= 1;
        let i_down = row_of[down as usize];
        if i_down != usize::MAX {
            counters.case1_events += 1;
            let j_up = row_of[up as usize];
            if j_up != usize::MAX {
                counters.extensions += 1;
                m.extend(i_down, j_up, up);
            }
            m.fold_rank(i_down, rank[down as usize]);
        }
    };

    if options.use_full_sweep {
        arrangement_sweep(&lines, c0, c1, |x, down, up, _| apply(x, down, up));
    } else {
        stream_crossings(&lines, &sky, c0, c1, options.chunk_target, |c| apply(c.x, c.down, c.up));
    }

    let (best_row, best_rank) = m.best_final();
    let chain = m.chain_lines(best_row, r);
    if let Some(st) = stats {
        counters.candidates = s;
        *st = counters;
    }
    Solution::new(chain, Some(best_rank as usize), Algorithm::TwoDRrm, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::{FullSpace, WeakRankingSpace};

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn table1_r1_returns_t3() {
        // The paper: "When r = 1, the solutions for RRM and RMS are {t3}
        // and {t4} respectively."
        let sol = rrm_2d(&table1(), 1, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(sol.indices, vec![2], "expected {{t3}}");
        assert_eq!(sol.certified_regret, Some(3), "Table I rank-ratio of t3");
        assert_eq!(sol.algorithm, Algorithm::TwoDRrm);
    }

    #[test]
    fn table1_shift_invariance() {
        // Figure 2's shift: +4 on A2. The RRM solution stays {t3}.
        let shifted = table1().shift(&[0.0, 4.0]);
        let sol = rrm_2d(&shifted, 1, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(sol.indices, vec![2]);
        assert_eq!(sol.certified_regret, Some(3));
    }

    #[test]
    fn table2_subset_r2() {
        // D = {t1, t2, t3}, r = 2 -> optimal rank-regret 2, {t1,t2} or {t1,t3}.
        let d = Dataset::from_rows(&[[0.0, 1.0], [0.4, 0.95], [0.57, 0.75]]).unwrap();
        let sol = rrm_2d(&d, 2, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(sol.certified_regret, Some(2));
        assert!(sol.indices == vec![0, 1] || sol.indices == vec![0, 2], "{:?}", sol.indices);
    }

    #[test]
    fn whole_skyline_fits() {
        let d = table1();
        // Skyline has 5 tuples; with r = 5 the answer is the skyline with
        // rank-regret 1.
        let sol = rrm_2d(&d, 5, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(sol.indices, vec![0, 1, 2, 3, 6]);
        assert_eq!(sol.certified_regret, Some(1));
    }

    #[test]
    fn full_sweep_agrees_with_event_stream() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..20 {
            let n = rng.random_range(3..40);
            let rows: Vec<[f64; 2]> =
                (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
            let d = Dataset::from_rows(&rows).unwrap();
            for r in 1..4 {
                let a = rrm_2d(&d, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
                let b = rrm_2d(
                    &d,
                    r,
                    &FullSpace::new(2),
                    Rrm2dOptions { use_full_sweep: true, ..Default::default() },
                )
                .unwrap();
                assert_eq!(a.certified_regret, b.certified_regret, "trial {trial} r={r}: {rows:?}");
            }
        }
    }

    #[test]
    fn tiny_chunks_do_not_change_results() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<[f64; 2]> =
            (0..30).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let a = rrm_2d(&d, 3, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        let b = rrm_2d(
            &d,
            3,
            &FullSpace::new(2),
            Rrm2dOptions { chunk_target: 3, ..Default::default() },
        )
        .unwrap();
        assert_eq!(a.certified_regret, b.certified_regret);
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn restricted_space_lowers_regret() {
        // "Under the same settings, the solution of RRRM usually has a
        // lower rank-regret than RRM, owing to fewer functions in U."
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<[f64; 2]> =
            (0..200).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let full = rrm_2d(&d, 2, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        let restricted =
            rrm_2d(&d, 2, &WeakRankingSpace::new(2, 1), Rrm2dOptions::default()).unwrap();
        assert!(
            restricted.certified_regret.unwrap() <= full.certified_regret.unwrap(),
            "restricted {restricted:?} vs full {full:?}"
        );
    }

    #[test]
    fn duplicates_are_deduplicated() {
        let d = Dataset::from_rows(&[[0.9, 0.1], [0.9, 0.1], [0.1, 0.9], [0.5, 0.5]]).unwrap();
        let sol = rrm_2d(&d, 2, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        // Never both copies of the duplicate.
        assert!(!(sol.indices.contains(&0) && sol.indices.contains(&1)));
    }

    #[test]
    fn r_zero_rejected() {
        assert!(matches!(
            rrm_2d(&table1(), 0, &FullSpace::new(2), Rrm2dOptions::default()),
            Err(RrmError::OutputSizeTooSmall { .. })
        ));
    }

    #[test]
    fn wrong_dimension_rejected() {
        let d = Dataset::from_rows(&[[0.1, 0.2, 0.3]]).unwrap();
        assert!(matches!(
            rrm_2d(&d, 1, &FullSpace::new(3), Rrm2dOptions::default()),
            Err(RrmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn stats_counters_make_sense() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Anti-correlated points (near the x + y = 1 line): the skyline is
        // large for any RNG stream, so the sweep must actually run (the
        // `skyline <= r` early-return would zero every counter).
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<[f64; 2]> = (0..150)
            .map(|_| {
                let t = rng.random::<f64>();
                [t, 1.0 - t + 0.05 * rng.random::<f64>()]
            })
            .collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let (sol, stats) =
            rrm_2d_with_stats(&d, 3, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert!(sol.certified_regret.is_some());
        assert!(stats.candidates > 3, "need more candidates than r for a real sweep");
        // Event-count sanity: events <= candidates * n; the case-1 subset
        // is non-empty (every candidate pair crosses) and extensions are a
        // subset of case-1 events.
        assert!(stats.events <= stats.candidates * d.n());
        assert!(stats.case1_events >= 1 && stats.case1_events <= stats.events);
        assert!(stats.extensions <= stats.case1_events);
        // Full sweep visits at least as many events (all pairs, not just
        // candidate-involved ones).
        let (_, full) = rrm_2d_with_stats(
            &d,
            3,
            &FullSpace::new(2),
            Rrm2dOptions { use_full_sweep: true, ..Default::default() },
        )
        .unwrap();
        assert!(full.events >= stats.events, "full {} < stream {}", full.events, stats.events);
        assert_eq!(full.case1_events, stats.case1_events);
        assert_eq!(full.extensions, stats.extensions);
    }

    #[test]
    fn weight_interval_full_and_restricted() {
        assert_eq!(weight_interval(&FullSpace::new(2)).unwrap(), (0.0, 1.0));
        let (lo, hi) = weight_interval(&WeakRankingSpace::new(2, 1)).unwrap();
        assert!((lo - 0.5).abs() < 1e-12 && (hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_r() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let rows: Vec<[f64; 2]> =
            (0..120).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let mut prev = usize::MAX;
        for r in 1..=6 {
            let sol = rrm_2d(&d, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
            let k = sol.certified_regret.unwrap();
            assert!(k <= prev, "regret must not increase with r");
            assert!(sol.size() <= r);
            prev = k;
        }
    }
}
