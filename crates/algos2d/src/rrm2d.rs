//! **2DRRM** — the exact 2D dynamic program (Algorithm 1, Theorems 4–5).
//!
//! The solver sweeps a vertical line across the dual arrangement,
//! maintaining for every skyline line `lg(i)` and every budget `j ≤ r` the
//! best convex chain ending in `lg(i)` with at most `j` lines
//! ([`crate::matrix::DpMatrix`]). At each crossing where a skyline line's
//! rank increases, the affected chains' maximum ranks are folded; when the
//! other line is also a skyline line, a cheaper chain may be extended onto
//! it. The best column-`r` cell at the end is the optimal solution.
//!
//! # Event machinery
//!
//! The paper maintains all `n` lines in a sorted list and pops adjacent
//! intersections from a heap (`O(n² log n)`); only crossings that involve
//! a skyline line ever change a rank the DP reads, so the default here
//! replays exactly those `O(s·n)` crossings from a pre-sorted stream
//! ([`rrm_geom::events`]). Set [`Rrm2dOptions::use_full_sweep`] to run the
//! paper's original full-arrangement sweep instead (identical output;
//! compared in the `ablation_sweep` benchmark).
//!
//! # Degeneracies
//!
//! The paper assumes no two tuples tie under any utility function. Exact
//! duplicates are deduplicated among candidates (they share one dual line);
//! concurrent crossings at exactly equal `x` are processed in a
//! deterministic order, which can momentarily over-count a rank at a
//! measure-zero point — the usual general-position caveat.

use std::collections::HashMap;
use std::sync::Mutex;

use rrm_core::{Algorithm, Dataset, ExecPolicy, RrmError, Solution, UtilitySpace};
use rrm_geom::dual::{normalized_interval_2d, DualLine};
use rrm_geom::events::{crossings_with_tracked_capped_par, initial_ranks, stream_crossings};
use rrm_geom::sweep::arrangement_sweep;
use rrm_geom::Crossing;
use rrm_skyline::restricted::u_skyline_2d;

use crate::matrix::DpMatrix;

/// Tuning knobs for [`rrm_2d`].
#[derive(Debug, Clone, Copy)]
pub struct Rrm2dOptions {
    /// Run the paper-faithful full arrangement sweep instead of the
    /// skyline-crossing event stream. Same output, more events.
    pub use_full_sweep: bool,
    /// Upper bound on crossings materialized at once by the event stream.
    pub chunk_target: usize,
    /// Data-parallelism for crossing classification and the prepared
    /// per-`r` memo fill. The DP replay itself is inherently sequential
    /// (rank updates chain); outputs are identical at any thread count.
    pub exec: ExecPolicy,
}

impl Default for Rrm2dOptions {
    fn default() -> Self {
        Self { use_full_sweep: false, chunk_target: 4 << 20, exec: ExecPolicy::default() }
    }
}

/// The weight interval `[c0, c1]` a 2D utility space occupies after
/// normalization (`u → (c, 1-c)`), i.e. the paper's "render the scene"
/// step. Errors when the space is empty or not polyhedral.
pub fn weight_interval(space: &dyn UtilitySpace) -> Result<(f64, f64), RrmError> {
    if space.dim() != 2 {
        return Err(RrmError::DimensionMismatch { expected: 2, got: space.dim() });
    }
    if space.is_full() {
        return Ok((0.0, 1.0));
    }
    let rows = space
        .cone_rows()
        .ok_or_else(|| RrmError::InvalidSpace("2D solvers need a polyhedral space".into()))?;
    normalized_interval_2d(&rows)
        .ok_or_else(|| RrmError::InvalidSpace("the 2D cone contains no direction".into()))
}

/// Work counters from one 2DRRM run (the quantities behind Theorem 5's
/// cost analysis and the `ablation_sweep` benchmark).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Candidate (restricted-skyline, deduplicated) lines `s`.
    pub candidates: usize,
    /// Crossings replayed (the `O(s·n)` event stream; `O(n²)` with the
    /// paper-faithful full sweep).
    pub events: usize,
    /// Events where a candidate's rank increased (the paper's case 1 —
    /// each costs an `O(r)` matrix fold).
    pub case1_events: usize,
    /// Chain extension opportunities (crossings of two candidate lines,
    /// Algorithm 1 lines 17–19).
    pub extensions: usize,
}

/// Solve RRM (`space = L`) or RRRM (restricted `space`) exactly in 2D.
pub fn rrm_2d(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    options: Rrm2dOptions,
) -> Result<Solution, RrmError> {
    let (c0, c1) = weight_interval(space)?;
    rrm_2d_on_interval(data, r, c0, c1, options)
}

/// [`rrm_2d`] with work counters.
pub fn rrm_2d_with_stats(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    options: Rrm2dOptions,
) -> Result<(Solution, SweepStats), RrmError> {
    let (c0, c1) = weight_interval(space)?;
    let mut stats = SweepStats::default();
    let sol = rrm_2d_impl(data, r, c0, c1, options, Some(&mut stats))?;
    Ok((sol, stats))
}

/// Solve the 2D problem for utility directions `(c, 1-c)`, `c ∈ [c0, c1]`.
pub fn rrm_2d_on_interval(
    data: &Dataset,
    r: usize,
    c0: f64,
    c1: f64,
    options: Rrm2dOptions,
) -> Result<Solution, RrmError> {
    rrm_2d_impl(data, r, c0, c1, options, None)
}

/// Deduplicate identical dual lines among candidates (exact duplicate
/// tuples share one dual line; a convex chain uses strictly increasing
/// slopes, so at most one copy could ever appear in a solution), then sort
/// by slope ascending (the paper's g(1..s) order).
fn dedup_candidates(lines: &[DualLine], candidates: &[u32]) -> Vec<u32> {
    let mut sky: Vec<u32> = Vec::with_capacity(candidates.len());
    let mut seen: Vec<(f64, f64)> = Vec::new();
    for &c in candidates {
        let l = &lines[c as usize];
        if !seen.iter().any(|&(s, b)| s == l.slope && b == l.intercept) {
            seen.push((l.slope, l.intercept));
            sky.push(c);
        }
    }
    sky.sort_unstable_by(|&a, &b| {
        lines[a as usize]
            .slope
            .partial_cmp(&lines[b as usize].slope)
            .expect("finite slopes")
            .then(a.cmp(&b))
    });
    sky
}

/// The shared DP core: one matrix run over an event source. `for_each`
/// must yield the crossings of `stream_crossings(lines, sky, c0, c1, ..)`
/// in exactly that order (streamed, materialized, or full-sweep — all
/// three are order-identical for tracked lines). Requires `sky.len() > r`
/// (the caller handles the trivial whole-skyline case).
fn dp_run(
    data: &Dataset,
    lines: &[DualLine],
    sky: &[u32],
    init_ranks: &[usize],
    r: usize,
    for_each: impl FnOnce(&mut dyn FnMut(f64, u32, u32)),
    stats: Option<&mut SweepStats>,
) -> Result<Solution, RrmError> {
    // Row lookup: line id -> skyline row (usize::MAX = not a skyline line).
    let mut row_of = vec![usize::MAX; lines.len()];
    for (i, &id) in sky.iter().enumerate() {
        row_of[id as usize] = i;
    }

    let mut rank: Vec<u32> = init_ranks.iter().map(|&v| v as u32).collect();
    let sky_ranks: Vec<u32> = sky.iter().map(|&id| rank[id as usize]).collect();
    let mut m = DpMatrix::new(sky, &sky_ranks, r);

    // Event replay: at each crossing the `down` line's rank increases.
    // `extend` must see `M[i_down, h-1]` pre-fold, hence extend-then-fold.
    let mut counters = SweepStats::default();
    let mut apply = |x: f64, down: u32, up: u32| {
        let _ = x;
        counters.events += 1;
        rank[down as usize] += 1;
        rank[up as usize] -= 1;
        let i_down = row_of[down as usize];
        if i_down != usize::MAX {
            counters.case1_events += 1;
            let j_up = row_of[up as usize];
            if j_up != usize::MAX {
                counters.extensions += 1;
                m.extend(i_down, j_up, up);
            }
            m.fold_rank(i_down, rank[down as usize]);
        }
    };
    for_each(&mut apply);

    let (best_row, best_rank) = m.best_final();
    let chain = m.chain_lines(best_row, r);
    if let Some(st) = stats {
        counters.candidates = sky.len();
        *st = counters;
    }
    Solution::new(chain, Some(best_rank as usize), Algorithm::TwoDRrm, data)
}

fn rrm_2d_impl(
    data: &Dataset,
    r: usize,
    c0: f64,
    c1: f64,
    options: Rrm2dOptions,
    mut stats: Option<&mut SweepStats>,
) -> Result<Solution, RrmError> {
    if data.dim() != 2 {
        return Err(RrmError::DimensionMismatch { expected: 2, got: data.dim() });
    }
    if r == 0 {
        return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
    }
    assert!(c0 <= c1, "empty weight interval");

    // Theorem 3: candidates are the (restricted) skyline.
    let candidates = u_skyline_2d(data, c0, c1);
    let lines = DualLine::from_dataset(data);
    let sky = dedup_candidates(&lines, &candidates);
    let s = sky.len();

    if let Some(st) = stats.as_deref_mut() {
        st.candidates = s;
    }

    // The whole candidate set has rank-regret 1 (the top-1 for any u in the
    // space is never U-dominated, hence a candidate).
    if s <= r {
        return Solution::new(sky, Some(1), Algorithm::TwoDRrm, data);
    }

    let all_ranks = initial_ranks(&lines, c0);
    dp_run(
        data,
        &lines,
        &sky,
        &all_ranks,
        r,
        |apply| {
            if options.use_full_sweep {
                arrangement_sweep(&lines, c0, c1, |x, down, up, _| apply(x, down, up));
            } else {
                stream_crossings(&lines, &sky, c0, c1, options.chunk_target, |c| {
                    apply(c.x, c.down, c.up)
                });
            }
        },
        stats,
    )
}

/// [`rrm_2d`] bound to one dataset and utility space: the prepare-once /
/// query-many form of the exact 2D solver.
///
/// Preparation renders the space onto its weight interval, computes the
/// restricted skyline, the dual lines and the initial ranks, and — when
/// they fit the [`Rrm2dOptions::chunk_target`] memory budget — materializes
/// the sorted crossing stream, so each query is one DP replay instead of a
/// full sweep reconstruction. Solutions are memoized per `r`, which also
/// makes the exact-RRR binary search ([`Prepared2d::solve_rrr`]) and the
/// Pareto frontier ([`crate::pareto_frontier`]) share probe work.
///
/// Every query returns exactly what the one-shot [`rrm_2d`] /
/// [`crate::rrr_exact_2d`] would return for the same inputs.
pub struct Prepared2d {
    data: Dataset,
    options: Rrm2dOptions,
    c0: f64,
    c1: f64,
    /// Deduplicated candidates in ascending slope order (the DP rows).
    sky: Vec<u32>,
    /// Pre-dedup candidate count: the RRR binary search's upper bound
    /// (kept separate so the search probes the same sizes as the one-shot
    /// [`crate::rrr_exact_2d`]).
    sky_total: usize,
    lines: Vec<DualLine>,
    init_ranks: Vec<usize>,
    /// Materialized crossings, `None` when they exceed the chunk budget
    /// (the DP then streams per query: slower, but memory stays bounded).
    events: Option<Vec<Crossing>>,
    memo: Mutex<HashMap<usize, Solution>>,
}

impl Prepared2d {
    pub fn new(
        data: &Dataset,
        space: &dyn UtilitySpace,
        options: Rrm2dOptions,
    ) -> Result<Self, RrmError> {
        if data.dim() != 2 {
            return Err(RrmError::DimensionMismatch { expected: 2, got: data.dim() });
        }
        let (c0, c1) = weight_interval(space)?;
        let candidates = u_skyline_2d(data, c0, c1);
        let sky_total = candidates.len();
        let lines = DualLine::from_dataset(data);
        let sky = dedup_candidates(&lines, &candidates);
        let init_ranks = initial_ranks(&lines, c0);
        // Parallel classification: chunked per tracked line, merged by a
        // deterministic total order — bit-identical to the sequential
        // enumeration (see rrm_geom::events).
        let events = crossings_with_tracked_capped_par(
            &lines,
            &sky,
            c0,
            c1,
            options.chunk_target,
            options.exec.parallelism,
        );
        Ok(Self {
            data: data.clone(),
            options,
            c0,
            c1,
            sky,
            sky_total,
            lines,
            init_ranks,
            events,
            memo: Mutex::new(HashMap::new()),
        })
    }

    /// The dataset this state was prepared on.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Number of candidate (restricted-skyline, deduplicated) tuples.
    pub fn candidates(&self) -> usize {
        self.sky.len()
    }

    /// One DP replay for size budget `r` against the cached sweep state,
    /// bypassing the memo (the unit of work of the parallel memo fill).
    fn compute_rrm(&self, r: usize) -> Result<Solution, RrmError> {
        if self.sky.len() <= r {
            return Solution::new(self.sky.clone(), Some(1), Algorithm::TwoDRrm, &self.data);
        }
        dp_run(
            &self.data,
            &self.lines,
            &self.sky,
            &self.init_ranks,
            r,
            |apply| match &self.events {
                Some(events) => {
                    for c in events {
                        apply(c.x, c.down, c.up);
                    }
                }
                None => stream_crossings(
                    &self.lines,
                    &self.sky,
                    self.c0,
                    self.c1,
                    self.options.chunk_target,
                    |c| apply(c.x, c.down, c.up),
                ),
            },
            None,
        )
    }

    /// Exact RRM for one size budget, replaying the cached sweep.
    pub fn solve_rrm(&self, r: usize) -> Result<Solution, RrmError> {
        if r == 0 {
            return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
        }
        if let Some(sol) = self.memo.lock().expect("2D memo poisoned").get(&r) {
            return Ok(sol.clone());
        }
        let sol = self.compute_rrm(r)?;
        self.memo.lock().expect("2D memo poisoned").insert(r, sol.clone());
        Ok(sol)
    }

    /// Answer many size budgets at once: uncached budgets are replayed
    /// concurrently (one DP run per budget over the shared sweep state,
    /// chunked by [`Rrm2dOptions::exec`]) and memoized; results come back
    /// in request order. Each budget's replay is independent, so the
    /// solutions are identical to serial [`Prepared2d::solve_rrm`] calls
    /// at any thread count. This is the memo-fill path behind
    /// [`crate::pareto_frontier`].
    pub fn solve_rrm_many(&self, rs: &[usize]) -> Result<Vec<Solution>, RrmError> {
        if rs.contains(&0) {
            return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
        }
        let missing: Vec<usize> = {
            let memo = self.memo.lock().expect("2D memo poisoned");
            let mut missing: Vec<usize> =
                rs.iter().copied().filter(|r| !memo.contains_key(r)).collect();
            missing.sort_unstable();
            missing.dedup();
            missing
        };
        let computed =
            rrm_par::par_map(&missing, self.options.exec.parallelism, |&r| self.compute_rrm(r));
        {
            let mut memo = self.memo.lock().expect("2D memo poisoned");
            for (r, sol) in missing.iter().zip(&computed) {
                if let Ok(sol) = sol {
                    memo.insert(*r, sol.clone());
                }
            }
        }
        // Surface the first error (by ascending budget) before assembling.
        for sol in computed {
            sol?;
        }
        rs.iter().map(|&r| self.solve_rrm(r)).collect()
    }

    /// Exact RRR: binary search on the output size over [`Self::solve_rrm`]
    /// (the same search as [`crate::rrr_exact_2d`], with every probe
    /// memoized).
    pub fn solve_rrr(&self, k: usize) -> Result<Solution, RrmError> {
        if k == 0 {
            return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
        }
        let mut lo = 1usize;
        let mut hi = self.sky_total;
        let mut best: Option<Solution> = None;
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            let sol = self.solve_rrm(mid)?;
            if sol.certified_regret.expect("certified") <= k {
                hi = mid - 1;
                best = Some(sol);
            } else {
                lo = mid + 1;
            }
        }
        best.ok_or_else(|| RrmError::Unsupported("no candidate set meets the threshold".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::{FullSpace, WeakRankingSpace};

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn table1_r1_returns_t3() {
        // The paper: "When r = 1, the solutions for RRM and RMS are {t3}
        // and {t4} respectively."
        let sol = rrm_2d(&table1(), 1, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(sol.indices, vec![2], "expected {{t3}}");
        assert_eq!(sol.certified_regret, Some(3), "Table I rank-ratio of t3");
        assert_eq!(sol.algorithm, Algorithm::TwoDRrm);
    }

    #[test]
    fn table1_shift_invariance() {
        // Figure 2's shift: +4 on A2. The RRM solution stays {t3}.
        let shifted = table1().shift(&[0.0, 4.0]);
        let sol = rrm_2d(&shifted, 1, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(sol.indices, vec![2]);
        assert_eq!(sol.certified_regret, Some(3));
    }

    #[test]
    fn table2_subset_r2() {
        // D = {t1, t2, t3}, r = 2 -> optimal rank-regret 2, {t1,t2} or {t1,t3}.
        let d = Dataset::from_rows(&[[0.0, 1.0], [0.4, 0.95], [0.57, 0.75]]).unwrap();
        let sol = rrm_2d(&d, 2, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(sol.certified_regret, Some(2));
        assert!(sol.indices == vec![0, 1] || sol.indices == vec![0, 2], "{:?}", sol.indices);
    }

    #[test]
    fn whole_skyline_fits() {
        let d = table1();
        // Skyline has 5 tuples; with r = 5 the answer is the skyline with
        // rank-regret 1.
        let sol = rrm_2d(&d, 5, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(sol.indices, vec![0, 1, 2, 3, 6]);
        assert_eq!(sol.certified_regret, Some(1));
    }

    #[test]
    fn full_sweep_agrees_with_event_stream() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..20 {
            let n = rng.random_range(3..40);
            let rows: Vec<[f64; 2]> =
                (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
            let d = Dataset::from_rows(&rows).unwrap();
            for r in 1..4 {
                let a = rrm_2d(&d, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
                let b = rrm_2d(
                    &d,
                    r,
                    &FullSpace::new(2),
                    Rrm2dOptions { use_full_sweep: true, ..Default::default() },
                )
                .unwrap();
                assert_eq!(a.certified_regret, b.certified_regret, "trial {trial} r={r}: {rows:?}");
            }
        }
    }

    #[test]
    fn tiny_chunks_do_not_change_results() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<[f64; 2]> =
            (0..30).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let a = rrm_2d(&d, 3, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        let b = rrm_2d(
            &d,
            3,
            &FullSpace::new(2),
            Rrm2dOptions { chunk_target: 3, ..Default::default() },
        )
        .unwrap();
        assert_eq!(a.certified_regret, b.certified_regret);
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn restricted_space_lowers_regret() {
        // "Under the same settings, the solution of RRRM usually has a
        // lower rank-regret than RRM, owing to fewer functions in U."
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<[f64; 2]> =
            (0..200).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let full = rrm_2d(&d, 2, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        let restricted =
            rrm_2d(&d, 2, &WeakRankingSpace::new(2, 1), Rrm2dOptions::default()).unwrap();
        assert!(
            restricted.certified_regret.unwrap() <= full.certified_regret.unwrap(),
            "restricted {restricted:?} vs full {full:?}"
        );
    }

    #[test]
    fn duplicates_are_deduplicated() {
        let d = Dataset::from_rows(&[[0.9, 0.1], [0.9, 0.1], [0.1, 0.9], [0.5, 0.5]]).unwrap();
        let sol = rrm_2d(&d, 2, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        // Never both copies of the duplicate.
        assert!(!(sol.indices.contains(&0) && sol.indices.contains(&1)));
    }

    #[test]
    fn r_zero_rejected() {
        assert!(matches!(
            rrm_2d(&table1(), 0, &FullSpace::new(2), Rrm2dOptions::default()),
            Err(RrmError::OutputSizeTooSmall { .. })
        ));
    }

    #[test]
    fn wrong_dimension_rejected() {
        let d = Dataset::from_rows(&[[0.1, 0.2, 0.3]]).unwrap();
        assert!(matches!(
            rrm_2d(&d, 1, &FullSpace::new(3), Rrm2dOptions::default()),
            Err(RrmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn stats_counters_make_sense() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Anti-correlated points (near the x + y = 1 line): the skyline is
        // large for any RNG stream, so the sweep must actually run (the
        // `skyline <= r` early-return would zero every counter).
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<[f64; 2]> = (0..150)
            .map(|_| {
                let t = rng.random::<f64>();
                [t, 1.0 - t + 0.05 * rng.random::<f64>()]
            })
            .collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let (sol, stats) =
            rrm_2d_with_stats(&d, 3, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert!(sol.certified_regret.is_some());
        assert!(stats.candidates > 3, "need more candidates than r for a real sweep");
        // Event-count sanity: events <= candidates * n; the case-1 subset
        // is non-empty (every candidate pair crosses) and extensions are a
        // subset of case-1 events.
        assert!(stats.events <= stats.candidates * d.n());
        assert!(stats.case1_events >= 1 && stats.case1_events <= stats.events);
        assert!(stats.extensions <= stats.case1_events);
        // Full sweep visits at least as many events (all pairs, not just
        // candidate-involved ones).
        let (_, full) = rrm_2d_with_stats(
            &d,
            3,
            &FullSpace::new(2),
            Rrm2dOptions { use_full_sweep: true, ..Default::default() },
        )
        .unwrap();
        assert!(full.events >= stats.events, "full {} < stream {}", full.events, stats.events);
        assert_eq!(full.case1_events, stats.case1_events);
        assert_eq!(full.extensions, stats.extensions);
    }

    #[test]
    fn prepared_replay_equals_one_shot() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<[f64; 2]> =
            (0..120).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        for space in [
            Box::new(FullSpace::new(2)) as Box<dyn rrm_core::UtilitySpace>,
            Box::new(WeakRankingSpace::new(2, 1)),
        ] {
            let prepared = Prepared2d::new(&d, space.as_ref(), Rrm2dOptions::default()).unwrap();
            for r in 1..=6 {
                let one_shot = rrm_2d(&d, r, space.as_ref(), Rrm2dOptions::default()).unwrap();
                assert_eq!(prepared.solve_rrm(r).unwrap(), one_shot, "r={r}");
                // Memoized second ask: still identical.
                assert_eq!(prepared.solve_rrm(r).unwrap(), one_shot, "r={r} (memo)");
            }
        }
    }

    #[test]
    fn prepared_streaming_fallback_equals_materialized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let rows: Vec<[f64; 2]> = (0..80)
            .map(|_| {
                let t = rng.random::<f64>();
                [t, 1.0 - t + 0.05 * rng.random::<f64>()]
            })
            .collect();
        let d = Dataset::from_rows(&rows).unwrap();
        // chunk_target 1 forces the no-cache streaming path.
        let tiny = Rrm2dOptions { chunk_target: 1, ..Default::default() };
        let streamed = Prepared2d::new(&d, &FullSpace::new(2), tiny).unwrap();
        let cached = Prepared2d::new(&d, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        for r in [1usize, 3, 5] {
            assert_eq!(streamed.solve_rrm(r).unwrap(), cached.solve_rrm(r).unwrap(), "r={r}");
        }
    }

    #[test]
    fn prepared_rrr_matches_exact_search() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let rows: Vec<[f64; 2]> =
            (0..90).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let prepared = Prepared2d::new(&d, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        for k in [1usize, 2, 4, 7] {
            let one_shot =
                crate::pareto::rrr_exact_2d(&d, k, &FullSpace::new(2), Rrm2dOptions::default())
                    .unwrap();
            assert_eq!(prepared.solve_rrr(k).unwrap(), one_shot, "k={k}");
        }
        assert!(prepared.solve_rrr(0).is_err());
        assert!(prepared.solve_rrm(0).is_err());
    }

    #[test]
    fn weight_interval_full_and_restricted() {
        assert_eq!(weight_interval(&FullSpace::new(2)).unwrap(), (0.0, 1.0));
        let (lo, hi) = weight_interval(&WeakRankingSpace::new(2, 1)).unwrap();
        assert!((lo - 0.5).abs() < 1e-12 && (hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_r() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let rows: Vec<[f64; 2]> =
            (0..120).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let mut prev = usize::MAX;
        for r in 1..=6 {
            let sol = rrm_2d(&d, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
            let k = sol.certified_regret.unwrap();
            assert!(k <= prev, "regret must not increase with r");
            assert!(sol.size() <= r);
            prev = k;
        }
    }
}
