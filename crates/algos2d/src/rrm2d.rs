//! **2DRRM** — the exact 2D dynamic program (Algorithm 1, Theorems 4–5).
//!
//! The solver sweeps a vertical line across the dual arrangement,
//! maintaining for every skyline line `lg(i)` and every budget `j ≤ r` the
//! best convex chain ending in `lg(i)` with at most `j` lines
//! ([`crate::matrix::DpMatrix`]). At each crossing where a skyline line's
//! rank increases, the affected chains' maximum ranks are folded; when the
//! other line is also a skyline line, a cheaper chain may be extended onto
//! it. The best column-`r` cell at the end is the optimal solution.
//!
//! # Event machinery
//!
//! The paper maintains all `n` lines in a sorted list and pops adjacent
//! intersections from a heap (`O(n² log n)`); only crossings that involve
//! a skyline line ever change a rank the DP reads, so the default here
//! replays exactly those `O(s·n)` crossings from a pre-sorted stream
//! ([`rrm_geom::events`]). Set [`Rrm2dOptions::use_full_sweep`] to run the
//! paper's original full-arrangement sweep instead (identical output;
//! compared in the `ablation_sweep` benchmark).
//!
//! # Degeneracies
//!
//! The paper assumes no two tuples tie under any utility function. Exact
//! duplicates are deduplicated among candidates (they share one dual line);
//! concurrent crossings at exactly equal `x` are processed in a
//! deterministic order, which can momentarily over-count a rank at a
//! measure-zero point — the usual general-position caveat.

use std::collections::HashMap;
use std::sync::Mutex;

use rrm_core::{Algorithm, AppliedUpdate, Dataset, ExecPolicy, RrmError, Solution, UtilitySpace};
use rrm_geom::dual::{cmp_at, normalized_interval_2d, DualLine};
use rrm_geom::events::{
    crossing_of_pair, crossings_with_tracked_capped_par, initial_ranks, stream_crossings,
};
use rrm_geom::sweep::arrangement_sweep;
use rrm_geom::Crossing;
use rrm_skyline::restricted::{u_skyline_2d, u_transform_2d};
use rrm_skyline::IncrementalSkyline;

use crate::matrix::DpMatrix;

/// Tuning knobs for [`rrm_2d`].
#[derive(Debug, Clone, Copy)]
pub struct Rrm2dOptions {
    /// Run the paper-faithful full arrangement sweep instead of the
    /// skyline-crossing event stream. Same output, more events.
    pub use_full_sweep: bool,
    /// Upper bound on crossings materialized at once by the event stream.
    pub chunk_target: usize,
    /// Data-parallelism for crossing classification and the prepared
    /// per-`r` memo fill. The DP replay itself is inherently sequential
    /// (rank updates chain); outputs are identical at any thread count.
    pub exec: ExecPolicy,
}

impl Default for Rrm2dOptions {
    fn default() -> Self {
        Self { use_full_sweep: false, chunk_target: 4 << 20, exec: ExecPolicy::default() }
    }
}

/// The weight interval `[c0, c1]` a 2D utility space occupies after
/// normalization (`u → (c, 1-c)`), i.e. the paper's "render the scene"
/// step. Errors when the space is empty or not polyhedral.
pub fn weight_interval(space: &dyn UtilitySpace) -> Result<(f64, f64), RrmError> {
    if space.dim() != 2 {
        return Err(RrmError::DimensionMismatch { expected: 2, got: space.dim() });
    }
    if space.is_full() {
        return Ok((0.0, 1.0));
    }
    let rows = space
        .cone_rows()
        .ok_or_else(|| RrmError::InvalidSpace("2D solvers need a polyhedral space".into()))?;
    normalized_interval_2d(&rows)
        .ok_or_else(|| RrmError::InvalidSpace("the 2D cone contains no direction".into()))
}

/// Work counters from one 2DRRM run (the quantities behind Theorem 5's
/// cost analysis and the `ablation_sweep` benchmark).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Candidate (restricted-skyline, deduplicated) lines `s`.
    pub candidates: usize,
    /// Crossings replayed (the `O(s·n)` event stream; `O(n²)` with the
    /// paper-faithful full sweep).
    pub events: usize,
    /// Events where a candidate's rank increased (the paper's case 1 —
    /// each costs an `O(r)` matrix fold).
    pub case1_events: usize,
    /// Chain extension opportunities (crossings of two candidate lines,
    /// Algorithm 1 lines 17–19).
    pub extensions: usize,
}

/// Solve RRM (`space = L`) or RRRM (restricted `space`) exactly in 2D.
pub fn rrm_2d(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    options: Rrm2dOptions,
) -> Result<Solution, RrmError> {
    let (c0, c1) = weight_interval(space)?;
    rrm_2d_on_interval(data, r, c0, c1, options)
}

/// [`rrm_2d`] with work counters.
pub fn rrm_2d_with_stats(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    options: Rrm2dOptions,
) -> Result<(Solution, SweepStats), RrmError> {
    let (c0, c1) = weight_interval(space)?;
    let mut stats = SweepStats::default();
    let sol = rrm_2d_impl(data, r, c0, c1, options, Some(&mut stats))?;
    Ok((sol, stats))
}

/// Solve the 2D problem for utility directions `(c, 1-c)`, `c ∈ [c0, c1]`.
pub fn rrm_2d_on_interval(
    data: &Dataset,
    r: usize,
    c0: f64,
    c1: f64,
    options: Rrm2dOptions,
) -> Result<Solution, RrmError> {
    rrm_2d_impl(data, r, c0, c1, options, None)
}

/// Deduplicate identical dual lines among candidates (exact duplicate
/// tuples share one dual line; a convex chain uses strictly increasing
/// slopes, so at most one copy could ever appear in a solution), then sort
/// by slope ascending (the paper's g(1..s) order).
fn dedup_candidates(lines: &[DualLine], candidates: &[u32]) -> Vec<u32> {
    let mut sky: Vec<u32> = Vec::with_capacity(candidates.len());
    let mut seen: Vec<(f64, f64)> = Vec::new();
    for &c in candidates {
        let l = &lines[c as usize];
        if !seen.iter().any(|&(s, b)| s == l.slope && b == l.intercept) {
            seen.push((l.slope, l.intercept));
            sky.push(c);
        }
    }
    sky.sort_unstable_by(|&a, &b| {
        lines[a as usize]
            .slope
            .partial_cmp(&lines[b as usize].slope)
            .expect("finite slopes")
            .then(a.cmp(&b))
    });
    sky
}

/// 1-based ranks from a sorted id order (the inverse permutation
/// [`initial_ranks`] builds after sorting).
fn ranks_of_order(order: &[u32]) -> Vec<usize> {
    let mut rank = vec![0usize; order.len()];
    for (pos, &id) in order.iter().enumerate() {
        rank[id as usize] = pos + 1;
    }
    rank
}

/// The `(x, down, up)` total order every crossing stream is sorted by.
fn cmp_crossing(a: &Crossing, b: &Crossing) -> std::cmp::Ordering {
    a.x.partial_cmp(&b.x).expect("finite crossings").then(a.down.cmp(&b.down)).then(a.up.cmp(&b.up))
}

/// Merge two `(x, down, up)`-sorted crossing streams. Keys are distinct
/// (one crossing per line pair), so the merge is the unique sorted
/// sequence — exactly what a full re-sort would produce.
fn merge_crossings(a: Vec<Crossing>, b: Vec<Crossing>) -> Vec<Crossing> {
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if cmp_crossing(&a[i], &b[j]).is_lt() {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The shared DP core: one matrix run over an event source. `for_each`
/// must yield the crossings of `stream_crossings(lines, sky, c0, c1, ..)`
/// in exactly that order (streamed, materialized, or full-sweep — all
/// three are order-identical for tracked lines). Requires `sky.len() > r`
/// (the caller handles the trivial whole-skyline case).
fn dp_run(
    data: &Dataset,
    lines: &[DualLine],
    sky: &[u32],
    init_ranks: &[usize],
    r: usize,
    for_each: impl FnOnce(&mut dyn FnMut(f64, u32, u32)),
    stats: Option<&mut SweepStats>,
) -> Result<Solution, RrmError> {
    // Row lookup: line id -> skyline row (usize::MAX = not a skyline line).
    let mut row_of = vec![usize::MAX; lines.len()];
    for (i, &id) in sky.iter().enumerate() {
        row_of[id as usize] = i;
    }

    let mut rank: Vec<u32> = init_ranks.iter().map(|&v| v as u32).collect();
    let sky_ranks: Vec<u32> = sky.iter().map(|&id| rank[id as usize]).collect();
    let mut m = DpMatrix::new(sky, &sky_ranks, r);

    // Event replay: at each crossing the `down` line's rank increases.
    // `extend` must see `M[i_down, h-1]` pre-fold, hence extend-then-fold.
    let mut counters = SweepStats::default();
    let mut apply = |x: f64, down: u32, up: u32| {
        let _ = x;
        counters.events += 1;
        rank[down as usize] += 1;
        rank[up as usize] -= 1;
        let i_down = row_of[down as usize];
        if i_down != usize::MAX {
            counters.case1_events += 1;
            let j_up = row_of[up as usize];
            if j_up != usize::MAX {
                counters.extensions += 1;
                m.extend(i_down, j_up, up);
            }
            m.fold_rank(i_down, rank[down as usize]);
        }
    };
    for_each(&mut apply);

    let (best_row, best_rank) = m.best_final();
    let chain = m.chain_lines(best_row, r);
    if let Some(st) = stats {
        counters.candidates = sky.len();
        *st = counters;
    }
    Solution::new(chain, Some(best_rank as usize), Algorithm::TwoDRrm, data)
}

fn rrm_2d_impl(
    data: &Dataset,
    r: usize,
    c0: f64,
    c1: f64,
    options: Rrm2dOptions,
    mut stats: Option<&mut SweepStats>,
) -> Result<Solution, RrmError> {
    if data.dim() != 2 {
        return Err(RrmError::DimensionMismatch { expected: 2, got: data.dim() });
    }
    if r == 0 {
        return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
    }
    assert!(c0 <= c1, "empty weight interval");

    // Theorem 3: candidates are the (restricted) skyline.
    let candidates = u_skyline_2d(data, c0, c1);
    let lines = DualLine::from_dataset(data);
    let sky = dedup_candidates(&lines, &candidates);
    let s = sky.len();

    if let Some(st) = stats.as_deref_mut() {
        st.candidates = s;
    }

    // The whole candidate set has rank-regret 1 (the top-1 for any u in the
    // space is never U-dominated, hence a candidate).
    if s <= r {
        return Solution::new(sky, Some(1), Algorithm::TwoDRrm, data);
    }

    let all_ranks = initial_ranks(&lines, c0);
    dp_run(
        data,
        &lines,
        &sky,
        &all_ranks,
        r,
        |apply| {
            if options.use_full_sweep {
                arrangement_sweep(&lines, c0, c1, |x, down, up, _| apply(x, down, up));
            } else {
                stream_crossings(&lines, &sky, c0, c1, options.chunk_target, |c| {
                    apply(c.x, c.down, c.up)
                });
            }
        },
        stats,
    )
}

/// [`rrm_2d`] bound to one dataset and utility space: the prepare-once /
/// query-many form of the exact 2D solver.
///
/// Preparation renders the space onto its weight interval, computes the
/// restricted skyline, the dual lines and the initial ranks, and — when
/// they fit the [`Rrm2dOptions::chunk_target`] memory budget — materializes
/// the sorted crossing stream, so each query is one DP replay instead of a
/// full sweep reconstruction. Solutions are memoized per `r`, which also
/// makes the exact-RRR binary search ([`Prepared2d::solve_rrr`]) and the
/// Pareto frontier ([`crate::pareto_frontier`]) share probe work.
///
/// Every query returns exactly what the one-shot [`rrm_2d`] /
/// [`crate::rrr_exact_2d`] would return for the same inputs.
pub struct Prepared2d {
    data: Dataset,
    options: Rrm2dOptions,
    c0: f64,
    c1: f64,
    /// Deduplicated candidates in ascending slope order (the DP rows).
    sky: Vec<u32>,
    /// Pre-dedup candidate count: the RRR binary search's upper bound
    /// (kept separate so the search probes the same sizes as the one-shot
    /// [`crate::rrr_exact_2d`]).
    sky_total: usize,
    lines: Vec<DualLine>,
    init_ranks: Vec<usize>,
    /// Materialized crossings, `None` when they exceed the chunk budget
    /// (the DP then streams per query: slower, but memory stays bounded).
    events: Option<Vec<Crossing>>,
    /// Incrementally maintained restricted skyline over the
    /// extreme-direction transform of the data (its skyline *is* the
    /// pre-dedup candidate set).
    usky: IncrementalSkyline,
    /// All line ids sorted by the `x = c0` order — the source of
    /// `init_ranks`, persisted so updates can merge instead of re-sorting.
    order0: Vec<u32>,
    memo: Mutex<HashMap<usize, Solution>>,
}

impl Prepared2d {
    pub fn new(
        data: &Dataset,
        space: &dyn UtilitySpace,
        options: Rrm2dOptions,
    ) -> Result<Self, RrmError> {
        if data.dim() != 2 {
            return Err(RrmError::DimensionMismatch { expected: 2, got: data.dim() });
        }
        let (c0, c1) = weight_interval(space)?;
        let usky = IncrementalSkyline::build(&u_transform_2d(data, c0, c1));
        let sky_total = usky.skyline().len();
        let lines = DualLine::from_dataset(data);
        let sky = dedup_candidates(&lines, usky.skyline());
        let mut order0: Vec<u32> = (0..lines.len() as u32).collect();
        rrm_geom::dual::order_at(&lines, &mut order0, c0);
        let init_ranks = ranks_of_order(&order0);
        // Parallel classification: chunked per tracked line, merged by a
        // deterministic total order — bit-identical to the sequential
        // enumeration (see rrm_geom::events).
        let events = crossings_with_tracked_capped_par(
            &lines,
            &sky,
            c0,
            c1,
            options.chunk_target,
            options.exec.parallelism,
        );
        Ok(Self {
            data: data.clone(),
            options,
            c0,
            c1,
            sky,
            sky_total,
            lines,
            init_ranks,
            events,
            usky,
            order0,
            memo: Mutex::new(HashMap::new()),
        })
    }

    /// Rebind the prepared state to the post-update dataset by patching it
    /// in place of a full re-prepare:
    ///
    /// * the restricted-skyline candidate set advances through the
    ///   maintained [`IncrementalSkyline`] (O(churn · s) instead of a full
    ///   sort-filter pass);
    /// * the `x = c0` line order keeps its surviving sequence (the remap is
    ///   monotone and survivors' lines are unchanged) and merges the sorted
    ///   churn in O(n), replacing the O(n log n) re-sort;
    /// * the crossing stream is repaired locally: surviving events that
    ///   still involve a tracked line are remapped (their `x` is a pure
    ///   function of the two unchanged lines), and only pairs with an
    ///   inserted or newly tracked endpoint are re-intersected.
    ///
    /// Every piece is bit-identical to what [`Prepared2d::new`] on
    /// `upd.new` computes — the parity tests below compare the full
    /// internal state, not just answers. Memoized solutions are dropped
    /// (they describe the old rows).
    pub fn apply_update(&self, upd: &AppliedUpdate) -> Self {
        let data = upd.new.clone();
        assert_eq!(data.dim(), 2, "updates cannot change the arity");
        let n_new = data.n();
        let first_ins = n_new - upd.inserted.len();
        let lines = DualLine::from_dataset(&data);

        // Candidates: advance the incremental restricted skyline.
        let mut usky = self.usky.clone();
        usky.apply(&u_transform_2d(&data, self.c0, self.c1), &upd.remap, &upd.inserted);
        let sky_total = usky.skyline().len();
        let sky = dedup_candidates(&lines, usky.skyline());

        // Initial ranks at c0: merge the surviving order with the sorted
        // inserts under the same total order `order_at` sorts by.
        let survivors: Vec<u32> =
            self.order0.iter().filter_map(|&id| upd.remap[id as usize]).collect();
        let mut churn: Vec<u32> = upd.inserted.clone();
        churn.sort_unstable_by(|&a, &b| cmp_at(&lines, self.c0, a, b));
        let mut order0 = Vec::with_capacity(n_new);
        let (mut i, mut j) = (0usize, 0usize);
        while i < survivors.len() && j < churn.len() {
            if cmp_at(&lines, self.c0, survivors[i], churn[j]).is_lt() {
                order0.push(survivors[i]);
                i += 1;
            } else {
                order0.push(churn[j]);
                j += 1;
            }
        }
        order0.extend_from_slice(&survivors[i..]);
        order0.extend_from_slice(&churn[j..]);
        let init_ranks = ranks_of_order(&order0);

        // Crossing-event repair, local to the touched lines.
        let events = self.events.as_ref().map(|old_events| {
            let mut ns_mask = vec![false; n_new];
            for &s in &sky {
                ns_mask[s as usize] = true;
            }
            // Old tracked set on surviving new ids.
            let mut os_surv = vec![false; n_new];
            for &t in &self.sky {
                if let Some(nt) = upd.remap[t as usize] {
                    os_surv[nt as usize] = true;
                }
            }
            // R: surviving crossings that still involve a tracked line.
            // The filter preserves sortedness (monotone remap, same x).
            let mut kept: Vec<Crossing> = Vec::with_capacity(old_events.len());
            for c in old_events {
                if let (Some(nd), Some(nu)) = (upd.remap[c.down as usize], upd.remap[c.up as usize])
                {
                    if ns_mask[nd as usize] || ns_mask[nu as usize] {
                        kept.push(Crossing { x: c.x, down: nd, up: nu });
                    }
                }
            }
            // A: pairs the old stream cannot contain, deduplicated by the
            // same skip rule the enumeration passes use.
            let mut fresh: Vec<Crossing> = Vec::new();
            // Inserted tracked lines against everything.
            for &j in &upd.inserted {
                if !ns_mask[j as usize] {
                    continue;
                }
                for o in 0..n_new as u32 {
                    if o == j || (ns_mask[o as usize] && o < j) {
                        continue;
                    }
                    fresh.extend(crossing_of_pair(&lines, j, o, self.c0, self.c1));
                }
            }
            // Surviving tracked lines against the inserted lines, and
            // promoted (newly tracked) survivors against the previously
            // untracked survivors (tracked–old-tracked pairs are in R).
            let mut promoted: Vec<u32> = Vec::new();
            let mut promoted_mask = vec![false; first_ins];
            for &t in &sky {
                if (t as usize) >= first_ins {
                    continue;
                }
                for &o in &upd.inserted {
                    fresh.extend(crossing_of_pair(&lines, t, o, self.c0, self.c1));
                }
                if !os_surv[t as usize] {
                    promoted.push(t);
                    promoted_mask[t as usize] = true;
                }
            }
            for &p in &promoted {
                for o in 0..first_ins as u32 {
                    if o == p || os_surv[o as usize] || (promoted_mask[o as usize] && o < p) {
                        continue;
                    }
                    fresh.extend(crossing_of_pair(&lines, p, o, self.c0, self.c1));
                }
            }
            fresh.sort_unstable_by(cmp_crossing);
            merge_crossings(kept, fresh)
        });
        // Same materialization rule as the capped enumeration: the stream
        // is kept only when it fits the chunk budget.
        let events = match events {
            Some(all) if all.len() <= self.options.chunk_target => Some(all),
            _ => None,
        };

        Self {
            data,
            options: self.options,
            c0: self.c0,
            c1: self.c1,
            sky,
            sky_total,
            lines,
            init_ranks,
            events,
            usky,
            order0,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The dataset this state was prepared on.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Number of candidate (restricted-skyline, deduplicated) tuples.
    pub fn candidates(&self) -> usize {
        self.sky.len()
    }

    /// One DP replay for size budget `r` against the cached sweep state,
    /// bypassing the memo (the unit of work of the parallel memo fill).
    fn compute_rrm(&self, r: usize) -> Result<Solution, RrmError> {
        if self.sky.len() <= r {
            return Solution::new(self.sky.clone(), Some(1), Algorithm::TwoDRrm, &self.data);
        }
        dp_run(
            &self.data,
            &self.lines,
            &self.sky,
            &self.init_ranks,
            r,
            |apply| match &self.events {
                Some(events) => {
                    for c in events {
                        apply(c.x, c.down, c.up);
                    }
                }
                None => stream_crossings(
                    &self.lines,
                    &self.sky,
                    self.c0,
                    self.c1,
                    self.options.chunk_target,
                    |c| apply(c.x, c.down, c.up),
                ),
            },
            None,
        )
    }

    /// Exact RRM for one size budget, replaying the cached sweep.
    pub fn solve_rrm(&self, r: usize) -> Result<Solution, RrmError> {
        if r == 0 {
            return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
        }
        if let Some(sol) = self.memo.lock().expect("2D memo poisoned").get(&r) {
            return Ok(sol.clone());
        }
        let sol = self.compute_rrm(r)?;
        self.memo.lock().expect("2D memo poisoned").insert(r, sol.clone());
        Ok(sol)
    }

    /// Answer many size budgets at once: uncached budgets are replayed
    /// concurrently (one DP run per budget over the shared sweep state,
    /// chunked by [`Rrm2dOptions::exec`]) and memoized; results come back
    /// in request order. Each budget's replay is independent, so the
    /// solutions are identical to serial [`Prepared2d::solve_rrm`] calls
    /// at any thread count. This is the memo-fill path behind
    /// [`crate::pareto_frontier`].
    pub fn solve_rrm_many(&self, rs: &[usize]) -> Result<Vec<Solution>, RrmError> {
        if rs.contains(&0) {
            return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
        }
        let missing: Vec<usize> = {
            let memo = self.memo.lock().expect("2D memo poisoned");
            let mut missing: Vec<usize> =
                rs.iter().copied().filter(|r| !memo.contains_key(r)).collect();
            missing.sort_unstable();
            missing.dedup();
            missing
        };
        let computed =
            rrm_par::par_map(&missing, self.options.exec.parallelism, |&r| self.compute_rrm(r));
        {
            let mut memo = self.memo.lock().expect("2D memo poisoned");
            for (r, sol) in missing.iter().zip(&computed) {
                if let Ok(sol) = sol {
                    memo.insert(*r, sol.clone());
                }
            }
        }
        // Surface the first error (by ascending budget) before assembling.
        for sol in computed {
            sol?;
        }
        rs.iter().map(|&r| self.solve_rrm(r)).collect()
    }

    /// Exact RRR: binary search on the output size over [`Self::solve_rrm`]
    /// (the same search as [`crate::rrr_exact_2d`], with every probe
    /// memoized).
    pub fn solve_rrr(&self, k: usize) -> Result<Solution, RrmError> {
        if k == 0 {
            return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
        }
        let mut lo = 1usize;
        let mut hi = self.sky_total;
        let mut best: Option<Solution> = None;
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            let sol = self.solve_rrm(mid)?;
            if sol.certified_regret.expect("certified") <= k {
                hi = mid - 1;
                best = Some(sol);
            } else {
                lo = mid + 1;
            }
        }
        best.ok_or_else(|| RrmError::Unsupported("no candidate set meets the threshold".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::{FullSpace, WeakRankingSpace};

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn table1_r1_returns_t3() {
        // The paper: "When r = 1, the solutions for RRM and RMS are {t3}
        // and {t4} respectively."
        let sol = rrm_2d(&table1(), 1, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(sol.indices, vec![2], "expected {{t3}}");
        assert_eq!(sol.certified_regret, Some(3), "Table I rank-ratio of t3");
        assert_eq!(sol.algorithm, Algorithm::TwoDRrm);
    }

    #[test]
    fn table1_shift_invariance() {
        // Figure 2's shift: +4 on A2. The RRM solution stays {t3}.
        let shifted = table1().shift(&[0.0, 4.0]);
        let sol = rrm_2d(&shifted, 1, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(sol.indices, vec![2]);
        assert_eq!(sol.certified_regret, Some(3));
    }

    #[test]
    fn table2_subset_r2() {
        // D = {t1, t2, t3}, r = 2 -> optimal rank-regret 2, {t1,t2} or {t1,t3}.
        let d = Dataset::from_rows(&[[0.0, 1.0], [0.4, 0.95], [0.57, 0.75]]).unwrap();
        let sol = rrm_2d(&d, 2, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(sol.certified_regret, Some(2));
        assert!(sol.indices == vec![0, 1] || sol.indices == vec![0, 2], "{:?}", sol.indices);
    }

    #[test]
    fn whole_skyline_fits() {
        let d = table1();
        // Skyline has 5 tuples; with r = 5 the answer is the skyline with
        // rank-regret 1.
        let sol = rrm_2d(&d, 5, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert_eq!(sol.indices, vec![0, 1, 2, 3, 6]);
        assert_eq!(sol.certified_regret, Some(1));
    }

    #[test]
    fn full_sweep_agrees_with_event_stream() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..20 {
            let n = rng.random_range(3..40);
            let rows: Vec<[f64; 2]> =
                (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
            let d = Dataset::from_rows(&rows).unwrap();
            for r in 1..4 {
                let a = rrm_2d(&d, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
                let b = rrm_2d(
                    &d,
                    r,
                    &FullSpace::new(2),
                    Rrm2dOptions { use_full_sweep: true, ..Default::default() },
                )
                .unwrap();
                assert_eq!(a.certified_regret, b.certified_regret, "trial {trial} r={r}: {rows:?}");
            }
        }
    }

    #[test]
    fn tiny_chunks_do_not_change_results() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<[f64; 2]> =
            (0..30).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let a = rrm_2d(&d, 3, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        let b = rrm_2d(
            &d,
            3,
            &FullSpace::new(2),
            Rrm2dOptions { chunk_target: 3, ..Default::default() },
        )
        .unwrap();
        assert_eq!(a.certified_regret, b.certified_regret);
        assert_eq!(a.indices, b.indices);
    }

    #[test]
    fn restricted_space_lowers_regret() {
        // "Under the same settings, the solution of RRRM usually has a
        // lower rank-regret than RRM, owing to fewer functions in U."
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<[f64; 2]> =
            (0..200).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let full = rrm_2d(&d, 2, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        let restricted =
            rrm_2d(&d, 2, &WeakRankingSpace::new(2, 1), Rrm2dOptions::default()).unwrap();
        assert!(
            restricted.certified_regret.unwrap() <= full.certified_regret.unwrap(),
            "restricted {restricted:?} vs full {full:?}"
        );
    }

    #[test]
    fn duplicates_are_deduplicated() {
        let d = Dataset::from_rows(&[[0.9, 0.1], [0.9, 0.1], [0.1, 0.9], [0.5, 0.5]]).unwrap();
        let sol = rrm_2d(&d, 2, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        // Never both copies of the duplicate.
        assert!(!(sol.indices.contains(&0) && sol.indices.contains(&1)));
    }

    #[test]
    fn r_zero_rejected() {
        assert!(matches!(
            rrm_2d(&table1(), 0, &FullSpace::new(2), Rrm2dOptions::default()),
            Err(RrmError::OutputSizeTooSmall { .. })
        ));
    }

    #[test]
    fn wrong_dimension_rejected() {
        let d = Dataset::from_rows(&[[0.1, 0.2, 0.3]]).unwrap();
        assert!(matches!(
            rrm_2d(&d, 1, &FullSpace::new(3), Rrm2dOptions::default()),
            Err(RrmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn stats_counters_make_sense() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Anti-correlated points (near the x + y = 1 line): the skyline is
        // large for any RNG stream, so the sweep must actually run (the
        // `skyline <= r` early-return would zero every counter).
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<[f64; 2]> = (0..150)
            .map(|_| {
                let t = rng.random::<f64>();
                [t, 1.0 - t + 0.05 * rng.random::<f64>()]
            })
            .collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let (sol, stats) =
            rrm_2d_with_stats(&d, 3, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        assert!(sol.certified_regret.is_some());
        assert!(stats.candidates > 3, "need more candidates than r for a real sweep");
        // Event-count sanity: events <= candidates * n; the case-1 subset
        // is non-empty (every candidate pair crosses) and extensions are a
        // subset of case-1 events.
        assert!(stats.events <= stats.candidates * d.n());
        assert!(stats.case1_events >= 1 && stats.case1_events <= stats.events);
        assert!(stats.extensions <= stats.case1_events);
        // Full sweep visits at least as many events (all pairs, not just
        // candidate-involved ones).
        let (_, full) = rrm_2d_with_stats(
            &d,
            3,
            &FullSpace::new(2),
            Rrm2dOptions { use_full_sweep: true, ..Default::default() },
        )
        .unwrap();
        assert!(full.events >= stats.events, "full {} < stream {}", full.events, stats.events);
        assert_eq!(full.case1_events, stats.case1_events);
        assert_eq!(full.extensions, stats.extensions);
    }

    #[test]
    fn prepared_replay_equals_one_shot() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<[f64; 2]> =
            (0..120).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        for space in [
            Box::new(FullSpace::new(2)) as Box<dyn rrm_core::UtilitySpace>,
            Box::new(WeakRankingSpace::new(2, 1)),
        ] {
            let prepared = Prepared2d::new(&d, space.as_ref(), Rrm2dOptions::default()).unwrap();
            for r in 1..=6 {
                let one_shot = rrm_2d(&d, r, space.as_ref(), Rrm2dOptions::default()).unwrap();
                assert_eq!(prepared.solve_rrm(r).unwrap(), one_shot, "r={r}");
                // Memoized second ask: still identical.
                assert_eq!(prepared.solve_rrm(r).unwrap(), one_shot, "r={r} (memo)");
            }
        }
    }

    #[test]
    fn prepared_streaming_fallback_equals_materialized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let rows: Vec<[f64; 2]> = (0..80)
            .map(|_| {
                let t = rng.random::<f64>();
                [t, 1.0 - t + 0.05 * rng.random::<f64>()]
            })
            .collect();
        let d = Dataset::from_rows(&rows).unwrap();
        // chunk_target 1 forces the no-cache streaming path.
        let tiny = Rrm2dOptions { chunk_target: 1, ..Default::default() };
        let streamed = Prepared2d::new(&d, &FullSpace::new(2), tiny).unwrap();
        let cached = Prepared2d::new(&d, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        for r in [1usize, 3, 5] {
            assert_eq!(streamed.solve_rrm(r).unwrap(), cached.solve_rrm(r).unwrap(), "r={r}");
        }
    }

    #[test]
    fn prepared_rrr_matches_exact_search() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let rows: Vec<[f64; 2]> =
            (0..90).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let prepared = Prepared2d::new(&d, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
        for k in [1usize, 2, 4, 7] {
            let one_shot =
                crate::pareto::rrr_exact_2d(&d, k, &FullSpace::new(2), Rrm2dOptions::default())
                    .unwrap();
            assert_eq!(prepared.solve_rrr(k).unwrap(), one_shot, "k={k}");
        }
        assert!(prepared.solve_rrr(0).is_err());
        assert!(prepared.solve_rrm(0).is_err());
    }

    #[test]
    fn incremental_update_matches_fresh_prepare() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rrm_core::{apply_updates, UpdateOp};
        let mut rng = StdRng::seed_from_u64(19);
        for trial in 0..8 {
            let n = rng.random_range(6..60);
            // Quantized coordinates provoke duplicate lines, rank ties and
            // concurrent crossings — the degenerate cases dedup and the
            // event order must get right.
            let rows: Vec<[f64; 2]> = (0..n)
                .map(|_| {
                    [rng.random_range(0..32) as f64 / 32.0, rng.random_range(0..32) as f64 / 32.0]
                })
                .collect();
            let data = Dataset::from_rows(&rows).unwrap();
            for space in [
                Box::new(FullSpace::new(2)) as Box<dyn rrm_core::UtilitySpace>,
                Box::new(WeakRankingSpace::new(2, 1)),
            ] {
                let mut prepared =
                    Prepared2d::new(&data, space.as_ref(), Rrm2dOptions::default()).unwrap();
                let mut cur = data.clone();
                for batch in 0..4 {
                    let mut ops: Vec<UpdateOp> = Vec::new();
                    for _ in 0..rng.random_range(0..cur.n().min(4)) {
                        let i = rng.random_range(0..cur.n());
                        if !ops.contains(&UpdateOp::Delete(i)) {
                            ops.push(UpdateOp::Delete(i));
                        }
                    }
                    for _ in 0..rng.random_range(1..4) {
                        ops.push(UpdateOp::Insert(vec![
                            rng.random_range(0..32) as f64 / 32.0,
                            rng.random_range(0..32) as f64 / 32.0,
                        ]));
                    }
                    let upd = apply_updates(&cur, &ops).unwrap();
                    prepared = prepared.apply_update(&upd);
                    let fresh =
                        Prepared2d::new(&upd.new, space.as_ref(), Rrm2dOptions::default()).unwrap();
                    // Full internal-state parity, not just answers.
                    let ctx = format!("trial {trial} batch {batch}");
                    assert_eq!(prepared.sky, fresh.sky, "{ctx}");
                    assert_eq!(prepared.sky_total, fresh.sky_total, "{ctx}");
                    assert_eq!(prepared.order0, fresh.order0, "{ctx}");
                    assert_eq!(prepared.init_ranks, fresh.init_ranks, "{ctx}");
                    assert_eq!(prepared.events, fresh.events, "{ctx}");
                    for r in 1..4 {
                        assert_eq!(
                            prepared.solve_rrm(r).unwrap(),
                            fresh.solve_rrm(r).unwrap(),
                            "{ctx} r={r}"
                        );
                    }
                    assert_eq!(
                        prepared.solve_rrr(2).unwrap(),
                        fresh.solve_rrr(2).unwrap(),
                        "{ctx}"
                    );
                    cur = upd.new.clone();
                }
            }
        }
    }

    #[test]
    fn incremental_update_streaming_fallback_still_answers_right() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rrm_core::{apply_updates, UpdateOp};
        let mut rng = StdRng::seed_from_u64(29);
        let rows: Vec<[f64; 2]> =
            (0..40).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        // chunk_target 1: events never materialize, updates keep None.
        let tiny = Rrm2dOptions { chunk_target: 1, ..Default::default() };
        let mut prepared = Prepared2d::new(&data, &FullSpace::new(2), tiny).unwrap();
        let upd =
            apply_updates(&data, &[UpdateOp::Delete(3), UpdateOp::Insert(vec![0.9, 0.9])]).unwrap();
        prepared = prepared.apply_update(&upd);
        assert!(prepared.events.is_none());
        let fresh = Prepared2d::new(&upd.new, &FullSpace::new(2), tiny).unwrap();
        for r in 1..4 {
            assert_eq!(prepared.solve_rrm(r).unwrap(), fresh.solve_rrm(r).unwrap(), "r={r}");
        }
    }

    #[test]
    fn weight_interval_full_and_restricted() {
        assert_eq!(weight_interval(&FullSpace::new(2)).unwrap(), (0.0, 1.0));
        let (lo, hi) = weight_interval(&WeakRankingSpace::new(2, 1)).unwrap();
        assert!((lo - 0.5).abs() < 1e-12 && (hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_r() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let rows: Vec<[f64; 2]> =
            (0..120).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
        let d = Dataset::from_rows(&rows).unwrap();
        let mut prev = usize::MAX;
        for r in 1..=6 {
            let sol = rrm_2d(&d, r, &FullSpace::new(2), Rrm2dOptions::default()).unwrap();
            let k = sol.certified_regret.unwrap();
            assert!(k <= prev, "regret must not increase with r");
            assert!(sol.size() <= r);
            prev = k;
        }
    }
}
