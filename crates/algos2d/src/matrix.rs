//! The dynamic-programming matrix `M` of Algorithm 1.
//!
//! `M[i][j]` holds the best convex chain of at most `j` skyline lines that
//! ends in the `i`-th skyline line (`lg(i)`), together with its maximum
//! rank over the swept prefix `[c0, c]`. Chains are persistent cons lists
//! ([`rrm_geom::chain`]), so the "suffix with lj" update is O(1).

use std::rc::Rc;

use rrm_geom::chain::{chain_to_vec, ChainNode};

/// One cell of `M`.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Maximum rank of the chain over the swept prefix (`M[i,j].rank`).
    pub rank: u32,
    /// The chain itself, newest line at the head.
    pub chain: Rc<ChainNode>,
}

/// The `s × r` matrix, row-major: row `i` = chains ending in skyline line
/// `g(i)`, column `j` (1-based) = chains of at most `j` lines.
pub struct DpMatrix {
    cells: Vec<Cell>,
    r: usize,
}

impl DpMatrix {
    /// Initialize per Algorithm 1 lines 7–8: every cell of row `i` starts
    /// as the singleton chain `{lg(i)}` with its initial rank.
    pub fn new(skyline_lines: &[u32], initial_ranks: &[u32], r: usize) -> Self {
        assert!(r >= 1);
        assert_eq!(skyline_lines.len(), initial_ranks.len());
        let mut cells = Vec::with_capacity(skyline_lines.len() * r);
        for (&line, &rank) in skyline_lines.iter().zip(initial_ranks) {
            let chain = ChainNode::singleton(line);
            for _ in 0..r {
                cells.push(Cell { rank, chain: Rc::clone(&chain) });
            }
        }
        Self { cells, r }
    }

    pub fn r(&self) -> usize {
        self.r
    }

    #[inline]
    pub fn cell(&self, i: usize, j: usize) -> &Cell {
        debug_assert!((1..=self.r).contains(&j));
        &self.cells[i * self.r + (j - 1)]
    }

    /// Fold a rank increase of row `i`'s ending line into every column
    /// (Algorithm 1 line 16).
    #[inline]
    pub fn fold_rank(&mut self, i: usize, new_rank: u32) {
        for cell in &mut self.cells[i * self.r..(i + 1) * self.r] {
            if cell.rank < new_rank {
                cell.rank = new_rank;
            }
        }
    }

    /// The extension step (Algorithm 1 lines 17–19) for one crossing where
    /// skyline row `i_down` goes down past skyline row `j_up`: for each
    /// `h = r..2`, if `M[j_up, h].rank > M[i_down, h-1].rank`, replace
    /// `M[j_up, h]` with `M[i_down, h-1]` suffixed by `j_up`'s line.
    ///
    /// Must be called *before* [`Self::fold_rank`] for this event so that
    /// `M[i_down, h-1]` is read pre-update, exactly as the descending-h loop
    /// of the paper does.
    #[inline]
    pub fn extend(&mut self, i_down: usize, j_up: usize, up_line: u32) {
        for h in (2..=self.r).rev() {
            let src = self.cell(i_down, h - 1);
            let (src_rank, src_chain) = (src.rank, Rc::clone(&src.chain));
            let dst = &mut self.cells[j_up * self.r + (h - 1)];
            if dst.rank > src_rank {
                dst.rank = src_rank;
                dst.chain = ChainNode::extend(&src_chain, up_line);
            }
        }
    }

    /// Best cell in column `r` (Algorithm 1 line 20): `(row, rank)`.
    pub fn best_final(&self) -> (usize, u32) {
        let rows = self.cells.len() / self.r;
        let mut best = (0usize, u32::MAX);
        for i in 0..rows {
            let rank = self.cell(i, self.r).rank;
            if rank < best.1 {
                best = (i, rank);
            }
        }
        best
    }

    /// Best cell in a given column `j`: `(row, rank)`.
    pub fn best_in_column(&self, j: usize) -> (usize, u32) {
        let rows = self.cells.len() / self.r;
        let mut best = (0usize, u32::MAX);
        for i in 0..rows {
            let rank = self.cell(i, j).rank;
            if rank < best.1 {
                best = (i, rank);
            }
        }
        best
    }

    /// Materialize the chain of a cell as line ids, leftmost segment first.
    pub fn chain_lines(&self, i: usize, j: usize) -> Vec<u32> {
        chain_to_vec(&self.cell(i, j).chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_and_accessors() {
        let m = DpMatrix::new(&[10, 20, 30], &[1, 2, 3], 2);
        assert_eq!(m.r(), 2);
        assert_eq!(m.cell(0, 1).rank, 1);
        assert_eq!(m.cell(2, 2).rank, 3);
        assert_eq!(m.chain_lines(1, 2), vec![20]);
    }

    #[test]
    fn fold_rank_is_monotone() {
        let mut m = DpMatrix::new(&[5, 6], &[2, 1], 3);
        m.fold_rank(0, 4);
        assert_eq!(m.cell(0, 1).rank, 4);
        m.fold_rank(0, 3); // lower value: no effect
        assert_eq!(m.cell(0, 2).rank, 4);
        assert_eq!(m.cell(1, 1).rank, 1); // other row untouched
    }

    #[test]
    fn extend_improves_only_when_strictly_better() {
        let mut m = DpMatrix::new(&[5, 6], &[1, 3], 2);
        // Row 0 ends line 5 with rank 1; extending row 1 (rank 3) at h=2
        // should adopt rank 1 and chain [5, 6].
        m.extend(0, 1, 6);
        assert_eq!(m.cell(1, 2).rank, 1);
        assert_eq!(m.chain_lines(1, 2), vec![5, 6]);
        // h=1 never extended (chains of one line can't have a predecessor).
        assert_eq!(m.cell(1, 1).rank, 3);
        assert_eq!(m.chain_lines(1, 1), vec![6]);
        // Re-extending with an equal rank must not churn the chain.
        m.extend(0, 1, 6);
        assert_eq!(m.chain_lines(1, 2), vec![5, 6]);
    }

    #[test]
    fn best_final_and_column() {
        let mut m = DpMatrix::new(&[5, 6, 7], &[4, 2, 9], 2);
        assert_eq!(m.best_final(), (1, 2));
        m.fold_rank(1, 11);
        assert_eq!(m.best_final(), (0, 4));
        assert_eq!(m.best_in_column(1), (0, 4));
    }

    #[test]
    fn table_ii_trace() {
        // Reproduce Table II: D = {t1, t2, t3} of Table I, r = 2.
        // Lines l1, l2, l3 are all skyline; initial ranks 1, 2, 3.
        let mut m = DpMatrix::new(&[0, 1, 2], &[1, 2, 3], 2);
        // Event (l1, l2) at x = 1/9: l1 down (new rank 2), l2 up.
        m.extend(0, 1, 1); // M[2,2] = {l1, l2}, rank 1
        m.fold_rank(0, 2); // M[1,*].rank = 2
        assert_eq!(m.cell(1, 2).rank, 1);
        assert_eq!(m.chain_lines(1, 2), vec![0, 1]);
        assert_eq!(m.cell(0, 1).rank, 2);
        assert_eq!(m.cell(0, 2).rank, 2);
        // Event (l1, l3) at x ≈ 0.3049: l1 down (new rank 3), l3 up.
        m.extend(0, 2, 2); // M[3,2] = {l1, l3}, rank 2
        m.fold_rank(0, 3);
        assert_eq!(m.cell(2, 2).rank, 2);
        assert_eq!(m.chain_lines(2, 2), vec![0, 2]);
        assert_eq!(m.cell(0, 1).rank, 3);
        // Event (l2, l3) at x ≈ 0.5405: l2 down (new rank 2), l3 up.
        m.extend(1, 2, 2); // M[3,2].rank (2) > M[2,1].rank (2)? no: no update
        m.fold_rank(1, 2);
        assert_eq!(m.cell(2, 2).rank, 2);
        assert_eq!(m.chain_lines(2, 2), vec![0, 2]); // unchanged

        // Final: best of column 2 is rank 2 ({l1,l2} or {l1,l3}).
        let (_, rank) = m.best_final();
        assert_eq!(rank, 2);
    }
}
