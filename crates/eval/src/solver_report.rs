//! Trait-driven solver evaluation: run any [`Solver`] and measure what it
//! actually delivers over a utility space — wall-clock, output size, the
//! solver's own certificate, and the sampled rank-regret estimate the
//! paper reports. The bench harness's `measure_solver` is a thin adapter
//! over this, so "evaluate an algorithm" is one call regardless of which
//! of the eight algorithms it is.

use std::time::Instant;

use rrm_core::{Algorithm, Budget, Dataset, PreparedSolver, RrmError, Solver, UtilitySpace};

use crate::rank_regret::estimate_rank_regret;

/// What one solver run delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverReport {
    pub algorithm: Algorithm,
    /// Representative set size.
    pub size: usize,
    /// The solver's own certificate, when its algorithm provides one.
    pub certified_regret: Option<usize>,
    /// Sampled worst rank over the space (the paper's estimator).
    pub estimated_regret: usize,
    /// `estimated_regret` as a percentage of `n` (the paper's
    /// cross-dataset normalization).
    pub estimated_regret_percent: f64,
    /// Wall-clock seconds spent inside the solver.
    pub seconds: f64,
}

fn report(
    sol: &rrm_core::Solution,
    data: &Dataset,
    space: &dyn UtilitySpace,
    eval_samples: usize,
    seed: u64,
    seconds: f64,
) -> SolverReport {
    let estimated = estimate_rank_regret(data, &sol.indices, space, eval_samples, seed).max_rank;
    SolverReport {
        algorithm: sol.algorithm,
        size: sol.size(),
        certified_regret: sol.certified_regret,
        estimated_regret: estimated,
        estimated_regret_percent: 100.0 * estimated as f64 / data.n() as f64,
        seconds,
    }
}

/// Run an RRM query through the trait and evaluate the result.
pub fn evaluate_rrm(
    solver: &dyn Solver,
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    budget: &Budget,
    eval_samples: usize,
    seed: u64,
) -> Result<SolverReport, RrmError> {
    let start = Instant::now();
    let sol = solver.solve_rrm_ctx(data, r, space, budget, &rrm_core::SolverCtx::default())?;
    let seconds = start.elapsed().as_secs_f64();
    Ok(report(&sol, data, space, eval_samples, seed, seconds))
}

/// Run an RRR query through the trait and evaluate the result.
pub fn evaluate_rrr(
    solver: &dyn Solver,
    data: &Dataset,
    k: usize,
    space: &dyn UtilitySpace,
    budget: &Budget,
    eval_samples: usize,
    seed: u64,
) -> Result<SolverReport, RrmError> {
    let start = Instant::now();
    let sol = solver.solve_rrr_ctx(data, k, space, budget, &rrm_core::SolverCtx::default())?;
    let seconds = start.elapsed().as_secs_f64();
    Ok(report(&sol, data, space, eval_samples, seed, seconds))
}

/// Run an RRM query through a *prepared* handle and evaluate the result.
/// `seconds` covers only the query — preparation happened earlier and is
/// the caller's to time (the amortization benches report both).
pub fn evaluate_rrm_prepared(
    prepared: &dyn PreparedSolver,
    r: usize,
    space: &dyn UtilitySpace,
    budget: &Budget,
    eval_samples: usize,
    seed: u64,
) -> Result<SolverReport, RrmError> {
    let start = Instant::now();
    let sol = prepared.solve_rrm(r, budget)?;
    let seconds = start.elapsed().as_secs_f64();
    Ok(report(&sol, prepared.dataset(), space, eval_samples, seed, seconds))
}

/// [`evaluate_rrm_prepared`]'s RRR counterpart.
pub fn evaluate_rrr_prepared(
    prepared: &dyn PreparedSolver,
    k: usize,
    space: &dyn UtilitySpace,
    budget: &Budget,
    eval_samples: usize,
    seed: u64,
) -> Result<SolverReport, RrmError> {
    let start = Instant::now();
    let sol = prepared.solve_rrr(k, budget)?;
    let seconds = start.elapsed().as_secs_f64();
    Ok(report(&sol, prepared.dataset(), space, eval_samples, seed, seconds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::{BruteForceSolver, FullSpace};

    #[test]
    fn brute_force_report_on_a_tiny_dataset() {
        let data = Dataset::from_rows(&[[0.0, 1.0], [0.57, 0.75], [1.0, 0.0]]).unwrap();
        let solver = BruteForceSolver::default();
        let rep = evaluate_rrm(&solver, &data, 1, &FullSpace::new(2), &Budget::default(), 2_000, 7)
            .unwrap();
        assert_eq!(rep.algorithm, Algorithm::BruteForce);
        assert_eq!(rep.size, 1);
        assert!(rep.estimated_regret >= 1 && rep.estimated_regret <= 3);
        assert!(rep.estimated_regret_percent <= 100.0);
        assert!(rep.seconds >= 0.0);
        // The certificate and the estimate agree on this trivial input.
        assert_eq!(rep.certified_regret.unwrap(), rep.estimated_regret);
    }

    #[test]
    fn prepared_report_matches_one_shot_report() {
        let data = Dataset::from_rows(&[[0.0, 1.0], [0.57, 0.75], [1.0, 0.0]]).unwrap();
        let solver = BruteForceSolver::default();
        let space = FullSpace::new(2);
        let one_shot =
            evaluate_rrm(&solver, &data, 1, &space, &Budget::default(), 2_000, 7).unwrap();
        let prepared = solver.prepare(&data, &space).unwrap();
        let rep = evaluate_rrm_prepared(prepared.as_ref(), 1, &space, &Budget::default(), 2_000, 7)
            .unwrap();
        // Identical everything except wall-clock.
        assert_eq!(rep.algorithm, one_shot.algorithm);
        assert_eq!(rep.size, one_shot.size);
        assert_eq!(rep.certified_regret, one_shot.certified_regret);
        assert_eq!(rep.estimated_regret, one_shot.estimated_regret);
        let rrr = evaluate_rrr_prepared(prepared.as_ref(), 2, &space, &Budget::default(), 2_000, 7)
            .unwrap();
        assert_eq!(rrr.algorithm, Algorithm::BruteForce);
    }

    #[test]
    fn errors_pass_through_untouched() {
        let rows: Vec<[f64; 2]> = (0..60).map(|i| [i as f64, 60.0 - i as f64]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let solver = BruteForceSolver::default();
        let err = evaluate_rrm(&solver, &data, 2, &FullSpace::new(2), &Budget::default(), 100, 7)
            .unwrap_err();
        assert!(matches!(err, RrmError::Unsupported(_)));
    }
}
