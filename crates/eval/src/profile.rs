//! Rank-distribution profiling — a library extension beyond the paper.
//!
//! The paper evaluates the *maximum* rank over sampled directions. For a
//! deployed representative set the whole distribution matters: a set whose
//! rank is 1 for 99.9% of users and 500 for the rest is very different
//! from one that is uniformly ~20. [`rank_profile`] reports the max, the
//! mean and chosen quantiles of `∇u(S)` under the space's direction
//! distribution, and the fraction of directions served within a target
//! rank (the paper's `Rat_k(S)` from Theorem 6, estimated).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rrm_core::{Dataset, UtilitySpace};

/// Distributional summary of a set's rank-regret.
#[derive(Debug, Clone, PartialEq)]
pub struct RankProfile {
    /// Worst observed rank (the paper's estimator).
    pub max: usize,
    /// Mean rank over the sampled directions.
    pub mean: f64,
    /// `(q, rank)` pairs for the requested quantiles.
    pub quantiles: Vec<(f64, usize)>,
    /// Number of directions sampled.
    pub samples: usize,
}

impl RankProfile {
    /// Estimated `Rat_k(S)`: the fraction of directions whose rank is ≤ k.
    /// Derived from the stored sorted ranks at construction time via the
    /// quantile list when possible; use [`coverage_ratio`] for exact
    /// per-k values.
    pub fn quantile(&self, q: f64) -> Option<usize> {
        self.quantiles.iter().find(|(qq, _)| (qq - q).abs() < 1e-12).map(|&(_, r)| r)
    }
}

/// Profile `∇u(S)` over `samples` directions drawn from `space`.
///
/// `quantiles` are probabilities in `(0, 1]`; they are reported against the
/// empirical distribution (nearest-rank definition).
pub fn rank_profile(
    data: &Dataset,
    set: &[u32],
    space: &dyn UtilitySpace,
    samples: usize,
    quantiles: &[f64],
    seed: u64,
) -> RankProfile {
    assert!(!set.is_empty(), "rank profile of an empty set is undefined");
    assert!(samples >= 1);
    let ranks = sample_ranks(data, set, space, samples, seed);
    let mut sorted = ranks.clone();
    sorted.sort_unstable();
    let max = *sorted.last().expect("samples >= 1");
    let mean = sorted.iter().sum::<usize>() as f64 / sorted.len() as f64;
    let qs = quantiles
        .iter()
        .map(|&q| {
            assert!(q > 0.0 && q <= 1.0, "quantiles live in (0, 1]");
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            (q, sorted[idx - 1])
        })
        .collect();
    RankProfile { max, mean, quantiles: qs, samples }
}

/// Estimated `Rat_k(S)` (Theorem 6's coverage ratio): the fraction of
/// sampled directions for which `S` holds a top-`k` tuple.
pub fn coverage_ratio(
    data: &Dataset,
    set: &[u32],
    space: &dyn UtilitySpace,
    k: usize,
    samples: usize,
    seed: u64,
) -> f64 {
    assert!(k >= 1);
    let ranks = sample_ranks(data, set, space, samples, seed);
    ranks.iter().filter(|&&r| r <= k).count() as f64 / ranks.len() as f64
}

fn sample_ranks(
    data: &Dataset,
    set: &[u32],
    space: &dyn UtilitySpace,
    samples: usize,
    seed: u64,
) -> Vec<usize> {
    // One sequential direction stream (machine-independent), then the
    // rank counting chunked over RRM_THREADS/all cores (evaluation
    // utility, not the Session serving path — no per-call ExecPolicy;
    // bound its CPU use via RRM_THREADS). The seed offset matches this
    // sampler's historical single-chunk stream.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15_u64));
    let dirs: Vec<Vec<f64>> = (0..samples).map(|_| space.sample_direction(&mut rng)).collect();
    let d = data.dim();
    let flat = data.flat();
    let set_rows: Vec<&[f64]> = set.iter().map(|&i| data.row(i as usize)).collect();
    rrm_par::par_map(&dirs, rrm_core::Parallelism::Auto, |u| {
        let mut best = f64::NEG_INFINITY;
        for row in &set_rows {
            let s = rrm_core::utility::dot(u, row);
            if s > best {
                best = s;
            }
        }
        flat.chunks_exact(d).filter(|c| rrm_core::utility::dot(u, c) > best).count() + 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::FullSpace;
    use rrm_data::synthetic::{anticorrelated, independent};

    #[test]
    fn profile_of_the_whole_dataset() {
        let data = independent(100, 3, 1);
        let all: Vec<u32> = (0..100).collect();
        let p = rank_profile(&data, &all, &FullSpace::new(3), 1000, &[0.5, 0.99], 2);
        assert_eq!(p.max, 1);
        assert_eq!(p.mean, 1.0);
        assert_eq!(p.quantile(0.5), Some(1));
        assert_eq!(p.quantile(0.99), Some(1));
        assert_eq!(p.quantile(0.123), None);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded_by_max() {
        let data = anticorrelated(800, 3, 3);
        let set = vec![0, 1, 2];
        let p = rank_profile(&data, &set, &FullSpace::new(3), 4000, &[0.5, 0.9, 0.99], 4);
        let q50 = p.quantile(0.5).unwrap();
        let q90 = p.quantile(0.9).unwrap();
        let q99 = p.quantile(0.99).unwrap();
        assert!(q50 <= q90 && q90 <= q99 && q99 <= p.max);
        assert!(p.mean >= 1.0 && p.mean <= p.max as f64);
    }

    #[test]
    fn coverage_matches_profile_tail() {
        let data = anticorrelated(500, 3, 5);
        let set = vec![3, 7, 11];
        let p = rank_profile(&data, &set, &FullSpace::new(3), 5000, &[0.9], 6);
        let k90 = p.quantile(0.9).unwrap();
        let cov = coverage_ratio(&data, &set, &FullSpace::new(3), k90, 5000, 6);
        // Same seed, same sample set: coverage at the 90th-percentile rank
        // is at least 0.9 by construction.
        assert!(cov >= 0.9, "coverage {cov} below the quantile definition");
    }

    #[test]
    fn good_sets_have_high_coverage() {
        // An HDRRM output with certified k should cover ~everything at k.
        let data = independent(400, 3, 7);
        let sol = rrm_hd::hdrrm(
            &data,
            8,
            &FullSpace::new(3),
            rrm_hd::HdrrmOptions { m_override: Some(500), ..Default::default() },
        )
        .unwrap();
        let k = sol.certified_regret.unwrap();
        let cov = coverage_ratio(&data, &sol.indices, &FullSpace::new(3), k, 5000, 8);
        assert!(cov >= 0.95, "coverage {cov} at certified k = {k}");
    }

    #[test]
    #[should_panic(expected = "quantiles live in (0, 1]")]
    fn bad_quantile_panics() {
        let data = independent(10, 2, 9);
        rank_profile(&data, &[0], &FullSpace::new(2), 10, &[1.5], 10);
    }
}
