//! Sampled rank-regret estimation (the paper's evaluation protocol).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rrm_core::{Dataset, UtilitySpace};

/// Result of a sampled rank-regret estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct RegretEstimate {
    /// Worst observed rank of the set across all sampled directions.
    pub max_rank: usize,
    /// A direction attaining the worst rank.
    pub witness: Vec<f64>,
    /// Number of directions sampled.
    pub samples: usize,
}

/// Estimate `∇U(S)` by sampling `samples` directions from `space` and
/// taking the worst rank (lower bound on the true rank-regret; the paper
/// uses 100 000 samples). The rank counting — the `O(samples · n · d)`
/// cost — is chunked over `RRM_THREADS`/all cores via [`rrm_par`]
/// ([`Parallelism::Auto`]; this evaluation utility is not on the
/// `Session` serving path, so it takes no per-call [`ExecPolicy`] — set
/// `RRM_THREADS` to bound its CPU use, or use
/// [`estimate_rank_regret_seq`] for strictly single-threaded runs).
///
/// [`Parallelism::Auto`]: rrm_core::Parallelism::Auto
/// [`ExecPolicy`]: rrm_core::ExecPolicy
///
/// Deterministic for a fixed `(seed, samples)` at **any** thread count:
/// the direction stream is drawn once, sequentially, and per-chunk maxima
/// merge through an ordered fold, so the estimate (and its witness — the
/// earliest direction attaining the worst rank) never depends on the
/// machine or scheduling.
pub fn estimate_rank_regret(
    data: &Dataset,
    set: &[u32],
    space: &dyn UtilitySpace,
    samples: usize,
    seed: u64,
) -> RegretEstimate {
    assert!(!set.is_empty(), "rank-regret of an empty set is undefined");
    assert!(samples >= 1);
    // The seed offset keeps the stream identical to this estimator's
    // historical single-chunk behaviour (quality tests are tuned to it).
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15_u64));
    let dirs: Vec<Vec<f64>> = (0..samples).map(|_| space.sample_direction(&mut rng)).collect();
    let n = data.n();
    let soa = data.soa();
    // Rank counting runs through the fused SoA kernel: the set's best
    // score (same strict-`>` scan as before, via bit-identical per-tuple
    // dots), then a blocked count of tuples strictly above it — no
    // n-length score vector per direction.
    let rank_of = |u: &[f64], scratch: &mut rrm_core::ScoreScratch| -> usize {
        let mut best = f64::NEG_INFINITY;
        for &i in set {
            let s = soa.score_one(u, i as usize);
            if s > best {
                best = s;
            }
        }
        rrm_core::kernel::count_above(soa, u, best, scratch) + 1
    };
    let chunk_size = rrm_par::adaptive_chunk(dirs.len(), n * data.dim());
    let worst = rrm_par::par_map_reduce(
        &dirs,
        chunk_size,
        rrm_core::Parallelism::Auto,
        |offset, chunk| {
            let mut scratch = rrm_core::ScoreScratch::new();
            let mut worst = 0usize;
            let mut at = offset;
            for (i, u) in chunk.iter().enumerate() {
                let rank = rank_of(u, &mut scratch);
                if rank > worst {
                    worst = rank;
                    at = offset + i;
                    if worst == n {
                        break; // cannot get worse
                    }
                }
            }
            (worst, at)
        },
        // Ordered merge: strict `>` keeps the earliest chunk attaining the
        // global maximum, mirroring the sequential scan's witness choice.
        |a, b| if b.0 > a.0 { b } else { a },
    )
    .expect("samples >= 1");
    RegretEstimate { max_rank: worst.0, witness: dirs[worst.1].clone(), samples }
}

/// Single-threaded variant (fully deterministic across machines).
pub fn estimate_rank_regret_seq(
    data: &Dataset,
    set: &[u32],
    space: &dyn UtilitySpace,
    samples: usize,
    seed: u64,
) -> RegretEstimate {
    assert!(!set.is_empty(), "rank-regret of an empty set is undefined");
    assert!(samples >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut e = worst_rank_over(data, set, space, samples, &mut rng);
    e.samples = samples;
    e
}

fn worst_rank_over(
    data: &Dataset,
    set: &[u32],
    space: &dyn UtilitySpace,
    count: usize,
    rng: &mut StdRng,
) -> RegretEstimate {
    let n = data.n();
    let soa = data.soa();
    let mut scratch = rrm_core::ScoreScratch::new();
    let mut worst = 0usize;
    let mut witness = Vec::new();
    for _ in 0..count {
        let u = space.sample_direction(rng);
        // Best score within the set (per-tuple dots are bit-identical to
        // the row-major scan this replaced).
        let mut best = f64::NEG_INFINITY;
        for &i in set {
            let s = soa.score_one(&u, i as usize);
            if s > best {
                best = s;
            }
        }
        // Rank = 1 + number of tuples strictly above `best`, counted
        // through the blocked kernel.
        let rank = rrm_core::kernel::count_above(soa, &u, best, &mut scratch) + 1;
        if rank > worst {
            worst = rank;
            witness = u;
            if worst == n {
                break; // cannot get worse
            }
        }
    }
    RegretEstimate { max_rank: worst, witness, samples: count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::{FullSpace, WeakRankingSpace};
    use rrm_data::synthetic::{independent, lower_bound_arc};

    #[test]
    fn single_tuple_set_table1() {
        // {t3} of Table I has rank-regret 3 (its Rank-Ratio column entry).
        let d = Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap();
        let e = estimate_rank_regret_seq(&d, &[2], &FullSpace::new(2), 5000, 1);
        assert_eq!(e.max_rank, 3);
        assert_eq!(e.samples, 5000);
        // The witness direction must reproduce the worst rank.
        assert_eq!(rrm_core::rank::rank_regret_of_set(&d, &e.witness, &[2]), 3);
    }

    #[test]
    fn whole_dataset_has_regret_one() {
        let d = independent(200, 3, 7);
        let all: Vec<u32> = (0..200).collect();
        let e = estimate_rank_regret_seq(&d, &all, &FullSpace::new(3), 500, 2);
        assert_eq!(e.max_rank, 1);
    }

    #[test]
    fn parallel_agrees_with_sequential_magnitude() {
        let d = independent(500, 3, 8);
        let set = vec![0, 1, 2];
        let par = estimate_rank_regret(&d, &set, &FullSpace::new(3), 20_000, 3);
        let seq = estimate_rank_regret_seq(&d, &set, &FullSpace::new(3), 20_000, 3);
        // Different sample streams, same estimand: allow slack but catch
        // gross disagreement.
        let (a, b) = (par.max_rank as f64, seq.max_rank as f64);
        assert!((a - b).abs() <= 0.35 * a.max(b) + 3.0, "par {a} vs seq {b}");
    }

    #[test]
    fn estimator_is_monotone_in_samples() {
        let d = independent(300, 4, 9);
        let set = vec![5];
        let small = estimate_rank_regret_seq(&d, &set, &FullSpace::new(4), 50, 4).max_rank;
        let large = estimate_rank_regret_seq(&d, &set, &FullSpace::new(4), 5000, 4).max_rank;
        // Same seed: the 5000-sample run sees a superset of directions.
        assert!(large >= small);
    }

    #[test]
    fn restricted_space_never_worse() {
        let d = independent(400, 3, 10);
        let set = vec![1, 2, 3];
        let full = estimate_rank_regret_seq(&d, &set, &FullSpace::new(3), 4000, 5).max_rank;
        let weak =
            estimate_rank_regret_seq(&d, &set, &WeakRankingSpace::new(3, 2), 4000, 5).max_rank;
        // ∇U(S) ≤ ∇L(S); sampled estimates preserve this within noise —
        // compare against a generous margin.
        assert!(weak <= full + full / 2 + 2, "weak {weak} vs full {full}");
    }

    #[test]
    fn arc_lower_bound_visible() {
        // Theorem 2: on the arc dataset any r-subset has regret Ω(n/r).
        let n = 400;
        let d = lower_bound_arc(n, 2);
        // Evenly spaced r=4 subset — the best possible layout.
        let set: Vec<u32> = vec![50, 150, 250, 350];
        let e = estimate_rank_regret_seq(&d, &set, &FullSpace::new(2), 20_000, 6);
        assert!(
            e.max_rank * (set.len() + 1) * 2 >= n / 2,
            "regret {} too small for the Ω(n/r) bound",
            e.max_rank
        );
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_set_panics() {
        let d = independent(10, 2, 0);
        estimate_rank_regret_seq(&d, &[], &FullSpace::new(2), 10, 0);
    }
}
