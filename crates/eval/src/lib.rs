//! Output-quality evaluation for rank-regret solvers.
//!
//! The paper measures output quality by drawing 100 000 utility functions
//! uniformly at random and reporting the worst rank of each algorithm's
//! set ("Computing the exact rank-regret of a set is not scalable to the
//! large settings", Section VI). This crate provides:
//!
//! * [`rank_regret`] — that estimator, parallelized across threads, plus a
//!   single-threaded deterministic variant;
//! * [`exact2d`] — an *exact* 2D evaluator via the dual arrangement
//!   (usable wherever `d = 2`, and as ground truth in tests);
//! * [`regret_ratio`] — the RMS objective, for the MDRMS comparison and
//!   the shift-invariance demonstrations;
//! * [`solver_report`] — run any [`rrm_core::Solver`] through the trait
//!   and report time, size, certificate and estimated regret in one call;
//! * [`report`] — small table/series printing helpers shared by the
//!   experiment harness.

pub mod exact2d;
pub mod profile;
pub mod rank_regret;
pub mod regret_ratio;
pub mod report;
pub mod solver_report;

pub use exact2d::exact_rank_regret_2d;
pub use profile::{coverage_ratio, rank_profile, RankProfile};
pub use rank_regret::{estimate_rank_regret, estimate_rank_regret_seq, RegretEstimate};
pub use regret_ratio::{estimate_regret_ratio, RatioEstimate};
pub use solver_report::{
    evaluate_rrm, evaluate_rrm_prepared, evaluate_rrr, evaluate_rrr_prepared, SolverReport,
};
