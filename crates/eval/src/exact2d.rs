//! Exact rank-regret evaluation in 2D via the dual arrangement.
//!
//! The rank-regret of a set `S` at weight `x` is the rank of the member on
//! `S`'s upper envelope. Both the envelope's active member and the members'
//! ranks change only at crossings involving `S`'s lines, so replaying those
//! `O(|S|·n)` crossings and probing each gap yields the exact maximum in
//! `O(|S|·n·(log(|S|·n) + |S|))`.

use rrm_core::Dataset;
use rrm_geom::dual::DualLine;
use rrm_geom::events::{crossings_with_tracked, initial_ranks};

/// Exact `max_{c ∈ [c0, c1]} ∇_{(c, 1-c)}(S)` and a witness weight.
///
/// Open-interval semantics at crossing points (the paper's general-position
/// assumption): the maximum is over the arrangement's gaps, which is the
/// supremum over all non-degenerate directions.
pub fn exact_rank_regret_2d(data: &Dataset, set: &[u32], c0: f64, c1: f64) -> (usize, f64) {
    assert_eq!(data.dim(), 2, "exact evaluation requires d = 2");
    assert!(!set.is_empty(), "rank-regret of an empty set is undefined");
    assert!(c0 <= c1);
    let lines = DualLine::from_dataset(data);
    let events = crossings_with_tracked(&lines, set, c0, c1);
    let mut rank = initial_ranks(&lines, c0);

    // Probe one point per gap; gaps are [c0, x_1), [x_1, x_2), ..., [x_m, c1].
    let mut worst = 0usize;
    let mut witness = c0;
    let mut gap_start = c0;
    let mut i = 0;
    let degenerate_point = events.is_empty() && c0 == c1;
    loop {
        let gap_end = if i < events.len() { events[i].x } else { c1 };
        // Zero-width gaps arise between concurrent crossings (ties); the
        // rank state mid-batch is not a real configuration, so skip them.
        if gap_end > gap_start || degenerate_point {
            let probe = 0.5 * (gap_start + gap_end);
            // Active member: the set line with the highest value here.
            let mut best_line = set[0];
            let mut best_val = f64::NEG_INFINITY;
            for &s in set {
                let v = lines[s as usize].eval(probe);
                if v > best_val {
                    best_val = v;
                    best_line = s;
                }
            }
            let r = rank[best_line as usize];
            if r > worst {
                worst = r;
                witness = probe;
            }
        }
        if i >= events.len() {
            break;
        }
        rank[events[i].down as usize] += 1;
        rank[events[i].up as usize] -= 1;
        gap_start = events[i].x;
        i += 1;
    }
    (worst, witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rrm_core::FullSpace;

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn table1_rank_ratio_column() {
        // The "Rank-Ratio" column of Table I is the exact rank-regret of
        // each singleton. The paper prints 7, 4, 3, 4, 6, 6, 7; the values
        // for t5 and t6 are actually 7 (e.g. at u = (0.6, 0.4) every other
        // tuple outranks t5, and at u = (0.5, 0.5) every other tuple
        // outranks t6 — hand-checkable). The entries that drive the
        // narrative (t3 = 3 optimal, t1/t7 = 7) match.
        let d = table1();
        let expected = [7usize, 4, 3, 4, 7, 7, 7];
        for (i, &want) in expected.iter().enumerate() {
            let (got, _) = exact_rank_regret_2d(&d, &[i as u32], 0.0, 1.0);
            assert_eq!(got, want, "t{}", i + 1);
        }
    }

    #[test]
    fn skyline_set_has_regret_one() {
        let d = table1();
        let (k, _) = exact_rank_regret_2d(&d, &[0, 1, 2, 3, 6], 0.0, 1.0);
        assert_eq!(k, 1);
    }

    #[test]
    fn restricted_interval_only() {
        // t7 = (1, 0) is top-1 at c = 1; restricted to c ∈ [0.9, 1] its
        // regret is small, over the full range it is 7.
        let d = table1();
        let (full, _) = exact_rank_regret_2d(&d, &[6], 0.0, 1.0);
        assert_eq!(full, 7);
        let (restricted, _) = exact_rank_regret_2d(&d, &[6], 0.95, 1.0);
        assert_eq!(restricted, 1);
    }

    #[test]
    fn witness_attains_the_max() {
        let d = table1();
        for set in [vec![1u32], vec![2, 6], vec![0, 3]] {
            let (k, x) = exact_rank_regret_2d(&d, &set, 0.0, 1.0);
            let u = [x, 1.0 - x];
            assert_eq!(rrm_core::rank::rank_regret_of_set(&d, &u, &set), k, "{set:?}");
        }
    }

    #[test]
    fn sampled_estimator_converges_to_exact() {
        let mut rng = StdRng::seed_from_u64(20);
        for trial in 0..10 {
            let n = rng.random_range(5..60);
            let rows: Vec<[f64; 2]> =
                (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
            let d = Dataset::from_rows(&rows).unwrap();
            let set: Vec<u32> = vec![rng.random_range(0..n as u32)];
            let (exact, _) = exact_rank_regret_2d(&d, &set, 0.0, 1.0);
            let sampled = crate::rank_regret::estimate_rank_regret_seq(
                &d,
                &set,
                &FullSpace::new(2),
                30_000,
                trial,
            );
            // Sampled is a lower bound that should reach the exact value
            // with this many samples on small instances.
            assert!(sampled.max_rank <= exact);
            assert!(
                sampled.max_rank >= exact.saturating_sub(1),
                "trial {trial}: sampled {} vs exact {exact}",
                sampled.max_rank
            );
        }
    }

    #[test]
    fn point_interval() {
        let d = table1();
        let (k, x) = exact_rank_regret_2d(&d, &[3], 0.7, 0.7);
        assert_eq!(x, 0.7);
        let u = [0.7, 0.3];
        assert_eq!(rrm_core::rank::rank_regret_of_set(&d, &u, &[3]), k);
    }
}
