//! Minimal tabular reporting for the experiment harness.
//!
//! The repro binary prints one table per paper figure: a parameter column
//! (n, d, r or δ) and one (time, rank-regret) pair of columns per
//! algorithm, which is exactly the data each figure plots.

use std::fmt::Write as _;

/// A labelled series of `(x, value)` measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub label: String,
    /// One value per x-tick; `None` marks "did not run / not scalable"
    /// (the paper's missing bars for MDRRRr at large n).
    pub values: Vec<Option<f64>>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), values: Vec::new() }
    }

    pub fn push(&mut self, v: f64) {
        self.values.push(Some(v));
    }

    pub fn push_missing(&mut self) {
        self.values.push(None);
    }
}

/// Render aligned columns: the x-ticks then each series.
///
/// `x_label` heads the first column; numbers print with 3 significant
/// decimals, missing values as `-`.
pub fn render_table(x_label: &str, ticks: &[String], series: &[Series]) -> String {
    let mut headers = vec![x_label.to_string()];
    headers.extend(series.iter().map(|s| s.label.clone()));
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(ticks.len());
    for (i, tick) in ticks.iter().enumerate() {
        let mut row = vec![tick.clone()];
        for s in series {
            let cell = match s.values.get(i).copied().flatten() {
                Some(v) => format_value(v),
                None => "-".to_string(),
            };
            row.push(cell);
        }
        rows.push(row);
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String], widths: &[usize]| {
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = w);
        }
        out.push('\n');
    };
    write_row(&mut out, &headers, &widths);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in &rows {
        write_row(&mut out, row, &widths);
    }
    out
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Human-readable tick for a dataset size (`10K`, `1M`, ...).
pub fn size_tick(n: usize) -> String {
    if n.is_multiple_of(1_000_000) && n >= 1_000_000 {
        format!("{}M", n / 1_000_000)
    } else if n.is_multiple_of(1_000) && n >= 1_000 {
        format!("{}K", n / 1_000)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut a = Series::new("HDRRM time(s)");
        a.push(0.5);
        a.push(1.25);
        let mut b = Series::new("MDRC k");
        b.push(12.0);
        b.push_missing();
        let t = render_table("n", &["1K".to_string(), "10K".to_string()], &[a, b]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("HDRRM time(s)"));
        assert!(lines[2].contains("0.500"));
        assert!(lines[2].contains("12"));
        assert!(lines[3].trim_end().ends_with('-'));
    }

    #[test]
    fn value_formats() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(0.123456), "0.123");
        assert_eq!(format_value(1234.5), "1234.5");
    }

    #[test]
    fn size_ticks() {
        assert_eq!(size_tick(100), "100");
        assert_eq!(size_tick(10_000), "10K");
        assert_eq!(size_tick(1_000_000), "1M");
        assert_eq!(size_tick(63_383), "63383");
    }

    #[test]
    fn series_push_api() {
        let mut s = Series::new("x");
        s.push(1.0);
        s.push_missing();
        assert_eq!(s.values, vec![Some(1.0), None]);
    }
}
