//! Regret-ratio estimation (the RMS objective of Nanongkai et al.).
//!
//! Used to contrast MDRMS against the rank-based algorithms and to
//! demonstrate that minimizing regret-ratio does not minimize rank-regret
//! (Section II's Table I discussion), as well as RMS's shift sensitivity.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rrm_core::{Dataset, UtilitySpace};

/// Result of a sampled regret-ratio estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioEstimate {
    /// Worst observed regret-ratio `(w(u,D) − w(u,S)) / w(u,D)` in `[0,1]`.
    pub max_ratio: f64,
    /// A direction attaining it.
    pub witness: Vec<f64>,
    /// Number of directions sampled.
    pub samples: usize,
}

/// Estimate the maximum regret-ratio of `set` over `space` by sampling.
///
/// Follows the RMS convention: ratios are clamped to `[0, 1]`, and
/// directions where the dataset's best utility is non-positive are skipped
/// (the ratio is undefined there; RMS assumes non-negative values).
pub fn estimate_regret_ratio(
    data: &Dataset,
    set: &[u32],
    space: &dyn UtilitySpace,
    samples: usize,
    seed: u64,
) -> RatioEstimate {
    assert!(!set.is_empty(), "regret-ratio of an empty set is undefined");
    assert!(samples >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let soa = data.soa();
    let mut scratch = rrm_core::ScoreScratch::new();
    let mut worst = 0.0f64;
    let mut witness = Vec::new();
    for _ in 0..samples {
        let u = space.sample_direction(&mut rng);
        // Fused blocked maximum; equal maxima have identical bits, and a
        // ±0.0 top is skipped either way, so the ratio is unchanged.
        let top = rrm_core::kernel::max_score(soa, &u, &mut scratch);
        if top <= 0.0 {
            continue;
        }
        let mut best = f64::NEG_INFINITY;
        for &i in set {
            let s = soa.score_one(&u, i as usize);
            if s > best {
                best = s;
            }
        }
        let ratio = ((top - best) / top).clamp(0.0, 1.0);
        if ratio > worst {
            worst = ratio;
            witness = u;
        }
    }
    RatioEstimate { max_ratio: worst, witness, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::FullSpace;

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn table1_regret_ratio_column() {
        // Table I's Regret-Ratio column: t1 100%, t2 60%, t3 43%, t4 40%,
        // t5 80%, t6 70%, t7 100%.
        let d = table1();
        let expected = [1.0, 0.6, 0.43, 0.40, 0.8, 0.7, 1.0];
        for (i, &want) in expected.iter().enumerate() {
            let e = estimate_regret_ratio(&d, &[i as u32], &FullSpace::new(2), 20_000, 3);
            assert!(
                (e.max_ratio - want).abs() < 0.02,
                "t{}: got {:.3}, expected {want}",
                i + 1,
                e.max_ratio
            );
        }
    }

    #[test]
    fn rms_winner_is_t4_rank_winner_is_t3() {
        // Section II: "When r = 1, the solutions for RRM and RMS are {t3}
        // and {t4} respectively" — t4 has the lowest regret-ratio, t3 the
        // lowest rank-regret.
        let d = table1();
        let ratios: Vec<f64> = (0..7)
            .map(|i| estimate_regret_ratio(&d, &[i], &FullSpace::new(2), 20_000, 4).max_ratio)
            .collect();
        let best = (0..7).min_by(|&a, &b| ratios[a].partial_cmp(&ratios[b]).unwrap());
        assert_eq!(best, Some(3), "t4 minimizes regret-ratio: {ratios:?}");
    }

    #[test]
    fn whole_dataset_zero_ratio() {
        let d = table1();
        let all: Vec<u32> = (0..7).collect();
        let e = estimate_regret_ratio(&d, &all, &FullSpace::new(2), 2000, 5);
        assert_eq!(e.max_ratio, 0.0);
    }

    #[test]
    fn ratio_is_shift_sensitive() {
        // The heart of the paper's RMS critique: shifting A2 by +4 changes
        // regret-ratios (while rank-regrets are invariant).
        let d = table1();
        let shifted = d.shift(&[0.0, 4.0]);
        let before = estimate_regret_ratio(&d, &[6], &FullSpace::new(2), 20_000, 6).max_ratio;
        let after = estimate_regret_ratio(&shifted, &[6], &FullSpace::new(2), 20_000, 6).max_ratio;
        // t7 = (1, 0): ratio 100% unshifted; after the shift every tuple
        // scores at least 4·u2, compressing ratios dramatically.
        assert!(before > 0.95, "before {before}");
        assert!(after < 0.55, "after {after}");
    }
}
