//! Persistent convex chains for 2DRRM's matrix `M`.
//!
//! Algorithm 1 line 19 copies a chain and appends one line
//! (`M[j',h] = M[i',h-1] suffixed with lj`). Storing chains as shared
//! cons lists makes that an `O(1)` pointer bump instead of an `O(r)` copy,
//! while old versions of a cell stay valid for cells that still reference
//! them.

use std::rc::Rc;

/// One link of a chain: the most recently appended line plus the shared
/// prefix it extends.
#[derive(Debug)]
pub struct ChainNode {
    pub line: u32,
    pub parent: Option<Rc<ChainNode>>,
}

impl ChainNode {
    /// A single-line chain.
    pub fn singleton(line: u32) -> Rc<ChainNode> {
        Rc::new(ChainNode { line, parent: None })
    }

    /// Extend `parent` with `line` (the "suffix with `lj`" operation).
    pub fn extend(parent: &Rc<ChainNode>, line: u32) -> Rc<ChainNode> {
        Rc::new(ChainNode { line, parent: Some(Rc::clone(parent)) })
    }

    /// Number of lines in the chain.
    pub fn len(node: &Rc<ChainNode>) -> usize {
        let mut n = 1;
        let mut cur = node;
        while let Some(p) = &cur.parent {
            n += 1;
            cur = p;
        }
        n
    }
}

/// Materialize a chain as a vector of line ids, oldest (leftmost segment)
/// first.
pub fn chain_to_vec(node: &Rc<ChainNode>) -> Vec<u32> {
    let mut out = Vec::new();
    let mut cur = Some(node);
    while let Some(n) = cur {
        out.push(n.line);
        cur = n.parent.as_ref();
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_materialize() {
        let a = ChainNode::singleton(3);
        let b = ChainNode::extend(&a, 7);
        let c = ChainNode::extend(&b, 1);
        assert_eq!(chain_to_vec(&c), vec![3, 7, 1]);
        assert_eq!(ChainNode::len(&c), 3);
        assert_eq!(ChainNode::len(&a), 1);
    }

    #[test]
    fn sharing_prefixes() {
        let a = ChainNode::singleton(0);
        let b1 = ChainNode::extend(&a, 1);
        let b2 = ChainNode::extend(&a, 2);
        // Both extensions see the same prefix; neither disturbs the other.
        assert_eq!(chain_to_vec(&b1), vec![0, 1]);
        assert_eq!(chain_to_vec(&b2), vec![0, 2]);
        assert_eq!(chain_to_vec(&a), vec![0]);
    }

    #[test]
    fn long_chain_is_linear() {
        let mut c = ChainNode::singleton(0);
        for i in 1..1000 {
            c = ChainNode::extend(&c, i);
        }
        let v = chain_to_vec(&c);
        assert_eq!(v.len(), 1000);
        assert_eq!(v[0], 0);
        assert_eq!(v[999], 999);
    }
}
