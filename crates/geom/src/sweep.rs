//! Paper-faithful full arrangement sweep (Algorithm 1's event machinery).
//!
//! Maintains the sorted list `L` of all lines and a min-heap `H` of
//! intersections between *adjacent* lines, exactly as Section IV-B
//! describes: a vertical line moves from `x_lo` to `x_hi`, stopping at each
//! intersection, swapping the two lines and discovering up to two new
//! adjacent intersections.
//!
//! The optimized event generator in [`crate::events`] produces the same
//! rank changes for tracked lines; this module exists (a) as the reference
//! implementation the tests validate against, and (b) for the
//! `ablation_sweep` benchmark comparing the two designs.
//!
//! Degeneracies (three or more lines through one point) are handled with
//! the standard skip-and-rediscover technique: an event popped for a pair
//! that is no longer adjacent in the expected orientation is discarded —
//! whenever a pair becomes adjacent *and converging* its crossing is
//! (re-)pushed, so every swap is eventually performed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::dual::{order_at, DualLine};

/// Heap entry: crossing at `x` where `upper` (currently above) meets
/// `lower`. Ordered as a min-heap on `x`.
#[derive(Debug, PartialEq)]
struct Event {
    x: f64,
    upper: u32,
    lower: u32,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on x for a min-heap; deterministic tie-break.
        other
            .x
            .partial_cmp(&self.x)
            .expect("finite event x")
            .then(other.upper.cmp(&self.upper))
            .then(other.lower.cmp(&self.lower))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Full arrangement sweep over the open interval `x ∈ (x_lo, x_hi)`.
///
/// `on_swap(x, down, up, down_new_pos)` fires after each swap: `down` was
/// directly above `up` and they exchanged places at `x`; `down_new_pos` is
/// the 0-based position of `down` after the swap (so its new 1-based rank
/// is `down_new_pos + 1`).
///
/// Returns the number of swaps performed.
pub fn arrangement_sweep<F>(lines: &[DualLine], x_lo: f64, x_hi: f64, mut on_swap: F) -> usize
where
    F: FnMut(f64, u32, u32, usize),
{
    let n = lines.len();
    if n < 2 {
        return 0;
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order_at(lines, &mut order, x_lo);
    let mut pos = vec![0usize; n];
    for (p, &id) in order.iter().enumerate() {
        pos[id as usize] = p;
    }

    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    // A pair (upper, lower) is *converging* when the upper line grows
    // slower: their crossing lies ahead of any x where that orientation
    // holds.
    let push_if_converging = |heap: &mut BinaryHeap<Event>, upper: u32, lower: u32| {
        let (lu, ll) = (&lines[upper as usize], &lines[lower as usize]);
        if lu.slope < ll.slope {
            if let Some(x) = lu.intersection_x(ll) {
                if x > x_lo && x < x_hi {
                    heap.push(Event { x, upper, lower });
                }
            }
        }
    };
    for w in order.windows(2) {
        push_if_converging(&mut heap, w[0], w[1]);
    }

    let mut swaps = 0usize;
    while let Some(ev) = heap.pop() {
        let (pu, pl) = (pos[ev.upper as usize], pos[ev.lower as usize]);
        // Stale events: the pair separated or already swapped.
        if pl != pu + 1 {
            continue;
        }
        order.swap(pu, pl);
        pos[ev.upper as usize] = pl;
        pos[ev.lower as usize] = pu;
        swaps += 1;
        on_swap(ev.x, ev.upper, ev.lower, pl);
        // New adjacencies: (line above the risen lower, lower) and
        // (upper, line below the sunk upper).
        if pu > 0 {
            push_if_converging(&mut heap, order[pu - 1], ev.lower);
        }
        if pl + 1 < n {
            push_if_converging(&mut heap, ev.upper, order[pl + 1]);
        }
    }
    swaps
}

/// Ranks of every line at `x_hi` computed by sweeping from `x_lo`
/// (diagnostic helper; also a convenient whole-sweep correctness check).
pub fn final_ranks(lines: &[DualLine], x_lo: f64, x_hi: f64) -> Vec<usize> {
    let mut rank = crate::events::initial_ranks(lines, x_lo);
    arrangement_sweep(lines, x_lo, x_hi, |_, down, up, _| {
        rank[down as usize] += 1;
        rank[up as usize] -= 1;
    });
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{crossings_with_tracked, initial_ranks};

    fn lines_from(rows: &[[f64; 2]]) -> Vec<DualLine> {
        rows.iter().map(|r| DualLine::from_tuple(r)).collect()
    }

    #[test]
    fn sweep_visits_every_inversion() {
        let lines = lines_from(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ]);
        // Number of swaps = number of order inversions between x=0 and x=1.
        let mut at0: Vec<u32> = (0..7).collect();
        let mut at1: Vec<u32> = (0..7).collect();
        order_at(&lines, &mut at0, 0.0);
        order_at(&lines, &mut at1, 1.0);
        let pos1: Vec<usize> = {
            let mut p = vec![0; 7];
            for (i, &id) in at1.iter().enumerate() {
                p[id as usize] = i;
            }
            p
        };
        let mut inversions = 0;
        for i in 0..7 {
            for j in i + 1..7 {
                if pos1[at0[i] as usize] > pos1[at0[j] as usize] {
                    inversions += 1;
                }
            }
        }
        let swaps = arrangement_sweep(&lines, 0.0, 1.0, |_, _, _, _| {});
        assert_eq!(swaps, inversions);
    }

    #[test]
    fn final_order_matches_direct_sort() {
        let lines = lines_from(&[[0.1, 0.8], [0.6, 0.6], [0.9, 0.2], [0.3, 0.5], [0.7, 0.1]]);
        let ranks = final_ranks(&lines, 0.0, 1.0);
        let direct = initial_ranks(&lines, 1.0);
        assert_eq!(ranks, direct);
    }

    #[test]
    fn concurrent_crossings_are_handled() {
        // Three lines through the common point (0.5, 0.5):
        // y = x, y = 0.5, y = 1 - x, plus a fourth line whose crossings all
        // fall strictly inside (0, 1) (open-interval semantics exclude
        // boundary crossings).
        let lines = vec![
            DualLine { slope: 1.0, intercept: 0.0 },
            DualLine { slope: 0.0, intercept: 0.5 },
            DualLine { slope: -1.0, intercept: 1.0 },
            DualLine { slope: 0.2, intercept: 0.35 },
        ];
        let ranks = final_ranks(&lines, 0.0, 1.0);
        let direct = initial_ranks(&lines, 1.0);
        assert_eq!(ranks, direct);
    }

    #[test]
    fn sweep_and_event_list_agree_on_tracked_ranks() {
        // Replay both machineries over random lines and compare the rank
        // trajectory of every line.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = 12;
            let rows: Vec<[f64; 2]> =
                (0..n).map(|_| [rng.random::<f64>(), rng.random::<f64>()]).collect();
            let lines = lines_from(&rows);
            let tracked: Vec<u32> = (0..n as u32).collect();

            let mut rank_a = initial_ranks(&lines, 0.0);
            let mut log_a: Vec<(u32, usize)> = Vec::new();
            for c in crossings_with_tracked(&lines, &tracked, 0.0, 1.0) {
                rank_a[c.down as usize] += 1;
                rank_a[c.up as usize] -= 1;
                log_a.push((c.down, rank_a[c.down as usize]));
            }

            let mut rank_b = initial_ranks(&lines, 0.0);
            let mut log_b: Vec<(u32, usize)> = Vec::new();
            arrangement_sweep(&lines, 0.0, 1.0, |_, down, up, down_pos| {
                rank_b[down as usize] += 1;
                rank_b[up as usize] -= 1;
                assert_eq!(rank_b[down as usize], down_pos + 1);
                log_b.push((down, rank_b[down as usize]));
            });

            assert_eq!(rank_a, rank_b);
            assert_eq!(log_a, log_b);
        }
    }

    #[test]
    fn restricted_range_sweep() {
        let lines = lines_from(&[[0.0, 1.0], [0.4, 0.95], [0.57, 0.75]]);
        // Only the crossing at x = 1/9 lies in (0, 0.2].
        let swaps = arrangement_sweep(&lines, 0.0, 0.2, |x, down, up, _| {
            assert!((x - 1.0 / 9.0).abs() < 1e-12);
            assert_eq!((down, up), (0, 1));
        });
        assert_eq!(swaps, 1);
    }

    #[test]
    fn single_line_no_events() {
        let lines = lines_from(&[[0.3, 0.4]]);
        assert_eq!(arrangement_sweep(&lines, 0.0, 1.0, |_, _, _, _| panic!()), 0);
    }
}
