//! d-dimensional polar coordinates and the discretization grid `Db`
//! (paper Section V-A, Figure 8).
//!
//! Every unit vector `u` in the non-negative orthant corresponds to a
//! `(d-1)`-dimensional angle vector `θ` with `θ[i] ∈ [0, π/2]`, via
//!
//! ```text
//! u[i] = sin(θ[d-1]) · sin(θ[d-2]) · ... · sin(θ[i]) · cos(θ[i-1])
//! ```
//!
//! (1-based indexing as in the paper, with `θ[0] = 0`). `Db` keeps the
//! `(γ+1)^(d-1)` grid vertices obtained by splitting each angle range into
//! `γ` equal segments, which guarantees that every `u ∈ S` has a grid
//! vector within angular distance `O(1/γ)` (Theorem 7's σ bound).

/// Convert a `(d-1)`-dimensional angle vector (radians, each in
/// `[0, π/2]`) to a `d`-dimensional unit vector in the orthant.
pub fn angles_to_direction(angles: &[f64]) -> Vec<f64> {
    let d = angles.len() + 1;
    let mut u = vec![0.0; d];
    // Suffix products of sines: sin(θ[d-2]) ... sin(θ[j]) (0-based angles).
    // u[0] has no cosine factor (θ[0] = 0 in the paper's 1-based scheme).
    for i in 0..d {
        let mut v = if i == 0 { 1.0 } else { angles[i - 1].cos() };
        for &a in &angles[i..] {
            v *= a.sin();
        }
        u[i] = v.max(0.0); // clamp -0.0 / rounding noise
    }
    u
}

/// Inverse of [`angles_to_direction`] for unit orthant vectors.
///
/// Degenerate positions (where some suffix of coordinates vanishes) map to
/// angle 0 on the undetermined axes, matching the grid convention.
pub fn direction_to_angles(u: &[f64]) -> Vec<f64> {
    let d = u.len();
    assert!(d >= 1);
    let mut angles = vec![0.0; d - 1];
    // Work from the innermost coordinate out: with r_i = ||u[0..=i]||,
    // u[i] = r_i · cos(θ[i-1])  =>  θ[i-1] = acos(u[i] / r_i)  (1-based).
    let mut r2 = u[0] * u[0];
    for i in 1..d {
        r2 += u[i] * u[i];
        let r = r2.sqrt();
        angles[i - 1] = if r > 1e-15 { (u[i] / r).clamp(-1.0, 1.0).acos() } else { 0.0 };
    }
    angles
}

/// The polar grid `Db`: all angle vectors with each component in
/// `{0, π/(2γ), ..., π/2}`, converted to unit directions.
///
/// `dedup` removes duplicate directions (grid points with a zero sine
/// factor collapse onto each other); the paper counts the full
/// `(γ+1)^(d-1)` set, so pass `false` to reproduce that cardinality.
pub fn polar_grid(d: usize, gamma: usize, dedup: bool) -> Vec<Vec<f64>> {
    assert!(d >= 2, "the polar grid needs d >= 2");
    assert!(gamma >= 1);
    let step = std::f64::consts::FRAC_PI_2 / gamma as f64;
    let mut out = Vec::new();
    let mut angles = vec![0.0; d - 1];
    let mut counters = vec![0usize; d - 1];
    loop {
        for (a, &c) in angles.iter_mut().zip(&counters) {
            *a = c as f64 * step;
        }
        out.push(angles_to_direction(&angles));
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == counters.len() {
                if dedup {
                    dedup_directions(&mut out);
                }
                return out;
            }
            counters[i] += 1;
            if counters[i] <= gamma {
                break;
            }
            counters[i] = 0;
            i += 1;
        }
    }
}

fn dedup_directions(dirs: &mut Vec<Vec<f64>>) {
    const TOL: f64 = 1e-10;
    let mut kept: Vec<Vec<f64>> = Vec::with_capacity(dirs.len());
    for v in dirs.drain(..) {
        let dup = kept.iter().any(|k| k.iter().zip(&v).all(|(a, b)| (a - b).abs() < TOL));
        if !dup {
            kept.push(v);
        }
    }
    *dirs = kept;
}

/// Angular distance bound `σ = √(d-1)·π / (4γ)` of Theorem 7: every unit
/// orthant vector is within Euclidean distance `σ` of some `Db` member.
pub fn grid_distance_bound(d: usize, gamma: usize) -> f64 {
    ((d - 1) as f64).sqrt() * std::f64::consts::PI / (4.0 * gamma as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rrm_core::sampling::orthant_direction;
    use rrm_core::utility::l2_norm;

    #[test]
    fn roundtrip_2d() {
        // d=2: u = (sin θ, cos θ).
        let u = angles_to_direction(&[0.3]);
        assert!((u[0] - 0.3f64.sin()).abs() < 1e-12);
        assert!((u[1] - 0.3f64.cos()).abs() < 1e-12);
        let a = direction_to_angles(&u);
        assert!((a[0] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn angles_produce_unit_orthant_vectors() {
        let mut rng = StdRng::seed_from_u64(5);
        use rand::Rng;
        for _ in 0..200 {
            let d = rng.random_range(2..=6);
            let angles: Vec<f64> =
                (0..d - 1).map(|_| rng.random_range(0.0..=std::f64::consts::FRAC_PI_2)).collect();
            let u = angles_to_direction(&angles);
            assert_eq!(u.len(), d);
            assert!(u.iter().all(|&x| x >= 0.0));
            assert!((l2_norm(&u) - 1.0).abs() < 1e-9, "{u:?}");
        }
    }

    #[test]
    fn roundtrip_random_directions() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            for d in 2..=6 {
                let u = orthant_direction(d, &mut rng);
                let a = direction_to_angles(&u);
                let v = angles_to_direction(&a);
                for (x, y) in u.iter().zip(&v) {
                    assert!((x - y).abs() < 1e-9, "{u:?} vs {v:?}");
                }
            }
        }
    }

    #[test]
    fn grid_cardinality_matches_paper() {
        // (γ+1)^(d-1) without dedup — Figure 8 has (3+1)^2 = 16 for d=3, γ=3.
        assert_eq!(polar_grid(3, 3, false).len(), 16);
        assert_eq!(polar_grid(4, 6, false).len(), 343);
        assert_eq!(polar_grid(2, 10, false).len(), 11);
    }

    #[test]
    fn grid_dedup_removes_collapsed_vertices() {
        let full = polar_grid(3, 3, false);
        let deduped = polar_grid(3, 3, true);
        assert!(deduped.len() < full.len());
        // All deduped members are unit orthant vectors.
        for v in &deduped {
            assert!((l2_norm(v) - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn grid_includes_axes() {
        // The axis directions must be grid members (angles 0 / π/2).
        let grid = polar_grid(3, 2, true);
        for axis in 0..3 {
            let mut e = vec![0.0; 3];
            e[axis] = 1.0;
            assert!(
                grid.iter().any(|v| v.iter().zip(&e).all(|(a, b)| (a - b).abs() < 1e-9)),
                "axis {axis} missing from grid"
            );
        }
    }

    #[test]
    fn grid_covers_sphere_within_bound() {
        // Theorem 7's covering radius: random directions are within σ of
        // some grid vector.
        let mut rng = StdRng::seed_from_u64(8);
        for &(d, gamma) in &[(3usize, 6usize), (4, 6), (5, 4)] {
            let grid = polar_grid(d, gamma, true);
            let sigma = grid_distance_bound(d, gamma);
            for _ in 0..100 {
                let u = orthant_direction(d, &mut rng);
                let best = grid
                    .iter()
                    .map(|v| u.iter().zip(v).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt())
                    .fold(f64::INFINITY, f64::min);
                assert!(best <= sigma + 1e-9, "d={d} γ={gamma}: dist {best} > σ {sigma}");
            }
        }
    }

    #[test]
    fn distance_bound_formula() {
        let s = grid_distance_bound(4, 6);
        assert!((s - (3f64).sqrt() * std::f64::consts::PI / 24.0).abs() < 1e-12);
    }
}
