//! Upper envelope of dual lines (the rank-1 contour).
//!
//! The lines on the upper envelope over `[c0, c1]` are exactly the tuples
//! that are top-1 for some direction in the range — the unique minimal set
//! with rank-regret 1, and the `j → ∞` limit of 2DRRM's chains. Computed
//! with the classic convex-hull-trick stack construction in
//! `O(n log n)`.

use crate::dual::DualLine;

/// One piece of the envelope: `line` is the top line for
/// `x ∈ [from_x, to_x]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvelopeSegment {
    pub line: u32,
    pub from_x: f64,
    pub to_x: f64,
}

/// The upper envelope of `lines` over `[c0, c1]`, left to right.
///
/// Ties (identical lines, or equal height at a breakpoint) resolve to the
/// smallest line id, so the result is deterministic. Every returned
/// segment has positive width except when `c0 == c1` (a single
/// zero-width segment).
pub fn upper_envelope(lines: &[DualLine], c0: f64, c1: f64) -> Vec<EnvelopeSegment> {
    assert!(c0 <= c1);
    assert!(!lines.is_empty());
    // Sort ids by slope ascending; for equal slopes keep only the highest
    // intercept (ties by smallest id — it shadows the others everywhere).
    let mut ids: Vec<u32> = (0..lines.len() as u32).collect();
    ids.sort_unstable_by(|&a, &b| {
        let (la, lb) = (&lines[a as usize], &lines[b as usize]);
        la.slope
            .partial_cmp(&lb.slope)
            .expect("finite slopes")
            .then(lb.intercept.partial_cmp(&la.intercept).expect("finite intercepts"))
            .then(a.cmp(&b))
    });
    ids.dedup_by(|next, prev| lines[*next as usize].slope == lines[*prev as usize].slope);

    // Stack construction: `hull` holds line ids; `from` holds the x where
    // hull[i] starts to dominate hull[i-1].
    let mut hull: Vec<u32> = Vec::new();
    let mut from: Vec<f64> = Vec::new();
    for &id in &ids {
        let l = &lines[id as usize];
        loop {
            match hull.last() {
                None => {
                    hull.push(id);
                    from.push(f64::NEG_INFINITY);
                    break;
                }
                Some(&top) => {
                    let lt = &lines[top as usize];
                    // x where the new (steeper) line overtakes the top.
                    let x = l.intersection_x(lt).expect("slopes are strictly increasing");
                    if x <= *from.last().expect("parallel stacks") {
                        // The top line never shows before the new one takes
                        // over: pop it.
                        hull.pop();
                        from.pop();
                    } else {
                        hull.push(id);
                        from.push(x);
                        break;
                    }
                }
            }
        }
    }

    // Clip to [c0, c1].
    let mut out = Vec::new();
    for (i, &id) in hull.iter().enumerate() {
        let seg_from = from[i].max(c0);
        let seg_to = if i + 1 < hull.len() { from[i + 1].min(c1) } else { c1 };
        if seg_from < seg_to || (c0 == c1 && seg_from <= seg_to) {
            out.push(EnvelopeSegment { line: id, from_x: seg_from, to_x: seg_to });
        }
    }
    out
}

/// The distinct line ids on the envelope, ascending — the unique minimal
/// rank-regret-1 representative set for the weight range.
pub fn envelope_lines(lines: &[DualLine], c0: f64, c1: f64) -> Vec<u32> {
    let mut ids: Vec<u32> = upper_envelope(lines, c0, c1).into_iter().map(|s| s.line).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rrm_core::Dataset;

    fn table1_lines() -> Vec<DualLine> {
        let d = Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap();
        DualLine::from_dataset(&d)
    }

    #[test]
    fn table1_envelope() {
        // Derived by hand: l1 until 1/9, l2 until its crossing with l4 at
        // x = 0.35/0.74, l4 until its crossing with l7 at x = 0.6/0.81, l7.
        let segs = upper_envelope(&table1_lines(), 0.0, 1.0);
        let ids: Vec<u32> = segs.iter().map(|s| s.line).collect();
        assert_eq!(ids, vec![0, 1, 3, 6]);
        assert!((segs[0].to_x - 1.0 / 9.0).abs() < 1e-12);
        assert!((segs[1].to_x - 0.35 / 0.74).abs() < 1e-12);
        assert!((segs[2].to_x - 0.6 / 0.81).abs() < 1e-12);
        // Segments tile the range.
        assert_eq!(segs[0].from_x, 0.0);
        assert_eq!(segs.last().unwrap().to_x, 1.0);
        for w in segs.windows(2) {
            assert_eq!(w[0].to_x, w[1].from_x);
        }
    }

    #[test]
    fn envelope_matches_brute_force_argmax() {
        let mut rng = StdRng::seed_from_u64(55);
        for trial in 0..30 {
            let n = rng.random_range(1..40);
            let lines: Vec<DualLine> = (0..n)
                .map(|_| DualLine::from_tuple(&[rng.random::<f64>(), rng.random::<f64>()]))
                .collect();
            let segs = upper_envelope(&lines, 0.0, 1.0);
            for s in &segs {
                let mid = 0.5 * (s.from_x + s.to_x);
                let best = (0..lines.len())
                    .max_by(|&a, &b| lines[a].eval(mid).partial_cmp(&lines[b].eval(mid)).unwrap())
                    .unwrap();
                assert!(
                    (lines[best].eval(mid) - lines[s.line as usize].eval(mid)).abs() < 1e-12,
                    "trial {trial}: segment line {} is not the argmax at {mid}",
                    s.line
                );
            }
        }
    }

    #[test]
    fn restricted_range() {
        // Near x = 1 only the steepest relevant lines remain.
        let segs = upper_envelope(&table1_lines(), 0.9, 1.0);
        let ids: Vec<u32> = segs.iter().map(|s| s.line).collect();
        assert_eq!(ids, vec![6]);
        assert_eq!(segs[0].from_x, 0.9);
        assert_eq!(segs[0].to_x, 1.0);
    }

    #[test]
    fn duplicate_and_parallel_lines() {
        let lines = vec![
            DualLine { slope: 0.0, intercept: 0.5 },
            DualLine { slope: 0.0, intercept: 0.8 }, // dominates the first
            DualLine { slope: 0.0, intercept: 0.8 }, // duplicate
        ];
        let segs = upper_envelope(&lines, 0.0, 1.0);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].line, 1, "smallest id among ties");
    }

    #[test]
    fn point_range() {
        let segs = upper_envelope(&table1_lines(), 0.25, 0.25);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].line, 1); // l2 is top at x = 0.25
    }

    #[test]
    fn envelope_lines_sorted_unique() {
        let ids = envelope_lines(&table1_lines(), 0.0, 1.0);
        assert_eq!(ids, vec![0, 1, 3, 6]);
    }
}
