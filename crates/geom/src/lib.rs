//! Geometry substrate for the rank-regret algorithms.
//!
//! Two families of machinery live here:
//!
//! * **2D dual space** (paper Section IV): each tuple `t = (t[1], t[2])`
//!   maps to the line `y = t[1]·x + t[2]·(1-x)` over `x ∈ [0, 1]`; a
//!   normalized utility vector `(c, 1-c)` maps to the vertical line `x = c`,
//!   and "tuple a outranks tuple b at `u`" becomes "line a is above line b
//!   at `x = c`". [`dual`] builds the transform, [`events`] enumerates the
//!   crossings where ranks change, [`sweep`] implements the paper-faithful
//!   full arrangement sweep, and [`chain`] provides the persistent convex
//!   chains stored in 2DRRM's matrix `M`.
//!
//! * **d-dimensional polar coordinates** (paper Section V-A): conversion
//!   between angle vectors and unit utility vectors, and the polar grid
//!   `Db` of `(γ+1)^(d-1)` directions used by HDRRM's discretization.
//!   See [`polar`].

pub mod chain;
pub mod dual;
pub mod envelope;
pub mod events;
pub mod polar;
pub mod sweep;

pub use chain::{chain_to_vec, ChainNode};
pub use dual::DualLine;
pub use envelope::{envelope_lines, upper_envelope, EnvelopeSegment};
pub use events::{crossings_with_tracked, crossings_with_tracked_capped, Crossing};
pub use polar::{angles_to_direction, direction_to_angles, polar_grid};
