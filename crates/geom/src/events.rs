//! Crossing-event generation for the 2D algorithms.
//!
//! The ranks the 2D dynamic program reads are those of *skyline* lines, and
//! the rank of a line changes exactly at its crossings with other lines.
//! Instead of sweeping the full `O(n²)` arrangement with a heap (the
//! paper's formulation, implemented faithfully in [`crate::sweep`] and
//! cross-validated in tests), we enumerate the `O(s·n)` crossings that
//! involve at least one *tracked* (skyline) line, sort them once by `x`,
//! and replay them. Both routes visit the same rank changes for tracked
//! lines, so the algorithms stay exact; this one just skips the events
//! between two non-skyline lines, which Algorithm 1 ignores anyway
//! (its case 3).

use rrm_par::Parallelism;

use crate::dual::DualLine;

/// A crossing where the rank of at least one tracked line changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossing {
    /// x-coordinate of the crossing (normalized weight on attribute 1).
    pub x: f64,
    /// Line above before `x`, below after — its rank *increases* by one.
    /// Always the line with the smaller slope.
    pub down: u32,
    /// Line below before `x`, above after — its rank *decreases* by one.
    pub up: u32,
}

/// Enumerate crossings within the *open* interval `(x_lo, x_hi)` between
/// tracked lines and all lines (tracked–tracked pairs appear once). Sorted
/// by `x`, ties broken by `(down, up)` for determinism.
///
/// Open-interval semantics make every consumer agree on what happens at
/// the boundary: the rank order at `x_lo` and `x_hi` is the tie-broken
/// order *at* those weights, and crossings exactly on a boundary (score
/// ties under the boundary direction) never leak neighbouring-interval
/// state in. Under the paper's general-position assumption the choice is
/// invisible; with ties it is the difference between a certificate for
/// `[c0, c1]` and garbage.
///
/// `tracked_mask[i]` marks tracked line ids; `tracked` lists them.
pub fn crossings_with_tracked(
    lines: &[DualLine],
    tracked: &[u32],
    x_lo: f64,
    x_hi: f64,
) -> Vec<Crossing> {
    let mut mask = vec![false; lines.len()];
    for &t in tracked {
        mask[t as usize] = true;
    }
    let mut out = Vec::new();
    for_each_raw_crossing(lines, tracked, &mask, x_lo, x_hi, |x, down, up| {
        out.push(Crossing { x, down, up });
    });
    out.sort_unstable_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("finite crossings")
            .then(a.down.cmp(&b.down))
            .then(a.up.cmp(&b.up))
    });
    out
}

/// Stream the crossings of [`crossings_with_tracked`] in globally sorted
/// order while materializing at most roughly `chunk_target` of them at a
/// time.
///
/// For anti-correlated data the tracked (skyline) set can reach thousands
/// of lines, making `s·n` crossings too large to hold at once (tens of GB
/// at the paper's n = 100K scale). This routine makes two cheap passes:
/// a counting pass histograms crossings into fine x-buckets, buckets are
/// grouped into strips of at most `chunk_target` crossings, and each strip
/// is generated, sorted and replayed through `visit` in order.
///
/// `visit` receives exactly the same crossings, in exactly the same order,
/// as iterating the output of [`crossings_with_tracked`].
pub fn stream_crossings<F: FnMut(&Crossing)>(
    lines: &[DualLine],
    tracked: &[u32],
    x_lo: f64,
    x_hi: f64,
    chunk_target: usize,
    mut visit: F,
) {
    assert!(chunk_target > 0);
    const BUCKETS: usize = 1024;
    let span = x_hi - x_lo;
    if span <= 0.0 {
        for c in crossings_with_tracked(lines, tracked, x_lo, x_hi) {
            visit(&c);
        }
        return;
    }
    let mut mask = vec![false; lines.len()];
    for &t in tracked {
        mask[t as usize] = true;
    }
    let bucket_of = |x: f64| (((x - x_lo) / span * BUCKETS as f64) as usize).min(BUCKETS - 1);
    // Pass 1: histogram.
    let mut hist = vec![0usize; BUCKETS];
    for_each_raw_crossing(lines, tracked, &mask, x_lo, x_hi, |x, _, _| {
        hist[bucket_of(x)] += 1;
    });
    // Group buckets into strips of at most chunk_target crossings (single
    // over-full buckets become their own strip).
    let mut strips: Vec<(usize, usize)> = Vec::new(); // [start, end) bucket range
    let mut start = 0usize;
    let mut acc = 0usize;
    for (b, &h) in hist.iter().enumerate() {
        if acc > 0 && acc + h > chunk_target {
            strips.push((start, b));
            start = b;
            acc = 0;
        }
        acc += h;
    }
    strips.push((start, BUCKETS));
    // Pass 2: per strip, materialize + sort + visit.
    let mut buf: Vec<Crossing> = Vec::new();
    for (b0, b1) in strips {
        buf.clear();
        for_each_raw_crossing(lines, tracked, &mask, x_lo, x_hi, |x, down, up| {
            let b = bucket_of(x);
            if b >= b0 && b < b1 {
                buf.push(Crossing { x, down, up });
            }
        });
        buf.sort_unstable_by(|a, b| {
            a.x.partial_cmp(&b.x)
                .expect("finite crossings")
                .then(a.down.cmp(&b.down))
                .then(a.up.cmp(&b.up))
        });
        for c in &buf {
            visit(c);
        }
    }
}

/// [`crossings_with_tracked`] with an abandon cap: materialize the sorted
/// crossing stream unless it would exceed `cap` events, in which case the
/// buffer is dropped mid-pass and `None` is returned (callers fall back to
/// [`stream_crossings`], which bounds memory). One enumeration pass either
/// way; the sort only happens on success.
pub fn crossings_with_tracked_capped(
    lines: &[DualLine],
    tracked: &[u32],
    x_lo: f64,
    x_hi: f64,
    cap: usize,
) -> Option<Vec<Crossing>> {
    let mut mask = vec![false; lines.len()];
    for &t in tracked {
        mask[t as usize] = true;
    }
    let mut out: Vec<Crossing> = Vec::new();
    let mut overflow = false;
    for_each_raw_crossing(lines, tracked, &mask, x_lo, x_hi, |x, down, up| {
        if overflow {
            return;
        }
        if out.len() >= cap {
            overflow = true;
            out = Vec::new(); // release the buffer mid-pass
            return;
        }
        out.push(Crossing { x, down, up });
    });
    if overflow {
        return None;
    }
    out.sort_unstable_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("finite crossings")
            .then(a.down.cmp(&b.down))
            .then(a.up.cmp(&b.up))
    });
    Some(out)
}

/// Parallel form of [`crossings_with_tracked_capped`]: the per-tracked-line
/// crossing classification (`O(s·n)` intersection tests — the expensive
/// pass on anti-correlated data, where the skyline is large) is chunked
/// over `pol`'s worker threads.
///
/// Determinism: each tracked line's crossings are computed independently
/// and the merged set is sorted by the same `(x, down, up)` total order as
/// the sequential routine, so the returned stream is **bit-identical** to
/// [`crossings_with_tracked_capped`] at any thread count, and the
/// `None`-on-overflow decision is a pure function of the input.
///
/// Memory: the cap is enforced by a shared tally during the single
/// enumeration pass; peak transient usage can overshoot the sequential
/// version's `cap` by up to one in-flight line's crossings (≤ `n`) per
/// worker before overflow is detected. Size `cap` accordingly when the
/// bound matters.
pub fn crossings_with_tracked_capped_par(
    lines: &[DualLine],
    tracked: &[u32],
    x_lo: f64,
    x_hi: f64,
    cap: usize,
    pol: Parallelism,
) -> Option<Vec<Crossing>> {
    if pol.is_sequential() {
        return crossings_with_tracked_capped(lines, tracked, x_lo, x_hi, cap);
    }
    let mut mask = vec![false; lines.len()];
    for &t in tracked {
        mask[t as usize] = true;
    }
    // One enumeration pass (like the sequential routine): per tracked
    // line into its own buffer, with a shared atomic tally enforcing the
    // cap. The overflow *decision* is a pure function of the input — the
    // true crossing count either exceeds `cap` (then some tally update
    // must observe it, whatever the ordering) or it does not (then none
    // can) — so Some/None never depends on the thread count. Buffers of
    // lines enumerated after overflow is flagged are dropped mid-pass,
    // bounding memory at roughly `cap` plus one in-flight line per worker.
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    let tally = AtomicUsize::new(0);
    let overflow = AtomicBool::new(false);
    let per_line = rrm_par::par_map(tracked, pol, |&t| {
        let mut out = Vec::new();
        for_each_raw_crossing_of(lines, t, &mask, x_lo, x_hi, |x, down, up| {
            if !overflow.load(Ordering::Relaxed) {
                out.push(Crossing { x, down, up });
            }
        });
        if tally.fetch_add(out.len(), Ordering::Relaxed) + out.len() > cap {
            overflow.store(true, Ordering::Relaxed);
            out = Vec::new(); // release mid-pass, as the sequential cap does
        }
        out
    });
    if overflow.load(Ordering::Relaxed) {
        return None;
    }
    let mut out: Vec<Crossing> = per_line.into_iter().flatten().collect();
    out.sort_unstable_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("finite crossings")
            .then(a.down.cmp(&b.down))
            .then(a.up.cmp(&b.up))
    });
    Some(out)
}

/// Shared enumeration core of [`crossings_with_tracked`] and
/// [`stream_crossings`]: calls `f(x, down, up)` for every tracked crossing
/// in `(x_lo, x_hi]`, in arbitrary order.
fn for_each_raw_crossing<F: FnMut(f64, u32, u32)>(
    lines: &[DualLine],
    tracked: &[u32],
    tracked_mask: &[bool],
    x_lo: f64,
    x_hi: f64,
    mut f: F,
) {
    for &t in tracked {
        for_each_raw_crossing_of(lines, t, tracked_mask, x_lo, x_hi, &mut f);
    }
}

/// One tracked line's slice of [`for_each_raw_crossing`] — the unit of
/// work [`crossings_with_tracked_capped_par`] schedules across threads.
fn for_each_raw_crossing_of<F: FnMut(f64, u32, u32)>(
    lines: &[DualLine],
    t: u32,
    tracked_mask: &[bool],
    x_lo: f64,
    x_hi: f64,
    mut f: F,
) {
    let lt = &lines[t as usize];
    for (o, lo_line) in lines.iter().enumerate() {
        let o = o as u32;
        if o == t || (tracked_mask[o as usize] && o < t) {
            continue;
        }
        let Some(x) = lt.intersection_x(lo_line) else {
            continue;
        };
        if x <= x_lo || x >= x_hi {
            continue;
        }
        let (down, up) = if lt.slope < lo_line.slope { (t, o) } else { (o, t) };
        f(x, down, up);
    }
}

/// The crossing of one specific pair of lines, under exactly the rules the
/// enumeration passes use: `None` for parallel lines or crossings outside
/// the *open* interval `(x_lo, x_hi)`; `down` is always the line with the
/// smaller slope. Incremental event repair rebuilds the affected slice of
/// [`crossings_with_tracked`]'s output pair by pair with this, so repaired
/// streams stay bit-identical to full re-enumeration.
pub fn crossing_of_pair(
    lines: &[DualLine],
    a: u32,
    b: u32,
    x_lo: f64,
    x_hi: f64,
) -> Option<Crossing> {
    let (la, lb) = (&lines[a as usize], &lines[b as usize]);
    let x = la.intersection_x(lb)?;
    if x <= x_lo || x >= x_hi {
        return None;
    }
    let (down, up) = if la.slope < lb.slope { (a, b) } else { (b, a) };
    Some(Crossing { x, down, up })
}

/// Initial 1-based ranks of every line at `x_lo+` (height descending, ties
/// by slope descending then id), returned as a vector indexed by line id.
pub fn initial_ranks(lines: &[DualLine], x_lo: f64) -> Vec<usize> {
    let mut ids: Vec<u32> = (0..lines.len() as u32).collect();
    crate::dual::order_at(lines, &mut ids, x_lo);
    let mut rank = vec![0usize; lines.len()];
    for (pos, &id) in ids.iter().enumerate() {
        rank[id as usize] = pos + 1;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::Dataset;

    fn lines3() -> Vec<DualLine> {
        // t1, t2, t3 of Table I.
        let d = Dataset::from_rows(&[[0.0, 1.0], [0.4, 0.95], [0.57, 0.75]]).unwrap();
        DualLine::from_dataset(&d)
    }

    #[test]
    fn all_pairs_of_skyline_lines_cross_inside() {
        // All three tuples are skyline tuples, so all 3 pairwise crossings
        // are in (0, 1): 1/9, 0.25/0.82, 0.2/0.37.
        let lines = lines3();
        let cr = crossings_with_tracked(&lines, &[0, 1, 2], 0.0, 1.0);
        assert_eq!(cr.len(), 3);
        assert!((cr[0].x - 1.0 / 9.0).abs() < 1e-12);
        assert!((cr[1].x - 0.25 / 0.82).abs() < 1e-12);
        assert!((cr[2].x - 0.2 / 0.37).abs() < 1e-12);
        // l1 has the smallest slope: it goes down at both its crossings.
        assert_eq!(cr[0], Crossing { x: cr[0].x, down: 0, up: 1 });
        assert_eq!(cr[1].down, 0);
        assert_eq!(cr[1].up, 2);
        assert_eq!(cr[2].down, 1);
        assert_eq!(cr[2].up, 2);
    }

    #[test]
    fn tracked_subset_drops_untracked_pairs() {
        let lines = lines3();
        // Track only line 0: crossings (0,1) and (0,2); (1,2) dropped.
        let cr = crossings_with_tracked(&lines, &[0], 0.0, 1.0);
        assert_eq!(cr.len(), 2);
        assert!(cr.iter().all(|c| c.down == 0 || c.up == 0));
    }

    #[test]
    fn range_filtering_is_open() {
        let lines = lines3();
        // Use the exact float the generator produces, not 1.0/9.0, so the
        // boundary comparison is bit-identical.
        let first_x = lines[0].intersection_x(&lines[1]).unwrap();
        // Crossings exactly on either boundary are excluded: the boundary
        // order is defined by the tie-broken sort at that weight.
        let cr = crossings_with_tracked(&lines, &[0, 1, 2], first_x, 1.0);
        assert_eq!(cr.len(), 2);
        let cr = crossings_with_tracked(&lines, &[0, 1, 2], 0.0, first_x);
        assert_eq!(cr.len(), 0);
        let second_x = lines[0].intersection_x(&lines[2]).unwrap();
        let cr = crossings_with_tracked(&lines, &[0, 1, 2], 0.0, second_x);
        assert_eq!(cr.len(), 1);
    }

    #[test]
    fn parallel_lines_never_cross() {
        let lines =
            vec![DualLine { slope: 1.0, intercept: 0.0 }, DualLine { slope: 1.0, intercept: 0.5 }];
        assert!(crossings_with_tracked(&lines, &[0, 1], 0.0, 1.0).is_empty());
    }

    #[test]
    fn initial_ranks_at_zero() {
        let lines = lines3();
        // At x=0 heights are 1.0, 0.95, 0.75.
        assert_eq!(initial_ranks(&lines, 0.0), vec![1, 2, 3]);
        // Just after the first crossing l2 overtakes l1.
        assert_eq!(initial_ranks(&lines, 0.2), vec![2, 1, 3]);
    }

    #[test]
    fn stream_matches_materialized_order() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..10 {
            let n = rng.random_range(5..40);
            let lines: Vec<DualLine> = (0..n)
                .map(|_| DualLine::from_tuple(&[rng.random::<f64>(), rng.random::<f64>()]))
                .collect();
            let tracked: Vec<u32> = (0..n as u32).step_by(2).collect();
            let all = crossings_with_tracked(&lines, &tracked, 0.0, 1.0);
            // Tiny chunk target forces many strips.
            let mut streamed = Vec::new();
            super::stream_crossings(&lines, &tracked, 0.0, 1.0, 7, |c| streamed.push(*c));
            assert_eq!(streamed, all, "trial {trial}");
        }
    }

    #[test]
    fn stream_empty_range() {
        let lines = lines3();
        let mut count = 0;
        super::stream_crossings(&lines, &[0, 1, 2], 0.5, 0.5, 10, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn parallel_capped_enumeration_is_bit_identical() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(91);
        let lines: Vec<DualLine> = (0..60)
            .map(|_| DualLine::from_tuple(&[rng.random::<f64>(), rng.random::<f64>()]))
            .collect();
        let tracked: Vec<u32> = (0..60u32).step_by(3).collect();
        let sequential = crossings_with_tracked_capped(&lines, &tracked, 0.0, 1.0, usize::MAX);
        for pol in [Parallelism::Sequential, Parallelism::Fixed(2), Parallelism::Fixed(7)] {
            let par =
                crossings_with_tracked_capped_par(&lines, &tracked, 0.0, 1.0, usize::MAX, pol);
            assert_eq!(par, sequential, "{pol:?}");
        }
        // The cap abandons before materializing, exactly like sequential.
        assert_eq!(
            crossings_with_tracked_capped_par(&lines, &tracked, 0.0, 1.0, 3, Parallelism::Fixed(4)),
            None
        );
        assert_eq!(crossings_with_tracked_capped(&lines, &tracked, 0.0, 1.0, 3), None);
    }

    #[test]
    fn pair_helper_matches_enumeration() {
        let lines = lines3();
        let all = crossings_with_tracked(&lines, &[0, 1, 2], 0.0, 1.0);
        for c in &all {
            // Both argument orders produce the same crossing.
            assert_eq!(crossing_of_pair(&lines, c.down, c.up, 0.0, 1.0), Some(*c));
            assert_eq!(crossing_of_pair(&lines, c.up, c.down, 0.0, 1.0), Some(*c));
        }
        // Open-interval boundaries and parallel lines give nothing.
        assert_eq!(crossing_of_pair(&lines, 0, 1, all[0].x, 1.0), None);
        let par =
            vec![DualLine { slope: 1.0, intercept: 0.0 }, DualLine { slope: 1.0, intercept: 0.5 }];
        assert_eq!(crossing_of_pair(&par, 0, 1, 0.0, 1.0), None);
    }

    #[test]
    fn rank_replay_matches_brute_force() {
        // Replaying crossings from the initial ranks must reproduce the
        // brute-force rank of a tracked line at any x.
        let d = Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap();
        let lines = DualLine::from_dataset(&d);
        let tracked: Vec<u32> = (0..7).collect();
        let cr = crossings_with_tracked(&lines, &tracked, 0.0, 1.0);
        let mut rank = initial_ranks(&lines, 0.0);
        let mut prev_x = 0.0;
        for c in &cr {
            // Midpoint of the previous gap: compare with brute force.
            let mid = 0.5 * (prev_x + c.x);
            for i in 0..7usize {
                let brute = 1
                    + (0..7).filter(|&j| j != i && lines[j].eval(mid) > lines[i].eval(mid)).count();
                assert_eq!(rank[i], brute, "line {i} at x={mid}");
            }
            rank[c.down as usize] += 1;
            rank[c.up as usize] -= 1;
            prev_x = c.x;
        }
    }
}
