//! The 2D dual transform (paper Section IV-A, Figure 4).
//!
//! With utility vectors normalized to `u = (c, 1-c)`, the utility of a tuple
//! `t` as a function of `c` is the line `y(c) = t[1]·c + t[2]·(1-c)`, i.e.
//! intercept `t[2]` and slope `t[1] - t[2]`. Higher line at `x = c` means
//! higher rank (closer to 1) under `u = (c, 1-c)`.

use rrm_core::Dataset;

/// A tuple's line in dual space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualLine {
    /// `t[1] - t[2]` — utility gain as weight moves toward attribute 1.
    pub slope: f64,
    /// `t[2]` — the utility at `x = 0`, i.e. under `u = (0, 1)`.
    pub intercept: f64,
}

impl DualLine {
    /// Dual line of a 2D tuple.
    pub fn from_tuple(t: &[f64]) -> Self {
        debug_assert_eq!(t.len(), 2, "the dual transform is 2D-only");
        Self { slope: t[0] - t[1], intercept: t[1] }
    }

    /// Dual lines of every tuple of a 2D dataset, in index order.
    pub fn from_dataset(data: &Dataset) -> Vec<DualLine> {
        assert_eq!(data.dim(), 2, "the dual transform is 2D-only");
        data.rows().map(DualLine::from_tuple).collect()
    }

    /// Height of the line at `x` — the tuple's utility under `(x, 1-x)`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// x-coordinate where `self` and `other` cross, or `None` for parallel
    /// lines (tuples with the same `t[1] - t[2]`).
    pub fn intersection_x(&self, other: &DualLine) -> Option<f64> {
        let ds = self.slope - other.slope;
        if ds == 0.0 {
            return None;
        }
        Some((other.intercept - self.intercept) / ds)
    }

    /// Is `self` strictly above `other` immediately *after* `x`?
    ///
    /// Equal heights at `x` are broken by slope (the faster-growing line is
    /// above just after `x`); exact ties (identical lines) fall back to
    /// `false`, letting callers impose an index order.
    pub fn above_after(&self, other: &DualLine, x: f64) -> bool {
        let (a, b) = (self.eval(x), other.eval(x));
        if a != b {
            return a > b;
        }
        self.slope > other.slope
    }
}

/// The total order behind [`order_at`]: compares line ids at `x+` (top
/// line first) by height descending, ties by slope descending, final ties
/// by id ascending. Public so incremental maintainers can merge into an
/// existing order with bit-identical semantics to a full re-sort.
pub fn cmp_at(lines: &[DualLine], x: f64, i: u32, j: u32) -> std::cmp::Ordering {
    let (a, b) = (&lines[i as usize], &lines[j as usize]);
    b.eval(x)
        .partial_cmp(&a.eval(x))
        .expect("finite heights")
        .then(b.slope.partial_cmp(&a.slope).expect("finite slopes"))
        .then(i.cmp(&j))
}

/// Sort order of line ids at `x+` (top line first): height descending,
/// ties by slope descending, final ties by id ascending.
pub fn order_at(lines: &[DualLine], ids: &mut [u32], x: f64) {
    ids.sort_unstable_by(|&i, &j| cmp_at(lines, x, i, j));
}

/// Map a 2D polyhedral cone (`rows · u ≥ 0`, `u ≥ 0`) to its interval of
/// normalized weights: `{c ∈ [0, 1] : (c, 1-c) ∈ U}` — the "render the
/// scene" step of Section IV-C. Returns `None` when the cone misses the
/// normalized segment entirely.
pub fn normalized_interval_2d(rows: &[Vec<f64>]) -> Option<(f64, f64)> {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for row in rows {
        assert_eq!(row.len(), 2, "2D cone rows expected");
        // row[0]·c + row[1]·(1-c) >= 0  <=>  (row[0]-row[1])·c >= -row[1]
        let a = row[0] - row[1];
        let b = -row[1];
        if a > 0.0 {
            lo = lo.max(b / a);
        } else if a < 0.0 {
            hi = hi.min(b / a);
        } else if b > 0.0 {
            return None; // 0 >= b > 0 impossible
        }
    }
    (lo <= hi).then_some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I of the paper as a dataset.
    pub(crate) fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn transform_matches_figure_4() {
        let lines = DualLine::from_dataset(&table1());
        // l1 runs from (0,1) to (1,0): intercept 1, slope -1.
        assert_eq!(lines[0], DualLine { slope: -1.0, intercept: 1.0 });
        // l7 runs from (0,0) to (1,1): intercept 0, slope 1.
        assert_eq!(lines[6], DualLine { slope: 1.0, intercept: 0.0 });
        // Utilities: eval(x) equals w((x, 1-x), t).
        let x = 0.25;
        for (line, row) in lines.iter().zip(table1().rows()) {
            let w = x * row[0] + (1.0 - x) * row[1];
            assert!((line.eval(x) - w).abs() < 1e-12);
        }
    }

    #[test]
    fn figure_4_rank_read() {
        // "the number of lines above l1 for x = 0.25 is 1": only l2.
        let lines = DualLine::from_dataset(&table1());
        let above: Vec<usize> =
            (0..7).filter(|&i| i != 0 && lines[i].eval(0.25) > lines[0].eval(0.25)).collect();
        assert_eq!(above, vec![1]);
    }

    #[test]
    fn intersections() {
        let l1 = DualLine { slope: -1.0, intercept: 1.0 };
        let l2 = DualLine { slope: -0.55, intercept: 0.95 };
        // Worked in the paper: l1 and l2 cross at x = 1/9.
        let x = l1.intersection_x(&l2).unwrap();
        assert!((x - 1.0 / 9.0).abs() < 1e-12);
        assert_eq!(l2.intersection_x(&l1).unwrap(), x);
        // Parallel lines never cross.
        let l3 = DualLine { slope: -1.0, intercept: 0.4 };
        assert!(l1.intersection_x(&l3).is_none());
    }

    #[test]
    fn above_after_tie_breaks_by_slope() {
        let flat = DualLine { slope: 0.0, intercept: 1.0 };
        let rising = DualLine { slope: 1.0, intercept: 0.0 };
        // They cross at x = 1: equal height, rising wins just after.
        assert!(rising.above_after(&flat, 1.0));
        assert!(!flat.above_after(&rising, 1.0));
        assert!(flat.above_after(&rising, 0.5));
    }

    #[test]
    fn order_at_zero_matches_a2_sort() {
        let d = table1();
        let lines = DualLine::from_dataset(&d);
        let mut ids: Vec<u32> = (0..7).collect();
        order_at(&lines, &mut ids, 0.0);
        // Sorted by A2 descending: t1, t2, t3, t4, t5, t6, t7.
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
        // At x = 0.25, l2 has overtaken l1 (their crossing is at x = 1/9).
        // Note: the paper's Figure 5 prints the order at 0.25 as
        // l2,l1,l3,l4,l5,l7,l6, but Table I's values put the l6×l7 crossing
        // at x = 0.3/0.95 ≈ 0.316 (so l6 is still above l7 at 0.25) — the
        // figure order is not realizable at any x; we assert the
        // mathematically correct one.
        order_at(&lines, &mut ids, 0.25);
        assert_eq!(ids, vec![1, 0, 2, 3, 4, 5, 6]);
        // Past the l1×l3, l6×l7 and l1×l4 crossings:
        order_at(&lines, &mut ids, 0.35);
        assert_eq!(ids, vec![1, 2, 3, 0, 4, 6, 5]);
    }

    #[test]
    fn interval_of_full_space_is_unit() {
        assert_eq!(normalized_interval_2d(&[]), Some((0.0, 1.0)));
    }

    #[test]
    fn interval_of_weak_ranking() {
        // u1 >= u2 -> c >= 1 - c -> c in [0.5, 1].
        let rows = vec![vec![1.0, -1.0]];
        let (lo, hi) = normalized_interval_2d(&rows).unwrap();
        assert!((lo - 0.5).abs() < 1e-12 && (hi - 1.0).abs() < 1e-12);
        // u2 >= 3 u1 -> 1 - c >= 3c -> c <= 0.25.
        let rows = vec![vec![-3.0, 1.0]];
        let (lo, hi) = normalized_interval_2d(&rows).unwrap();
        assert!(lo.abs() < 1e-12 && (hi - 0.25).abs() < 1e-12);
    }

    #[test]
    fn interval_of_empty_cone() {
        // u1 >= 2(u1+u2) is impossible for non-zero orthant vectors:
        // -u1 - 2u2 >= 0.
        let rows = vec![vec![-1.0, -2.0]];
        assert_eq!(normalized_interval_2d(&rows), None);
        // Contradictory pair: c >= 0.8 and c <= 0.2.
        let rows = vec![vec![1.0, -4.0], vec![-4.0, 1.0]];
        assert_eq!(normalized_interval_2d(&rows), None);
    }
}
