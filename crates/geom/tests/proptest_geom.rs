//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use rrm_geom::dual::DualLine;
use rrm_geom::envelope::upper_envelope;
use rrm_geom::events::{crossings_with_tracked, initial_ranks, stream_crossings};
use rrm_geom::polar::{angles_to_direction, direction_to_angles};
use rrm_geom::sweep::arrangement_sweep;

fn lines_strategy() -> impl Strategy<Value = Vec<DualLine>> {
    proptest::collection::vec((0u32..1000, 0u32..1000), 1..25).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(a, b)| DualLine::from_tuple(&[a as f64 / 1000.0, b as f64 / 1000.0]))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The sweep and the event list report identical rank trajectories.
    #[test]
    fn sweep_equals_event_list(lines in lines_strategy()) {
        let tracked: Vec<u32> = (0..lines.len() as u32).collect();
        let mut rank_a = initial_ranks(&lines, 0.0);
        for c in crossings_with_tracked(&lines, &tracked, 0.0, 1.0) {
            rank_a[c.down as usize] += 1;
            rank_a[c.up as usize] -= 1;
        }
        let mut rank_b = initial_ranks(&lines, 0.0);
        arrangement_sweep(&lines, 0.0, 1.0, |_, down, up, _| {
            rank_b[down as usize] += 1;
            rank_b[up as usize] -= 1;
        });
        prop_assert_eq!(rank_a, rank_b);
    }

    /// Streaming with any chunk size reproduces the materialized order.
    #[test]
    fn stream_order_invariant(lines in lines_strategy(), chunk in 1usize..50) {
        let tracked: Vec<u32> = (0..lines.len() as u32).step_by(2).collect();
        if tracked.is_empty() {
            return Ok(());
        }
        let all = crossings_with_tracked(&lines, &tracked, 0.0, 1.0);
        let mut streamed = Vec::new();
        stream_crossings(&lines, &tracked, 0.0, 1.0, chunk, |c| streamed.push(*c));
        prop_assert_eq!(streamed, all);
    }

    /// Replayed ranks equal brute-force ranks at random probes.
    #[test]
    fn ranks_match_brute_force(lines in lines_strategy(), probe_ppm in 0u32..1_000_000) {
        let probe = probe_ppm as f64 / 1_000_000.0;
        let tracked: Vec<u32> = (0..lines.len() as u32).collect();
        let mut rank = initial_ranks(&lines, 0.0);
        for c in crossings_with_tracked(&lines, &tracked, 0.0, probe) {
            rank[c.down as usize] += 1;
            rank[c.up as usize] -= 1;
        }
        // Brute force with the same tie-break (height, then slope, then id).
        for i in 0..lines.len() {
            let above = (0..lines.len())
                .filter(|&j| j != i)
                .filter(|&j| {
                    let (a, b) = (lines[j].eval(probe), lines[i].eval(probe));
                    a > b
                        || (a == b
                            && (lines[j].slope > lines[i].slope
                                || (lines[j].slope == lines[i].slope && j < i)))
                })
                .count();
            prop_assert_eq!(rank[i], above + 1, "line {} at {}", i, probe);
        }
    }

    /// The envelope is exactly the per-x argmax.
    #[test]
    fn envelope_matches_argmax(lines in lines_strategy(), probe_ppm in 1u32..999_999) {
        let probe = probe_ppm as f64 / 1_000_000.0;
        let segs = upper_envelope(&lines, 0.0, 1.0);
        let seg = segs.iter().find(|s| s.from_x <= probe && probe <= s.to_x);
        prop_assume!(seg.is_some()); // probe can fall exactly on a breakpoint
        let seg = seg.unwrap();
        let best = (0..lines.len())
            .map(|i| lines[i].eval(probe))
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((lines[seg.line as usize].eval(probe) - best).abs() < 1e-12);
    }

    /// Polar round trip is the identity on the orthant sphere.
    #[test]
    fn polar_roundtrip(raw in proptest::collection::vec(1u32..1000, 2..6)) {
        let norm = (raw.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>()).sqrt();
        let u: Vec<f64> = raw.iter().map(|&v| v as f64 / norm).collect();
        let angles = direction_to_angles(&u);
        prop_assert!(angles
            .iter()
            .all(|&a| (0.0..=std::f64::consts::FRAC_PI_2 + 1e-12).contains(&a)));
        let v = angles_to_direction(&angles);
        for (a, b) in u.iter().zip(&v) {
            prop_assert!((a - b).abs() < 1e-9, "{:?} vs {:?}", u, v);
        }
    }
}
