//! A minimal JSON value type, parser and writer.
//!
//! The offline container rules out serde, and the wire grammar here is
//! small: one object per line, scalar fields, flat arrays of numbers. The
//! parser is a straightforward recursive descent over RFC 8259 with two
//! deliberate simplifications — numbers parse through `f64` (the protocol
//! only carries ids, counts and timings, all well inside 2^53) and
//! `\uXXXX` escapes outside the BMP must arrive as surrogate pairs.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered: the writer emits keys in the order given, so
    /// output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer view of a number (rejects fractions and
    /// negatives — the protocol's sizes, thresholds and deadlines).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// Render to a compact single-line string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Infinity
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Escape a string per RFC 8259.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document; trailing non-whitespace is an error (the
/// protocol is one complete object per line).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map_err(|_| format!("bad number {text:?} at byte {start}")).and_then(
            |v| {
                if v.is_finite() {
                    Ok(Json::Num(v))
                } else {
                    Err(format!("number {text:?} overflows f64"))
                }
            },
        )
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or("bad \\u escape")?);
                            continue; // hex4 advanced pos itself
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end]).unwrap();
        let v = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u{text}"))?;
        self.pos = end;
        Ok(v)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_wire_shapes() {
        for text in [
            r#"{"op":"minimize","tenant":"cars","param":5}"#,
            r#"{"id":17,"status":"ok","indices":[0,3,9],"certified_regret":null}"#,
            r#"{"nested":{"a":[1,2.5,-3]},"flag":true}"#,
            r#"[]"#,
            r#"{}"#,
        ] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn field_accessors() {
        let v = parse(r#"{"op":"minimize","param":5,"deadline_ms":100.0,"x":-1}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("minimize"));
        assert_eq!(v.get("param").and_then(Json::as_usize), Some(5));
        assert_eq!(v.get("deadline_ms").and_then(Json::as_usize), Some(100));
        assert_eq!(v.get("x").and_then(Json::as_usize), None, "negative");
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse("1.5").unwrap().as_usize(), None, "fractional");
    }

    #[test]
    fn escapes_both_ways() {
        let v = Json::Str("a\"b\\c\nd\u{1}".to_string());
        let text = v.render();
        assert_eq!(text, r#""a\"b\\c\nd\u0001""#);
        assert_eq!(parse(&text).unwrap(), v);
        // Unicode escapes incl. surrogate pairs.
        assert_eq!(parse(r#""é😀""#).unwrap(), Json::Str("é😀".to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "",
            "{",
            "}",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "[1,",
            "nul",
            "tru",
            r#""unterminated"#,
            "1e999",
            r#"{"a":1} extra"#,
            r#""bad\q""#,
            r#""\ud800x""#,
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(1.5).render(), "1.5");
    }
}
