//! Wire protocol: newline-delimited JSON, one request object per line in,
//! one response object per line out.
//!
//! Requests:
//!
//! ```json
//! {"op":"minimize","tenant":"t0","param":5,"algo":"hdrrm","deadline_ms":50,"samples":200,"id":1}
//! {"op":"represent","tenant":"t1","param":10,"id":"q-2"}
//! {"op":"minimize","tenant":"t0","param":5,"algo":"hdrrm","gap":0.25,"id":4}
//! {"op":"update","tenant":"t0","insert":[[0.5,0.5]],"delete":[3],"id":5}
//! {"op":"minimize","tenant":"t0","param":5,"approx":{"eps":0.05,"delta":0.05},"id":6}
//! {"op":"stats"}
//! ```
//!
//! `id` is echoed verbatim in the response (any JSON value), so clients can
//! pipeline requests on one connection and correlate out-of-order replies.
//! Unknown top-level keys are rejected — a typoed `"deadine_ms"` should be
//! a loud `bad_request`, not a silently unlimited query.
//!
//! Responses are `{"id":...,"status":"ok",...}` or
//! `{"id":...,"status":"error","error":"<code>","message":...}`, where
//! `<code>` is one of the [`ErrorKind`] codes.

use rank_regret::{
    AlgoChoice, Algorithm, ApproxSpec, Budget, Request, Response, RrmError, TerminatedBy,
};

use crate::json::Json;

/// What a wire request asks the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// RRM: best set of at most `param` tuples.
    Minimize { param: usize },
    /// RRR: smallest set with rank-regret at most `param`.
    Represent { param: usize },
    /// Mutate the tenant's dataset: delete the given pre-batch row
    /// indices and append the given rows, publishing a new epoch via the
    /// session's snapshot swap. Applied inline on the reader thread —
    /// never queued behind queries, and in-flight queries keep the epoch
    /// they started on.
    Update { insert: Vec<Vec<f64>>, delete: Vec<usize> },
    /// Dump counters and latency histograms (all tenants, or one if
    /// `tenant` is set).
    Stats,
}

/// A parsed wire request, validated but not yet admitted or dispatched.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Echoed verbatim in the response; `None` renders as JSON `null`.
    pub id: Option<Json>,
    pub op: Op,
    /// Required for queries; optional filter for `stats`.
    pub tenant: Option<String>,
    /// `None` means the engine's auto policy picks per dimensionality.
    pub algo: Option<Algorithm>,
    /// Wall-clock deadline for queueing + service, mapped onto a counter
    /// [`Budget`] by the server's startup calibration.
    pub deadline_ms: Option<u64>,
    /// Sampled-direction override for randomized solvers.
    pub samples: Option<usize>,
    /// Relative optimality-gap target: on cuttable algorithms the solve
    /// stops as soon as its certified gap reaches this value
    /// (`Cutoff::GapAtMost`) — a deterministic cutoff, unlike deadlines.
    /// Ignored for non-cuttable algorithms.
    pub gap: Option<f64>,
    /// Approximate-tier request: `{"approx":{"eps":0.05,"delta":0.05}}`
    /// asks for a sampled-ε answer with Hoeffding confidence instead of
    /// an exact one. `delta` defaults to 0.05 when omitted. Responses
    /// carry `"fidelity":"approx"` plus a `"confidence"` object.
    pub approx: Option<ApproxSpec>,
}

impl WireRequest {
    /// The in-process [`Request`] this wire request denotes under `budget`.
    /// The server and the replay harness both build requests through here,
    /// so wire answers are bit-identical to in-process answers by
    /// construction.
    pub fn to_request(&self, budget: Budget) -> Option<Request> {
        let base = match self.op {
            Op::Minimize { param } => Request::minimize(param),
            Op::Represent { param } => Request::represent(param),
            Op::Update { .. } | Op::Stats => return None,
        };
        let choice = match self.algo {
            Some(algo) => AlgoChoice::Fixed(algo),
            None => AlgoChoice::Auto,
        };
        let mut request = base.choice(choice).budget(budget);
        if let Some(spec) = self.approx {
            request = request.approx(spec.eps, spec.delta);
        }
        Some(request)
    }
}

/// Structured error codes carried in the `"error"` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON or an invalid/missing/unknown field.
    BadRequest,
    /// `tenant` names no registered dataset.
    UnknownTenant,
    /// Admission control refused: per-tenant in-flight limit or global
    /// queue cap reached. Immediate, never queued.
    Overloaded,
    /// The wall-clock deadline elapsed before or during service.
    DeadlineExceeded,
    /// The selected algorithm cannot serve this dataset/space.
    Unsupported,
    /// Any other solver-side failure.
    SolverError,
}

impl ErrorKind {
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownTenant => "unknown_tenant",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::SolverError => "solver_error",
        }
    }

    /// The code a solver-side [`RrmError`] maps to.
    pub fn of_rrm_error(err: &RrmError) -> ErrorKind {
        match err {
            RrmError::Unsupported(_) => ErrorKind::Unsupported,
            _ => ErrorKind::SolverError,
        }
    }
}

const KNOWN_KEYS: [&str; 10] =
    ["op", "id", "tenant", "param", "algo", "deadline_ms", "gap", "approx", "insert", "delete"];

/// Parse one request line. `Err` carries a `bad_request` message.
pub fn parse_request(line: &str) -> Result<WireRequest, String> {
    let json = crate::json::parse(line)?;
    let obj = match &json {
        Json::Obj(pairs) => pairs,
        _ => return Err("request must be a JSON object".into()),
    };
    for (key, _) in obj {
        if !KNOWN_KEYS.contains(&key.as_str()) && key != "samples" {
            return Err(format!("unknown field `{key}`"));
        }
    }

    let id = json.get("id").cloned();
    let op_name = json
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing required string field `op`".to_string())?;
    let tenant = match json.get("tenant") {
        None => None,
        Some(v) => {
            Some(v.as_str().ok_or_else(|| "`tenant` must be a string".to_string())?.to_string())
        }
    };
    let param = match json.get("param") {
        None => None,
        Some(v) => {
            Some(v.as_usize().ok_or_else(|| "`param` must be a non-negative integer".to_string())?)
        }
    };
    let algo = match json.get("algo") {
        None => None,
        Some(v) => {
            let name = v.as_str().ok_or_else(|| "`algo` must be a string".to_string())?;
            Some(Algorithm::from_name(name).map_err(|e| e.to_string())?)
        }
    };
    let deadline_ms = match json.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or_else(|| "`deadline_ms` must be a non-negative integer".to_string())?
                as u64,
        ),
    };
    let samples = match json.get("samples") {
        None => None,
        Some(v) => Some(
            v.as_usize().ok_or_else(|| "`samples` must be a non-negative integer".to_string())?,
        ),
    };
    let gap = match json.get("gap") {
        None => None,
        Some(v) => {
            let g = v.as_f64().ok_or_else(|| "`gap` must be a number".to_string())?;
            if !g.is_finite() || g < 0.0 {
                return Err("`gap` must be a finite non-negative number".into());
            }
            Some(g)
        }
    };
    let approx = match json.get("approx") {
        None => None,
        Some(v @ Json::Obj(pairs)) => {
            for (key, _) in pairs {
                if key != "eps" && key != "delta" {
                    return Err(format!("unknown `approx` field `{key}` (expected eps, delta)"));
                }
            }
            let eps = v
                .get("eps")
                .ok_or_else(|| "`approx` requires number field `eps`".to_string())?
                .as_f64()
                .ok_or_else(|| "`approx.eps` must be a number".to_string())?;
            let delta = match v.get("delta") {
                None => ApproxSpec::default().delta,
                Some(d) => {
                    d.as_f64().ok_or_else(|| "`approx.delta` must be a number".to_string())?
                }
            };
            Some(ApproxSpec::new(eps, delta).map_err(|e| e.to_string())?)
        }
        Some(_) => return Err(r#"`approx` must be an object like {"eps":0.05}"#.into()),
    };

    let op = match op_name {
        "minimize" | "represent" => {
            let param =
                param.ok_or_else(|| format!("`{op_name}` requires integer field `param`"))?;
            if param == 0 {
                return Err("`param` must be at least 1".into());
            }
            if tenant.is_none() {
                return Err(format!("`{op_name}` requires string field `tenant`"));
            }
            if op_name == "minimize" {
                Op::Minimize { param }
            } else {
                Op::Represent { param }
            }
        }
        "update" => {
            if tenant.is_none() {
                return Err("`update` requires string field `tenant`".into());
            }
            let insert = match json.get("insert") {
                None => Vec::new(),
                Some(v) => parse_insert_rows(v)?,
            };
            let delete = match json.get("delete") {
                None => Vec::new(),
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_usize()
                            .ok_or_else(|| "`delete` entries must be row indices".to_string())
                    })
                    .collect::<Result<Vec<usize>, String>>()?,
                Some(_) => return Err("`delete` must be an array of row indices".into()),
            };
            if insert.is_empty() && delete.is_empty() {
                return Err("`update` needs a non-empty `insert` and/or `delete`".into());
            }
            Op::Update { insert, delete }
        }
        "stats" => Op::Stats,
        other => {
            return Err(format!("unknown op `{other}` (expected minimize|represent|update|stats)"))
        }
    };

    Ok(WireRequest { id, op, tenant, algo, deadline_ms, samples, gap, approx })
}

/// `insert`: an array of rows, each an array of finite numbers.
fn parse_insert_rows(v: &Json) -> Result<Vec<Vec<f64>>, String> {
    let Json::Arr(rows) = v else {
        return Err("`insert` must be an array of rows".into());
    };
    rows.iter()
        .map(|row| {
            let Json::Arr(vals) = row else {
                return Err("`insert` rows must be arrays of numbers".into());
            };
            vals.iter()
                .map(|x| {
                    x.as_f64()
                        .filter(|f| f.is_finite())
                        .ok_or_else(|| "`insert` values must be finite numbers".to_string())
                })
                .collect()
        })
        .collect()
}

fn id_json(id: &Option<Json>) -> Json {
    id.clone().unwrap_or(Json::Null)
}

/// Render a successful query response.
///
/// Every response states its `"fidelity"` (`"exact"` or `"approx"`).
/// Approximate answers additionally carry a `"confidence"` object with
/// the `(eps, delta)` statement and the direction-sample size — they are
/// *not* partial: the sampled tier ran to completion at its requested
/// fidelity.
///
/// When an in-solve cutoff fired (`terminated_by.is_early_stop()`) the
/// answer is the solver's best incumbent, not a certified optimum: the
/// response carries `"partial": true` plus a `"diagnostics"` object with
/// the termination reason, the relative optimality gap, and the
/// certified bounds (when the algorithm tracks them).
pub fn ok_response(
    id: &Option<Json>,
    tenant: &str,
    response: &Response,
    queued_micros: u64,
    micros: u64,
) -> Json {
    let indices =
        Json::Arr(response.solution.indices.iter().map(|&i| Json::from(i as u64)).collect());
    let fidelity = if matches!(response.solution.terminated_by, TerminatedBy::Sampled { .. }) {
        "approx"
    } else {
        "exact"
    };
    let mut fields = vec![
        ("id".into(), id_json(id)),
        ("status".into(), "ok".into()),
        ("tenant".into(), tenant.into()),
        ("algorithm".into(), response.solution.algorithm.name().into()),
        ("fidelity".into(), fidelity.into()),
        ("size".into(), response.solution.indices.len().into()),
        ("indices".into(), indices),
        (
            "certified_regret".into(),
            response.solution.certified_regret.map_or(Json::Null, Json::from),
        ),
        ("micros".into(), micros.into()),
        ("queued_micros".into(), queued_micros.into()),
    ];
    if let TerminatedBy::Sampled { eps, delta, directions } = response.solution.terminated_by {
        fields.push((
            "confidence".into(),
            Json::Obj(vec![
                ("eps".into(), eps.into()),
                ("delta".into(), delta.into()),
                ("directions".into(), directions.into()),
            ]),
        ));
    }
    if response.solution.terminated_by.is_early_stop() {
        fields.push(("partial".into(), Json::Bool(true)));
        let mut diag = vec![
            ("terminated_by".into(), response.solution.terminated_by.name().into()),
            ("gap".into(), response.solution.gap().map_or(Json::Null, Json::from)),
        ];
        if let Some(b) = response.solution.bounds {
            diag.push((
                "bounds".into(),
                Json::Obj(vec![("lower".into(), b.lower.into()), ("upper".into(), b.upper.into())]),
            ));
        }
        fields.push(("diagnostics".into(), Json::Obj(diag)));
    }
    Json::Obj(fields)
}

/// Render a structured error response; `diagnostics` (if any) is embedded
/// as a `"diagnostics"` object — e.g. queueing time for deadline misses.
pub fn error_response(
    id: &Option<Json>,
    kind: ErrorKind,
    message: &str,
    diagnostics: Option<Json>,
) -> Json {
    let mut fields = vec![
        ("id".into(), id_json(id)),
        ("status".into(), "error".into()),
        ("error".into(), kind.code().into()),
        ("message".into(), message.into()),
    ];
    if let Some(diag) = diagnostics {
        fields.push(("diagnostics".into(), diag));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_minimize_request() {
        let req = parse_request(
            r#"{"op":"minimize","tenant":"t0","param":5,"algo":"hdrrm","deadline_ms":50,"samples":200,"id":7}"#,
        )
        .unwrap();
        assert_eq!(req.op, Op::Minimize { param: 5 });
        assert_eq!(req.tenant.as_deref(), Some("t0"));
        assert_eq!(req.algo, Some(Algorithm::Hdrrm));
        assert_eq!(req.deadline_ms, Some(50));
        assert_eq!(req.samples, Some(200));
        assert_eq!(req.id, Some(Json::from(7u64)));

        let r = req.to_request(Budget::with_samples(200)).unwrap();
        assert_eq!(r.param(), 5);
        assert_eq!(r.choice, AlgoChoice::Fixed(Algorithm::Hdrrm));
    }

    #[test]
    fn stats_needs_no_tenant_and_builds_no_request() {
        let req = parse_request(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(req.op, Op::Stats);
        assert!(req.to_request(Budget::UNLIMITED).is_none());
    }

    #[test]
    fn parses_gap_cutoff_requests() {
        let req = parse_request(
            r#"{"op":"minimize","tenant":"t0","param":5,"algo":"hdrrm","gap":0.25,"id":3}"#,
        )
        .unwrap();
        assert_eq!(req.gap, Some(0.25));
        assert_eq!(req.op, Op::Minimize { param: 5 });
        // Absent → None; queries without a gap are unchanged.
        let req = parse_request(r#"{"op":"represent","tenant":"t0","param":2}"#).unwrap();
        assert_eq!(req.gap, None);
    }

    #[test]
    fn parses_approx_requests() {
        let req = parse_request(
            r#"{"op":"minimize","tenant":"t0","param":5,"approx":{"eps":0.1,"delta":0.02},"id":1}"#,
        )
        .unwrap();
        assert_eq!(req.approx, Some(ApproxSpec { eps: 0.1, delta: 0.02 }));
        let r = req.to_request(Budget::UNLIMITED).unwrap();
        assert_eq!(r.fidelity, rank_regret::Fidelity::Approx { eps: 0.1, delta: 0.02 });

        // `delta` defaults when omitted; absent `approx` means exact.
        let req =
            parse_request(r#"{"op":"minimize","tenant":"t0","param":5,"approx":{"eps":0.1}}"#)
                .unwrap();
        assert_eq!(req.approx, Some(ApproxSpec { eps: 0.1, delta: ApproxSpec::default().delta }));
        let req = parse_request(r#"{"op":"minimize","tenant":"t0","param":5}"#).unwrap();
        assert_eq!(req.approx, None);
        assert_eq!(
            req.to_request(Budget::UNLIMITED).unwrap().fidelity,
            rank_regret::Fidelity::Exact
        );
    }

    #[test]
    fn parses_update_requests() {
        let req = parse_request(
            r#"{"op":"update","tenant":"t0","insert":[[0.5,0.5],[0.1,0.9]],"delete":[3,0],"id":9}"#,
        )
        .unwrap();
        assert_eq!(
            req.op,
            Op::Update { insert: vec![vec![0.5, 0.5], vec![0.1, 0.9]], delete: vec![3, 0] }
        );
        assert!(req.to_request(Budget::UNLIMITED).is_none(), "update is not a query");
        // Delete-only and insert-only batches are both fine.
        let req = parse_request(r#"{"op":"update","tenant":"t0","delete":[1]}"#).unwrap();
        assert_eq!(req.op, Op::Update { insert: vec![], delete: vec![1] });
    }

    #[test]
    fn rejects_malformed_and_invalid_requests() {
        for (line, needle) in [
            ("{not json", "expected"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"tenant":"t0"}"#, "missing required string field `op`"),
            (r#"{"op":"minimize","tenant":"t0"}"#, "requires integer field `param`"),
            (r#"{"op":"minimize","param":3}"#, "requires string field `tenant`"),
            (r#"{"op":"minimize","tenant":"t0","param":0}"#, "at least 1"),
            (r#"{"op":"minimize","tenant":"t0","param":-2}"#, "non-negative integer"),
            (r#"{"op":"sample","tenant":"t0","param":3}"#, "unknown op"),
            (r#"{"op":"stats","deadine_ms":5}"#, "unknown field `deadine_ms`"),
            (r#"{"op":"minimize","tenant":"t0","param":3,"algo":"xdrrm"}"#, "unknown algorithm"),
            (r#"{"op":"minimize","tenant":"t0","param":3,"gap":"big"}"#, "must be a number"),
            (r#"{"op":"minimize","tenant":"t0","param":3,"gap":-0.5}"#, "non-negative"),
            (r#"{"op":"minimize","tenant":"t0","param":3,"approx":0.1}"#, "must be an object"),
            (
                r#"{"op":"minimize","tenant":"t0","param":3,"approx":{}}"#,
                "requires number field `eps`",
            ),
            (
                r#"{"op":"minimize","tenant":"t0","param":3,"approx":{"eps":1.5}}"#,
                "between 0 and 1",
            ),
            (
                r#"{"op":"minimize","tenant":"t0","param":3,"approx":{"eps":0.1,"epps":0.2}}"#,
                "unknown `approx` field",
            ),
            (r#"{"op":"update","insert":[[0.1]]}"#, "requires string field `tenant`"),
            (r#"{"op":"update","tenant":"t0"}"#, "non-empty"),
            (r#"{"op":"update","tenant":"t0","insert":[0.1]}"#, "rows must be arrays"),
            (r#"{"op":"update","tenant":"t0","delete":[-1]}"#, "row indices"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(
                err.to_lowercase().contains(&needle.to_lowercase()),
                "line {line:?}: error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn error_response_renders_code_and_diagnostics() {
        let j = error_response(
            &Some(Json::from("q-9")),
            ErrorKind::DeadlineExceeded,
            "deadline of 5ms elapsed while queued",
            Some(Json::Obj(vec![("queued_micros".into(), Json::from(6100u64))])),
        );
        assert_eq!(
            j.render(),
            r#"{"id":"q-9","status":"error","error":"deadline_exceeded","message":"deadline of 5ms elapsed while queued","diagnostics":{"queued_micros":6100}}"#
        );
    }
}
