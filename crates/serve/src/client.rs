//! A minimal blocking client for the wire protocol, used by the replay
//! harness and the integration tests (and handy from examples). One
//! request line out, one response line in; with pipelining, callers
//! correlate replies by the echoed `id`.

use std::io::{self, BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};

use crate::json::Json;

pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Send one request line (newline appended here).
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Block until the next response line arrives and parse it.
    pub fn recv(&mut self) -> io::Result<Json> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"));
        }
        crate::json::parse(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }

    /// Round-trip one request.
    pub fn call(&mut self, line: &str) -> io::Result<Json> {
        self.send(line)?;
        self.recv()
    }
}
