//! Serving observability: per-tenant counters and a log-bucketed latency
//! histogram, all lock-free atomics so the request hot path never blocks
//! on a stats mutex.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^{i+1})` microseconds, so 40 buckets span 1 µs to ~6.4 days.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log-bucketed latency histogram. Recording is one atomic increment;
/// percentile reads walk the 40 buckets. The reported percentile is the
/// *upper edge* of the bucket containing the rank — a conservative
/// (over-)estimate, never an understatement of tail latency.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    fn bucket_of(micros: u64) -> usize {
        // ilog2, with 0 µs clamped into the first bucket.
        (63 - micros.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Upper edge (exclusive) of bucket `i`, in microseconds.
    fn bucket_upper(i: usize) -> u64 {
        1u64 << (i + 1)
    }

    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `p`-th percentile (0 < p <= 100) as the upper edge of the
    /// bucket holding that rank; `None` when the histogram is empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper(i));
            }
        }
        Some(Self::bucket_upper(HISTOGRAM_BUCKETS - 1))
    }

    /// Non-empty buckets as `[upper_edge_us, count]` pairs.
    pub fn to_json(&self) -> Json {
        let items = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| Json::Arr(vec![Json::from(Self::bucket_upper(i)), Json::from(c)]))
            })
            .collect();
        Json::Arr(items)
    }
}

/// Per-tenant request counters. `accepted` counts admissions (so
/// `accepted = completed + errored + deadline_exceeded + in-flight`);
/// rejections never enter the queue.
#[derive(Debug, Default)]
pub struct TenantCounters {
    pub accepted: AtomicU64,
    pub rejected_overload: AtomicU64,
    pub completed: AtomicU64,
    /// Completions whose in-solve cutoff fired: the tenant got a
    /// best-so-far incumbent with a gap (`"partial": true` on the wire)
    /// instead of a certified optimum. A subset of `completed`.
    pub partial_answers: AtomicU64,
    /// Completions answered at approximate fidelity — a sampled-ε
    /// solve with a Hoeffding `(eps, delta)` certificate
    /// (`"fidelity":"approx"` on the wire). A subset of `completed`,
    /// disjoint from `partial_answers`: approx answers run to
    /// completion at their requested fidelity.
    pub approx_answers: AtomicU64,
    pub errored: AtomicU64,
    pub deadline_exceeded: AtomicU64,
}

impl TenantCounters {
    pub fn to_json(&self, prepare_hits: usize, prepare_misses: usize) -> Json {
        Json::Obj(vec![
            ("accepted".into(), self.accepted.load(Ordering::Relaxed).into()),
            ("rejected_overload".into(), self.rejected_overload.load(Ordering::Relaxed).into()),
            ("completed".into(), self.completed.load(Ordering::Relaxed).into()),
            ("partial_answers".into(), self.partial_answers.load(Ordering::Relaxed).into()),
            ("approx_answers".into(), self.approx_answers.load(Ordering::Relaxed).into()),
            ("errored".into(), self.errored.load(Ordering::Relaxed).into()),
            ("deadline_exceeded".into(), self.deadline_exceeded.load(Ordering::Relaxed).into()),
            ("prepare_hits".into(), prepare_hits.into()),
            ("prepare_misses".into(), prepare_misses.into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 0);
        assert_eq!(LogHistogram::bucket_of(2), 1);
        assert_eq!(LogHistogram::bucket_of(3), 1);
        assert_eq!(LogHistogram::bucket_of(4), 2);
        assert_eq!(LogHistogram::bucket_of(1023), 9);
        assert_eq!(LogHistogram::bucket_of(1024), 10);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn percentiles_are_conservative_upper_edges() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile(50.0), None);
        for us in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 5000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        // 9 of 10 samples in [8,16): p50 is that bucket's upper edge.
        assert_eq!(h.percentile(50.0), Some(16));
        assert_eq!(h.percentile(90.0), Some(16));
        // The tail sample (5000 µs -> bucket [4096,8192)) owns p99/p100.
        assert_eq!(h.percentile(99.0), Some(8192));
        assert_eq!(h.percentile(100.0), Some(8192));
    }

    #[test]
    fn json_snapshot_lists_nonempty_buckets() {
        let h = LogHistogram::new();
        h.record(3);
        h.record(3);
        h.record(100);
        let j = h.to_json();
        assert_eq!(
            j.render(),
            "[[4,2],[128,1]]",
            "bucket upper edges with counts, empty buckets omitted"
        );
    }

    #[test]
    fn tenant_counters_serialize() {
        let c = TenantCounters::default();
        c.accepted.fetch_add(3, Ordering::Relaxed);
        c.completed.fetch_add(2, Ordering::Relaxed);
        c.rejected_overload.fetch_add(1, Ordering::Relaxed);
        c.partial_answers.fetch_add(1, Ordering::Relaxed);
        c.approx_answers.fetch_add(1, Ordering::Relaxed);
        let text = c.to_json(5, 1).render();
        assert!(text.contains("\"accepted\":3"), "{text}");
        assert!(text.contains("\"partial_answers\":1"), "{text}");
        assert!(text.contains("\"approx_answers\":1"), "{text}");
        assert!(text.contains("\"rejected_overload\":1"), "{text}");
        assert!(text.contains("\"prepare_hits\":5"), "{text}");
        assert!(text.contains("\"prepare_misses\":1"), "{text}");
    }
}
