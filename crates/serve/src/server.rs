//! The TCP front end: accept loop, per-connection reader threads that do
//! admission control inline, a bounded global job queue, and N worker
//! threads running queries against tenant [`Session`]s.
//!
//! Threading model:
//!
//! * one accept thread;
//! * one reader thread per connection (parse + admission + `stats`
//!   answered inline, so rejections never wait behind slow queries);
//! * `workers` query threads popping a shared bounded queue.
//!
//! Responses to one connection may interleave out of request order when
//! `workers > 1`; clients correlate by the echoed `id`. Solver kernels
//! run under the configured [`ExecPolicy`] (default sequential): the
//! server parallelizes *across* requests, not inside one.
//!
//! Deadlines: `deadline_ms` is wall clock from admission, enforced two
//! ways depending on the algorithm. For the anytime (cuttable) HD
//! solvers the deadline becomes an in-solve [`Cutoff::TimeBudget`]: the
//! solver runs bound-and-prune under the clock and an overloaded tenant
//! gets its best incumbent with a certified gap (`"partial": true`)
//! instead of an error — even when the whole deadline was burned in the
//! queue, in which case the solve runs under an already-expired cutoff
//! and returns its first incumbent immediately. Non-cuttable algorithms
//! keep the old dispatch-time aging: a request that aged out in the
//! queue gets a structured `deadline_exceeded` with its queueing time as
//! diagnostics, without running. In both cases the deadline is also
//! mapped onto the counter [`Budget`] via a startup [`Calibration`] of
//! the scoring kernel, derived from the full deadline — not the
//! post-queue remainder — so a replayed request through an in-process
//! [`Session`] builds the *identical* `Request` and the determinism
//! contract extends over the wire (time-cut partial answers are the one
//! documented exception: they depend on wall clock, and the parity
//! replay skips them).
//!
//! [`Session`]: rank_regret::Session

use std::collections::VecDeque;
use std::io::{ErrorKind as IoErrorKind, Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rank_regret::rrm_core::kernel::{for_each_scores, ScoreScratch};
use rank_regret::{
    Algorithm, Budget, Cutoff, Engine, ExecPolicy, Request, RrmError, TerminatedBy, UpdateOp,
};

use crate::json::Json;
use crate::protocol::{error_response, ok_response, parse_request, ErrorKind, Op, WireRequest};
use crate::registry::{Registry, Tenant, TenantSpec};

/// How fast this machine scores tuples, measured once at startup and
/// used to translate wall-clock deadlines into counter [`Budget`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Single-direction tuple scores evaluated per millisecond.
    pub scores_per_ms: f64,
}

/// Microbenchmark the blocked scoring kernel on a fixed synthetic
/// dataset until at least ~10 ms have elapsed. The absolute number moves
/// with the machine — that is the point: the same `deadline_ms` buys the
/// same wall-clock on a fast or slow box, via different counter budgets.
pub fn calibrate() -> Calibration {
    const N: usize = 2000;
    const D: usize = 4;
    let data = rrm_data::synthetic::independent(N, D, 0x5eed);
    let soa = data.soa();
    // Deterministic direction bundle; contents are irrelevant to timing.
    let dirs: Vec<Vec<f64>> =
        (0..64).map(|i| (0..D).map(|j| 1.0 + ((i * 7 + j * 3) % 11) as f64).collect()).collect();
    let mut scratch = ScoreScratch::new();
    let mut sink = 0.0f64;
    let mut evals = 0u64;
    let start = Instant::now();
    while start.elapsed() < Duration::from_millis(10) {
        for_each_scores(soa, &dirs, &mut scratch, |_, scores| {
            sink += scores[0];
        });
        evals += (N * dirs.len()) as u64;
    }
    std::hint::black_box(sink);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    Calibration { scores_per_ms: evals as f64 / ms }
}

/// Map a deadline onto a counter [`Budget`] for a dataset of `n_tuples`
/// rows: the deadline buys `scores_per_ms * deadline_ms` score
/// evaluations; one enumeration / LP call / sampled direction is charged
/// as one pass over the dataset. Without a deadline, only the requested
/// `samples` override applies.
pub fn effective_budget(
    calib: Calibration,
    n_tuples: usize,
    deadline_ms: Option<u64>,
    samples: Option<usize>,
) -> Budget {
    match deadline_ms {
        None => samples.map_or(Budget::UNLIMITED, Budget::with_samples),
        Some(ms) => {
            let affordable = (calib.scores_per_ms * ms as f64) as usize;
            let cap = (affordable / n_tuples.max(1)).max(1);
            let samples = samples.unwrap_or(cap).min(cap);
            Budget {
                max_enumerations: Some(cap),
                max_lp_calls: Some(cap),
                samples: Some(samples),
                ..Budget::UNLIMITED
            }
        }
    }
}

/// The algorithm a wire request resolves to on a `dims`-dimensional
/// tenant: the explicit `algo` field, else the sampled tier when the
/// request asks for approximate fidelity, else the engine's auto policy.
/// Used to decide whether a deadline can become an in-solve cutoff.
pub fn resolved_algorithm(wire: &WireRequest, dims: usize) -> Algorithm {
    wire.algo.unwrap_or_else(|| {
        if wire.approx.is_some() {
            Algorithm::Sampled
        } else {
            Engine::auto_policy(dims)
        }
    })
}

/// The in-process [`Request`] a wire request denotes on this server.
/// Both the dispatch path and the replay harness build requests through
/// here, so served answers are bit-identical to in-process answers by
/// construction. `None` for non-query ops.
///
/// A deadline on a cuttable algorithm additionally becomes an in-solve
/// [`Cutoff::TimeBudget`] over the *full* deadline — a deterministic
/// field of the request, even though when it fires is wall-clock. A `gap`
/// target becomes [`Cutoff::GapAtMost`] on cuttable algorithms, but a
/// deadline wins when both are present — the wall-clock bound protects
/// the server; the gap merely trades answer quality for speed.
pub fn effective_request(
    wire: &WireRequest,
    calib: Calibration,
    n_tuples: usize,
    dims: usize,
) -> Option<Request> {
    let mut budget = effective_budget(calib, n_tuples, wire.deadline_ms, wire.samples);
    if resolved_algorithm(wire, dims).is_cuttable() {
        if let Some(gap) = wire.gap {
            budget.cutoff = Cutoff::GapAtMost(gap);
        }
        if let Some(ms) = wire.deadline_ms {
            budget.cutoff = Cutoff::TimeBudget(Duration::from_millis(ms));
        }
    }
    wire.to_request(budget)
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Query worker threads. `0` is allowed and means *no* query ever
    /// dispatches — admission and `stats` still answer, which makes
    /// overload behaviour deterministic in tests.
    pub workers: usize,
    /// Global queue cap across all tenants; admission rejects beyond it.
    pub queue_cap: usize,
    /// Algorithms to eagerly prepare on every tenant at startup.
    pub warm: Vec<Algorithm>,
    /// Execution policy inside solver kernels (default sequential: the
    /// server parallelizes across requests, not within one).
    pub exec: ExecPolicy,
    /// Test hook: skip the startup microbenchmark and use this rate.
    pub scores_per_ms_override: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_cap: 64,
            warm: Vec::new(),
            exec: ExecPolicy::sequential(),
            scores_per_ms_override: None,
        }
    }
}

/// Write half of a connection; workers and the reader share it, one
/// response line at a time.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    fn send(&self, json: &Json) {
        let mut line = json.render();
        line.push('\n');
        if let Ok(mut stream) = self.stream.lock() {
            let _ = stream.write_all(line.as_bytes());
        }
    }
}

/// An admitted query waiting for a worker.
struct Job {
    wire: WireRequest,
    tenant: Arc<Tenant>,
    accepted_at: Instant,
    writer: Arc<ConnWriter>,
}

/// State shared by the accept loop, readers, and workers.
struct Shared {
    registry: Registry,
    calibration: Calibration,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    queue_cap: usize,
    shutdown: AtomicBool,
}

impl Shared {
    fn stats_json(&self, filter: Option<&str>) -> Json {
        let depth = self.queue.lock().map(|q| q.len()).unwrap_or(0);
        Json::Obj(vec![
            (
                "global".into(),
                Json::Obj(vec![
                    ("queue_depth".into(), depth.into()),
                    ("queue_cap".into(), self.queue_cap.into()),
                    ("scores_per_ms".into(), self.calibration.scores_per_ms.into()),
                ]),
            ),
            ("tenants".into(), self.registry.stats_json(filter)),
        ])
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`] for a clean stop and the final stats
/// dump.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// Start a server: load + warm every tenant, calibrate the deadline
    /// mapping, bind, and spawn the accept and worker threads.
    pub fn start(config: ServerConfig, specs: &[TenantSpec]) -> Result<ServerHandle, RrmError> {
        let registry = Registry::build(specs, &config.warm, config.exec)?;
        let calibration = match config.scores_per_ms_override {
            Some(scores_per_ms) => Calibration { scores_per_ms },
            None => calibrate(),
        };
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| RrmError::Unsupported(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| RrmError::Unsupported(format!("cannot read bound address: {e}")))?;

        let shared = Arc::new(Shared {
            registry,
            calibration,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            queue_cap: config.queue_cap,
            shutdown: AtomicBool::new(false),
        });

        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rrm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| RrmError::Internal(format!("cannot spawn worker: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("rrm-serve-accept".into())
                .spawn(move || accept_loop(&shared, &listener, &conns))
                .map_err(|e| RrmError::Internal(format!("cannot spawn accept loop: {e}")))?
        };

        Ok(ServerHandle { addr, shared, accept: Some(accept), workers, conns })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn calibration(&self) -> Calibration {
        self.shared.calibration
    }

    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Live stats snapshot, same shape as the `stats` wire response.
    pub fn stats_json(&self) -> Json {
        self.shared.stats_json(None)
    }

    /// Stop accepting, drain the queue, join every thread, and return
    /// the final stats dump.
    pub fn shutdown(mut self) -> Json {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop; readers poll the flag on their 50 ms
        // read timeout, workers on their condvar timeout.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let readers = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in readers {
            let _ = h.join();
        }
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.stats_json(None)
    }
}

fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("rrm-serve-conn".into())
            .spawn(move || connection_loop(&shared, stream))
        {
            conns.lock().unwrap().push(handle);
        }
    }
}

/// Read newline-delimited requests off one connection. Hand-rolled line
/// framing over a 50 ms read timeout so the thread notices shutdown
/// without a poll/epoll dependency; partial lines survive timeouts.
fn connection_loop(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter { stream: Mutex::new(w) }),
        Err(_) => return,
    };
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..pos]).into_owned();
            if !line.trim().is_empty() {
                handle_line(shared, &writer, line.trim());
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(k) => buf.extend_from_slice(&chunk[..k]),
            Err(e)
                if matches!(
                    e.kind(),
                    IoErrorKind::WouldBlock | IoErrorKind::TimedOut | IoErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

/// Parse + admit one request line. Runs on the reader thread, so
/// rejections and `stats` answers never queue behind slow queries —
/// that is what makes overload rejections immediate.
fn handle_line(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, line: &str) {
    let wire = match parse_request(line) {
        Ok(wire) => wire,
        Err(msg) => {
            // Best effort: echo the id even when some field was invalid.
            let id = crate::json::parse(line).ok().and_then(|j| j.get("id").cloned());
            writer.send(&error_response(&id, ErrorKind::BadRequest, &msg, None));
            return;
        }
    };

    if wire.op == Op::Stats {
        let stats = shared.stats_json(wire.tenant.as_deref());
        writer.send(&Json::Obj(vec![
            ("id".into(), wire.id.clone().unwrap_or(Json::Null)),
            ("status".into(), "ok".into()),
            ("stats".into(), stats),
        ]));
        return;
    }

    let name = wire.tenant.as_deref().expect("parse_request requires tenant for queries");
    let Some(tenant) = shared.registry.get(name) else {
        writer.send(&error_response(
            &wire.id,
            ErrorKind::UnknownTenant,
            &format!("no tenant named {name:?}"),
            None,
        ));
        return;
    };

    // Updates apply inline on the reader thread — they never queue behind
    // queries, and workers already mid-query keep the snapshot they
    // pinned at dispatch (the epoch swap is a pointer store).
    if let Op::Update { insert, delete } = &wire.op {
        let ops: Vec<UpdateOp> = delete
            .iter()
            .map(|&i| UpdateOp::Delete(i))
            .chain(insert.iter().map(|row| UpdateOp::Insert(row.clone())))
            .collect();
        match tenant.session.update(&ops) {
            Ok(epoch) => {
                // Cached answers describe the previous epoch's rows.
                tenant.cache.invalidate();
                tenant.updates_applied.fetch_add(1, Ordering::Relaxed);
                writer.send(&Json::Obj(vec![
                    ("id".into(), wire.id.clone().unwrap_or(Json::Null)),
                    ("status".into(), "ok".into()),
                    ("tenant".into(), tenant.name.as_str().into()),
                    ("epoch".into(), epoch.into()),
                    ("n".into(), tenant.session.data().n().into()),
                ]));
            }
            Err(e) => {
                writer.send(&error_response(
                    &wire.id,
                    ErrorKind::of_rrm_error(&e),
                    &e.to_string(),
                    None,
                ));
            }
        }
        return;
    }

    // Per-tenant admission: reserve an in-flight slot or reject now.
    let prev = tenant.inflight.fetch_add(1, Ordering::AcqRel);
    if prev >= tenant.max_inflight {
        tenant.inflight.fetch_sub(1, Ordering::AcqRel);
        tenant.counters.rejected_overload.fetch_add(1, Ordering::Relaxed);
        writer.send(&error_response(
            &wire.id,
            ErrorKind::Overloaded,
            &format!("tenant {name:?} at its in-flight limit"),
            Some(Json::Obj(vec![("max_inflight".into(), tenant.max_inflight.into())])),
        ));
        return;
    }

    // Global queue cap: bounded queueing, never unbounded buildup.
    let job = Job {
        wire,
        tenant: Arc::clone(tenant),
        accepted_at: Instant::now(),
        writer: Arc::clone(writer),
    };
    let mut queue = shared.queue.lock().unwrap();
    if queue.len() >= shared.queue_cap {
        drop(queue);
        job.tenant.inflight.fetch_sub(1, Ordering::AcqRel);
        job.tenant.counters.rejected_overload.fetch_add(1, Ordering::Relaxed);
        job.writer.send(&error_response(
            &job.wire.id,
            ErrorKind::Overloaded,
            "global queue full",
            Some(Json::Obj(vec![("queue_cap".into(), shared.queue_cap.into())])),
        ));
        return;
    }
    queue.push_back(job);
    drop(queue);
    tenant.counters.accepted.fetch_add(1, Ordering::Relaxed);
    shared.available.notify_one();
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (guard, _) =
                    shared.available.wait_timeout(queue, Duration::from_millis(50)).unwrap();
                queue = guard;
            }
        };
        match job {
            Some(job) => serve_job(shared, job),
            None => return,
        }
    }
}

fn serve_job(shared: &Shared, job: Job) {
    let queued_us = job.accepted_at.elapsed().as_micros() as u64;
    let tenant = &job.tenant;
    let (n_tuples, dims) = {
        let data = tenant.session.data();
        (data.n(), data.dim())
    };
    let aged_out = job.wire.deadline_ms.is_some_and(|ms| queued_us >= ms.saturating_mul(1000));
    let cuttable = resolved_algorithm(&job.wire, dims).is_cuttable();

    let outcome = if aged_out && !cuttable {
        let ms = job.wire.deadline_ms.expect("aged_out implies a deadline");
        Err((
            ErrorKind::DeadlineExceeded,
            format!("deadline of {ms}ms elapsed after {queued_us}us in queue"),
            Some(Json::Obj(vec![
                ("queued_micros".into(), queued_us.into()),
                ("deadline_ms".into(), ms.into()),
            ])),
        ))
    } else {
        let mut request = effective_request(&job.wire, shared.calibration, n_tuples, dims)
            .expect("only query ops are enqueued");
        if aged_out {
            // The whole deadline was burned queueing. The anytime solver
            // still runs, under an already-expired cutoff: it offers its
            // deterministic fallback incumbent, stops at the first
            // cutoff check, and the tenant gets best-so-far + gap
            // instead of a deadline_exceeded error.
            request.budget.cutoff = Cutoff::TimeBudget(Duration::ZERO);
        }
        // Deadline-free requests are deterministic: same wire fields on
        // the same epoch → the same answer, so they are served from the
        // tenant's budget-keyed cache when possible. Deadline-bearing
        // requests never touch the cache (their budgets are wall-clock).
        let cache_key = job.wire.deadline_ms.is_none().then(|| {
            let minimize = matches!(job.wire.op, Op::Minimize { .. });
            let param = match job.wire.op {
                Op::Minimize { param } | Op::Represent { param } => param,
                _ => unreachable!("only query ops are enqueued"),
            };
            (
                minimize,
                param,
                job.wire.algo,
                job.wire.samples,
                job.wire.gap.map(f64::to_bits),
                job.wire.approx.map(|s| (s.eps.to_bits(), s.delta.to_bits())),
            )
        });
        let epoch = tenant.session.epoch();
        let cached = cache_key.as_ref().and_then(|key| tenant.cache.get(key, epoch));
        match cached {
            Some(solution) => Ok(rank_regret::Response { request, solution, seconds: 0.0 }),
            None => {
                let outcome = tenant
                    .session
                    .run(&request)
                    .map_err(|e| (ErrorKind::of_rrm_error(&e), e.to_string(), None));
                if let (Some(key), Ok(response)) = (cache_key, &outcome) {
                    // Only cache when no swap raced the solve: the entry's
                    // epoch tag must describe the rows that answered.
                    if tenant.session.epoch() == epoch {
                        tenant.cache.put(key, epoch, response.solution.clone());
                    }
                }
                outcome
            }
        }
    };

    // Counters update *before* the response goes out: a client that saw
    // an answer and immediately asks for `stats` must see it counted.
    match outcome {
        Ok(response) => {
            tenant.counters.completed.fetch_add(1, Ordering::Relaxed);
            if response.solution.terminated_by.is_early_stop() {
                tenant.counters.partial_answers.fetch_add(1, Ordering::Relaxed);
            }
            if matches!(response.solution.terminated_by, TerminatedBy::Sampled { .. }) {
                tenant.counters.approx_answers.fetch_add(1, Ordering::Relaxed);
            }
            tenant.latency.record(job.accepted_at.elapsed().as_micros() as u64);
            let micros = (response.seconds * 1e6) as u64;
            job.writer.send(&ok_response(&job.wire.id, &tenant.name, &response, queued_us, micros));
        }
        Err((kind, message, diagnostics)) => {
            let counter = if kind == ErrorKind::DeadlineExceeded {
                &tenant.counters.deadline_exceeded
            } else {
                &tenant.counters.errored
            };
            counter.fetch_add(1, Ordering::Relaxed);
            job.writer.send(&error_response(&job.wire.id, kind, &message, diagnostics));
        }
    }
    tenant.inflight.fetch_sub(1, Ordering::AcqRel);
}

#[cfg(test)]
mod tests {
    use super::*;

    const CALIB: Calibration = Calibration { scores_per_ms: 1000.0 };

    #[test]
    fn budget_scales_with_deadline_and_dataset_size() {
        // 1000 scores/ms, 100 tuples: a 10ms deadline buys 100 passes.
        let b = effective_budget(CALIB, 100, Some(10), None);
        assert_eq!(b.max_enumerations, Some(100));
        assert_eq!(b.max_lp_calls, Some(100));
        assert_eq!(b.samples, Some(100));
        // Requested samples are honoured but capped by the deadline.
        assert_eq!(effective_budget(CALIB, 100, Some(10), Some(30)).samples, Some(30));
        assert_eq!(effective_budget(CALIB, 100, Some(10), Some(5000)).samples, Some(100));
        // A tiny deadline still buys at least one pass, never zero.
        assert_eq!(effective_budget(CALIB, 100_000, Some(1), None).max_enumerations, Some(1));
        // No deadline: unlimited, modulo the samples override.
        assert_eq!(effective_budget(CALIB, 100, None, None), Budget::UNLIMITED);
        assert_eq!(effective_budget(CALIB, 100, None, Some(64)), Budget::with_samples(64));
    }

    #[test]
    fn deadlines_become_in_solve_cutoffs_only_for_cuttable_algorithms() {
        let wire = |algo: Option<Algorithm>, deadline_ms: Option<u64>| WireRequest {
            id: None,
            op: Op::Minimize { param: 3 },
            tenant: Some("t".into()),
            algo,
            deadline_ms,
            samples: None,
            gap: None,
            approx: None,
        };
        // An explicit cuttable algorithm plus a deadline gets an in-solve
        // wall-clock cutoff over the *full* deadline.
        let r = effective_request(&wire(Some(Algorithm::Hdrrm), Some(25)), CALIB, 100, 4).unwrap();
        assert_eq!(r.budget.cutoff, Cutoff::TimeBudget(Duration::from_millis(25)));
        // Auto on 3 dims resolves to HDRRM (cuttable)...
        assert_eq!(resolved_algorithm(&wire(None, None), 3), Algorithm::Hdrrm);
        let r = effective_request(&wire(None, Some(25)), CALIB, 100, 3).unwrap();
        assert_eq!(r.budget.cutoff, Cutoff::TimeBudget(Duration::from_millis(25)));
        // ...but on 2 dims to the exact planar solver, which is not.
        assert_eq!(resolved_algorithm(&wire(None, None), 2), Algorithm::TwoDRrm);
        let r = effective_request(&wire(None, Some(25)), CALIB, 100, 2).unwrap();
        assert_eq!(r.budget.cutoff, Cutoff::None);
        // No deadline: no cutoff, even for cuttable algorithms — and the
        // counter budget stays untouched either way.
        let r = effective_request(&wire(Some(Algorithm::Hdrrm), None), CALIB, 100, 4).unwrap();
        assert_eq!(r.budget.cutoff, Cutoff::None);
        assert_eq!(r.budget, Budget::UNLIMITED);
    }

    #[test]
    fn gap_targets_become_in_solve_cutoffs_only_for_cuttable_algorithms() {
        let wire =
            |algo: Option<Algorithm>, gap: Option<f64>, deadline_ms: Option<u64>| WireRequest {
                id: None,
                op: Op::Minimize { param: 3 },
                tenant: Some("t".into()),
                algo,
                deadline_ms,
                samples: None,
                gap,
                approx: None,
            };
        // Cuttable + gap: the solve stops at the certified gap target.
        let r = effective_request(&wire(Some(Algorithm::Hdrrm), Some(0.25), None), CALIB, 100, 4)
            .unwrap();
        assert_eq!(r.budget.cutoff, Cutoff::GapAtMost(0.25));
        // Auto on 3 dims resolves to HDRRM — still cuttable.
        let r = effective_request(&wire(None, Some(0.1), None), CALIB, 100, 3).unwrap();
        assert_eq!(r.budget.cutoff, Cutoff::GapAtMost(0.1));
        // Non-cuttable (exact 2D) ignores the gap.
        let r = effective_request(&wire(None, Some(0.1), None), CALIB, 100, 2).unwrap();
        assert_eq!(r.budget.cutoff, Cutoff::None);
        // A deadline outranks the gap: the wall-clock bound protects the
        // server.
        let r =
            effective_request(&wire(Some(Algorithm::Hdrrm), Some(0.1), Some(25)), CALIB, 100, 4)
                .unwrap();
        assert_eq!(r.budget.cutoff, Cutoff::TimeBudget(Duration::from_millis(25)));
    }

    #[test]
    fn calibration_measures_a_positive_rate() {
        let c = calibrate();
        assert!(c.scores_per_ms > 0.0 && c.scores_per_ms.is_finite(), "{c:?}");
    }
}
