//! Tenant registry: named datasets loaded at startup, each owning one
//! [`Session`] so prepared solver state is shared across all of that
//! tenant's queries, plus the per-tenant admission and observability
//! state the server mutates on the hot path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rank_regret::{Algorithm, Dataset, ExecPolicy, RrmError, Session, Solution};

use crate::json::Json;
use crate::stats::{LogHistogram, TenantCounters};

/// Where a tenant's dataset comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum DataSource {
    /// A CSV file on disk (numeric columns; `has_header` skips line 1).
    Csv { path: String, has_header: bool },
    /// A generated dataset, reproducible from its seed.
    Synthetic { kind: SyntheticKind, n: usize, d: usize, seed: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticKind {
    Independent,
    Correlated,
    Anticorrelated,
}

impl SyntheticKind {
    pub fn from_name(name: &str) -> Result<SyntheticKind, String> {
        match name {
            "independent" => Ok(SyntheticKind::Independent),
            "correlated" => Ok(SyntheticKind::Correlated),
            "anticorrelated" => Ok(SyntheticKind::Anticorrelated),
            other => Err(format!(
                "unknown synthetic kind {other:?} (expected independent|correlated|anticorrelated)"
            )),
        }
    }
}

impl DataSource {
    pub fn load(&self) -> Result<Dataset, RrmError> {
        match self {
            DataSource::Csv { path, has_header } => {
                Ok(rrm_data::csv::read_csv_file(path, *has_header)?.data)
            }
            DataSource::Synthetic { kind, n, d, seed } => Ok(match kind {
                SyntheticKind::Independent => rrm_data::synthetic::independent(*n, *d, *seed),
                SyntheticKind::Correlated => rrm_data::synthetic::correlated(*n, *d, *seed),
                SyntheticKind::Anticorrelated => rrm_data::synthetic::anticorrelated(*n, *d, *seed),
            }),
        }
    }
}

/// Startup description of one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    pub name: String,
    pub source: DataSource,
    /// Admission control: at most this many requests of this tenant may
    /// be queued or running at once; further ones get `overloaded`.
    pub max_inflight: usize,
}

impl TenantSpec {
    pub fn synthetic(name: &str, kind: SyntheticKind, n: usize, d: usize, seed: u64) -> Self {
        TenantSpec {
            name: name.to_string(),
            source: DataSource::Synthetic { kind, n, d, seed },
            max_inflight: 8,
        }
    }

    pub fn max_inflight(mut self, cap: usize) -> Self {
        self.max_inflight = cap;
        self
    }
}

/// Cache key for one deterministic query: task direction (`true` =
/// minimize), parameter, explicit algorithm, samples override, the gap
/// target's bit pattern, and the approx `(eps, delta)` bit patterns.
/// Everything that shapes the answer on the deadline-free path —
/// deadline-bearing requests are never cached (their budgets and cutoffs
/// depend on wall clock). Sampled-tier answers are seeded and
/// deterministic, so they cache like exact ones.
pub type ResultKey =
    (bool, usize, Option<Algorithm>, Option<usize>, Option<u64>, Option<(u64, u64)>);

/// Bound on cached solutions per tenant; at capacity the cache resets
/// rather than evicting piecemeal (epoch swaps reset it anyway).
const RESULT_CACHE_CAP: usize = 256;

/// Budget-keyed solutions for repeated deterministic queries, tagged with
/// the epoch they were computed on: an entry from an older epoch is dead
/// the moment [`Session::update`] publishes a new one — lookups check the
/// tag, and the update path clears the map outright.
#[derive(Default)]
pub struct ResultCache {
    entries: Mutex<HashMap<ResultKey, (u64, Solution)>>,
    hits: AtomicUsize,
}

impl ResultCache {
    /// The cached solution for `key` at exactly `epoch`, if any.
    pub fn get(&self, key: &ResultKey, epoch: u64) -> Option<Solution> {
        let entries = self.entries.lock().expect("result cache poisoned");
        match entries.get(key) {
            Some((e, solution)) if *e == epoch => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(solution.clone())
            }
            _ => None,
        }
    }

    /// Store a solution computed on `epoch`.
    pub fn put(&self, key: ResultKey, epoch: u64, solution: Solution) {
        let mut entries = self.entries.lock().expect("result cache poisoned");
        if entries.len() >= RESULT_CACHE_CAP {
            entries.clear();
        }
        entries.insert(key, (epoch, solution));
    }

    /// Drop every entry (the epoch just advanced).
    pub fn invalidate(&self) {
        self.entries.lock().expect("result cache poisoned").clear();
    }

    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn entries(&self) -> usize {
        self.entries.lock().expect("result cache poisoned").len()
    }
}

/// One registered tenant: its session plus hot-path admission and
/// observability state. All fields are touched concurrently by reader
/// and worker threads, hence atomics throughout.
pub struct Tenant {
    pub name: String,
    pub session: Session,
    pub max_inflight: usize,
    /// Requests currently queued or being served (admission gate).
    pub inflight: AtomicUsize,
    pub counters: TenantCounters,
    /// Accept-to-response latency of completed requests, microseconds.
    pub latency: LogHistogram,
    /// Deterministic (deadline-free) answers for the current epoch.
    pub cache: ResultCache,
    /// Update batches applied through the wire `update` op.
    pub updates_applied: AtomicUsize,
}

impl Tenant {
    /// One tenant's stats block for the `stats` response / shutdown dump.
    pub fn stats_json(&self) -> Json {
        let mut fields =
            match self.counters.to_json(self.session.prepare_hits(), self.session.prepare_misses())
            {
                Json::Obj(fields) => fields,
                _ => unreachable!("TenantCounters::to_json returns an object"),
            };
        fields.push(("epoch".into(), self.session.epoch().into()));
        fields
            .push(("updates_applied".into(), self.updates_applied.load(Ordering::Relaxed).into()));
        fields.push((
            "result_cache".into(),
            Json::Obj(vec![
                ("hits".into(), self.cache.hits().into()),
                ("entries".into(), self.cache.entries().into()),
            ]),
        ));
        fields.push(("inflight".into(), self.inflight.load(Ordering::Relaxed).into()));
        let latency = Json::Obj(vec![
            ("count".into(), self.latency.count().into()),
            ("p50_us".into(), self.latency.percentile(50.0).map_or(Json::Null, Json::from)),
            ("p99_us".into(), self.latency.percentile(99.0).map_or(Json::Null, Json::from)),
            ("buckets".into(), self.latency.to_json()),
        ]);
        fields.push(("latency".into(), latency));
        Json::Obj(fields)
    }
}

/// The shard map: tenant name → [`Tenant`]. Built once at startup and
/// then only read, so lookups are lock-free.
pub struct Registry {
    tenants: Vec<Arc<Tenant>>,
}

impl Registry {
    /// Load every spec's dataset, build its session under `exec`, and
    /// eagerly warm the given algorithms (failures are cached per the
    /// `Session::warm` contract, not fatal: a 2D-only solver on a 5-D
    /// tenant just answers `unsupported` later).
    pub fn build(
        specs: &[TenantSpec],
        warm: &[Algorithm],
        exec: ExecPolicy,
    ) -> Result<Registry, RrmError> {
        let mut tenants = Vec::with_capacity(specs.len());
        for spec in specs {
            if tenants.iter().any(|t: &Arc<Tenant>| t.name == spec.name) {
                return Err(RrmError::Unsupported(format!(
                    "duplicate tenant name {:?}",
                    spec.name
                )));
            }
            let data = spec.source.load()?;
            let session = Session::new(data).exec(exec);
            session.warm(warm);
            tenants.push(Arc::new(Tenant {
                name: spec.name.clone(),
                session,
                max_inflight: spec.max_inflight,
                inflight: AtomicUsize::new(0),
                counters: TenantCounters::default(),
                latency: LogHistogram::new(),
                cache: ResultCache::default(),
                updates_applied: AtomicUsize::new(0),
            }));
        }
        Ok(Registry { tenants })
    }

    pub fn get(&self, name: &str) -> Option<&Arc<Tenant>> {
        self.tenants.iter().find(|t| t.name == name)
    }

    pub fn tenants(&self) -> &[Arc<Tenant>] {
        &self.tenants
    }

    /// Stats for all tenants (or just `filter`), keyed by tenant name in
    /// registration order.
    pub fn stats_json(&self, filter: Option<&str>) -> Json {
        Json::Obj(
            self.tenants
                .iter()
                .filter(|t| filter.is_none_or(|f| f == t.name))
                .map(|t| (t.name.clone(), t.stats_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_warms_and_reports_stats() {
        let specs = [
            TenantSpec::synthetic("alpha", SyntheticKind::Independent, 60, 2, 7).max_inflight(2),
            TenantSpec::synthetic("beta", SyntheticKind::Correlated, 40, 3, 8),
        ];
        let reg = Registry::build(&specs, &[Algorithm::Hdrrm], ExecPolicy::sequential()).unwrap();
        assert_eq!(reg.tenants().len(), 2);
        let alpha = reg.get("alpha").unwrap();
        assert_eq!(alpha.max_inflight, 2);
        assert_eq!(alpha.session.prepare_misses(), 1, "warm built HDRRM eagerly");
        assert!(reg.get("missing").is_none());

        let stats = reg.stats_json(None).render();
        assert!(stats.contains("\"alpha\""), "{stats}");
        assert!(stats.contains("\"beta\""), "{stats}");
        assert!(stats.contains("\"prepare_misses\":1"), "{stats}");

        let only_beta = reg.stats_json(Some("beta")).render();
        assert!(!only_beta.contains("\"alpha\""), "{only_beta}");
    }

    #[test]
    fn duplicate_tenant_names_are_rejected() {
        let specs = [
            TenantSpec::synthetic("dup", SyntheticKind::Independent, 10, 2, 1),
            TenantSpec::synthetic("dup", SyntheticKind::Independent, 10, 2, 2),
        ];
        let err = match Registry::build(&specs, &[], ExecPolicy::sequential()) {
            Err(e) => e,
            Ok(_) => panic!("duplicate tenant names must be rejected"),
        };
        assert!(err.to_string().contains("duplicate tenant name"), "{err}");
    }
}
