//! `rrm_serve`: a sharded multi-tenant query service over rank-regret
//! [`Session`]s — the ROADMAP's "millions of users" story made
//! measurable.
//!
//! Hand-rolled on `std` only (the container has no crates.io): a TCP
//! front end speaking newline-delimited JSON, a tenant registry where
//! each named dataset owns one prepared-state-sharing [`Session`],
//! admission control (per-tenant in-flight limits + a global queue cap,
//! rejections immediate and structured), wall-clock deadlines mapped
//! onto counter [`Budget`]s by a startup calibration of the scoring
//! kernel — and, for the anytime (cuttable) HD solvers, onto in-solve
//! cutoffs, so a blown deadline yields a best-so-far incumbent with a
//! certified gap (`"partial": true`) instead of an error — and
//! per-tenant observability (counters + log-bucketed latency
//! histograms) served by a `stats` request and dumped at shutdown.
//!
//! ```no_run
//! use rrm_serve::{Client, ServerConfig, ServerHandle, SyntheticKind, TenantSpec};
//!
//! let specs = [TenantSpec::synthetic("movies", SyntheticKind::Independent, 1000, 4, 42)];
//! let server = ServerHandle::start(ServerConfig::default(), &specs).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client
//!     .call(r#"{"op":"minimize","tenant":"movies","param":5,"deadline_ms":100,"id":1}"#)
//!     .unwrap();
//! assert_eq!(reply.get("status").and_then(|s| s.as_str()), Some("ok"));
//! let stats = server.shutdown();
//! println!("{}", stats.render());
//! ```
//!
//! The wire schema and error codes live in [`protocol`]; the determinism
//! contract over the wire (served responses bit-identical to in-process
//! runs of [`effective_request`]) is exercised by `repro serve` in the
//! bench crate.
//!
//! [`Session`]: rank_regret::Session
//! [`Budget`]: rank_regret::Budget

pub mod client;
pub mod json;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod stats;

pub use client::Client;
pub use json::Json;
pub use protocol::{error_response, ok_response, parse_request, ErrorKind, Op, WireRequest};
pub use registry::{DataSource, Registry, SyntheticKind, Tenant, TenantSpec};
pub use server::{
    calibrate, effective_budget, effective_request, resolved_algorithm, Calibration, ServerConfig,
    ServerHandle,
};
pub use stats::{LogHistogram, TenantCounters};
