//! Minimal standalone server for poking at the wire protocol with `nc`:
//!
//! ```sh
//! cargo run --release -p rrm_serve --example serve_demo -- 127.0.0.1:7878
//! nc 127.0.0.1 7878
//! ```
//!
//! Serves two synthetic tenants; see the README "Serving" section for
//! the request schema.

use rank_regret::Algorithm;
use rrm_serve::{ServerConfig, ServerHandle, SyntheticKind, TenantSpec};

fn main() {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7878".into());
    let specs = [
        TenantSpec::synthetic("movies", SyntheticKind::Independent, 5_000, 4, 1),
        TenantSpec::synthetic("nba", SyntheticKind::Anticorrelated, 2_000, 3, 2),
    ];
    let config = ServerConfig { addr, warm: vec![Algorithm::Hdrrm], ..ServerConfig::default() };
    let server = ServerHandle::start(config, &specs).expect("start server");
    println!(
        "rrm_serve listening on {} (tenants: movies, nba; warm: HDRRM); Ctrl-C stops it",
        server.addr()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
