//! Descriptive statistics for datasets — used by the `rrm` CLI to describe
//! inputs and by tests to validate generator shapes.

use rrm_core::Dataset;

/// Per-attribute summary plus the attribute correlation matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    pub n: usize,
    pub d: usize,
    pub min: Vec<f64>,
    pub max: Vec<f64>,
    pub mean: Vec<f64>,
    pub std: Vec<f64>,
    /// Pearson correlation, row-major `d × d`; NaN-free (constant
    /// attributes correlate as 0 with everything, 1 with themselves).
    pub correlation: Vec<f64>,
}

impl DatasetSummary {
    pub fn correlation_at(&self, i: usize, j: usize) -> f64 {
        self.correlation[i * self.d + j]
    }

    /// Mean off-diagonal correlation — a one-number "how correlated is this
    /// dataset" gauge (positive for correlated, negative for
    /// anti-correlated workloads).
    pub fn mean_pairwise_correlation(&self) -> f64 {
        if self.d < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..self.d {
            for j in 0..self.d {
                if i != j {
                    sum += self.correlation_at(i, j);
                    count += 1;
                }
            }
        }
        sum / count as f64
    }
}

/// Compute the summary in one pass over the data (two for correlations).
pub fn summarize(data: &Dataset) -> DatasetSummary {
    let n = data.n();
    let d = data.dim();
    let nf = n as f64;
    let mut min = vec![f64::INFINITY; d];
    let mut max = vec![f64::NEG_INFINITY; d];
    let mut sum = vec![0.0; d];
    for row in data.rows() {
        for (j, &v) in row.iter().enumerate() {
            min[j] = min[j].min(v);
            max[j] = max[j].max(v);
            sum[j] += v;
        }
    }
    let mean: Vec<f64> = sum.iter().map(|s| s / nf).collect();
    // Central moments.
    let mut var = vec![0.0; d];
    let mut cov = vec![0.0; d * d];
    for row in data.rows() {
        for i in 0..d {
            let di = row[i] - mean[i];
            var[i] += di * di;
            for j in i + 1..d {
                cov[i * d + j] += di * (row[j] - mean[j]);
            }
        }
    }
    let std: Vec<f64> = var.iter().map(|v| (v / nf).sqrt()).collect();
    let mut correlation = vec![0.0; d * d];
    for i in 0..d {
        correlation[i * d + i] = 1.0;
        for j in i + 1..d {
            let denom = std[i] * std[j] * nf;
            let c = if denom > 0.0 { cov[i * d + j] / denom } else { 0.0 };
            correlation[i * d + j] = c;
            correlation[j * d + i] = c;
        }
    }
    DatasetSummary { n, d, min, max, mean, std, correlation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{anticorrelated, correlated, independent};

    #[test]
    fn basic_moments() {
        let d = Dataset::from_rows(&[[0.0, 2.0], [1.0, 4.0], [2.0, 6.0]]).unwrap();
        let s = summarize(&d);
        assert_eq!((s.n, s.d), (3, 2));
        assert_eq!(s.min, vec![0.0, 2.0]);
        assert_eq!(s.max, vec![2.0, 6.0]);
        assert_eq!(s.mean, vec![1.0, 4.0]);
        // Perfectly linearly related attributes: correlation 1.
        assert!((s.correlation_at(0, 1) - 1.0).abs() < 1e-12);
        assert!((s.correlation_at(1, 0) - 1.0).abs() < 1e-12);
        assert_eq!(s.correlation_at(0, 0), 1.0);
    }

    #[test]
    fn constant_attribute_is_safe() {
        let d = Dataset::from_rows(&[[1.0, 0.1], [1.0, 0.9]]).unwrap();
        let s = summarize(&d);
        assert_eq!(s.std[0], 0.0);
        assert_eq!(s.correlation_at(0, 1), 0.0);
        assert!(s.correlation.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn generator_signatures() {
        // The one-number gauge separates the three families.
        let corr = summarize(&correlated(3000, 3, 1)).mean_pairwise_correlation();
        let ind = summarize(&independent(3000, 3, 1)).mean_pairwise_correlation();
        let anti = summarize(&anticorrelated(3000, 3, 1)).mean_pairwise_correlation();
        assert!(corr > 0.5, "correlated gauge {corr}");
        assert!(ind.abs() < 0.1, "independent gauge {ind}");
        assert!(anti < -0.2, "anti-correlated gauge {anti}");
    }

    #[test]
    fn single_attribute_dataset() {
        let d = Dataset::from_rows(&[[0.5], [0.7]]).unwrap();
        let s = summarize(&d);
        assert_eq!(s.mean_pairwise_correlation(), 0.0);
        assert_eq!(s.correlation, vec![1.0]);
    }
}
