//! Minimal CSV loading for the `rrm` command-line tool.
//!
//! Deliberately small: comma/semicolon/tab separated numeric tables with an
//! optional header row. Quoted fields and escaping are out of scope (use a
//! full CSV crate when you need them); errors carry 1-based line numbers.

use rrm_core::{Dataset, RrmError};

/// A parsed table: column names (synthesized as `col0..` when no header)
/// plus the numeric data.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvTable {
    pub headers: Vec<String>,
    pub data: Dataset,
}

/// Parse CSV text. The delimiter is auto-detected from the first
/// non-empty line (comma, semicolon or tab); `has_header` controls whether
/// that line is column names or data.
pub fn parse_csv(text: &str, has_header: bool) -> Result<CsvTable, RrmError> {
    let mut lines =
        text.lines().enumerate().map(|(i, l)| (i + 1, l.trim())).filter(|(_, l)| !l.is_empty());

    let Some((first_no, first)) = lines.next() else {
        return Err(RrmError::EmptyDataset);
    };
    let delim = detect_delimiter(first);

    let mut headers: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut expect_cols: Option<usize> = None;

    fn handle_row(
        line_no: usize,
        line: &str,
        delim: char,
        expect_cols: &mut Option<usize>,
        rows: &mut Vec<Vec<f64>>,
    ) -> Result<(), RrmError> {
        let mut row = Vec::new();
        for field in line.split(delim) {
            let field = field.trim();
            let v: f64 = field.parse().map_err(|_| {
                RrmError::Unsupported(format!("line {line_no}: cannot parse {field:?} as a number"))
            })?;
            if !v.is_finite() {
                return Err(RrmError::NonFiniteValue { row: rows.len(), value: v });
            }
            row.push(v);
        }
        match expect_cols {
            None => *expect_cols = Some(row.len()),
            Some(c) if *c != row.len() => {
                return Err(RrmError::DimensionMismatch { expected: *c, got: row.len() })
            }
            _ => {}
        }
        rows.push(row);
        Ok(())
    }

    if has_header {
        headers = first.split(delim).map(|f| f.trim().to_string()).collect();
        expect_cols = Some(headers.len());
    } else {
        handle_row(first_no, first, delim, &mut expect_cols, &mut rows)?;
    }
    for (line_no, line) in lines {
        handle_row(line_no, line, delim, &mut expect_cols, &mut rows)?;
    }
    if headers.is_empty() {
        let cols = expect_cols.unwrap_or(0);
        headers = (0..cols).map(|i| format!("col{i}")).collect();
    }
    let data = Dataset::from_rows(&rows)?;
    Ok(CsvTable { headers, data })
}

/// Read and parse a CSV file.
pub fn read_csv_file(path: &str, has_header: bool) -> Result<CsvTable, RrmError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| RrmError::Unsupported(format!("cannot read {path}: {e}")))?;
    parse_csv(&text, has_header)
}

/// Serialize a dataset back to CSV (header row + one line per tuple).
pub fn to_csv(headers: &[String], data: &Dataset) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in data.rows() {
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push('\n');
    }
    out
}

fn detect_delimiter(line: &str) -> char {
    for d in [',', ';', '\t'] {
        if line.contains(d) {
            return d;
        }
    }
    ','
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_header() {
        let t = parse_csv("hp,mpg\n0.5,0.7\n0.9,0.1\n", true).unwrap();
        assert_eq!(t.headers, vec!["hp", "mpg"]);
        assert_eq!(t.data.n(), 2);
        assert_eq!(t.data.row(1), &[0.9, 0.1]);
    }

    #[test]
    fn parses_without_header() {
        let t = parse_csv("1,2\n3,4\n", false).unwrap();
        assert_eq!(t.headers, vec!["col0", "col1"]);
        assert_eq!(t.data.n(), 2);
    }

    #[test]
    fn detects_semicolon_and_tab() {
        let t = parse_csv("a;b\n1;2\n", true).unwrap();
        assert_eq!(t.headers, vec!["a", "b"]);
        let t = parse_csv("a\tb\n1\t2\n", true).unwrap();
        assert_eq!(t.data.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn skips_blank_lines_and_trims() {
        let t = parse_csv("\n a , b \n\n 1 , 2 \n\n", true).unwrap();
        assert_eq!(t.headers, vec!["a", "b"]);
        assert_eq!(t.data.n(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_csv("a,b\n1,2\n1,x\n", true).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = parse_csv("1,2\n3\n", false).unwrap_err();
        assert!(matches!(err, RrmError::DimensionMismatch { expected: 2, got: 1 }));
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(parse_csv("", true), Err(RrmError::EmptyDataset)));
        assert!(matches!(parse_csv("\n\n", false), Err(RrmError::EmptyDataset)));
    }

    #[test]
    fn non_finite_rejected() {
        assert!(parse_csv("1,inf\n", false).is_err());
        assert!(parse_csv("1,NaN\n", false).is_err());
    }

    #[test]
    fn roundtrip() {
        let t = parse_csv("x,y\n0.25,0.5\n1,0\n", true).unwrap();
        let text = to_csv(&t.headers, &t.data);
        let t2 = parse_csv(&text, true).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn file_not_found() {
        assert!(read_csv_file("/nonexistent/definitely_missing.csv", true).is_err());
    }
}
