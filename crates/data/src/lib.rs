//! Workload generators for the rank-regret experiments.
//!
//! * [`synthetic`] — the three Börzsönyi et al. distributions the paper
//!   evaluates on (independent, correlated, anti-correlated) plus the
//!   quarter-arc construction behind Theorem 2's Ω(n/r) lower bound.
//! * [`real_sim`] — simulated stand-ins for the paper's real datasets
//!   (Island, NBA, Weather). The originals are not redistributable here;
//!   each simulator reproduces the size, dimensionality and correlation
//!   structure that the corresponding experiment depends on (see
//!   DESIGN.md's substitution table).
//! * [`scenario`] — the scenario matrix for approximate-tier validation:
//!   clustered and heavy-duplicate generators, `d` up to 8, full and
//!   constrained weight regions, each cell named and seeded.
//! * [`jitter`] — deterministic tie-breaking noise for data with heavy
//!   value duplication (general-position repair).
//!
//! All generators are seeded and deterministic.

pub mod csv;
pub mod real_sim;
pub mod scenario;
pub mod stats;
pub mod synthetic;

pub use real_sim::{island_sim, nba_sim, weather_sim};
pub use scenario::{clustered, heavy_duplicate, matrix, Region, Scenario, Shape};
pub use synthetic::{anticorrelated, correlated, independent, lower_bound_arc};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrm_core::Dataset;

/// Add uniform noise of magnitude `eps` to every value (clamped to stay
/// finite, not to `[0,1]`), breaking exact ties so datasets satisfy the
/// paper's general-position assumption.
pub fn jitter(data: &Dataset, eps: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = data.dim();
    let rows: Vec<Vec<f64>> = data
        .rows()
        .map(|row| row.iter().map(|&v| v + eps * (rng.random::<f64>() - 0.5)).collect())
        .collect();
    debug_assert_eq!(rows[0].len(), d);
    Dataset::from_rows(&rows).expect("jitter preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_breaks_ties_deterministically() {
        let d = Dataset::from_rows(&[[0.5, 0.5], [0.5, 0.5], [0.5, 0.5]]).unwrap();
        let j1 = jitter(&d, 1e-6, 7);
        let j2 = jitter(&d, 1e-6, 7);
        assert_eq!(j1, j2, "same seed, same output");
        // All values distinct after jitter.
        let mut vals: Vec<f64> = j1.flat().to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        assert_eq!(vals.len(), 6);
        // Values moved by at most eps/2.
        for (a, b) in d.flat().iter().zip(j1.flat()) {
            assert!((a - b).abs() <= 5e-7);
        }
    }
}
