//! The scenario matrix: named workload shapes crossed with dimensionality
//! and utility-space regions, for the approximate-tier validation runs
//! (`repro approx`) and the `tests/approx.rs` coverage trials.
//!
//! Two generators beyond the Börzsönyi trio in [`crate::synthetic`]:
//!
//! * [`clustered`] — tuples drawn around a few well-separated centers,
//!   the "segmented market" shape where a small set covers most
//!   directions but cluster gaps punish under-sampling.
//! * [`heavy_duplicate`] — only a handful of distinct rows, each repeated
//!   many times with deterministic tie-breaking jitter. Stresses the
//!   general-position repair and the top-k tie handling that sampled
//!   estimators lean on.
//!
//! [`matrix`] enumerates the cross product actually run: every shape, at
//! `d` from 2 up to 8, under the full utility space and a constrained
//! weak-ranking region. Everything is seeded; a scenario's name is stable
//! and appears verbatim in `BENCH_approx.json` golden files.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrm_core::sampling::gauss;
use rrm_core::{Dataset, FullSpace, UtilitySpace, WeakRankingSpace};

use crate::synthetic::{anticorrelated, correlated, independent};

/// Clustered data: `clusters` Gaussian blobs with well-separated centers
/// in `[0.1, 0.9]^d`, spread 0.04 per attribute, rejection-sampled into
/// `[0, 1]^d` (clamping would pile mass onto the boundary and produce
/// score ties).
pub fn clustered(n: usize, d: usize, seed: u64, clusters: usize) -> Dataset {
    assert!(n >= 1 && d >= 1 && clusters >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> =
        (0..clusters).map(|_| (0..d).map(|_| 0.1 + 0.8 * rng.random::<f64>()).collect()).collect();
    let mut values = Vec::with_capacity(n * d);
    for i in 0..n {
        let center = &centers[i % clusters];
        for &c in center {
            let v = loop {
                let v = c + 0.04 * gauss(&mut rng);
                if (0.0..=1.0).contains(&v) {
                    break v;
                }
            };
            values.push(v);
        }
    }
    Dataset::from_flat(d, values).expect("generator output is valid")
}

/// Heavy-duplicate data: `distinct` unique uniform rows, repeated round-
/// robin to `n` tuples, then jittered by `1e-9` so exact solvers see the
/// paper's general-position assumption hold while the duplicate structure
/// (and its tiny top-k margins) survives.
pub fn heavy_duplicate(n: usize, d: usize, seed: u64, distinct: usize) -> Dataset {
    assert!(n >= 1 && d >= 1 && distinct >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let base: Vec<Vec<f64>> =
        (0..distinct.min(n)).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect();
    let rows: Vec<Vec<f64>> = (0..n).map(|i| base[i % base.len()].clone()).collect();
    let dup = Dataset::from_rows(&rows).expect("generator output is valid");
    crate::jitter(&dup, 1e-9, seed ^ 0x9E37_79B9)
}

/// The workload shapes the matrix covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    Anticorrelated,
    Correlated,
    Independent,
    Clustered,
    HeavyDuplicate,
}

impl Shape {
    pub const ALL: [Shape; 5] = [
        Shape::Anticorrelated,
        Shape::Correlated,
        Shape::Independent,
        Shape::Clustered,
        Shape::HeavyDuplicate,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Shape::Anticorrelated => "anti",
            Shape::Correlated => "corr",
            Shape::Independent => "indep",
            Shape::Clustered => "clustered",
            Shape::HeavyDuplicate => "heavy-dup",
        }
    }
}

/// The utility-space region a scenario is solved under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The whole non-negative direction space.
    Full,
    /// Weak ranking: `u[0] >= u[1] >= ... >= u[c]` (paper Section VII's
    /// constrained-region experiments).
    WeakRanking(usize),
}

impl Region {
    pub fn name(self) -> &'static str {
        match self {
            Region::Full => "full",
            Region::WeakRanking(_) => "weak-ranking",
        }
    }

    /// The concrete space on `d` attributes.
    pub fn space(self, d: usize) -> Box<dyn UtilitySpace> {
        match self {
            Region::Full => Box::new(FullSpace::new(d)),
            Region::WeakRanking(c) => Box::new(WeakRankingSpace::new(d, c.min(d - 1))),
        }
    }
}

/// One cell of the scenario matrix: a shape at a dimensionality under a
/// region, with a fixed seed. `n` stays a call-site parameter so the same
/// cell runs at validation scale (small, vs. exact) and benchmark scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    pub shape: Shape,
    pub d: usize,
    pub region: Region,
    pub seed: u64,
}

impl Scenario {
    /// Stable name, e.g. `anti-d4-weak-ranking`; appears in golden files.
    pub fn name(&self) -> String {
        format!("{}-d{}-{}", self.shape.name(), self.d, self.region.name())
    }

    /// Generate this cell's dataset at size `n`.
    pub fn dataset(&self, n: usize) -> Dataset {
        match self.shape {
            Shape::Anticorrelated => anticorrelated(n, self.d, self.seed),
            Shape::Correlated => correlated(n, self.d, self.seed),
            Shape::Independent => independent(n, self.d, self.seed),
            Shape::Clustered => clustered(n, self.d, self.seed, 8),
            Shape::HeavyDuplicate => heavy_duplicate(n, self.d, self.seed, (n / 20).max(4)),
        }
    }

    /// This cell's utility space.
    pub fn space(&self) -> Box<dyn UtilitySpace> {
        self.region.space(self.d)
    }
}

/// The matrix the approx validation actually runs: every shape at
/// `d ∈ {2, 4, 8}` under the full space, plus the constrained region at
/// `d ∈ {4, 8}` for the shapes where restriction changes the answer most
/// (anti-correlated trades off hardest across attributes; heavy-duplicate
/// stresses ties under a narrow cone). Seeds are distinct per cell so no
/// two cells share a draw.
pub fn matrix() -> Vec<Scenario> {
    let mut cells = Vec::new();
    let mut seed = 0xC0FF_EE00u64;
    for shape in Shape::ALL {
        for d in [2, 4, 8] {
            seed += 1;
            cells.push(Scenario { shape, d, region: Region::Full, seed });
        }
    }
    for shape in [Shape::Anticorrelated, Shape::HeavyDuplicate] {
        for d in [4, 8] {
            seed += 1;
            cells.push(Scenario { shape, d, region: Region::WeakRanking(2), seed });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generators_are_deterministic_and_in_range() {
        assert_eq!(clustered(200, 3, 7, 5), clustered(200, 3, 7, 5));
        assert_ne!(clustered(200, 3, 7, 5), clustered(200, 3, 8, 5));
        assert_eq!(heavy_duplicate(200, 3, 7, 10), heavy_duplicate(200, 3, 7, 10));
        let c = clustered(500, 4, 1, 6);
        assert_eq!((c.n(), c.dim()), (500, 4));
        assert!(c.flat().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn heavy_duplicate_has_few_value_groups_but_no_exact_ties() {
        let d = heavy_duplicate(300, 2, 3, 10);
        // No two values are exactly equal after the jitter...
        let mut vals: Vec<f64> = d.flat().to_vec();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let distinct_exact = {
            let mut v = vals.clone();
            v.dedup();
            v.len()
        };
        assert_eq!(distinct_exact, vals.len(), "jitter must break every tie");
        // ...but rounding to 6 decimals recovers the 10 duplicate groups.
        let coarse: HashSet<i64> = vals.iter().map(|v| (v * 1e6).round() as i64).collect();
        assert!(
            coarse.len() <= 2 * 10,
            "expected ~10 value groups per column, got {}",
            coarse.len()
        );
    }

    #[test]
    fn matrix_covers_shapes_dims_and_regions() {
        let cells = matrix();
        let shapes: HashSet<&str> = cells.iter().map(|c| c.shape.name()).collect();
        assert_eq!(shapes.len(), Shape::ALL.len());
        let dims: HashSet<usize> = cells.iter().map(|c| c.d).collect();
        assert!(dims.contains(&2) && dims.contains(&8));
        assert!(cells.iter().any(|c| matches!(c.region, Region::WeakRanking(_))));
        // Names are unique (they key golden-file entries) and seeds are
        // distinct (no two cells share a draw).
        let names: HashSet<String> = cells.iter().map(Scenario::name).collect();
        assert_eq!(names.len(), cells.len());
        let seeds: HashSet<u64> = cells.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), cells.len());
    }

    #[test]
    fn scenario_cells_generate_consistent_data_and_spaces() {
        for cell in matrix() {
            let data = cell.dataset(64);
            assert_eq!((data.n(), data.dim()), (64, cell.d), "{}", cell.name());
            assert_eq!(cell.space().dim(), cell.d, "{}", cell.name());
        }
    }
}
