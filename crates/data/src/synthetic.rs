//! Börzsönyi-style synthetic generators and the Theorem 2 construction.
//!
//! The paper: "We generate the synthetic datasets by a generator proposed
//! by Borzsony et. al." — independent (uniform), correlated (clustered
//! around the main diagonal) and anti-correlated (clustered around the
//! plane `Σ x_i ≈ const`, so attributes trade off against each other).
//! Values are clamped to `[0, 1]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrm_core::sampling::gauss;
use rrm_core::Dataset;

/// Uniform i.i.d. values in `[0,1]^d`.
pub fn independent(n: usize, d: usize, seed: u64) -> Dataset {
    assert!(n >= 1 && d >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..n * d).map(|_| rng.random::<f64>()).collect();
    Dataset::from_flat(d, values).expect("generator output is valid")
}

/// Correlated data: a latent quality `q` per tuple plus small per-attribute
/// Gaussian spread, so good tuples tend to be good everywhere. The 2D
/// skyline of such data is small, as in the paper's "the more correlated
/// the attributes, the smaller the output rank-regrets".
pub fn correlated(n: usize, d: usize, seed: u64) -> Dataset {
    assert!(n >= 1 && d >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n * d);
    for _ in 0..n {
        let q: f64 = rng.random();
        for _ in 0..d {
            // Resample the spread until the value stays in range: clamping
            // would pile tuples onto exactly 0.0/1.0 and mass-produce score
            // ties, violating the paper's general-position assumption.
            let v = loop {
                let v = q + 0.015 * gauss(&mut rng);
                if (0.0..=1.0).contains(&v) {
                    break v;
                }
            };
            values.push(v);
        }
    }
    Dataset::from_flat(d, values).expect("generator output is valid")
}

/// Anti-correlated data: tuples lie near the plane `Σ x_i ≈ d/2`, with the
/// budget spread unevenly across attributes, so being good on one
/// attribute means being bad on others. Produces large skylines.
pub fn anticorrelated(n: usize, d: usize, seed: u64) -> Dataset {
    assert!(n >= 1 && d >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n * d);
    for _ in 0..n {
        // Rejection-sample until the tuple fits [0,1]^d: clamping or
        // rescaling overflow would pile tuples onto the boundary and
        // mass-produce score ties, breaking general position.
        let w = loop {
            // Total budget concentrated around d/2 with small spread.
            let budget = 0.5 * d as f64 * (1.0 + 0.1 * gauss(&mut rng));
            // Uneven split: normalized exponentials.
            let mut w: Vec<f64> = (0..d)
                .map(|_| {
                    let u: f64 = 1.0 - rng.random::<f64>();
                    -u.ln()
                })
                .collect();
            let s: f64 = w.iter().sum();
            for v in &mut w {
                *v = *v / s * budget;
            }
            if w.iter().all(|v| (0.0..=1.0).contains(v)) {
                break w;
            }
        };
        values.extend_from_slice(&w);
    }
    Dataset::from_flat(d, values).expect("generator output is valid")
}

/// The adversarial dataset of Theorem 2: `n` points on the unit
/// quarter-circle (first two attributes), remaining attributes fixed at 1.
/// Any `r`-subset has rank-regret Ω(n/r).
pub fn lower_bound_arc(n: usize, d: usize) -> Dataset {
    assert!(n >= 2 && d >= 2);
    let mut values = Vec::with_capacity(n * d);
    for i in 0..n {
        let theta = std::f64::consts::FRAC_PI_2 * i as f64 / (n - 1) as f64;
        values.push(theta.cos());
        values.push(theta.sin());
        values.extend(std::iter::repeat_n(1.0, d - 2));
    }
    Dataset::from_flat(d, values).expect("generator output is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_skyline::skyline;

    #[test]
    fn shapes_and_ranges() {
        for gen in [independent, correlated, anticorrelated] {
            let d = gen(500, 4, 1);
            assert_eq!(d.n(), 500);
            assert_eq!(d.dim(), 4);
            assert!(d.flat().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn determinism_per_seed() {
        assert_eq!(independent(100, 3, 42), independent(100, 3, 42));
        assert_ne!(independent(100, 3, 42), independent(100, 3, 43));
        assert_eq!(anticorrelated(50, 2, 9), anticorrelated(50, 2, 9));
    }

    #[test]
    fn correlation_ordering_of_skyline_sizes() {
        // The defining property the paper's experiments rely on:
        // skyline(corr) < skyline(indep) < skyline(anti).
        let n = 3000;
        let corr = skyline(&correlated(n, 2, 5)).len();
        let ind = skyline(&independent(n, 2, 5)).len();
        let anti = skyline(&anticorrelated(n, 2, 5)).len();
        assert!(corr < ind, "correlated {corr} vs independent {ind}");
        assert!(ind < anti, "independent {ind} vs anti-correlated {anti}");
    }

    #[test]
    fn correlation_sign_check() {
        // Empirical Pearson correlation between the two attributes.
        let pearson = |d: &Dataset| {
            let n = d.n() as f64;
            let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
            for r in d.rows() {
                sx += r[0];
                sy += r[1];
                sxx += r[0] * r[0];
                syy += r[1] * r[1];
                sxy += r[0] * r[1];
            }
            let cov = sxy / n - sx / n * (sy / n);
            let vx = sxx / n - (sx / n) * (sx / n);
            let vy = syy / n - (sy / n) * (sy / n);
            cov / (vx * vy).sqrt()
        };
        assert!(pearson(&correlated(4000, 2, 2)) > 0.5);
        assert!(pearson(&anticorrelated(4000, 2, 2)) < -0.5);
        assert!(pearson(&independent(4000, 2, 2)).abs() < 0.1);
    }

    #[test]
    fn arc_lies_on_unit_circle() {
        let d = lower_bound_arc(50, 2);
        for row in d.rows() {
            let norm = (row[0] * row[0] + row[1] * row[1]).sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
        }
        // Endpoints are the axis points.
        assert_eq!(d.row(0), &[1.0, 0.0]);
        let last = d.row(49);
        assert!(last[0].abs() < 1e-12 && (last[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arc_pads_higher_dims_with_ones() {
        let d = lower_bound_arc(10, 4);
        for row in d.rows() {
            assert_eq!(&row[2..], &[1.0, 1.0]);
        }
    }

    #[test]
    fn arc_every_tuple_is_skyline() {
        let d = lower_bound_arc(64, 2);
        assert_eq!(skyline(&d).len(), 64);
    }
}
