//! Simulated stand-ins for the paper's real datasets.
//!
//! The originals (Island \[24\]\[31\], NBA \[25\], Weather \[24\]) are not
//! redistributable inside this repository, so each simulator reproduces
//! the statistical structure the corresponding experiment depends on:
//!
//! * **Island** (63 383 × 2, geographic positions): 2D point clouds with a
//!   pronounced trade-off frontier of clustered points — the experiments
//!   use it as a 2D workload whose skyline is moderately large and whose
//!   rank-regrets are non-trivial (Fig. 11).
//! * **NBA** (21 961 × 5, player/season stats): positively correlated,
//!   heavily skewed — a few star seasons dominate nearly everything, which
//!   is why the paper observes rank-regrets staying at 1 in 2D (Fig. 12)
//!   and small values in 5D (Fig. 27).
//! * **Weather** (178 080 × 4): clustered (seasonal) data with locally
//!   anti-correlated blocks; MDRC's space partitioning collapses on it
//!   (rank-regret 1610 vs HDRRM's 9 at n = 120K in Fig. 28).
//!
//! Default sizes match the paper; all values are normalized to `[0, 1]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rrm_core::sampling::gauss;
use rrm_core::Dataset;

/// Island-like 2D data: clusters strung along a concave trade-off arc plus
/// background noise. `n` defaults to the paper's 63 383 via
/// [`island_default`].
pub fn island_sim(n: usize, seed: u64) -> Dataset {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    const CLUSTERS: usize = 12;
    let mut values = Vec::with_capacity(n * 2);
    for _ in 0..n {
        if rng.random::<f64>() < 0.85 {
            // Clustered on the arc: pick a cluster center angle, jitter it.
            let c = rng.random_range(0..CLUSTERS);
            let theta = std::f64::consts::FRAC_PI_2 * (c as f64 + 0.5) / CLUSTERS as f64;
            let radius = 0.9 + 0.06 * gauss(&mut rng);
            let x = (radius * theta.cos() + 0.03 * gauss(&mut rng)).clamp(0.0, 1.0);
            let y = (radius * theta.sin() + 0.03 * gauss(&mut rng)).clamp(0.0, 1.0);
            values.push(x);
            values.push(y);
        } else {
            // Interior background points (dominated mass).
            values.push(rng.random::<f64>() * 0.8);
            values.push(rng.random::<f64>() * 0.8);
        }
    }
    Dataset::from_flat(2, values).expect("generator output is valid")
}

/// The paper-sized Island stand-in (63 383 tuples).
pub fn island_default(seed: u64) -> Dataset {
    island_sim(63_383, seed)
}

/// NBA-like data: `d` positively correlated skill attributes driven by a
/// skewed latent ability, so a handful of tuples dominate. Use `d = 5` for
/// the paper's configuration.
pub fn nba_sim(n: usize, d: usize, seed: u64) -> Dataset {
    assert!(n >= 1 && d >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(n * d);
    for _ in 0..n {
        // Skewed latent ability: most players mediocre, few stars.
        let ability = rng.random::<f64>().powf(2.5);
        for j in 0..d {
            // Per-attribute loading keeps stats correlated but not equal.
            let loading = 0.75 + 0.05 * j as f64;
            let v = ability * loading + 0.08 * gauss(&mut rng).abs() + 0.05 * rng.random::<f64>();
            values.push(v.clamp(0.0, 1.0));
        }
    }
    Dataset::from_flat(d, values).expect("generator output is valid")
}

/// The paper-sized NBA stand-in (21 961 × 5).
pub fn nba_default(seed: u64) -> Dataset {
    nba_sim(21_961, 5, seed)
}

/// Weather-like data: seasonal clusters whose attributes are locally
/// anti-correlated in alternating pairs (e.g. warm/dry vs cold/wet), with
/// heavy within-cluster concentration. Use `d = 4` for the paper's
/// configuration.
pub fn weather_sim(n: usize, d: usize, seed: u64) -> Dataset {
    assert!(n >= 1 && d >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    const SEASONS: usize = 8;
    // Random cluster centers, spread over [0.15, 0.85]^d.
    let centers: Vec<Vec<f64>> =
        (0..SEASONS).map(|_| (0..d).map(|_| 0.15 + 0.7 * rng.random::<f64>()).collect()).collect();
    let mut values = Vec::with_capacity(n * d);
    for _ in 0..n {
        let c = &centers[rng.random_range(0..SEASONS)];
        // Anti-correlated pair noise: attribute 2j gains what 2j+1 loses.
        let mut row: Vec<f64> = c.clone();
        for j in (0..d).step_by(2) {
            let swing = 0.18 * gauss(&mut rng);
            row[j] += swing;
            if j + 1 < d {
                row[j + 1] -= swing;
            }
        }
        for v in &mut row {
            *v = (*v + 0.04 * gauss(&mut rng)).clamp(0.0, 1.0);
            values.push(*v);
        }
    }
    Dataset::from_flat(d, values).expect("generator output is valid")
}

/// The paper-sized Weather stand-in (178 080 × 4).
pub fn weather_default(seed: u64) -> Dataset {
    weather_sim(178_080, 4, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_skyline::skyline;

    #[test]
    fn shapes_match_paper_defaults() {
        let i = island_sim(1000, 1);
        assert_eq!((i.n(), i.dim()), (1000, 2));
        let n = nba_sim(1000, 5, 1);
        assert_eq!((n.n(), n.dim()), (1000, 5));
        let w = weather_sim(1000, 4, 1);
        assert_eq!((w.n(), w.dim()), (1000, 4));
    }

    #[test]
    fn values_in_unit_range() {
        for data in [island_sim(2000, 2), nba_sim(2000, 5, 2), weather_sim(2000, 4, 2)] {
            assert!(data.flat().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(island_sim(500, 3), island_sim(500, 3));
        assert_eq!(nba_sim(500, 5, 3), nba_sim(500, 5, 3));
        assert_eq!(weather_sim(500, 4, 3), weather_sim(500, 4, 3));
    }

    #[test]
    fn nba_is_dominated_by_few_stars() {
        // The property Fig. 12 relies on: tiny skyline relative to n.
        let d = nba_sim(5000, 5, 4);
        let s = skyline(&d).len();
        assert!(s < 200, "NBA-like skyline too big: {s}");
        // And in 2D projection, even smaller.
        let d2 = d.project(&[0, 1]).unwrap();
        let s2 = skyline(&d2).len();
        assert!(s2 <= 20, "2D NBA-like skyline too big: {s2}");
    }

    #[test]
    fn island_has_substantial_frontier() {
        let d = island_sim(5000, 5);
        let s = skyline(&d).len();
        assert!(s >= 10, "island frontier too small: {s}");
    }

    #[test]
    fn weather_cluster_structure() {
        // Weather-like data should have a skyline that is neither trivial
        // nor the whole dataset.
        let d = weather_sim(5000, 4, 6);
        let s = skyline(&d).len();
        assert!(s > 20 && s < 2500, "weather skyline {s}");
    }

    #[test]
    fn default_sizes() {
        // Paper sizes (documented contract; kept cheap by checking only n).
        assert_eq!(island_default(0).n(), 63_383);
        assert_eq!(nba_default(0).n(), 21_961);
        assert_eq!(weather_default(0).n(), 178_080);
    }
}
