//! Shared machinery for the HD algorithms: chunked batch top-k scoring on
//! the [`rrm_par`] runtime, with all dot products routed through the
//! blocked SoA kernel ([`rrm_core::kernel`]).

use rrm_core::kernel::{self, ScoreScratch};
use rrm_core::rank::top_k_into;
use rrm_core::{Dataset, Parallelism};

/// Compute `Φk(u, D)` for every direction, chunked over `pol`'s worker
/// threads.
///
/// Returns one index list per direction, best tuple first, in direction
/// order. This is the dominant cost of HDRRM (`O(|D| · n · d)` per call)
/// and of MDRRRr. Scoring runs through the cache-blocked kernel; chunk
/// sizes come from [`rrm_par::adaptive_chunk`]'s pure cost model and
/// per-direction lists are independent, so the output is bit-identical at
/// any thread count.
pub fn batch_topk(data: &Dataset, dirs: &[Vec<f64>], k: usize, pol: Parallelism) -> Vec<Vec<u32>> {
    assert!(k >= 1);
    let soa = data.soa();
    let chunk = rrm_par::adaptive_chunk(dirs.len(), data.n() * data.dim());
    let per_chunk = rrm_par::par_chunks(dirs, chunk, pol, |_, dirs_chunk| {
        let mut scratch = ScoreScratch::new();
        let mut sel = Vec::new();
        let mut out = Vec::new();
        let mut lists = vec![Vec::new(); dirs_chunk.len()];
        kernel::for_each_scores(soa, dirs_chunk, &mut scratch, |di, scores| {
            top_k_into(scores, k, &mut sel, &mut out);
            lists[di] = out.clone();
        });
        lists
    });
    per_chunk.into_iter().flatten().collect()
}

/// Compute the top-1 score of the dataset for every direction, chunked
/// over `pol`'s worker threads (the denominator of the regret-ratio in
/// MDRMS). Output order follows `dirs`.
///
/// Uses the kernel's fused maximum — no `n`-length score vector is
/// materialized. The fold order (ascending tuple index, `f64::max`)
/// matches the previous row-major implementation bit for bit.
pub fn batch_top1_scores(data: &Dataset, dirs: &[Vec<f64>], pol: Parallelism) -> Vec<f64> {
    let soa = data.soa();
    let chunk = rrm_par::adaptive_chunk(dirs.len(), data.n() * data.dim());
    let per_chunk = rrm_par::par_chunks(dirs, chunk, pol, |_, dirs_chunk| {
        let mut scratch = ScoreScratch::new();
        dirs_chunk.iter().map(|u| kernel::max_score(soa, u, &mut scratch)).collect::<Vec<f64>>()
    });
    per_chunk.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rrm_core::sampling::orthant_direction;
    use rrm_core::{rank, utility};
    use rrm_data::synthetic::independent;

    #[test]
    fn batch_topk_matches_serial() {
        let data = independent(300, 4, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let dirs: Vec<Vec<f64>> = (0..50).map(|_| orthant_direction(4, &mut rng)).collect();
        for pol in [Parallelism::Sequential, Parallelism::Fixed(2), Parallelism::Fixed(7)] {
            let batched = batch_topk(&data, &dirs, 7, pol);
            assert_eq!(batched.len(), 50);
            for (u, got) in dirs.iter().zip(&batched) {
                let scores = utility::utilities(&data, u);
                let want = rank::top_k(&scores, 7).indices;
                assert_eq!(got, &want, "{pol:?}");
            }
        }
    }

    #[test]
    fn batch_topk_k_exceeds_n() {
        let data = independent(5, 3, 3);
        let dirs = vec![vec![1.0, 0.0, 0.0]];
        let lists = batch_topk(&data, &dirs, 100, Parallelism::Auto);
        assert_eq!(lists[0].len(), 5);
    }

    #[test]
    fn batch_top1_matches_serial() {
        let data = independent(200, 3, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let dirs: Vec<Vec<f64>> = (0..30).map(|_| orthant_direction(3, &mut rng)).collect();
        for pol in [Parallelism::Sequential, Parallelism::Fixed(3)] {
            let tops = batch_top1_scores(&data, &dirs, pol);
            for (u, &got) in dirs.iter().zip(&tops) {
                let scores = utility::utilities(&data, u);
                let want = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(got, want, "{pol:?}");
            }
        }
    }

    #[test]
    fn empty_dirs() {
        let data = independent(10, 2, 6);
        assert!(batch_topk(&data, &[], 3, Parallelism::Auto).is_empty());
        assert!(batch_top1_scores(&data, &[], Parallelism::Auto).is_empty());
    }
}
