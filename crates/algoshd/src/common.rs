//! Shared machinery for the HD algorithms: parallel batch top-k scoring.

use rrm_core::rank::top_k_into;
use rrm_core::utility::utilities_into;
use rrm_core::Dataset;

/// Compute `Φk(u, D)` for every direction, in parallel over all cores.
///
/// Returns one index list per direction, best tuple first. This is the
/// dominant cost of HDRRM (`O(|D| · n · d)` per call) and of MDRRRr.
pub fn batch_topk(data: &Dataset, dirs: &[Vec<f64>], k: usize) -> Vec<Vec<u32>> {
    assert!(k >= 1);
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let chunk = dirs.len().div_ceil(threads.max(1)).max(1);
    let mut results: Vec<Vec<Vec<u32>>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for dirs_chunk in dirs.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let mut scores = Vec::new();
                let mut scratch = Vec::new();
                let mut out = Vec::new();
                let mut lists = Vec::with_capacity(dirs_chunk.len());
                for u in dirs_chunk {
                    utilities_into(data, u, &mut scores);
                    top_k_into(&scores, k, &mut scratch, &mut out);
                    lists.push(out.clone());
                }
                lists
            }));
        }
        for h in handles {
            results.push(h.join().expect("top-k worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Compute the top-1 score of the dataset for every direction, in parallel
/// (the denominator of the regret-ratio in MDRMS).
pub fn batch_top1_scores(data: &Dataset, dirs: &[Vec<f64>]) -> Vec<f64> {
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let chunk = dirs.len().div_ceil(threads.max(1)).max(1);
    let d = data.dim();
    let flat = data.flat();
    let mut results: Vec<Vec<f64>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for dirs_chunk in dirs.chunks(chunk) {
            handles.push(scope.spawn(move || {
                dirs_chunk
                    .iter()
                    .map(|u| {
                        flat.chunks_exact(d)
                            .map(|row| rrm_core::utility::dot(u, row))
                            .fold(f64::NEG_INFINITY, f64::max)
                    })
                    .collect::<Vec<f64>>()
            }));
        }
        for h in handles {
            results.push(h.join().expect("scoring worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rrm_core::sampling::orthant_direction;
    use rrm_core::{rank, utility};
    use rrm_data::synthetic::independent;

    #[test]
    fn batch_topk_matches_serial() {
        let data = independent(300, 4, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let dirs: Vec<Vec<f64>> = (0..50).map(|_| orthant_direction(4, &mut rng)).collect();
        let batched = batch_topk(&data, &dirs, 7);
        assert_eq!(batched.len(), 50);
        for (u, got) in dirs.iter().zip(&batched) {
            let scores = utility::utilities(&data, u);
            let want = rank::top_k(&scores, 7).indices;
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn batch_topk_k_exceeds_n() {
        let data = independent(5, 3, 3);
        let dirs = vec![vec![1.0, 0.0, 0.0]];
        let lists = batch_topk(&data, &dirs, 100);
        assert_eq!(lists[0].len(), 5);
    }

    #[test]
    fn batch_top1_matches_serial() {
        let data = independent(200, 3, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let dirs: Vec<Vec<f64>> = (0..30).map(|_| orthant_direction(3, &mut rng)).collect();
        let tops = batch_top1_scores(&data, &dirs);
        for (u, &got) in dirs.iter().zip(&tops) {
            let scores = utility::utilities(&data, u);
            let want = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn empty_dirs() {
        let data = independent(10, 2, 6);
        assert!(batch_topk(&data, &[], 3).is_empty());
        assert!(batch_top1_scores(&data, &[]).is_empty());
    }
}
