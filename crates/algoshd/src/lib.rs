//! High-dimensional rank-regret algorithms (paper Section V) and the
//! competitor algorithms it evaluates against.
//!
//! | Module | Algorithm | Guarantee on rank-regret | RRRM | Scalable |
//! |--------|-----------|--------------------------|------|----------|
//! | [`mod@hdrrm`] | **HDRRM** (this paper) | yes (over the discretized set `D`, Theorems 6–10) | yes | yes |
//! | [`mod@mdrrr`] | MDRRR (Asudeh et al.) | yes (exact k-set enumeration) | no | no (few hundred tuples) |
//! | [`mod@mdrrr_r`] | MDRRRr (randomized) | no | yes | limited |
//! | [`mod@mdrc`] | MDRC (space partitioning) | no | no | yes |
//! | [`mod@mdrms`] | MDRMS (regret-ratio / RMS) | no (wrong objective) | yes | yes |
//!
//! This is Table III of the paper, encoded in the implementations: `mdrrr`
//! rejects restricted spaces, `mdrc` rejects them too, and only `hdrrm`
//! and `mdrrr` certify a rank-regret for their output.

pub(crate) mod anytime;
pub mod asms;
pub mod common;
pub mod cube;
pub mod discretize;
pub mod hdrrm;
pub mod ksets;
pub mod mdrc;
pub mod mdrms;
pub mod mdrrr;
pub mod mdrrr_r;
pub mod solver;

pub use asms::asms;
pub use cube::{cube, cube_ratio_bound};
pub use discretize::{build_vector_set, paper_sample_size, Discretization};
pub use hdrrm::{hdrrm, hdrrm_anytime, hdrrr, HdrrmOptions, PreparedHdrrm};
pub use ksets::{enumerate_ksets, KsetEnumeration, KsetLimits};
pub use mdrc::{mdrc, mdrc_anytime, mdrc_rrm, MdrcOptions};
pub use mdrms::{mdrms, MdrmsOptions};
pub use mdrrr::{mdrrr, mdrrr_rrm, mdrrr_rrm_anytime};
pub use mdrrr_r::{mdrrr_r, mdrrr_r_rrm, mdrrr_r_rrm_anytime, MdrrrROptions};
pub use solver::{HdrrmSolver, MdrcSolver, MdrmsSolver, MdrrrRSolver, MdrrrSolver};
