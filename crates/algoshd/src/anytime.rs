//! The anytime bound-and-prune core shared by the hard HD solvers.
//!
//! [`threshold_search`] is the doubling-then-binary threshold search that
//! HDRRM, MDRRR and MDRRRr all run, restructured around an
//! [`AnytimeSearch`]: before every probe the driver checks the cutoff, and
//! on an early stop it reports the certified lower bound reached so the
//! caller can return its incumbent with sound [`Bounds`] instead of
//! failing. Probe closures stay in charge of domain work — computing the
//! candidate set, accounting expanded nodes, offering incumbents — so each
//! solver's probe sequence is exactly what it was before the refactor:
//! under [`Cutoff::None`] the driver performs the same probes in the same
//! order and returns the same best threshold, bit for bit.
//!
//! [`Cutoff::None`]: rrm_core::Cutoff::None

use rrm_core::rank::rank_regret_of_set;
use rrm_core::{AnytimeSearch, Bounds, Dataset, Parallelism, RrmError, TerminatedBy};

/// Outcome of an anytime threshold search.
pub(crate) struct ThresholdOutcome<T> {
    /// Smallest feasible threshold reached and its payload (the probe's
    /// candidate set), when one was found before the cutoff fired.
    pub best: Option<(usize, T)>,
    /// Certified lower bound: every threshold below this was proven
    /// infeasible.
    pub lower: usize,
    /// Why the search returned.
    pub terminated: TerminatedBy,
}

/// The doubling + binary threshold search with in-loop cutoff checks.
///
/// `probe(k, lower, search)` answers one threshold: `Ok(Some(payload))`
/// when feasible, `Ok(None)` when infeasible (possibly proven by an
/// aborted, pruned cover). `lower` is the certified lower bound at probe
/// time, for incumbent curve stamping. The driver consumes one probe of
/// the deterministic budget per call and counts it as a search node;
/// the closure accounts any further nodes it expands.
///
/// Infeasibility at `k = n` ends the search with `best: None` — reachable
/// only for enumeration-truncated probes (MDRRR); the geometric solvers'
/// probes are always feasible at `k = n`.
pub(crate) fn threshold_search<T>(
    n: usize,
    search: &mut AnytimeSearch,
    mut probe: impl FnMut(usize, usize, &mut AnytimeSearch) -> Result<Option<T>, RrmError>,
) -> Result<ThresholdOutcome<T>, RrmError> {
    let mut prev_k = 0usize;
    let mut k = 1usize;
    let best: (usize, T);
    // Doubling phase: find some feasible threshold.
    loop {
        let lower = prev_k + 1;
        let upper = search.incumbent.upper().unwrap_or(n.max(1));
        if let Some(t) = search.should_stop(Bounds { lower, upper }) {
            return Ok(ThresholdOutcome { best: None, lower, terminated: t });
        }
        let _ = search.take_probe();
        search.note_node();
        match probe(k, lower, search)? {
            Some(payload) => {
                best = (k, payload);
                break;
            }
            None => {
                if k >= n {
                    return Ok(ThresholdOutcome {
                        best: None,
                        lower: n,
                        terminated: TerminatedBy::Completed,
                    });
                }
                prev_k = k;
                k = (k * 2).min(n);
            }
        }
    }
    // Binary phase over the last doubling gap (prev_k, k].
    let (mut best_k, mut best_payload) = best;
    let mut lo = prev_k + 1;
    let mut hi = best_k;
    while lo < hi {
        let upper = search.incumbent.upper().unwrap_or(best_k);
        if let Some(t) = search.should_stop(Bounds { lower: lo, upper }) {
            return Ok(ThresholdOutcome {
                best: Some((best_k, best_payload)),
                lower: lo,
                terminated: t,
            });
        }
        let _ = search.take_probe();
        let mid = lo + (hi - lo) / 2;
        search.note_node();
        match probe(mid, lo, search)? {
            Some(payload) => {
                best_k = mid;
                best_payload = payload;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    Ok(ThresholdOutcome {
        best: Some((best_k, best_payload)),
        lower: lo,
        terminated: TerminatedBy::Completed,
    })
}

/// Maximum rank-regret of `set` over `dirs`, chunked over `pol`'s worker
/// threads (`max` commutes, so the result is identical at any thread
/// count). This *measures* a sound frame-relative upper bound for an
/// incumbent candidate in one scoring pass.
pub(crate) fn regret_over_dirs(
    data: &Dataset,
    set: &[u32],
    dirs: &[Vec<f64>],
    pol: Parallelism,
) -> usize {
    if dirs.is_empty() {
        return 0;
    }
    let chunk = rrm_par::adaptive_chunk(dirs.len(), data.n() * data.dim());
    let per_chunk = rrm_par::par_chunks(dirs, chunk, pol, |_, dirs_chunk| {
        dirs_chunk.iter().map(|u| rank_regret_of_set(data, u, set)).max().unwrap_or(0)
    });
    per_chunk.into_iter().max().unwrap_or(0)
}

/// A deterministic fallback representative: `seed` tuples (a basis, or
/// nothing) topped up to `r` with the best scorers under the uniform
/// direction. Offered as the first incumbent when a cutoff is active, so
/// every early stop has *something* sound to return.
pub(crate) fn uniform_top_set(data: &Dataset, seed: &[u32], r: usize) -> Vec<u32> {
    let n = data.n();
    let u = vec![1.0; data.dim()];
    let scores = rrm_core::utility::utilities(data, &u);
    let order = rrm_core::rank::argsort_desc(&scores);
    let mut set: Vec<u32> = seed.to_vec();
    let mut in_set = vec![false; n];
    for &s in seed {
        in_set[s as usize] = true;
    }
    for &t in &order {
        if set.len() >= r.min(n).max(1) {
            break;
        }
        if !in_set[t as usize] {
            in_set[t as usize] = true;
            set.push(t);
        }
    }
    set.sort_unstable();
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::Cutoff;
    use rrm_data::synthetic::independent;

    /// Feasibility oracle "k >= target" — the driver must find `target`.
    fn run(n: usize, target: usize, search: &mut AnytimeSearch) -> ThresholdOutcome<usize> {
        threshold_search(n, search, |k, _lower, s| {
            if k >= target {
                s.offer(vec![0], k, 1);
                Ok(Some(k))
            } else {
                Ok(None)
            }
        })
        .unwrap()
    }

    #[test]
    fn finds_the_smallest_feasible_threshold() {
        for target in [1usize, 2, 3, 7, 40, 100] {
            let mut s = AnytimeSearch::unlimited();
            let out = run(100, target, &mut s);
            assert_eq!(out.terminated, TerminatedBy::Completed);
            assert_eq!(out.best.unwrap().0, target, "target {target}");
            assert_eq!(out.lower, target);
        }
    }

    #[test]
    fn counter_budget_stops_with_sound_lower_bound() {
        for budget in 0..12 {
            let mut s = AnytimeSearch::new(Cutoff::CounterBudget, Some(budget));
            let out = run(100, 70, &mut s);
            if out.terminated == TerminatedBy::Completed {
                assert_eq!(out.best.as_ref().unwrap().0, 70);
            } else {
                assert_eq!(out.terminated, TerminatedBy::Counter);
                assert!(out.lower <= 70, "budget {budget}: lower {} unsound", out.lower);
                if let Some((k, _)) = out.best {
                    assert!(k >= 70);
                }
            }
        }
    }

    #[test]
    fn infeasible_at_n_ends_with_no_best() {
        let mut s = AnytimeSearch::unlimited();
        let out = threshold_search::<()>(16, &mut s, |_, _, _| Ok(None)).unwrap();
        assert!(out.best.is_none());
        assert_eq!(out.lower, 16);
        assert_eq!(out.terminated, TerminatedBy::Completed);
    }

    #[test]
    fn probes_counted_as_nodes() {
        let mut s = AnytimeSearch::unlimited();
        run(100, 7, &mut s);
        // Doubling 1,2,4,8 then binary over (4,8]: two more probes.
        assert_eq!(s.report.nodes, 6);
    }

    #[test]
    fn uniform_top_set_is_deterministic_and_sized() {
        let data = independent(50, 3, 5);
        let a = uniform_top_set(&data, &[3, 9], 8);
        let b = uniform_top_set(&data, &[3, 9], 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.contains(&3) && a.contains(&9));
        let solo = uniform_top_set(&data, &[], 1);
        assert_eq!(solo.len(), 1);
    }

    #[test]
    fn regret_over_dirs_matches_serial_max() {
        let data = independent(80, 3, 6);
        let dirs: Vec<Vec<f64>> =
            vec![vec![1.0, 0.0, 0.0], vec![0.2, 0.5, 0.3], vec![0.0, 0.0, 1.0]];
        let set = vec![0u32, 5, 11];
        let want = dirs.iter().map(|u| rank_regret_of_set(&data, u, &set)).max().unwrap();
        for pol in [Parallelism::Sequential, Parallelism::Fixed(3)] {
            assert_eq!(regret_over_dirs(&data, &set, &dirs, pol), want);
        }
        assert_eq!(regret_over_dirs(&data, &set, &[], Parallelism::Auto), 0);
    }
}
