//! **MDRRRr** — the randomized k-set baseline of Asudeh et al.
//!
//! Instead of exact region enumeration, sample directions, collect the
//! distinct top-k sets observed, and hit those. Faster
//! (`O(|W|(nd + k log k))` in the paper's accounting), works for
//! restricted spaces, but the output's rank-regret is **not** guaranteed —
//! unsampled k-set regions can be missed, which is exactly the quality gap
//! the paper's figures display at scale.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rrm_core::{
    Algorithm, AnytimeSearch, Bounds, Cutoff, Dataset, ExecPolicy, Parallelism, RrmError, Solution,
    TerminatedBy, UtilitySpace,
};

use crate::anytime::{regret_over_dirs, threshold_search, uniform_top_set, ThresholdOutcome};
use crate::common::batch_topk;
use crate::mdrrr::{hit_ksets, hit_ksets_capped};

/// Options for [`mdrrr_r`].
#[derive(Debug, Clone, Copy)]
pub struct MdrrrROptions {
    /// Number of sampled directions used to discover k-sets.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Bound-and-prune the RRM feasibility probes: abort a hitting-set
    /// cover once it provably exceeds the size budget `r`
    /// (answer-equivalent; disable only to measure the pruning win).
    pub prune: bool,
    /// Data-parallelism for the k-set discovery scoring pass. Engine-level
    /// contexts override the default; the discovered k-set family is
    /// identical at any thread count.
    pub exec: ExecPolicy,
}

impl Default for MdrrrROptions {
    fn default() -> Self {
        Self { samples: 20_000, seed: 0x5EED, prune: true, exec: ExecPolicy::default() }
    }
}

/// Prefix fraction of the sampled pool used as the coarse frame.
const COARSE_FRACTION: usize = 16;
/// Minimum coarse pool size for the coarse pass to be worth running.
const COARSE_MIN_DIRS: usize = 16;

/// The per-solve probe environment shared by the one-shot and prepared
/// MDRRRr RRM searches (the k-set family source differs between them).
pub(crate) struct SampledSearch<'a> {
    pub data: &'a Dataset,
    pub r: usize,
    /// Hitting-set pick cap (`usize::MAX` = pruning disabled).
    pub pick_cap: usize,
    pub pol: Parallelism,
}

impl SampledSearch<'_> {
    pub(crate) fn pick_cap(r: usize, prune: bool) -> usize {
        if prune {
            r
        } else {
            usize::MAX
        }
    }

    /// One capped hitting probe over a k-set family. Counts picks as
    /// nodes, records prunes, offers feasible results (their threshold
    /// is the sound upper bound over the sampled pool).
    pub(crate) fn probe(
        &self,
        k: usize,
        ksets: &[Vec<u32>],
        lower: usize,
        search: &mut AnytimeSearch,
    ) -> Option<Vec<u32>> {
        let probe = hit_ksets_capped(self.data.n(), ksets, self.pick_cap);
        search.note_nodes(probe.picks);
        if !probe.complete {
            search.note_pruned_probe();
            return None;
        }
        if probe.ids.len() <= self.r {
            search.offer(probe.ids.clone(), k, lower);
            Some(probe.ids)
        } else {
            None
        }
    }

    /// Offer the uniform-direction top-`r` fallback incumbent, with its
    /// measured regret over the full sampled pool as the upper bound.
    pub(crate) fn offer_fallback(&self, dirs: &[Vec<f64>], search: &mut AnytimeSearch) {
        let fallback = uniform_top_set(self.data, &[], self.r);
        let upper = regret_over_dirs(self.data, &fallback, dirs, self.pol);
        search.offer(fallback, upper, 1);
    }

    /// Coarse-to-fine first incumbent: solve over the prefix
    /// `dirs[..samples/16]` of the pool (cheap — fewer directions to
    /// score and fewer k-sets to hit), then measure that answer over the
    /// full pool for a sound frame-relative upper bound. Coarse probes
    /// never consume the deterministic probe budget.
    pub(crate) fn coarse_incumbent(&self, dirs: &[Vec<f64>], search: &mut AnytimeSearch) {
        let mc = dirs.len() / COARSE_FRACTION;
        if mc < COARSE_MIN_DIRS {
            return;
        }
        let coarse = &dirs[..mc];
        let mut sub = AnytimeSearch::unlimited();
        let outcome = threshold_search(self.data.n(), &mut sub, |k, lower, sub| {
            let ksets = ksets_from_dirs(self.data, k, coarse, self.pol);
            Ok(self.probe(k, &ksets, lower, sub))
        });
        search.report.nodes += sub.report.nodes;
        search.report.pruned_probes += sub.report.pruned_probes;
        let Ok(outcome) = outcome else { return };
        if let Some((_, ids)) = outcome.best {
            let upper = regret_over_dirs(self.data, &ids, dirs, self.pol);
            search.offer(ids, upper, 1);
        }
    }

    /// Assemble the final [`Solution`]. MDRRRr certifies nothing
    /// (`certified_regret` stays `None`); its bounds are relative to the
    /// sampled pool only.
    pub(crate) fn finish(
        &self,
        outcome: ThresholdOutcome<Vec<u32>>,
        search: AnytimeSearch,
    ) -> Result<Solution, RrmError> {
        match outcome.terminated {
            TerminatedBy::Completed => {
                // Unreachable `None`: at k = n the only k-set is the whole
                // dataset and any single tuple hits it.
                let (best_k, ids) = outcome.best.expect("hitting at k = n is a single tuple");
                Solution::new(ids, None, Algorithm::MdrrrR, self.data).map(|s| {
                    s.with_bounds(Bounds { lower: best_k, upper: best_k })
                        .with_report(search.report)
                })
            }
            t => {
                let (ids, upper) = search
                    .incumbent
                    .best()
                    .expect("an active cutoff offers a fallback incumbent before searching");
                Solution::new(ids, None, Algorithm::MdrrrR, self.data).map(|s| {
                    s.with_bounds(Bounds { lower: outcome.lower, upper })
                        .with_termination(t)
                        .with_report(search.report)
                })
            }
        }
    }
}

/// The sampled direction pool (deterministic per seed and sample count —
/// the prepared path caches it per sample count and reuses it for every
/// threshold).
pub(crate) fn sampled_dirs(space: &dyn UtilitySpace, opts: MdrrrROptions) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    (0..opts.samples).map(|_| space.sample_direction(&mut rng)).collect()
}

/// Distinct top-k sets observed across the given directions. The scoring
/// pass (`O(|dirs| · n · d)`) is chunked over `pol`'s threads; dedup and
/// ordering below keep the family deterministic.
pub(crate) fn ksets_from_dirs(
    data: &Dataset,
    k: usize,
    dirs: &[Vec<f64>],
    pol: Parallelism,
) -> Vec<Vec<u32>> {
    let lists = batch_topk(data, dirs, k, pol);
    let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(lists.len() / 4);
    for mut l in lists {
        l.sort_unstable();
        seen.insert(l);
    }
    // HashSet iteration order is randomized per process; the greedy cover
    // downstream tie-breaks by list order, so sort to keep the whole
    // algorithm deterministic for a fixed seed.
    let mut ksets: Vec<Vec<u32>> = seen.into_iter().collect();
    ksets.sort_unstable();
    ksets
}

/// Distinct top-k sets observed across sampled directions.
fn sample_ksets(
    data: &Dataset,
    k: usize,
    space: &dyn UtilitySpace,
    opts: MdrrrROptions,
) -> Vec<Vec<u32>> {
    ksets_from_dirs(data, k, &sampled_dirs(space, opts), opts.exec.parallelism)
}

/// MDRRRr for the RRR problem over a (possibly restricted) space. The
/// output hits every *sampled* k-set; `certified_regret` is `None`.
pub fn mdrrr_r(
    data: &Dataset,
    k: usize,
    space: &dyn UtilitySpace,
    opts: MdrrrROptions,
) -> Result<Solution, RrmError> {
    if k == 0 {
        return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
    }
    if space.dim() != data.dim() {
        return Err(RrmError::DimensionMismatch { expected: data.dim(), got: space.dim() });
    }
    let k = k.min(data.n());
    let ksets = sample_ksets(data, k, space, opts);
    let ids = hit_ksets(data.n(), &ksets);
    Solution::new(ids, None, Algorithm::MdrrrR, data)
}

/// MDRRRr adapted to RRM (doubling + binary search on `k`), running to
/// completion ([`Cutoff::None`]).
pub fn mdrrr_r_rrm(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    opts: MdrrrROptions,
) -> Result<Solution, RrmError> {
    mdrrr_r_rrm_anytime(data, r, space, opts, Cutoff::None, None)
}

/// [`mdrrr_r_rrm`] as an anytime bound-and-prune search.
///
/// The sampled direction pool is drawn once and reused for every
/// threshold probe; hitting-set covers abort as soon as they provably
/// exceed `r` (when `opts.prune`); an early stop under `cutoff` returns
/// the best incumbent found so far — the coarse-prefix answer, a feasible
/// probe, or the uniform-direction fallback — with pool-relative
/// [`Bounds`] and the [`TerminatedBy`] reason. Under [`Cutoff::None`] the
/// answer is bit-identical to the pre-anytime solver at any thread count.
pub fn mdrrr_r_rrm_anytime(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    opts: MdrrrROptions,
    cutoff: Cutoff,
    probe_budget: Option<usize>,
) -> Result<Solution, RrmError> {
    if space.dim() != data.dim() {
        return Err(RrmError::DimensionMismatch { expected: data.dim(), got: space.dim() });
    }
    if r == 0 {
        return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
    }
    let n = data.n();
    let dirs = sampled_dirs(space, opts);
    let env = SampledSearch {
        data,
        r,
        pick_cap: SampledSearch::pick_cap(r, opts.prune),
        pol: opts.exec.parallelism,
    };
    let mut search = AnytimeSearch::new(cutoff, probe_budget);
    if search.cutoff() != Cutoff::None {
        env.offer_fallback(&dirs, &mut search);
    }
    env.coarse_incumbent(&dirs, &mut search);
    let outcome = threshold_search(n, &mut search, |k, lower, search| {
        let ksets = ksets_from_dirs(data, k, &dirs, env.pol);
        Ok(env.probe(k, &ksets, lower, search))
    })?;
    env.finish(outcome, search)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::{FullSpace, WeakRankingSpace};
    use rrm_data::synthetic::{anticorrelated, independent};
    use rrm_eval::estimate_rank_regret_seq;

    fn opts(samples: usize, seed: u64) -> MdrrrROptions {
        MdrrrROptions { samples, seed, ..Default::default() }
    }

    #[test]
    fn hits_every_sampled_kset() {
        let data = independent(100, 3, 51);
        let sol = mdrrr_r(&data, 3, &FullSpace::new(3), opts(3000, 52)).unwrap();
        // Regret over a fresh sample shouldn't stray far above k on this
        // easy instance (no guarantee, but the mechanism must basically
        // work).
        let est = estimate_rank_regret_seq(&data, &sol.indices, &FullSpace::new(3), 3000, 53);
        assert!(est.max_rank <= 12, "estimated regret {}", est.max_rank);
        assert_eq!(sol.certified_regret, None);
        assert_eq!(sol.algorithm, Algorithm::MdrrrR);
    }

    #[test]
    fn rrm_adapter_respects_budget() {
        let data = anticorrelated(300, 3, 54);
        for r in [4usize, 8] {
            let sol = mdrrr_r_rrm(&data, r, &FullSpace::new(3), opts(2000, 55)).unwrap();
            assert!(sol.size() <= r, "r={r}: {}", sol.size());
        }
    }

    #[test]
    fn supports_restricted_space() {
        let data = anticorrelated(200, 4, 56);
        let space = WeakRankingSpace::new(4, 2);
        let sol = mdrrr_r_rrm(&data, 8, &space, opts(2000, 57)).unwrap();
        assert!(sol.size() <= 8);
        // Output must do reasonably on the restricted space itself.
        let est = estimate_rank_regret_seq(&data, &sol.indices, &space, 3000, 58);
        assert!(est.max_rank < data.n() / 2);
    }

    #[test]
    fn fewer_samples_weaker_quality() {
        // The no-guarantee failure mode: with very few samples the hitting
        // set misses regions. We only check it still returns something
        // valid and small.
        let data = anticorrelated(400, 4, 59);
        let sol = mdrrr_r(&data, 2, &FullSpace::new(4), opts(20, 60)).unwrap();
        assert!(!sol.indices.is_empty());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let data = independent(50, 3, 61);
        assert!(mdrrr_r(&data, 2, &FullSpace::new(4), opts(100, 62)).is_err());
    }
}
