//! **MDRRRr** — the randomized k-set baseline of Asudeh et al.
//!
//! Instead of exact region enumeration, sample directions, collect the
//! distinct top-k sets observed, and hit those. Faster
//! (`O(|W|(nd + k log k))` in the paper's accounting), works for
//! restricted spaces, but the output's rank-regret is **not** guaranteed —
//! unsampled k-set regions can be missed, which is exactly the quality gap
//! the paper's figures display at scale.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rrm_core::{Algorithm, Dataset, ExecPolicy, Parallelism, RrmError, Solution, UtilitySpace};

use crate::common::batch_topk;
use crate::mdrrr::hit_ksets;

/// Options for [`mdrrr_r`].
#[derive(Debug, Clone, Copy)]
pub struct MdrrrROptions {
    /// Number of sampled directions used to discover k-sets.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Data-parallelism for the k-set discovery scoring pass. Engine-level
    /// contexts override the default; the discovered k-set family is
    /// identical at any thread count.
    pub exec: ExecPolicy,
}

impl Default for MdrrrROptions {
    fn default() -> Self {
        Self { samples: 20_000, seed: 0x5EED, exec: ExecPolicy::default() }
    }
}

/// The sampled direction pool (deterministic per seed and sample count —
/// the prepared path caches it per sample count and reuses it for every
/// threshold).
pub(crate) fn sampled_dirs(space: &dyn UtilitySpace, opts: MdrrrROptions) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    (0..opts.samples).map(|_| space.sample_direction(&mut rng)).collect()
}

/// Distinct top-k sets observed across the given directions. The scoring
/// pass (`O(|dirs| · n · d)`) is chunked over `pol`'s threads; dedup and
/// ordering below keep the family deterministic.
pub(crate) fn ksets_from_dirs(
    data: &Dataset,
    k: usize,
    dirs: &[Vec<f64>],
    pol: Parallelism,
) -> Vec<Vec<u32>> {
    let lists = batch_topk(data, dirs, k, pol);
    let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(lists.len() / 4);
    for mut l in lists {
        l.sort_unstable();
        seen.insert(l);
    }
    // HashSet iteration order is randomized per process; the greedy cover
    // downstream tie-breaks by list order, so sort to keep the whole
    // algorithm deterministic for a fixed seed.
    let mut ksets: Vec<Vec<u32>> = seen.into_iter().collect();
    ksets.sort_unstable();
    ksets
}

/// Distinct top-k sets observed across sampled directions.
fn sample_ksets(
    data: &Dataset,
    k: usize,
    space: &dyn UtilitySpace,
    opts: MdrrrROptions,
) -> Vec<Vec<u32>> {
    ksets_from_dirs(data, k, &sampled_dirs(space, opts), opts.exec.parallelism)
}

/// MDRRRr for the RRR problem over a (possibly restricted) space. The
/// output hits every *sampled* k-set; `certified_regret` is `None`.
pub fn mdrrr_r(
    data: &Dataset,
    k: usize,
    space: &dyn UtilitySpace,
    opts: MdrrrROptions,
) -> Result<Solution, RrmError> {
    if k == 0 {
        return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
    }
    if space.dim() != data.dim() {
        return Err(RrmError::DimensionMismatch { expected: data.dim(), got: space.dim() });
    }
    let k = k.min(data.n());
    let ksets = sample_ksets(data, k, space, opts);
    let ids = hit_ksets(data.n(), &ksets);
    Solution::new(ids, None, Algorithm::MdrrrR, data)
}

/// MDRRRr adapted to RRM (doubling + binary search on `k`).
pub fn mdrrr_r_rrm(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    opts: MdrrrROptions,
) -> Result<Solution, RrmError> {
    if space.dim() != data.dim() {
        return Err(RrmError::DimensionMismatch { expected: data.dim(), got: space.dim() });
    }
    rrm_search_sampled(data.n(), r, |k| mdrrr_r(data, k, space, opts))
}

/// The doubling + binary search of [`mdrrr_r_rrm`], closure-driven so the
/// prepared path can memoize the per-threshold hitting sets. Unlike the
/// exact enumeration's search, a feasible threshold always exists (the
/// top-n hitting set is any single tuple).
pub(crate) fn rrm_search_sampled(
    n: usize,
    r: usize,
    mut probe: impl FnMut(usize) -> Result<Solution, RrmError>,
) -> Result<Solution, RrmError> {
    if r == 0 {
        return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
    }
    let mut prev_k = 0usize;
    let mut k = 1usize;
    let sol = loop {
        let sol = probe(k)?;
        if sol.size() <= r {
            break sol;
        }
        if k >= n {
            break sol; // top-n hitting set is any single tuple: always fits
        }
        prev_k = k;
        k = (k * 2).min(n);
    };
    let mut best = sol;
    let mut lo = prev_k + 1;
    let mut hi = k;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let sol = probe(mid)?;
        if sol.size() <= r {
            best = sol;
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::{FullSpace, WeakRankingSpace};
    use rrm_data::synthetic::{anticorrelated, independent};
    use rrm_eval::estimate_rank_regret_seq;

    fn opts(samples: usize, seed: u64) -> MdrrrROptions {
        MdrrrROptions { samples, seed, ..Default::default() }
    }

    #[test]
    fn hits_every_sampled_kset() {
        let data = independent(100, 3, 51);
        let sol = mdrrr_r(&data, 3, &FullSpace::new(3), opts(3000, 52)).unwrap();
        // Regret over a fresh sample shouldn't stray far above k on this
        // easy instance (no guarantee, but the mechanism must basically
        // work).
        let est = estimate_rank_regret_seq(&data, &sol.indices, &FullSpace::new(3), 3000, 53);
        assert!(est.max_rank <= 12, "estimated regret {}", est.max_rank);
        assert_eq!(sol.certified_regret, None);
        assert_eq!(sol.algorithm, Algorithm::MdrrrR);
    }

    #[test]
    fn rrm_adapter_respects_budget() {
        let data = anticorrelated(300, 3, 54);
        for r in [4usize, 8] {
            let sol = mdrrr_r_rrm(&data, r, &FullSpace::new(3), opts(2000, 55)).unwrap();
            assert!(sol.size() <= r, "r={r}: {}", sol.size());
        }
    }

    #[test]
    fn supports_restricted_space() {
        let data = anticorrelated(200, 4, 56);
        let space = WeakRankingSpace::new(4, 2);
        let sol = mdrrr_r_rrm(&data, 8, &space, opts(2000, 57)).unwrap();
        assert!(sol.size() <= 8);
        // Output must do reasonably on the restricted space itself.
        let est = estimate_rank_regret_seq(&data, &sol.indices, &space, 3000, 58);
        assert!(est.max_rank < data.n() / 2);
    }

    #[test]
    fn fewer_samples_weaker_quality() {
        // The no-guarantee failure mode: with very few samples the hitting
        // set misses regions. We only check it still returns something
        // valid and small.
        let data = anticorrelated(400, 4, 59);
        let sol = mdrrr_r(&data, 2, &FullSpace::new(4), opts(20, 60)).unwrap();
        assert!(!sol.indices.is_empty());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let data = independent(50, 3, 61);
        assert!(mdrrr_r(&data, 2, &FullSpace::new(4), opts(100, 62)).is_err());
    }
}
