//! k-set enumeration (the combinatorial engine of MDRRR).
//!
//! A *k-set* is a size-`k` subset realizable as the top-k `Φk(u, D)` of
//! some direction `u` in the non-negative orthant. The direction space
//! decomposes into cells (one per k-set); neighbouring cells differ by
//! swapping one tuple in/out, and the cell graph is connected, so BFS from
//! any realized k-set with an LP feasibility check per candidate neighbour
//! enumerates them all. This matches the paper's
//! `O(|W|·k·n·LP(d,n))` bound for MDRRR — and its warning that `|W|`'s
//! super-linear growth (`n^{d-1}·e^{Ω(√log n)}` lower bound) makes the
//! approach impractical beyond a few hundred tuples.

use std::collections::{HashSet, VecDeque};

use rrm_core::{rank, utility, Dataset, ExecPolicy};
use rrm_lp::cone::strict_feasibility_margin;

/// Margin below which a k-set region is treated as empty (boundary-only).
const STRICT_TOL: f64 = 1e-7;

/// Resource limits for the enumeration.
#[derive(Debug, Clone, Copy)]
pub struct KsetLimits {
    /// Stop after this many k-sets (`complete = false`).
    pub max_ksets: usize,
    /// Stop after this many LP feasibility checks.
    pub max_lp_calls: usize,
    /// Data-parallelism for the per-node LP feasibility batch (the
    /// enumeration's dominant cost). The BFS order, the enumerated family
    /// and the `complete` flag are identical at any thread count.
    pub exec: ExecPolicy,
}

impl Default for KsetLimits {
    fn default() -> Self {
        Self { max_ksets: 50_000, max_lp_calls: 2_000_000, exec: ExecPolicy::default() }
    }
}

/// Result of the enumeration.
#[derive(Debug, Clone)]
pub struct KsetEnumeration {
    /// Each k-set as a sorted tuple-index list.
    pub ksets: Vec<Vec<u32>>,
    /// Whether the BFS exhausted the region graph within the limits.
    pub complete: bool,
    /// Number of LP feasibility checks performed.
    pub lp_calls: usize,
}

/// Enumerate the k-sets of `data` over the cone `{u ≥ 0, cone_rows·u ≥ 0}`.
///
/// The seed k-set is the top-k of an interior direction of the cone; BFS
/// then explores single-swap neighbours, validating each candidate region
/// with an exact LP (`u` on the simplex slice, every member beating every
/// non-member by a positive margin).
pub fn enumerate_ksets(
    data: &Dataset,
    k: usize,
    cone_rows: &[Vec<f64>],
    limits: KsetLimits,
) -> KsetEnumeration {
    let n = data.n();
    let d = data.dim();
    assert!(k >= 1 && k <= n);
    if k == n {
        return KsetEnumeration {
            ksets: vec![(0..n as u32).collect()],
            complete: true,
            lp_calls: 0,
        };
    }

    // Interior seed direction: the all-ones direction nudged into the cone
    // when restricted (weak rankings etc. all contain it; fall back to an
    // LP witness otherwise).
    let seed_dir = interior_direction(d, cone_rows);
    let scores = utility::utilities(data, &seed_dir);
    let mut seed: Vec<u32> = rank::top_k(&scores, k).indices;
    seed.sort_unstable();

    let mut visited: HashSet<Vec<u32>> = HashSet::new();
    let mut queue: VecDeque<Vec<u32>> = VecDeque::new();
    let mut out: Vec<Vec<u32>> = Vec::new();
    visited.insert(seed.clone());
    queue.push_back(seed.clone());
    out.push(seed);
    let mut lp_calls = 0usize;
    let mut complete = true;
    let pol = limits.exec.parallelism;

    'bfs: while let Some(t_set) = queue.pop_front() {
        let in_set = {
            let mut m = vec![false; n];
            for &t in &t_set {
                m[t as usize] = true;
            }
            m
        };
        // All unvisited single-swap neighbours of this node, in the
        // deterministic (leave, enter) order the sequential walk used.
        // Distinct pairs always yield distinct candidates, so collecting
        // before the visited-set updates preserves the sequential
        // semantics exactly.
        let mut cands: Vec<Vec<u32>> = Vec::new();
        for &leave in &t_set {
            for enter in 0..n as u32 {
                if in_set[enter as usize] {
                    continue;
                }
                let mut cand: Vec<u32> = t_set.iter().copied().filter(|&t| t != leave).collect();
                cand.push(enter);
                cand.sort_unstable();
                if !visited.contains(&cand) {
                    cands.push(cand);
                }
            }
        }
        // LP feasibility in parallel waves. Each wave is bounded by BOTH
        // remaining budgets — LP calls and k-set headroom — so a wave
        // never runs an LP the capped sequential walk would have skipped
        // (feasible picks per wave fit the headroom by construction, and
        // infeasible candidates never consume headroom). Wave composition
        // depends only on the budgets, never on the thread count, and
        // results are applied in candidate order, so the enumeration is
        // bit-identical at any parallelism.
        let mut idx = 0usize;
        while idx < cands.len() {
            if lp_calls >= limits.max_lp_calls || out.len() >= limits.max_ksets {
                complete = false;
                break 'bfs;
            }
            let wave = (limits.max_lp_calls - lp_calls).min(limits.max_ksets - out.len());
            let batch_end = (idx + wave).min(cands.len());
            let batch = &cands[idx..batch_end];
            lp_calls += batch.len();
            let feasible =
                rrm_par::par_map(batch, pol, |cand| region_nonempty(data, cand, cone_rows));
            for (cand, ok) in batch.iter().zip(feasible) {
                if ok {
                    visited.insert(cand.clone());
                    queue.push_back(cand.clone());
                    out.push(cand.clone());
                } else {
                    visited.insert(cand.clone());
                }
            }
            idx = batch_end;
        }
    }
    KsetEnumeration { ksets: out, complete, lp_calls }
}

/// Is there a direction in the cone for which every member of `t_set`
/// strictly outscores every non-member?
fn region_nonempty(data: &Dataset, t_set: &[u32], cone_rows: &[Vec<f64>]) -> bool {
    let n = data.n();
    let d = data.dim();
    let mut member = vec![false; n];
    for &t in t_set {
        member[t as usize] = true;
    }
    let mut strict_rows = Vec::with_capacity(t_set.len() * (n - t_set.len()));
    for &a in t_set {
        let ra = data.row(a as usize);
        for (b, &is_member) in member.iter().enumerate() {
            if is_member {
                continue;
            }
            let rb = data.row(b);
            let row: Vec<f64> = (0..d).map(|j| ra[j] - rb[j]).collect();
            strict_rows.push(row);
        }
    }
    matches!(
        strict_feasibility_margin(d, &strict_rows, cone_rows),
        Some(z) if z > STRICT_TOL
    )
}

/// An interior direction of the cone (uniform direction when it fits,
/// otherwise an LP witness pushed off every facet).
fn interior_direction(d: usize, cone_rows: &[Vec<f64>]) -> Vec<f64> {
    let uniform = vec![1.0 / (d as f64).sqrt(); d];
    if cone_rows.iter().all(|row| utility::dot(row, &uniform) >= 0.0) {
        return uniform;
    }
    rrm_lp::cone::strict_feasibility_witness(d, cone_rows, &[], 1e-9)
        .expect("restricted cone has an interior direction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rrm_core::sampling::orthant_direction;
    use rrm_core::{FullSpace, UtilitySpace, WeakRankingSpace};
    use rrm_data::synthetic::independent;

    /// Brute-force reference: distinct top-k sets over many sampled
    /// directions (a subset of the true k-set family).
    fn sampled_ksets(
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        samples: usize,
        seed: u64,
    ) -> HashSet<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut found = HashSet::new();
        for _ in 0..samples {
            let u = space.sample_direction(&mut rng);
            let scores = utility::utilities(data, &u);
            let mut t = rank::top_k(&scores, k).indices;
            t.sort_unstable();
            found.insert(t);
        }
        found
    }

    #[test]
    fn finds_all_sampled_ksets_full_space() {
        let data = independent(25, 3, 31);
        for k in [1usize, 2, 4] {
            let enumerated = enumerate_ksets(&data, k, &[], KsetLimits::default());
            assert!(enumerated.complete);
            let set: HashSet<Vec<u32>> = enumerated.ksets.iter().cloned().collect();
            let sampled = sampled_ksets(&data, k, &FullSpace::new(3), 5000, 32);
            for s in &sampled {
                assert!(set.contains(s), "k={k}: sampled k-set {s:?} not enumerated");
            }
            // The enumeration may contain more (sampling missed some) but
            // never fewer.
            assert!(set.len() >= sampled.len());
        }
    }

    #[test]
    fn every_enumerated_kset_is_realizable() {
        // Soundness: every returned k-set must actually be a top-k set of
        // some direction (the LP said so; cross-check geometrically).
        let data = independent(15, 2, 33);
        let e = enumerate_ksets(&data, 3, &[], KsetLimits::default());
        assert!(e.complete);
        for t_set in &e.ksets {
            assert!(region_nonempty(&data, t_set, &[]), "{t_set:?} should have a non-empty region");
        }
    }

    #[test]
    fn restricted_cone_enumerates_fewer() {
        let data = independent(20, 3, 34);
        let full = enumerate_ksets(&data, 3, &[], KsetLimits::default());
        let rows = WeakRankingSpace::new(3, 2).cone_rows().unwrap();
        let restricted = enumerate_ksets(&data, 3, &rows, KsetLimits::default());
        assert!(restricted.complete);
        assert!(
            restricted.ksets.len() <= full.ksets.len(),
            "restricted {} vs full {}",
            restricted.ksets.len(),
            full.ksets.len()
        );
        // All sampled restricted k-sets are found.
        let sampled = sampled_ksets(&data, 3, &WeakRankingSpace::new(3, 2), 3000, 35);
        let set: HashSet<Vec<u32>> = restricted.ksets.iter().cloned().collect();
        for s in &sampled {
            assert!(set.contains(s));
        }
    }

    #[test]
    fn k_equals_n_is_trivial() {
        let data = independent(8, 2, 36);
        let e = enumerate_ksets(&data, 8, &[], KsetLimits::default());
        assert_eq!(e.ksets.len(), 1);
        assert_eq!(e.ksets[0].len(), 8);
    }

    #[test]
    fn limits_truncate_gracefully() {
        let data = independent(40, 3, 37);
        let e = enumerate_ksets(
            &data,
            5,
            &[],
            KsetLimits { max_ksets: 3, max_lp_calls: 1_000_000, ..Default::default() },
        );
        assert!(!e.complete);
        assert!(e.ksets.len() <= 3 + 1); // seed + up to limit
    }

    #[test]
    fn kset_enumeration_work_grows_with_n() {
        // The scalability wall: enumeration *work* (LP feasibility checks)
        // grows quickly with n. The raw k-set count is not monotone at
        // small n (a few strong tuples can dominate the top-k almost
        // everywhere), so the work is the robust signal.
        let small = enumerate_ksets(&independent(10, 3, 38), 3, &[], KsetLimits::default());
        let large = enumerate_ksets(&independent(20, 3, 38), 3, &[], KsetLimits::default());
        assert!(small.complete && large.complete);
        assert!(!small.ksets.is_empty() && !large.ksets.is_empty());
        assert!(
            large.lp_calls > 2 * small.lp_calls,
            "n = 20 took {} LP calls vs {} at n = 10",
            large.lp_calls,
            small.lp_calls
        );
    }

    #[test]
    fn interior_direction_respects_cone() {
        let rows = WeakRankingSpace::new(4, 2).cone_rows().unwrap();
        let u = interior_direction(4, &rows);
        for row in &rows {
            assert!(utility::dot(row, &u) >= 0.0);
        }
        let _ = orthant_direction(3, &mut StdRng::seed_from_u64(0)); // silence unused import on some cfgs
    }
}
