//! **MDRC** — the space-partitioning heuristic baseline of Asudeh et al.
//!
//! Partition the polar angle space into up to `r` cells (adaptive binary
//! splits of the widest axis, refining the cell whose representative looks
//! worst) and pick per cell the tuple with the best worst-case rank over
//! the cell's probe directions (corners + center). Fast and scalable, but
//! the probes say nothing about the cell's interior, so the output has no
//! rank-regret guarantee — on clustered data (the Weather experiment,
//! Fig. 28) it degrades by orders of magnitude, exactly the behaviour the
//! paper reports.
//!
//! Restricted spaces are rejected, matching Table III ("Suitable for
//! RRRM: No").

use rrm_core::{
    rank, Algorithm, AnytimeSearch, Bounds, Cutoff, Dataset, ExecPolicy, RrmError, Solution,
    TerminatedBy, UtilitySpace,
};
use rrm_geom::polar::angles_to_direction;

/// Options for [`mdrc`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MdrcOptions {
    /// Extra probe directions per cell in addition to the `2^(d-1)`
    /// corners and the center (sampled on a fixed sub-grid).
    pub probes_per_axis: usize,
    /// Data-parallelism for the per-cell probe evaluations. Engine-level
    /// contexts override the default; representatives are identical at
    /// any thread count.
    pub exec: ExecPolicy,
}

#[derive(Debug, Clone)]
struct Cell {
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Best tuple for this cell and its worst probe rank.
    representative: u32,
    worst_rank: usize,
}

/// MDRC for RRM: a size ≤ `r` set chosen by recursive angle-space
/// partitioning. `certified_regret` is `None` (no guarantee).
pub fn mdrc(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    opts: MdrcOptions,
) -> Result<Solution, RrmError> {
    mdrc_anytime(data, r, space, opts, Cutoff::None, None)
}

/// [`mdrc`] as an anytime refinement: every refinement step improves the
/// answer, so a cutoff simply returns the cells refined so far (fewer,
/// coarser representatives — still a valid size ≤ `r` set). MDRC probes
/// say nothing about cell interiors, so no rank bounds are attached; a
/// cut-off run carries only its [`TerminatedBy`] reason. `eval_budget`
/// caps the number of cell evaluations under
/// [`Cutoff::CounterBudget`].
pub fn mdrc_anytime(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    opts: MdrcOptions,
    cutoff: Cutoff,
    eval_budget: Option<usize>,
) -> Result<Solution, RrmError> {
    if !space.is_full() {
        return Err(RrmError::Unsupported(
            "MDRC does not support restricted spaces (Table III)".into(),
        ));
    }
    if data.dim() < 2 {
        return Err(RrmError::Unsupported("MDRC requires d >= 2".into()));
    }
    if r == 0 {
        return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
    }
    let mut search = AnytimeSearch::new(cutoff, eval_budget);
    // The root cell is always evaluated (the answer must be non-empty);
    // it still counts against the evaluation budget.
    search.take_probe();
    search.note_node();
    let mut terminated = TerminatedBy::Completed;
    let ad = data.dim() - 1; // angle-space dimensionality
    let root = evaluate_cell(data, &vec![0.0; ad], &vec![std::f64::consts::FRAC_PI_2; ad], opts);
    let mut cells = vec![root];
    // Refine until r cells exist (or cells stop being splittable).
    while cells.len() < r {
        // No incumbent bounds to tighten (MDRC certifies nothing), so the
        // gap check is inert; wall-clock cutoffs still fire here.
        if let Some(t) = search.should_stop(Bounds { lower: 1, upper: 1 }) {
            terminated = t;
            break;
        }
        // Each split evaluates two child cells.
        if !search.take_probe() || !search.take_probe() {
            terminated = TerminatedBy::Counter;
            break;
        }
        // Worst representative first.
        let (idx, _) =
            cells.iter().enumerate().max_by_key(|(_, c)| c.worst_rank).expect("non-empty cells");
        let cell = cells.swap_remove(idx);
        // Split along the widest angle axis.
        let axis = (0..ad)
            .max_by(|&a, &b| {
                let wa = cell.hi[a] - cell.lo[a];
                let wb = cell.hi[b] - cell.lo[b];
                wa.partial_cmp(&wb).expect("finite widths")
            })
            .expect("at least one axis");
        let width = cell.hi[axis] - cell.lo[axis];
        if width < 1e-6 {
            cells.push(cell); // too narrow to split further
            break;
        }
        let mid = 0.5 * (cell.lo[axis] + cell.hi[axis]);
        let mut lo_hi = cell.hi.clone();
        lo_hi[axis] = mid;
        let mut hi_lo = cell.lo.clone();
        hi_lo[axis] = mid;
        cells.push(evaluate_cell(data, &cell.lo, &lo_hi, opts));
        cells.push(evaluate_cell(data, &hi_lo, &cell.hi, opts));
        search.note_node();
        search.note_node();
    }
    let ids: Vec<u32> = cells.iter().map(|c| c.representative).collect();
    Solution::new(ids, None, Algorithm::Mdrc, data)
        .map(|s| s.with_termination(terminated).with_report(search.report))
}

/// Alias for symmetry with the other baselines' RRM adapters (MDRC is a
/// direct RRM heuristic — no threshold search needed).
pub fn mdrc_rrm(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    opts: MdrcOptions,
) -> Result<Solution, RrmError> {
    mdrc(data, r, space, opts)
}

/// Probe the cell (corners, center and optional sub-grid) and pick the
/// tuple minimizing the maximum rank across probes.
fn evaluate_cell(data: &Dataset, lo: &[f64], hi: &[f64], opts: MdrcOptions) -> Cell {
    let ad = lo.len();
    let mut probes: Vec<Vec<f64>> = Vec::new();
    // Corners: 2^ad angle vectors.
    for mask in 0..(1u32 << ad) {
        let angles: Vec<f64> =
            (0..ad).map(|i| if mask & (1 << i) != 0 { hi[i] } else { lo[i] }).collect();
        probes.push(angles);
    }
    // Center.
    probes.push(lo.iter().zip(hi).map(|(a, b)| 0.5 * (a + b)).collect());
    // Optional sub-grid along each axis.
    for extra in 1..=opts.probes_per_axis {
        let f = extra as f64 / (opts.probes_per_axis + 1) as f64;
        probes.push(lo.iter().zip(hi).map(|(a, b)| a + f * (b - a)).collect());
    }

    // Worst rank per tuple across probes: each chunk of probes streams
    // its max updates into one n-length vector (the `O(n log n)` sorts
    // dominate), then chunk vectors merge elementwise — `max` commutes,
    // so the result is identical at any thread count, and transient
    // memory is one vector per chunk rather than one per probe. Scoring
    // runs through the blocked SoA kernel, one scratch per chunk.
    let dirs: Vec<Vec<f64>> = probes.iter().map(|angles| angles_to_direction(angles)).collect();
    let n = data.n();
    let pol = opts.exec.parallelism;
    let soa = data.soa();
    let chunk = rrm_par::adaptive_chunk(dirs.len(), n * data.dim());
    let worst = rrm_par::par_map_reduce(
        &dirs,
        chunk,
        pol,
        |_, dirs_chunk| {
            let mut worst = vec![0usize; n];
            let mut scratch = rrm_core::ScoreScratch::new();
            rrm_core::kernel::for_each_scores(soa, dirs_chunk, &mut scratch, |_, scores| {
                let order = rank::argsort_desc(scores);
                for (pos, &t) in order.iter().enumerate() {
                    if pos + 1 > worst[t as usize] {
                        worst[t as usize] = pos + 1;
                    }
                }
            });
            worst
        },
        |mut a, b| {
            for (w, r) in a.iter_mut().zip(b) {
                if r > *w {
                    *w = r;
                }
            }
            a
        },
    )
    .expect("cells always have probes");
    let representative =
        (0..n as u32).min_by_key(|&t| worst[t as usize]).expect("non-empty dataset");
    Cell {
        lo: lo.to_vec(),
        hi: hi.to_vec(),
        representative,
        worst_rank: worst[representative as usize],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::{FullSpace, WeakRankingSpace};
    use rrm_data::synthetic::{correlated, independent};
    use rrm_eval::estimate_rank_regret_seq;

    #[test]
    fn respects_budget_and_runs() {
        let data = independent(500, 4, 71);
        for r in [1usize, 5, 10] {
            let sol = mdrc(&data, r, &FullSpace::new(4), MdrcOptions::default()).unwrap();
            assert!(sol.size() <= r);
            assert_eq!(sol.certified_regret, None);
        }
    }

    #[test]
    fn rejects_restricted_space() {
        let data = independent(50, 3, 72);
        let err = mdrc(&data, 5, &WeakRankingSpace::new(3, 1), MdrcOptions::default());
        assert!(matches!(err, Err(RrmError::Unsupported(_))));
    }

    #[test]
    fn reasonable_on_easy_data() {
        // On correlated data a single good tuple dominates: MDRC should
        // find a low-regret set.
        let data = correlated(1000, 3, 73);
        let sol = mdrc(&data, 5, &FullSpace::new(3), MdrcOptions::default()).unwrap();
        let est = estimate_rank_regret_seq(&data, &sol.indices, &FullSpace::new(3), 5000, 74);
        assert!(est.max_rank <= 50, "regret {} on correlated data", est.max_rank);
    }

    #[test]
    fn probes_improve_or_match() {
        let data = independent(400, 3, 75);
        let coarse = mdrc(
            &data,
            6,
            &FullSpace::new(3),
            MdrcOptions { probes_per_axis: 0, ..Default::default() },
        )
        .unwrap();
        let fine = mdrc(
            &data,
            6,
            &FullSpace::new(3),
            MdrcOptions { probes_per_axis: 3, ..Default::default() },
        )
        .unwrap();
        let ec = estimate_rank_regret_seq(&data, &coarse.indices, &FullSpace::new(3), 4000, 76);
        let ef = estimate_rank_regret_seq(&data, &fine.indices, &FullSpace::new(3), 4000, 76);
        // More probes usually help; never catastrophically worse.
        assert!(ef.max_rank <= 3 * ec.max_rank.max(3));
    }

    #[test]
    fn two_d_works() {
        let data = independent(200, 2, 77);
        let sol = mdrc(&data, 4, &FullSpace::new(2), MdrcOptions::default()).unwrap();
        assert!(sol.size() <= 4);
    }
}
