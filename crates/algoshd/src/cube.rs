//! **CUBE** — the original RMS algorithm (Nanongkai et al., VLDB 2010,
//! the paper's reference \[19\]).
//!
//! CUBE partitions the first `d − 1` attributes' unit cube into
//! `s^(d-1)` equal cells and keeps, per non-empty cell, the tuple with the
//! largest value on the last attribute, after seeding the output with the
//! per-attribute maxima. For normalized data (per-attribute maximum 1)
//! this guarantees a maximum regret-*ratio* of at most `(d−1)/s`: the
//! cell winner loses at most `1/s` per leading attribute against the true
//! top-1, while the seeds keep the denominator at `max_i u[i]` or better.
//! (The published analysis sharpens the constant to `(d−1)/(s+d−1)`.)
//! Either way it is an `n`-independent bound — exactly the kind Theorem 2
//! proves *cannot exist* for rank-regret. CUBE is included as the
//! historical baseline that motivated the regret-minimization line, and as
//! a second witness (next to MDRMS) that ratio-optimal sets can be
//! rank-regret disasters.

use rrm_core::{basis_indices, Algorithm, Dataset, RrmError, Solution};

/// Run CUBE with output budget `r` (which must cover the `d` seeds plus at
/// least one cell). Returns a set of at most `r` tuples; no rank-regret
/// certificate (the guarantee is on the regret-ratio).
pub fn cube(data: &Dataset, r: usize) -> Result<Solution, RrmError> {
    let d = data.dim();
    let n = data.n();
    if d < 2 {
        return Err(RrmError::Unsupported("CUBE requires d >= 2".into()));
    }
    let basis = basis_indices(data);
    if r < basis.len() + 1 {
        return Err(RrmError::OutputSizeTooSmall { requested: r, minimum: basis.len() + 1 });
    }
    let s = side_length(r - basis.len(), d);

    // Cell -> best tuple by the last attribute.
    let cells = s.pow((d - 1) as u32);
    let mut best: Vec<Option<u32>> = vec![None; cells];
    for i in 0..n {
        let row = data.row(i);
        let mut cell = 0usize;
        for &v in &row[..d - 1] {
            // Values at exactly 1.0 fold into the last cell.
            let c = ((v.clamp(0.0, 1.0) * s as f64) as usize).min(s - 1);
            cell = cell * s + c;
        }
        let replace = match best[cell] {
            None => true,
            Some(b) => row[d - 1] > data.row(b as usize)[d - 1],
        };
        if replace {
            best[cell] = Some(i as u32);
        }
    }

    let mut ids: Vec<u32> = basis;
    ids.extend(best.into_iter().flatten());
    ids.sort_unstable();
    ids.dedup();
    ids.truncate(r);
    Solution::new(ids, None, Algorithm::Mdrms, data)
}

/// Maximum regret-ratio this implementation guarantees for data whose
/// per-attribute maxima are 1 (`Dataset::normalize`): `(d − 1) / s`, with
/// `s` the side length a budget of `r` buys (assuming the usual `|B| = d`).
pub fn cube_ratio_bound(r: usize, d: usize) -> f64 {
    let s = side_length(r.saturating_sub(d).max(1), d);
    (d as f64 - 1.0) / s as f64
}

/// Cells per axis: the largest `s` with `s^(d-1) ≤ budget`.
fn side_length(budget: usize, d: usize) -> usize {
    let budget = budget.max(1);
    let mut s = (budget as f64).powf(1.0 / (d as f64 - 1.0)).floor() as usize;
    s = s.max(1);
    // Floating-point roundoff can land one off in either direction.
    while (s + 1).pow((d - 1) as u32) <= budget {
        s += 1;
    }
    while s > 1 && s.pow((d - 1) as u32) > budget {
        s -= 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::FullSpace;
    use rrm_data::synthetic::{anticorrelated, independent};
    use rrm_eval::{estimate_rank_regret_seq, estimate_regret_ratio};

    #[test]
    fn side_lengths() {
        assert_eq!(side_length(9, 3), 3); // 3^2 = 9
        assert_eq!(side_length(8, 3), 2); // 3^2 > 8
        assert_eq!(side_length(100, 2), 100);
        assert_eq!(side_length(1, 4), 1);
        assert_eq!(side_length(26, 3), 5); // 5^2 = 25 <= 26 < 36
    }

    #[test]
    fn ratio_bound_holds_on_random_data() {
        // The VLDB 2010 guarantee: max regret-ratio ≤ (d−1)/(s+d−1) for
        // data in the unit cube.
        for (n, d, r, seed) in [(500usize, 2usize, 12usize, 1u64), (800, 3, 20, 2)] {
            let data = independent(n, d, seed);
            let sol = cube(&data, r).unwrap();
            assert!(sol.size() <= r);
            let ratio =
                estimate_regret_ratio(&data, &sol.indices, &FullSpace::new(d), 20_000, 3).max_ratio;
            // 5% slack: random data's attribute maxima fall just short of
            // the exact 1.0 the bound's denominator assumes.
            let bound = cube_ratio_bound(r, d) * 1.05;
            assert!(ratio <= bound + 1e-9, "n={n} d={d} r={r}: ratio {ratio} > bound {bound}");
        }
    }

    #[test]
    fn bigger_budget_tightens_the_bound() {
        assert!(cube_ratio_bound(40, 3) < cube_ratio_bound(10, 3));
        assert!(cube_ratio_bound(100, 2) < cube_ratio_bound(12, 2));
    }

    #[test]
    fn rank_regret_can_still_collapse() {
        // Ratio-optimal is not rank-optimal: on anti-correlated data the
        // rank-regret of CUBE's output scales with n (no n-independent
        // bound exists for rank — Theorem 2), so it grows far beyond the
        // HD algorithms' outputs.
        let data = anticorrelated(4_000, 3, 4);
        let sol = cube(&data, 12).unwrap();
        let rank =
            estimate_rank_regret_seq(&data, &sol.indices, &FullSpace::new(3), 10_000, 5).max_rank;
        let hdrrm = crate::hdrrm(
            &data,
            12,
            &FullSpace::new(3),
            crate::HdrrmOptions { m_override: Some(2_000), ..Default::default() },
        )
        .unwrap();
        let rank_h =
            estimate_rank_regret_seq(&data, &hdrrm.indices, &FullSpace::new(3), 10_000, 5).max_rank;
        assert!(rank >= rank_h, "CUBE rank {rank} unexpectedly beats HDRRM {rank_h}");
    }

    #[test]
    fn rejects_tiny_budget() {
        let data = independent(50, 3, 6);
        assert!(cube(&data, 2).is_err());
    }

    #[test]
    fn one_dimensional_rejected() {
        let data = Dataset::from_rows(&[[0.4], [0.9]]).unwrap();
        assert!(cube(&data, 2).is_err());
    }
}
