//! **MDRMS** — the regret-ratio (RMS) baseline, after Asudeh et al.'s
//! compact-maxima algorithm.
//!
//! Greedily builds a size-`r` set minimizing the maximum *regret-ratio*
//! over a discretized function space: at each step it adds the tuple whose
//! inclusion lowers the current worst ratio the most. This is the wrong
//! objective for rank-regret — the paper's point — so the output's rank
//! behaviour can collapse (Figures 13–21: "MDRMS fails to have a
//! reasonable output rank-regret"), and it is *not shift invariant*.
//!
//! The original MDRMS partitions the function space geometrically; this
//! re-implementation discretizes by sampling, which preserves the
//! objective, the speed profile and both failure modes (see DESIGN.md).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rrm_core::{
    utility, Algorithm, Dataset, ExecPolicy, Parallelism, RrmError, Solution, UtilitySpace,
};

use crate::common::batch_top1_scores;

/// Options for [`mdrms`].
#[derive(Debug, Clone, Copy)]
pub struct MdrmsOptions {
    /// Number of sampled directions discretizing the function space.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cap on candidate tuples scanned per greedy round (the skyline is
    /// used when smaller; otherwise an even subsample). Keeps the
    /// `O(r · candidates · samples)` cost bounded.
    pub max_candidates: usize,
    /// Data-parallelism for the per-round candidate scan and the top-1
    /// scoring pass. Engine-level contexts override the default; picks
    /// are identical at any thread count.
    pub exec: ExecPolicy,
}

impl Default for MdrmsOptions {
    fn default() -> Self {
        Self { samples: 2_000, seed: 0x3A15, max_candidates: 20_000, exec: ExecPolicy::default() }
    }
}

/// Greedy RMS over a sampled function space. Returns a size ≤ `r` set;
/// `certified_regret` is `None` (it does not even optimize rank).
pub fn mdrms(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    opts: MdrmsOptions,
) -> Result<Solution, RrmError> {
    if r == 0 {
        return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
    }
    if space.dim() != data.dim() {
        return Err(RrmError::DimensionMismatch { expected: data.dim(), got: space.dim() });
    }
    let mut greedy = GreedyRms::new(data, space, opts);
    let chosen = greedy.prefix(data, r);
    Solution::new(chosen, None, Algorithm::Mdrms, data)
}

/// Resumable greedy state: each pick depends only on earlier picks, so one
/// growing prefix answers every size budget — the one-shot [`mdrms`] runs
/// it once, the prepared path keeps it alive and extends it on demand
/// (`mdrms(r)` is always the first `r` picks of `mdrms(r')` for `r' ≥ r`).
pub(crate) struct GreedyRms {
    dirs: Vec<Vec<f64>>,
    top1: Vec<f64>,
    candidates: Vec<u32>,
    best_scores: Vec<f64>,
    in_set: Vec<bool>,
    chosen: Vec<u32>,
    /// Set when no candidate remains or the worst ratio reached zero —
    /// further budget cannot add picks.
    done: bool,
    /// Thread policy for the per-round candidate scans.
    pol: Parallelism,
}

impl GreedyRms {
    pub(crate) fn new(data: &Dataset, space: &dyn UtilitySpace, opts: MdrmsOptions) -> Self {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let dirs: Vec<Vec<f64>> =
            (0..opts.samples).map(|_| space.sample_direction(&mut rng)).collect();
        let top1 = batch_top1_scores(data, &dirs, opts.exec.parallelism);

        // Candidates: skyline when affordable, else an even subsample of it.
        let sky = rrm_skyline::skyline(data);
        let candidates: Vec<u32> = if sky.len() <= opts.max_candidates {
            sky
        } else {
            let step = sky.len() as f64 / opts.max_candidates as f64;
            (0..opts.max_candidates).map(|i| sky[(i as f64 * step) as usize]).collect()
        };

        let best_scores = vec![f64::NEG_INFINITY; dirs.len()];
        let in_set = vec![false; data.n()];
        Self {
            dirs,
            top1,
            candidates,
            best_scores,
            in_set,
            chosen: Vec::new(),
            done: false,
            pol: opts.exec.parallelism,
        }
    }

    /// Extend the greedy sequence to `r` picks (or until it saturates) and
    /// return the first `min(r, picks)` of them.
    pub(crate) fn prefix(&mut self, data: &Dataset, r: usize) -> Vec<u32> {
        while self.chosen.len() < r && !self.done {
            let pick = best_addition(
                data,
                &self.candidates,
                &self.dirs,
                &self.top1,
                &self.best_scores,
                &self.in_set,
                self.pol,
            );
            let Some(t) = pick else {
                self.done = true;
                break;
            };
            self.in_set[t as usize] = true;
            self.chosen.push(t);
            let row = data.row(t as usize);
            for (b, u) in self.best_scores.iter_mut().zip(&self.dirs) {
                let s = utility::dot(u, row);
                if s > *b {
                    *b = s;
                }
            }
            // Early exit: ratio already zero everywhere.
            if worst_ratio(&self.best_scores, &self.top1) <= 0.0 {
                self.done = true;
            }
        }
        self.chosen[..r.min(self.chosen.len())].to_vec()
    }
}

fn worst_ratio(best_scores: &[f64], top1: &[f64]) -> f64 {
    best_scores
        .iter()
        .zip(top1)
        .map(|(&b, &t)| if t > 0.0 { ((t - b) / t).clamp(0.0, 1.0) } else { 0.0 })
        .fold(0.0, f64::max)
}

/// The candidate whose addition minimizes the resulting worst ratio,
/// chunked over `pol`'s worker threads.
///
/// The per-chunk winner is merged through a strict total order on
/// `(ratio, index)`, so the pick is identical at any thread count (and to
/// a plain sequential scan).
fn best_addition(
    data: &Dataset,
    candidates: &[u32],
    dirs: &[Vec<f64>],
    top1: &[f64],
    best_scores: &[f64],
    in_set: &[bool],
    pol: Parallelism,
) -> Option<u32> {
    let chunk = candidates.len().div_ceil(pol.threads().max(1)).max(1);
    rrm_par::par_map_reduce(
        candidates,
        chunk,
        pol,
        |_, cand_chunk| {
            let mut local_best: Option<(f64, u32)> = None;
            for &t in cand_chunk {
                if in_set[t as usize] {
                    continue;
                }
                let row = data.row(t as usize);
                let mut worst = 0.0f64;
                for ((u, &b), &w1) in dirs.iter().zip(best_scores).zip(top1) {
                    let s = utility::dot(u, row).max(b);
                    let ratio = if w1 > 0.0 { ((w1 - s) / w1).clamp(0.0, 1.0) } else { 0.0 };
                    if ratio > worst {
                        worst = ratio;
                    }
                }
                let better = match local_best {
                    None => true,
                    Some((bw, bt)) => worst < bw || (worst == bw && t < bt),
                };
                if better {
                    local_best = Some((worst, t));
                }
            }
            local_best
        },
        |a, b| match (a, b) {
            (None, b) => b,
            (a, None) => a,
            (Some((aw, at)), Some((bw, bt))) => {
                if bw < aw || (bw == aw && bt < at) {
                    Some((bw, bt))
                } else {
                    Some((aw, at))
                }
            }
        },
    )
    .flatten()
    .map(|(_, t)| t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::FullSpace;
    use rrm_data::synthetic::independent;
    use rrm_eval::{estimate_rank_regret_seq, estimate_regret_ratio};

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn table1_r1_picks_t4() {
        // "the solutions for RRM and RMS are {t3} and {t4} respectively".
        let sol = mdrms(&table1(), 1, &FullSpace::new(2), MdrmsOptions::default()).unwrap();
        assert_eq!(sol.indices, vec![3], "RMS picks t4 (lowest regret-ratio)");
    }

    #[test]
    fn table1_shift_changes_answer() {
        // Figure 2's +4 shift on A2 makes RMS chase A1 and pick t7 —
        // the paper's shift-invariance counterexample.
        let shifted = table1().shift(&[0.0, 4.0]);
        let sol = mdrms(&shifted, 1, &FullSpace::new(2), MdrmsOptions::default()).unwrap();
        assert_eq!(sol.indices, vec![6], "after the shift RMS picks t7");
    }

    #[test]
    fn ratio_decreases_with_r() {
        let data = independent(500, 3, 81);
        let mut prev = f64::INFINITY;
        for r in [1usize, 3, 6] {
            let sol = mdrms(&data, r, &FullSpace::new(3), MdrmsOptions::default()).unwrap();
            let e = estimate_regret_ratio(&data, &sol.indices, &FullSpace::new(3), 4000, 82);
            assert!(e.max_ratio <= prev + 0.02, "r={r}: {} > {prev}", e.max_ratio);
            prev = e.max_ratio;
        }
    }

    #[test]
    fn optimizes_ratio_not_rank() {
        // MDRMS should get a decent ratio; its rank-regret is whatever it
        // is (often bad) — we only check it returns a full-size answer.
        let data = independent(800, 4, 83);
        let sol = mdrms(&data, 8, &FullSpace::new(4), MdrmsOptions::default()).unwrap();
        assert!(sol.size() <= 8);
        let ratio =
            estimate_regret_ratio(&data, &sol.indices, &FullSpace::new(4), 4000, 84).max_ratio;
        assert!(ratio < 0.25, "greedy RMS ratio too weak: {ratio}");
        let _rank =
            estimate_rank_regret_seq(&data, &sol.indices, &FullSpace::new(4), 2000, 85).max_rank;
    }

    #[test]
    fn rejects_zero_budget() {
        let data = independent(10, 2, 86);
        assert!(mdrms(&data, 0, &FullSpace::new(2), MdrmsOptions::default()).is_err());
    }
}
