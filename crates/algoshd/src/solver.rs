//! [`Solver`] implementations for the high-dimensional algorithms:
//! HDRRM (the paper's) and the Table III baselines MDRRR, MDRRRr, MDRC
//! and MDRMS.
//!
//! Each solver owns its options struct; the engine-facing [`Budget`] caps
//! are mapped onto whatever machinery the algorithm actually has —
//! sample counts for the randomized ones, k-set/LP limits for MDRRR —
//! and ignored where they do not apply.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rrm_core::{
    cache_bounded, rrr_via_rrm_search, rrr_via_rrm_search_with, Algorithm, AnytimeSearch,
    AppliedUpdate, Budget, Cutoff, Dataset, PreparedSolver, RrmError, Solution, Solver, SolverCtx,
    UtilitySpace, PREPARED_CACHE_CAP,
};

use crate::anytime::threshold_search;
use crate::hdrrm::{hdrrm_anytime, hdrrr, HdrrmOptions, PreparedHdrrm};
use crate::ksets::KsetLimits;
use crate::mdrc::{mdrc_anytime, MdrcOptions};
use crate::mdrms::{mdrms, GreedyRms, MdrmsOptions};
use crate::mdrrr::{hit_ksets, mdrrr, mdrrr_rrm_anytime, rrm_search_with};
use crate::mdrrr_r::{
    ksets_from_dirs, mdrrr_r, mdrrr_r_rrm_anytime, sampled_dirs, MdrrrROptions, SampledSearch,
};

/// **HDRRM** (paper Section V): discretize-and-cover with a certificate
/// over the discretized direction set (Theorem 10).
#[derive(Debug, Clone, Default)]
pub struct HdrrmSolver {
    pub options: HdrrmOptions,
}

impl HdrrmSolver {
    pub fn new(options: HdrrmOptions) -> Self {
        Self { options }
    }

    fn budgeted(&self, budget: &Budget, ctx: &SolverCtx) -> HdrrmOptions {
        let mut options = self.options;
        if let Some(m) = budget.samples {
            options.m_override = Some(m);
        }
        options.exec = ctx.exec.or(options.exec);
        options
    }
}

impl Solver for HdrrmSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Hdrrm
    }

    fn solve_rrm_ctx(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        hdrrm_anytime(
            data,
            r,
            space,
            self.budgeted(budget, ctx),
            budget.effective_cutoff(),
            budget.max_enumerations,
        )
    }

    fn solve_rrr_ctx(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        hdrrr(data, k, space, self.budgeted(budget, ctx))
    }

    fn prepare_ctx(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
        ctx: &SolverCtx,
    ) -> Result<Box<dyn PreparedSolver>, RrmError> {
        self.ensure_supported(data, space)?;
        let mut options = self.options;
        options.exec = ctx.exec.or(options.exec);
        Ok(Box::new(PreparedHdrrmSolver { inner: PreparedHdrrm::new(data, space, options)? }))
    }
}

/// [`PreparedHdrrm`] behind the [`PreparedSolver`] contract.
struct PreparedHdrrmSolver {
    inner: PreparedHdrrm,
}

impl PreparedSolver for PreparedHdrrmSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Hdrrm
    }

    fn dataset(&self) -> &Dataset {
        self.inner.dataset()
    }

    fn solve_rrm(&self, r: usize, budget: &Budget) -> Result<Solution, RrmError> {
        self.inner.solve_rrm(r, budget)
    }

    fn solve_rrr(&self, k: usize, budget: &Budget) -> Result<Solution, RrmError> {
        self.inner.solve_rrr(k, budget)
    }

    fn apply_update(&self, upd: &AppliedUpdate) -> Option<Box<dyn PreparedSolver>> {
        Some(Box::new(PreparedHdrrmSolver { inner: self.inner.apply_update(upd) }))
    }
}

/// **MDRRR** (Asudeh et al.): exact k-set enumeration — certified, but
/// full-space only and practical only on small inputs. The [`Budget`]
/// enumeration/LP caps map directly onto [`KsetLimits`].
#[derive(Debug, Clone, Default)]
pub struct MdrrrSolver {
    pub limits: KsetLimits,
}

impl MdrrrSolver {
    pub fn new(limits: KsetLimits) -> Self {
        Self { limits }
    }

    fn budgeted(&self, budget: &Budget, ctx: &SolverCtx) -> KsetLimits {
        let mut limits = self.limits;
        if let Some(cap) = budget.max_enumerations {
            limits.max_ksets = limits.max_ksets.min(cap);
        }
        if let Some(cap) = budget.max_lp_calls {
            limits.max_lp_calls = limits.max_lp_calls.min(cap);
        }
        limits.exec = ctx.exec.or(limits.exec);
        limits
    }
}

impl Solver for MdrrrSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Mdrrr
    }

    fn solve_rrm_ctx(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        // The underlying enumeration has no restricted-space mode; guard
        // here so a direct trait call cannot silently ignore the space.
        self.ensure_supported(data, space)?;
        mdrrr_rrm_anytime(data, r, self.budgeted(budget, ctx), budget.effective_cutoff())
    }

    fn solve_rrr_ctx(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        self.ensure_supported(data, space)?;
        mdrrr(data, k, self.budgeted(budget, ctx))
    }

    fn prepare_ctx(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
        ctx: &SolverCtx,
    ) -> Result<Box<dyn PreparedSolver>, RrmError> {
        self.ensure_supported(data, space)?;
        let mut limits = self.limits;
        limits.exec = ctx.exec.or(limits.exec);
        Ok(Box::new(PreparedMdrrr { data: data.clone(), limits, memo: Mutex::new(HashMap::new()) }))
    }
}

/// MDRRR bound to one dataset: k-set enumerations (the expensive, LP-heavy
/// part) are memoized per `(k, effective limits)`, so the RRM adaptation's
/// threshold search — and any repeated query — re-enumerates nothing.
struct PreparedMdrrr {
    data: Dataset,
    limits: KsetLimits,
    memo: Mutex<HashMap<(usize, usize, usize), Solution>>,
}

impl PreparedMdrrr {
    fn budgeted(&self, budget: &Budget) -> KsetLimits {
        let mut limits = self.limits;
        if let Some(cap) = budget.max_enumerations {
            limits.max_ksets = limits.max_ksets.min(cap);
        }
        if let Some(cap) = budget.max_lp_calls {
            limits.max_lp_calls = limits.max_lp_calls.min(cap);
        }
        limits
    }

    fn probe(&self, k: usize, limits: KsetLimits) -> Result<Solution, RrmError> {
        let key = (k, limits.max_ksets, limits.max_lp_calls);
        if let Some(sol) = self.memo.lock().expect("MDRRR memo poisoned").get(&key) {
            return Ok(sol.clone());
        }
        let sol = mdrrr(&self.data, k, limits)?;
        let sol = cache_bounded(
            &mut self.memo.lock().expect("MDRRR memo poisoned"),
            key,
            sol,
            8 * PREPARED_CACHE_CAP,
        );
        Ok(sol)
    }
}

impl PreparedSolver for PreparedMdrrr {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Mdrrr
    }

    fn dataset(&self) -> &Dataset {
        &self.data
    }

    fn solve_rrm(&self, r: usize, budget: &Budget) -> Result<Solution, RrmError> {
        let limits = self.budgeted(budget);
        rrm_search_with(&self.data, r, budget.effective_cutoff(), |k| self.probe(k, limits))
    }

    fn solve_rrr(&self, k: usize, budget: &Budget) -> Result<Solution, RrmError> {
        self.probe(k, self.budgeted(budget))
    }
}

/// **MDRRRr** (Asudeh et al.): randomized k-set discovery — restricted
/// spaces yes, guarantee no.
#[derive(Debug, Clone, Default)]
pub struct MdrrrRSolver {
    pub options: MdrrrROptions,
}

impl MdrrrRSolver {
    pub fn new(options: MdrrrROptions) -> Self {
        Self { options }
    }

    fn budgeted(&self, budget: &Budget, ctx: &SolverCtx) -> MdrrrROptions {
        let mut options = self.options;
        if let Some(m) = budget.samples {
            options.samples = m;
        }
        options.exec = ctx.exec.or(options.exec);
        options
    }
}

impl Solver for MdrrrRSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::MdrrrR
    }

    fn solve_rrm_ctx(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        mdrrr_r_rrm_anytime(
            data,
            r,
            space,
            self.budgeted(budget, ctx),
            budget.effective_cutoff(),
            budget.max_enumerations,
        )
    }

    fn solve_rrr_ctx(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        mdrrr_r(data, k, space, self.budgeted(budget, ctx))
    }

    fn prepare_ctx(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
        ctx: &SolverCtx,
    ) -> Result<Box<dyn PreparedSolver>, RrmError> {
        self.ensure_supported(data, space)?;
        let mut options = self.options;
        options.exec = ctx.exec.or(options.exec);
        Ok(Box::new(PreparedMdrrrR {
            data: data.clone(),
            space: space.clone_box(),
            options,
            dirs: Mutex::new(HashMap::new()),
            ksets: Mutex::new(HashMap::new()),
        }))
    }
}

/// MDRRRr bound to one dataset + space: the sampled direction pool is
/// drawn once per sample count (it is seed-deterministic) and the observed
/// k-set families are memoized per `(k, samples)`, so repeated thresholds
/// and the whole RRM search skip the `O(samples · n · d)` scoring.
struct PreparedMdrrrR {
    data: Dataset,
    space: Box<dyn UtilitySpace>,
    options: MdrrrROptions,
    dirs: Mutex<HashMap<usize, Arc<Vec<Vec<f64>>>>>,
    ksets: Mutex<KsetCache>,
}

/// Observed k-set families keyed by `(k, samples)`.
type KsetCache = HashMap<(usize, usize), Arc<Vec<Vec<u32>>>>;

impl PreparedMdrrrR {
    fn budgeted(&self, budget: &Budget) -> MdrrrROptions {
        let mut options = self.options;
        if let Some(m) = budget.samples {
            options.samples = m;
        }
        options
    }

    fn dirs(&self, opts: MdrrrROptions) -> Arc<Vec<Vec<f64>>> {
        if let Some(dirs) = self.dirs.lock().expect("direction cache poisoned").get(&opts.samples) {
            return dirs.clone();
        }
        let dirs = Arc::new(sampled_dirs(self.space.as_ref(), opts));
        cache_bounded(
            &mut self.dirs.lock().expect("direction cache poisoned"),
            opts.samples,
            dirs,
            PREPARED_CACHE_CAP,
        )
    }

    /// The memoized k-set family for one threshold (`k` must already be
    /// clamped to `n`).
    fn kset_family(&self, k: usize, opts: MdrrrROptions) -> Arc<Vec<Vec<u32>>> {
        let key = (k, opts.samples);
        let cached = self.ksets.lock().expect("k-set cache poisoned").get(&key).cloned();
        match cached {
            Some(ksets) => ksets,
            None => {
                // Scoring outside the lock: deterministic, so racers can
                // safely duplicate it instead of serializing.
                let ksets = Arc::new(ksets_from_dirs(
                    &self.data,
                    k,
                    &self.dirs(opts),
                    opts.exec.parallelism,
                ));
                // The key carries k (legitimately many values per search),
                // so allow more entries than the per-budget caches do.
                cache_bounded(
                    &mut self.ksets.lock().expect("k-set cache poisoned"),
                    key,
                    ksets,
                    8 * PREPARED_CACHE_CAP,
                )
            }
        }
    }

    fn probe(&self, k: usize, opts: MdrrrROptions) -> Result<Solution, RrmError> {
        if k == 0 {
            return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
        }
        let k = k.min(self.data.n());
        let ksets = self.kset_family(k, opts);
        let ids = hit_ksets(self.data.n(), &ksets);
        Solution::new(ids, None, Algorithm::MdrrrR, &self.data)
    }
}

impl PreparedSolver for PreparedMdrrrR {
    fn algorithm(&self) -> Algorithm {
        Algorithm::MdrrrR
    }

    fn dataset(&self) -> &Dataset {
        &self.data
    }

    fn solve_rrm(&self, r: usize, budget: &Budget) -> Result<Solution, RrmError> {
        if r == 0 {
            return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
        }
        let opts = self.budgeted(budget);
        let dirs = self.dirs(opts);
        let env = SampledSearch {
            data: &self.data,
            r,
            pick_cap: SampledSearch::pick_cap(r, opts.prune),
            pol: opts.exec.parallelism,
        };
        let mut search = AnytimeSearch::new(budget.effective_cutoff(), budget.max_enumerations);
        if search.cutoff() != Cutoff::None {
            env.offer_fallback(&dirs, &mut search);
        }
        env.coarse_incumbent(&dirs, &mut search);
        let outcome = threshold_search(self.data.n(), &mut search, |k, lower, search| {
            let ksets = self.kset_family(k, opts);
            Ok(env.probe(k, &ksets, lower, search))
        })?;
        env.finish(outcome, search)
    }

    fn solve_rrr(&self, k: usize, budget: &Budget) -> Result<Solution, RrmError> {
        self.probe(k, self.budgeted(budget))
    }
}

/// **MDRC** (Asudeh et al.): recursive angle-space partitioning — fast,
/// no certificate, full space only, and no native RRR mode (the
/// representative direction falls back to [`rrr_via_rrm_search`]).
#[derive(Debug, Clone, Default)]
pub struct MdrcSolver {
    pub options: MdrcOptions,
}

impl MdrcSolver {
    pub fn new(options: MdrcOptions) -> Self {
        Self { options }
    }
}

impl MdrcSolver {
    fn with_ctx(&self, ctx: &SolverCtx) -> MdrcOptions {
        let mut options = self.options;
        options.exec = ctx.exec.or(options.exec);
        options
    }
}

impl Solver for MdrcSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Mdrc
    }

    fn solve_rrm_ctx(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        mdrc_anytime(
            data,
            r,
            space,
            self.with_ctx(ctx),
            budget.effective_cutoff(),
            budget.max_enumerations,
        )
    }

    fn solve_rrr_ctx(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        self.ensure_supported(data, space)?;
        rrr_via_rrm_search(self, data, k, space, budget, ctx)
    }

    fn prepare_ctx(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
        ctx: &SolverCtx,
    ) -> Result<Box<dyn PreparedSolver>, RrmError> {
        self.ensure_supported(data, space)?;
        Ok(Box::new(PreparedMdrc {
            data: data.clone(),
            space: space.clone_box(),
            options: self.with_ctx(ctx),
            memo: Mutex::new(HashMap::new()),
        }))
    }
}

/// MDRC bound to one dataset: the partition refinement is adaptive in `r`
/// with little reusable sub-structure, so the prepared handle memoizes
/// whole solutions per size budget — repeat queries (and every probe of
/// the RRR-via-RRM search) are free after the first.
struct PreparedMdrc {
    data: Dataset,
    space: Box<dyn UtilitySpace>,
    options: MdrcOptions,
    /// Keyed by `(r, effective cell-evaluation cap)`: a counter-cut
    /// partial answer must not be served to an unlimited query (or vice
    /// versa).
    memo: Mutex<HashMap<(usize, usize), Solution>>,
}

impl PreparedMdrc {
    fn rrm_memo(&self, r: usize, budget: &Budget) -> Result<Solution, RrmError> {
        let cutoff = budget.effective_cutoff();
        if matches!(cutoff, Cutoff::TimeBudget(_)) {
            // Wall-clock cutoffs are nondeterministic — never cache (or
            // serve a cached answer for) a time-cut solve.
            return mdrc_anytime(
                &self.data,
                r,
                self.space.as_ref(),
                self.options,
                cutoff,
                budget.max_enumerations,
            );
        }
        let cap = match cutoff {
            Cutoff::CounterBudget => budget.max_enumerations.unwrap_or(usize::MAX),
            _ => usize::MAX,
        };
        let key = (r, cap);
        if let Some(sol) = self.memo.lock().expect("MDRC memo poisoned").get(&key) {
            return Ok(sol.clone());
        }
        let sol = mdrc_anytime(
            &self.data,
            r,
            self.space.as_ref(),
            self.options,
            cutoff,
            budget.max_enumerations,
        )?;
        self.memo.lock().expect("MDRC memo poisoned").insert(key, sol.clone());
        Ok(sol)
    }
}

impl PreparedSolver for PreparedMdrc {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Mdrc
    }

    fn dataset(&self) -> &Dataset {
        &self.data
    }

    fn solve_rrm(&self, r: usize, budget: &Budget) -> Result<Solution, RrmError> {
        self.rrm_memo(r, budget)
    }

    fn solve_rrr(&self, k: usize, budget: &Budget) -> Result<Solution, RrmError> {
        rrr_via_rrm_search_with(
            "MDRC",
            &self.data,
            k,
            self.space.as_ref(),
            budget,
            self.options.exec,
            |r| self.rrm_memo(r, budget),
        )
    }
}

/// **MDRMS**: the regret-*ratio* (RMS) baseline — optimizes the wrong
/// objective by design; included for the paper's comparison. No native
/// RRR mode.
#[derive(Debug, Clone, Default)]
pub struct MdrmsSolver {
    pub options: MdrmsOptions,
}

impl MdrmsSolver {
    pub fn new(options: MdrmsOptions) -> Self {
        Self { options }
    }

    fn budgeted(&self, budget: &Budget, ctx: &SolverCtx) -> MdrmsOptions {
        let mut options = self.options;
        if let Some(m) = budget.samples {
            options.samples = m;
        }
        options.exec = ctx.exec.or(options.exec);
        options
    }
}

impl Solver for MdrmsSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Mdrms
    }

    fn solve_rrm_ctx(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        mdrms(data, r, space, self.budgeted(budget, ctx))
    }

    fn solve_rrr_ctx(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        rrr_via_rrm_search(self, data, k, space, budget, ctx)
    }

    fn prepare_ctx(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
        ctx: &SolverCtx,
    ) -> Result<Box<dyn PreparedSolver>, RrmError> {
        self.ensure_supported(data, space)?;
        let mut options = self.options;
        options.exec = ctx.exec.or(options.exec);
        Ok(Box::new(PreparedMdrms {
            data: data.clone(),
            space: space.clone_box(),
            options,
            greedy: Mutex::new(HashMap::new()),
        }))
    }
}

/// MDRMS bound to one dataset + space: the sampled directions, top-1
/// scores and the greedy pick sequence live across queries (one per
/// effective sample count). `mdrms(r)` is a prefix of `mdrms(r')` for
/// `r' ≥ r`, so a larger budget extends the cached sequence in place and a
/// smaller one slices it.
struct PreparedMdrms {
    data: Dataset,
    space: Box<dyn UtilitySpace>,
    options: MdrmsOptions,
    /// One resumable greedy state per effective sample count, each behind
    /// its own lock: queries for the *same* budget serialize (the prefix
    /// is mutable state), queries for different budgets do not.
    greedy: Mutex<HashMap<usize, Arc<Mutex<GreedyRms>>>>,
}

impl PreparedMdrms {
    fn budgeted(&self, budget: &Budget) -> MdrmsOptions {
        let mut options = self.options;
        if let Some(m) = budget.samples {
            options.samples = m;
        }
        options
    }

    fn rrm_with(&self, r: usize, opts: MdrmsOptions) -> Result<Solution, RrmError> {
        if r == 0 {
            return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
        }
        let state = self.greedy.lock().expect("greedy cache poisoned").get(&opts.samples).cloned();
        let state = match state {
            Some(state) => state,
            None => {
                // Build outside the outer lock (direction sampling and
                // top-1 scoring are the heavy part), then insert-or-reuse.
                let built =
                    Arc::new(Mutex::new(GreedyRms::new(&self.data, self.space.as_ref(), opts)));
                cache_bounded(
                    &mut self.greedy.lock().expect("greedy cache poisoned"),
                    opts.samples,
                    built,
                    PREPARED_CACHE_CAP,
                )
            }
        };
        // Same-budget queries serialize here — the greedy prefix is
        // resumable *mutable* state; extending it concurrently would race.
        let chosen = state.lock().expect("greedy state poisoned").prefix(&self.data, r);
        Solution::new(chosen, None, Algorithm::Mdrms, &self.data)
    }
}

impl PreparedSolver for PreparedMdrms {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Mdrms
    }

    fn dataset(&self) -> &Dataset {
        &self.data
    }

    fn solve_rrm(&self, r: usize, budget: &Budget) -> Result<Solution, RrmError> {
        self.rrm_with(r, self.budgeted(budget))
    }

    fn solve_rrr(&self, k: usize, budget: &Budget) -> Result<Solution, RrmError> {
        let opts = self.budgeted(budget);
        rrr_via_rrm_search_with(
            "MDRMS",
            &self.data,
            k,
            self.space.as_ref(),
            budget,
            opts.exec,
            |r| self.rrm_with(r, opts),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::{FullSpace, SolverCtx, WeakRankingSpace};

    fn small() -> Dataset {
        rrm_data::synthetic::independent(120, 3, 7)
    }

    fn ctx() -> SolverCtx {
        SolverCtx::default()
    }

    #[test]
    fn hdrrm_solver_budget_maps_to_sample_override() {
        let solver = HdrrmSolver::default();
        let sol = solver
            .solve_rrm_ctx(&small(), 8, &FullSpace::new(3), &Budget::with_samples(150), &ctx())
            .unwrap();
        assert_eq!(sol.algorithm, Algorithm::Hdrrm);
        assert!(sol.size() <= 8);
    }

    #[test]
    fn mdrrr_solver_rejects_restricted_space() {
        let solver = MdrrrSolver::default();
        let err = solver
            .solve_rrm_ctx(&small(), 5, &WeakRankingSpace::new(3, 1), &Budget::default(), &ctx())
            .unwrap_err();
        assert!(matches!(err, RrmError::Unsupported(_)), "{err}");
    }

    #[test]
    fn mdrc_solver_gains_rrr_through_search() {
        let data = rrm_data::synthetic::independent(150, 3, 9);
        let solver = MdrcSolver::default();
        let sol = solver
            .solve_rrr_ctx(&data, 20, &FullSpace::new(3), &Budget::with_samples(128), &ctx())
            .unwrap();
        assert_eq!(sol.algorithm, Algorithm::Mdrc);
        assert!(sol.certified_regret.is_none(), "MDRC must not claim a certificate");
        assert!(sol.size() >= 1);
    }

    #[test]
    fn mdrms_solver_runs_both_directions() {
        let data = rrm_data::synthetic::correlated(150, 3, 11);
        let solver = MdrmsSolver::default();
        let rrm = solver
            .solve_rrm_ctx(&data, 6, &FullSpace::new(3), &Budget::with_samples(300), &ctx())
            .unwrap();
        assert!(rrm.size() <= 6);
        let rrr = solver
            .solve_rrr_ctx(&data, 30, &FullSpace::new(3), &Budget::with_samples(128), &ctx())
            .unwrap();
        assert_eq!(rrr.algorithm, Algorithm::Mdrms);
    }

    #[test]
    fn prepared_hdrrm_matches_one_shot_across_queries() {
        let data = small();
        let space = FullSpace::new(3);
        let solver = HdrrmSolver::default();
        let budget = Budget::with_samples(150);
        let prepared = solver.prepare(&data, &space).unwrap();
        for r in [6usize, 8, 12] {
            let one_shot = solver.solve_rrm_ctx(&data, r, &space, &budget, &ctx()).unwrap();
            assert_eq!(prepared.solve_rrm(r, &budget).unwrap(), one_shot, "r={r}");
        }
        for k in [2usize, 10] {
            let one_shot = solver.solve_rrr_ctx(&data, k, &space, &budget, &ctx()).unwrap();
            assert_eq!(prepared.solve_rrr(k, &budget).unwrap(), one_shot, "k={k}");
        }
    }

    #[test]
    fn prepared_baselines_match_one_shot() {
        let space = FullSpace::new(3);
        // Tight LP cap: debug-profile simplex calls are ~50ms each, and
        // MDRRR's one-shot side re-enumerates per probe. Parity holds
        // under any cap — both paths see the same one.
        let budget = Budget {
            samples: Some(400),
            max_enumerations: Some(500),
            max_lp_calls: Some(150),
            ..Budget::UNLIMITED
        };
        // MDRRR on a deliberately tiny instance (LP cost per feasibility
        // check grows with k·(n−k) rows); the rest at a larger n.
        let cases: Vec<(Box<dyn Solver>, Dataset)> = vec![
            (Box::new(MdrrrSolver::default()), rrm_data::synthetic::independent(13, 3, 8)),
            (Box::new(MdrrrRSolver::default()), rrm_data::synthetic::independent(22, 3, 8)),
            (Box::new(MdrcSolver::default()), rrm_data::synthetic::independent(22, 3, 8)),
            (Box::new(MdrmsSolver::default()), rrm_data::synthetic::independent(22, 3, 8)),
        ];
        for (solver, data) in &cases {
            let prepared = solver.prepare(data, &space).unwrap();
            for r in [3usize, 6] {
                let one_shot = solver.solve_rrm_ctx(data, r, &space, &budget, &ctx()).unwrap();
                assert_eq!(
                    prepared.solve_rrm(r, &budget).unwrap(),
                    one_shot,
                    "{} r={r}",
                    solver.name()
                );
            }
            for k in [3usize, 5] {
                let one_shot = solver.solve_rrr_ctx(data, k, &space, &budget, &ctx()).unwrap();
                assert_eq!(
                    prepared.solve_rrr(k, &budget).unwrap(),
                    one_shot,
                    "{} k={k}",
                    solver.name()
                );
            }
        }
    }

    #[test]
    fn prepared_mdrms_prefix_property_under_interleaved_budgets() {
        // Queries arriving out of size order must not perturb the greedy
        // sequence: ask big, then small, then medium.
        let data = rrm_data::synthetic::anticorrelated(120, 3, 9);
        let space = FullSpace::new(3);
        let budget = Budget::with_samples(300);
        let solver = MdrmsSolver::default();
        let prepared = solver.prepare(&data, &space).unwrap();
        for r in [8usize, 2, 5] {
            let one_shot = solver.solve_rrm_ctx(&data, r, &space, &budget, &ctx()).unwrap();
            assert_eq!(prepared.solve_rrm(r, &budget).unwrap(), one_shot, "r={r}");
        }
    }

    #[test]
    fn capability_queries_mirror_the_enum() {
        assert!(HdrrmSolver::default().has_regret_guarantee());
        assert!(MdrrrSolver::default().has_regret_guarantee());
        assert!(!MdrcSolver::default().has_regret_guarantee());
        assert!(!MdrmsSolver::default().has_regret_guarantee());
        assert!(MdrrrRSolver::default().supports_restricted_space());
        assert!(!MdrcSolver::default().supports_restricted_space());
    }
}
