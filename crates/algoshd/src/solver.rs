//! [`Solver`] implementations for the high-dimensional algorithms:
//! HDRRM (the paper's) and the Table III baselines MDRRR, MDRRRr, MDRC
//! and MDRMS.
//!
//! Each solver owns its options struct; the engine-facing [`Budget`] caps
//! are mapped onto whatever machinery the algorithm actually has —
//! sample counts for the randomized ones, k-set/LP limits for MDRRR —
//! and ignored where they do not apply.

use rrm_core::{
    rrr_via_rrm_search, Algorithm, Budget, Dataset, RrmError, Solution, Solver, UtilitySpace,
};

use crate::hdrrm::{hdrrm, hdrrr, HdrrmOptions};
use crate::ksets::KsetLimits;
use crate::mdrc::{mdrc, MdrcOptions};
use crate::mdrms::{mdrms, MdrmsOptions};
use crate::mdrrr::{mdrrr, mdrrr_rrm};
use crate::mdrrr_r::{mdrrr_r, mdrrr_r_rrm, MdrrrROptions};

/// **HDRRM** (paper Section V): discretize-and-cover with a certificate
/// over the discretized direction set (Theorem 10).
#[derive(Debug, Clone, Default)]
pub struct HdrrmSolver {
    pub options: HdrrmOptions,
}

impl HdrrmSolver {
    pub fn new(options: HdrrmOptions) -> Self {
        Self { options }
    }

    fn budgeted(&self, budget: &Budget) -> HdrrmOptions {
        let mut options = self.options;
        if let Some(m) = budget.samples {
            options.m_override = Some(m);
        }
        options
    }
}

impl Solver for HdrrmSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Hdrrm
    }

    fn solve_rrm(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
    ) -> Result<Solution, RrmError> {
        hdrrm(data, r, space, self.budgeted(budget))
    }

    fn solve_rrr(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
    ) -> Result<Solution, RrmError> {
        hdrrr(data, k, space, self.budgeted(budget))
    }
}

/// **MDRRR** (Asudeh et al.): exact k-set enumeration — certified, but
/// full-space only and practical only on small inputs. The [`Budget`]
/// enumeration/LP caps map directly onto [`KsetLimits`].
#[derive(Debug, Clone, Default)]
pub struct MdrrrSolver {
    pub limits: KsetLimits,
}

impl MdrrrSolver {
    pub fn new(limits: KsetLimits) -> Self {
        Self { limits }
    }

    fn budgeted(&self, budget: &Budget) -> KsetLimits {
        let mut limits = self.limits;
        if let Some(cap) = budget.max_enumerations {
            limits.max_ksets = limits.max_ksets.min(cap);
        }
        if let Some(cap) = budget.max_lp_calls {
            limits.max_lp_calls = limits.max_lp_calls.min(cap);
        }
        limits
    }
}

impl Solver for MdrrrSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Mdrrr
    }

    fn solve_rrm(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
    ) -> Result<Solution, RrmError> {
        // The underlying enumeration has no restricted-space mode; guard
        // here so a direct trait call cannot silently ignore the space.
        self.ensure_supported(data, space)?;
        mdrrr_rrm(data, r, self.budgeted(budget))
    }

    fn solve_rrr(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
    ) -> Result<Solution, RrmError> {
        self.ensure_supported(data, space)?;
        mdrrr(data, k, self.budgeted(budget))
    }
}

/// **MDRRRr** (Asudeh et al.): randomized k-set discovery — restricted
/// spaces yes, guarantee no.
#[derive(Debug, Clone, Default)]
pub struct MdrrrRSolver {
    pub options: MdrrrROptions,
}

impl MdrrrRSolver {
    pub fn new(options: MdrrrROptions) -> Self {
        Self { options }
    }

    fn budgeted(&self, budget: &Budget) -> MdrrrROptions {
        let mut options = self.options;
        if let Some(m) = budget.samples {
            options.samples = m;
        }
        options
    }
}

impl Solver for MdrrrRSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::MdrrrR
    }

    fn solve_rrm(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
    ) -> Result<Solution, RrmError> {
        mdrrr_r_rrm(data, r, space, self.budgeted(budget))
    }

    fn solve_rrr(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
    ) -> Result<Solution, RrmError> {
        mdrrr_r(data, k, space, self.budgeted(budget))
    }
}

/// **MDRC** (Asudeh et al.): recursive angle-space partitioning — fast,
/// no certificate, full space only, and no native RRR mode (the
/// representative direction falls back to [`rrr_via_rrm_search`]).
#[derive(Debug, Clone, Default)]
pub struct MdrcSolver {
    pub options: MdrcOptions,
}

impl MdrcSolver {
    pub fn new(options: MdrcOptions) -> Self {
        Self { options }
    }
}

impl Solver for MdrcSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Mdrc
    }

    fn solve_rrm(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        _budget: &Budget,
    ) -> Result<Solution, RrmError> {
        mdrc(data, r, space, self.options)
    }

    fn solve_rrr(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
    ) -> Result<Solution, RrmError> {
        self.ensure_supported(data, space)?;
        rrr_via_rrm_search(self, data, k, space, budget)
    }
}

/// **MDRMS**: the regret-*ratio* (RMS) baseline — optimizes the wrong
/// objective by design; included for the paper's comparison. No native
/// RRR mode.
#[derive(Debug, Clone, Default)]
pub struct MdrmsSolver {
    pub options: MdrmsOptions,
}

impl MdrmsSolver {
    pub fn new(options: MdrmsOptions) -> Self {
        Self { options }
    }

    fn budgeted(&self, budget: &Budget) -> MdrmsOptions {
        let mut options = self.options;
        if let Some(m) = budget.samples {
            options.samples = m;
        }
        options
    }
}

impl Solver for MdrmsSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Mdrms
    }

    fn solve_rrm(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
    ) -> Result<Solution, RrmError> {
        mdrms(data, r, space, self.budgeted(budget))
    }

    fn solve_rrr(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
    ) -> Result<Solution, RrmError> {
        rrr_via_rrm_search(self, data, k, space, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::{FullSpace, WeakRankingSpace};

    fn small() -> Dataset {
        rrm_data::synthetic::independent(120, 3, 7)
    }

    #[test]
    fn hdrrm_solver_budget_maps_to_sample_override() {
        let solver = HdrrmSolver::default();
        let sol =
            solver.solve_rrm(&small(), 8, &FullSpace::new(3), &Budget::with_samples(150)).unwrap();
        assert_eq!(sol.algorithm, Algorithm::Hdrrm);
        assert!(sol.size() <= 8);
    }

    #[test]
    fn mdrrr_solver_rejects_restricted_space() {
        let solver = MdrrrSolver::default();
        let err = solver
            .solve_rrm(&small(), 5, &WeakRankingSpace::new(3, 1), &Budget::default())
            .unwrap_err();
        assert!(matches!(err, RrmError::Unsupported(_)), "{err}");
    }

    #[test]
    fn mdrc_solver_gains_rrr_through_search() {
        let data = rrm_data::synthetic::independent(150, 3, 9);
        let solver = MdrcSolver::default();
        let sol =
            solver.solve_rrr(&data, 20, &FullSpace::new(3), &Budget::with_samples(128)).unwrap();
        assert_eq!(sol.algorithm, Algorithm::Mdrc);
        assert!(sol.certified_regret.is_none(), "MDRC must not claim a certificate");
        assert!(sol.size() >= 1);
    }

    #[test]
    fn mdrms_solver_runs_both_directions() {
        let data = rrm_data::synthetic::correlated(150, 3, 11);
        let solver = MdrmsSolver::default();
        let rrm =
            solver.solve_rrm(&data, 6, &FullSpace::new(3), &Budget::with_samples(300)).unwrap();
        assert!(rrm.size() <= 6);
        let rrr =
            solver.solve_rrr(&data, 30, &FullSpace::new(3), &Budget::with_samples(128)).unwrap();
        assert_eq!(rrr.algorithm, Algorithm::Mdrms);
    }

    #[test]
    fn capability_queries_mirror_the_enum() {
        assert!(HdrrmSolver::default().has_regret_guarantee());
        assert!(MdrrrSolver::default().has_regret_guarantee());
        assert!(!MdrcSolver::default().has_regret_guarantee());
        assert!(!MdrmsSolver::default().has_regret_guarantee());
        assert!(MdrrrRSolver::default().supports_restricted_space());
        assert!(!MdrcSolver::default().supports_restricted_space());
    }
}
