//! **MDRRR** — the exact k-set baseline of Asudeh et al.
//!
//! Enumerate every k-set ([`crate::ksets`]), then hit them all with as few
//! tuples as possible (greedy set cover): any direction's top-k is one of
//! the enumerated k-sets, so a hitting set has rank-regret ≤ k everywhere
//! — the guaranteed-regret, logarithmic-size-ratio algorithm of the
//! paper's Table III. Exactly as the paper reports, it "does not scale
//! beyond a few hundred tuples" (`|W|` explodes); the limits make it fail
//! gracefully instead of hanging.

use rrm_core::{Algorithm, Dataset, RrmError, Solution};
use rrm_setcover::greedy_set_cover;

use crate::ksets::{enumerate_ksets, KsetEnumeration, KsetLimits};

/// Hitting set over an enumerated k-set family (shared by MDRRR and
/// MDRRRr): universe = k-sets, tuple `t` covers the k-sets containing it.
pub(crate) fn hit_ksets(n: usize, ksets: &[Vec<u32>]) -> Vec<u32> {
    assert!(!ksets.is_empty());
    let mut lists: Vec<Vec<u32>> = Vec::new();
    let mut list_of_tuple: Vec<u32> = vec![u32::MAX; n];
    let mut tuple_of_list: Vec<u32> = Vec::new();
    for (ki, t_set) in ksets.iter().enumerate() {
        for &t in t_set {
            let li = list_of_tuple[t as usize];
            if li == u32::MAX {
                list_of_tuple[t as usize] = lists.len() as u32;
                tuple_of_list.push(t);
                lists.push(vec![ki as u32]);
            } else {
                lists[li as usize].push(ki as u32);
            }
        }
    }
    let chosen = greedy_set_cover(ksets.len(), &lists);
    let mut out: Vec<u32> = chosen.into_iter().map(|li| tuple_of_list[li]).collect();
    out.sort_unstable();
    out
}

/// MDRRR for the RRR problem: a set with rank-regret ≤ `k` (certified when
/// the enumeration completed) and size within `1 + ln|W|` of optimal.
///
/// Restricted spaces are rejected (`Table III: Suitable for RRRM — No`).
pub fn mdrrr(data: &Dataset, k: usize, limits: KsetLimits) -> Result<Solution, RrmError> {
    if k == 0 {
        return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
    }
    let k = k.min(data.n());
    let e: KsetEnumeration = enumerate_ksets(data, k, &[], limits);
    let ids = hit_ksets(data.n(), &e.ksets);
    let certified = e.complete.then_some(k);
    Solution::new(ids, certified, Algorithm::Mdrrr, data)
}

/// MDRRR adapted to RRM with the improved (doubling + binary) search on
/// `k`, as the paper's experiments run it.
pub fn mdrrr_rrm(data: &Dataset, r: usize, limits: KsetLimits) -> Result<Solution, RrmError> {
    rrm_search_with(data.n(), r, |k| mdrrr(data, k, limits))
}

/// The doubling + binary search on `k` shared by [`mdrrr_rrm`] and the
/// prepared path: `probe(k)` answers one threshold. Kept closure-driven so
/// prepared solvers can memoize enumerations without duplicating the
/// search (which would risk parity drift).
pub(crate) fn rrm_search_with(
    n: usize,
    r: usize,
    mut probe: impl FnMut(usize) -> Result<Solution, RrmError>,
) -> Result<Solution, RrmError> {
    if r == 0 {
        return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
    }
    let mut prev_k = 0usize;
    let mut k = 1usize;
    let mut best: Option<Solution> = None;
    loop {
        let sol = probe(k)?;
        if sol.size() <= r {
            best = Some(sol);
            break;
        }
        if k >= n {
            break;
        }
        prev_k = k;
        k = (k * 2).min(n);
    }
    let Some(mut best) = best else {
        return Err(RrmError::Unsupported(
            "k-set enumeration hit its limits before finding a feasible threshold".into(),
        ));
    };
    let mut lo = prev_k + 1;
    let mut hi = k;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let sol = probe(mid)?;
        if sol.size() <= r {
            best = sol;
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::FullSpace;
    use rrm_data::synthetic::independent;
    use rrm_eval::estimate_rank_regret_seq;

    #[test]
    fn guarantee_certified_and_real() {
        let data = independent(30, 3, 41);
        for k in [1usize, 2, 4] {
            let sol = mdrrr(&data, k, KsetLimits::default()).unwrap();
            assert_eq!(sol.certified_regret, Some(k));
            // Estimated regret over many directions must respect k.
            let est = estimate_rank_regret_seq(&data, &sol.indices, &FullSpace::new(3), 8000, 42);
            assert!(est.max_rank <= k, "k={k}: measured {}", est.max_rank);
        }
    }

    #[test]
    fn rrm_adapter_respects_budget() {
        let data = independent(25, 3, 43);
        for r in [2usize, 4, 6] {
            let sol = mdrrr_rrm(&data, r, KsetLimits::default()).unwrap();
            assert!(sol.size() <= r);
            let k = sol.certified_regret.unwrap();
            let est = estimate_rank_regret_seq(&data, &sol.indices, &FullSpace::new(3), 8000, 44);
            assert!(est.max_rank <= k);
        }
    }

    #[test]
    fn incomplete_enumeration_is_uncertified() {
        let data = independent(40, 3, 45);
        let sol = mdrrr(
            &data,
            4,
            KsetLimits { max_ksets: 5, max_lp_calls: 1_000_000, ..Default::default() },
        )
        .unwrap();
        assert_eq!(sol.certified_regret, None);
    }

    #[test]
    fn k_one_is_the_top1_hitting_set() {
        // k = 1: the k-sets are the singleton top-1 regions; the hitting
        // set must contain every tuple that is top-1 somewhere.
        let data = independent(20, 2, 46);
        let sol = mdrrr(&data, 1, KsetLimits::default()).unwrap();
        let est = estimate_rank_regret_seq(&data, &sol.indices, &FullSpace::new(2), 5000, 47);
        assert_eq!(est.max_rank, 1);
    }

    #[test]
    fn zero_threshold_rejected() {
        let data = independent(10, 2, 48);
        assert!(mdrrr(&data, 0, KsetLimits::default()).is_err());
    }
}
