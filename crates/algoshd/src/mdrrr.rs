//! **MDRRR** — the exact k-set baseline of Asudeh et al.
//!
//! Enumerate every k-set ([`crate::ksets`]), then hit them all with as few
//! tuples as possible (greedy set cover): any direction's top-k is one of
//! the enumerated k-sets, so a hitting set has rank-regret ≤ k everywhere
//! — the guaranteed-regret, logarithmic-size-ratio algorithm of the
//! paper's Table III. Exactly as the paper reports, it "does not scale
//! beyond a few hundred tuples" (`|W|` explodes); the limits make it fail
//! gracefully instead of hanging.

use rrm_core::{
    Algorithm, AnytimeSearch, Bounds, Cutoff, Dataset, RrmError, Solution, TerminatedBy,
};
use rrm_setcover::greedy_set_cover_capped;

use crate::anytime::{threshold_search, uniform_top_set};
use crate::ksets::{enumerate_ksets, KsetEnumeration, KsetLimits};

/// Hitting set over an enumerated k-set family (shared by MDRRR and
/// MDRRRr): universe = k-sets, tuple `t` covers the k-sets containing it.
pub(crate) fn hit_ksets(n: usize, ksets: &[Vec<u32>]) -> Vec<u32> {
    hit_ksets_capped(n, ksets, usize::MAX).ids
}

/// One capped hitting-set probe: result, completion flag, picks made.
pub(crate) struct HitProbe {
    /// Chosen tuples, sorted. When `complete`, exactly the uncapped
    /// [`hit_ksets`] output; when aborted, a prefix already past the cap.
    pub ids: Vec<u32>,
    /// `false` iff the greedy cover aborted past `max_picks` — proving
    /// the uncapped hitting set has more than `max_picks` tuples.
    pub complete: bool,
    /// Greedy picks expanded (search nodes).
    pub picks: u64,
}

/// [`hit_ksets`] with the greedy cover capped at `max_picks` choices —
/// the bound-and-prune feasibility probe of the anytime RRM searches.
/// Greedy picks are monotone and deterministic, so the "fits in `r`
/// tuples" decision is identical to the uncapped run's.
pub(crate) fn hit_ksets_capped(n: usize, ksets: &[Vec<u32>], max_picks: usize) -> HitProbe {
    assert!(!ksets.is_empty());
    let mut lists: Vec<Vec<u32>> = Vec::new();
    let mut list_of_tuple: Vec<u32> = vec![u32::MAX; n];
    let mut tuple_of_list: Vec<u32> = Vec::new();
    for (ki, t_set) in ksets.iter().enumerate() {
        for &t in t_set {
            let li = list_of_tuple[t as usize];
            if li == u32::MAX {
                list_of_tuple[t as usize] = lists.len() as u32;
                tuple_of_list.push(t);
                lists.push(vec![ki as u32]);
            } else {
                lists[li as usize].push(ki as u32);
            }
        }
    }
    let (chosen, complete) = greedy_set_cover_capped(ksets.len(), &lists, max_picks);
    let picks = chosen.len() as u64;
    let mut out: Vec<u32> = chosen.into_iter().map(|li| tuple_of_list[li]).collect();
    out.sort_unstable();
    HitProbe { ids: out, complete, picks }
}

/// MDRRR for the RRR problem: a set with rank-regret ≤ `k` (certified when
/// the enumeration completed) and size within `1 + ln|W|` of optimal.
///
/// Restricted spaces are rejected (`Table III: Suitable for RRRM — No`).
pub fn mdrrr(data: &Dataset, k: usize, limits: KsetLimits) -> Result<Solution, RrmError> {
    if k == 0 {
        return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
    }
    let k = k.min(data.n());
    let e: KsetEnumeration = enumerate_ksets(data, k, &[], limits);
    let ids = hit_ksets(data.n(), &e.ksets);
    let certified = e.complete.then_some(k);
    Solution::new(ids, certified, Algorithm::Mdrrr, data)
}

/// MDRRR adapted to RRM with the improved (doubling + binary) search on
/// `k`, as the paper's experiments run it.
pub fn mdrrr_rrm(data: &Dataset, r: usize, limits: KsetLimits) -> Result<Solution, RrmError> {
    rrm_search_with(data, r, Cutoff::None, |k| mdrrr(data, k, limits))
}

/// [`mdrrr_rrm`] under an explicit in-solve cutoff.
pub fn mdrrr_rrm_anytime(
    data: &Dataset,
    r: usize,
    limits: KsetLimits,
    cutoff: Cutoff,
) -> Result<Solution, RrmError> {
    rrm_search_with(data, r, cutoff, |k| mdrrr(data, k, limits))
}

/// The anytime doubling + binary search on `k` shared by [`mdrrr_rrm`]
/// and the prepared path: `probe(k)` answers one threshold. Kept
/// closure-driven so prepared solvers can memoize enumerations without
/// duplicating the search (which would risk parity drift).
///
/// Infeasible probes are sound *lower-bound* proofs even when the k-set
/// enumeration was truncated: a hitting set over a subset of the k-sets
/// can only be smaller than over all of them. Feasible-but-uncertified
/// answers (truncated enumeration) are annotated with the trivially
/// sound upper bound `n` and [`TerminatedBy::Counter`] — the counter
/// exhaustion surfaced as a gap instead of silently claiming the
/// threshold.
pub(crate) fn rrm_search_with(
    data: &Dataset,
    r: usize,
    cutoff: Cutoff,
    mut probe: impl FnMut(usize) -> Result<Solution, RrmError>,
) -> Result<Solution, RrmError> {
    if r == 0 {
        return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
    }
    let n = data.n();
    // The k-set/LP counters act *inside* each probe (they truncate the
    // enumeration), so the probe count itself is not budget-bound here.
    let mut search = AnytimeSearch::new(cutoff, None);
    if search.cutoff() != Cutoff::None {
        // Rank is at most n everywhere — a sound fallback incumbent
        // without extra work, for wall-clock / gap cutoffs.
        search.offer(uniform_top_set(data, &[], r), n, 1);
    }
    let outcome = threshold_search(n, &mut search, |k, lower, search| {
        let sol = probe(k)?;
        search.note_nodes(sol.size() as u64);
        if sol.size() > r {
            return Ok(None);
        }
        if sol.certified_regret.is_some() {
            search.offer(sol.indices.clone(), k, lower);
        }
        Ok(Some(sol))
    })?;
    match outcome.terminated {
        TerminatedBy::Completed => match outcome.best {
            Some((k, sol)) => {
                if sol.certified_regret.is_some() {
                    Ok(sol.with_bounds(Bounds { lower: k, upper: k }).with_report(search.report))
                } else {
                    Ok(sol
                        .with_bounds(Bounds { lower: outcome.lower, upper: n })
                        .with_termination(TerminatedBy::Counter)
                        .with_report(search.report))
                }
            }
            None => Err(RrmError::Unsupported(
                "k-set enumeration hit its limits before finding a feasible threshold".into(),
            )),
        },
        t => match outcome.best {
            Some((k, sol)) => {
                let upper = if sol.certified_regret.is_some() { k } else { n };
                Ok(sol
                    .with_bounds(Bounds { lower: outcome.lower, upper })
                    .with_termination(t)
                    .with_report(search.report))
            }
            None => {
                let (ids, upper) =
                    search.incumbent.best().expect("active cutoffs seed a fallback incumbent");
                Solution::new(ids, None, Algorithm::Mdrrr, data).map(|s| {
                    s.with_bounds(Bounds { lower: outcome.lower, upper })
                        .with_termination(t)
                        .with_report(search.report)
                })
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::FullSpace;
    use rrm_data::synthetic::independent;
    use rrm_eval::estimate_rank_regret_seq;

    #[test]
    fn guarantee_certified_and_real() {
        let data = independent(30, 3, 41);
        for k in [1usize, 2, 4] {
            let sol = mdrrr(&data, k, KsetLimits::default()).unwrap();
            assert_eq!(sol.certified_regret, Some(k));
            // Estimated regret over many directions must respect k.
            let est = estimate_rank_regret_seq(&data, &sol.indices, &FullSpace::new(3), 8000, 42);
            assert!(est.max_rank <= k, "k={k}: measured {}", est.max_rank);
        }
    }

    #[test]
    fn rrm_adapter_respects_budget() {
        let data = independent(25, 3, 43);
        for r in [2usize, 4, 6] {
            let sol = mdrrr_rrm(&data, r, KsetLimits::default()).unwrap();
            assert!(sol.size() <= r);
            let k = sol.certified_regret.unwrap();
            let est = estimate_rank_regret_seq(&data, &sol.indices, &FullSpace::new(3), 8000, 44);
            assert!(est.max_rank <= k);
        }
    }

    #[test]
    fn incomplete_enumeration_is_uncertified() {
        let data = independent(40, 3, 45);
        let sol = mdrrr(
            &data,
            4,
            KsetLimits { max_ksets: 5, max_lp_calls: 1_000_000, ..Default::default() },
        )
        .unwrap();
        assert_eq!(sol.certified_regret, None);
    }

    #[test]
    fn k_one_is_the_top1_hitting_set() {
        // k = 1: the k-sets are the singleton top-1 regions; the hitting
        // set must contain every tuple that is top-1 somewhere.
        let data = independent(20, 2, 46);
        let sol = mdrrr(&data, 1, KsetLimits::default()).unwrap();
        let est = estimate_rank_regret_seq(&data, &sol.indices, &FullSpace::new(2), 5000, 47);
        assert_eq!(est.max_rank, 1);
    }

    #[test]
    fn zero_threshold_rejected() {
        let data = independent(10, 2, 48);
        assert!(mdrrr(&data, 0, KsetLimits::default()).is_err());
    }
}
