//! The discretized vector set `D = Da ∪ Db` (paper Section V-A).
//!
//! `Da` is a uniform sample of the sphere patch `S ∩ U` (Theorem 6 makes
//! the sampled coverage argument); `Db` is the polar grid of
//! `(γ+1)^(d-1)` vertices (Theorem 7 makes the geometric covering
//! argument). For RRRM the samples come from `U` and grid vertices outside
//! `U` are discarded (Section V-C).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rrm_core::space::batch_contains;
use rrm_core::{ExecPolicy, UtilitySpace};
use rrm_geom::polar::polar_grid;

/// The discretized direction set used by HDRRM.
#[derive(Debug, Clone)]
pub struct Discretization {
    /// All directions: samples first, grid vertices after.
    pub dirs: Vec<Vec<f64>>,
    /// Number of sampled directions (`|Da|`).
    pub n_samples: usize,
    /// Number of retained grid directions (`|Db|` after restriction).
    pub n_grid: usize,
}

/// The sample size of Theorem 10's proof:
/// `m = ((r−d)·ln(n−d) + ln(n−r+1) + ln n) / (2(δ − 1/n)²)`,
/// with the degenerate corners clamped to keep the formula defined.
pub fn paper_sample_size(n: usize, r: usize, d: usize, delta: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0);
    let nf = n as f64;
    let num = (r.saturating_sub(d).max(1) as f64) * ((n.saturating_sub(d)).max(2) as f64).ln()
        + ((n.saturating_sub(r) + 1).max(2) as f64).ln()
        + nf.max(2.0).ln();
    let eff = (delta - 1.0 / nf).max(delta / 2.0);
    (num / (2.0 * eff * eff)).ceil() as usize
}

/// Build `D = Da ∪ Db` for a (possibly restricted) space.
///
/// * `m` — sample count for `Da` (use [`paper_sample_size`] for the
///   paper's default).
/// * `gamma` — polar grid resolution (the paper uses 6).
///
/// Grid vertices are deduplicated (collapsed vertices of the polar map)
/// and, for restricted spaces, filtered by direction membership.
pub fn build_vector_set(
    d: usize,
    space: &dyn UtilitySpace,
    m: usize,
    gamma: usize,
    seed: u64,
) -> Discretization {
    build_vector_set_exec(d, space, m, gamma, seed, ExecPolicy::default())
}

/// [`build_vector_set`] under an explicit execution policy: `Da` sampling
/// stays sequential (the RNG stream is part of the discretization's
/// identity), while the `Db` grid's membership classification is chunked
/// over the policy's threads. The resulting vector set is identical at
/// any thread count.
pub fn build_vector_set_exec(
    d: usize,
    space: &dyn UtilitySpace,
    m: usize,
    gamma: usize,
    seed: u64,
    exec: ExecPolicy,
) -> Discretization {
    assert!(d >= 2, "HD discretization requires d >= 2");
    assert_eq!(space.dim(), d);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dirs: Vec<Vec<f64>> = Vec::with_capacity(m);
    for _ in 0..m {
        dirs.push(space.sample_direction(&mut rng));
    }
    let n_samples = dirs.len();
    let grid = polar_grid(d, gamma, true);
    let mut n_grid = 0;
    if space.is_full() {
        n_grid = grid.len();
        dirs.extend(grid);
    } else {
        let keep = batch_contains(space, &grid, exec.parallelism);
        for (v, k) in grid.into_iter().zip(keep) {
            if k {
                dirs.push(v);
                n_grid += 1;
            }
        }
    }
    Discretization { dirs, n_samples, n_grid }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::{FullSpace, WeakRankingSpace};

    #[test]
    fn composition_counts() {
        let disc = build_vector_set(3, &FullSpace::new(3), 100, 4, 1);
        assert_eq!(disc.n_samples, 100);
        assert!(disc.n_grid > 0);
        assert_eq!(disc.dirs.len(), disc.n_samples + disc.n_grid);
    }

    #[test]
    fn restricted_grid_is_filtered() {
        let full = build_vector_set(3, &FullSpace::new(3), 0, 6, 2);
        let space = WeakRankingSpace::new(3, 2);
        let restricted = build_vector_set(3, &space, 0, 6, 2);
        assert!(restricted.n_grid < full.n_grid, "restriction must discard vertices");
        for v in &restricted.dirs {
            assert!(space.contains_direction(v));
        }
    }

    #[test]
    fn restricted_samples_live_in_space() {
        let space = WeakRankingSpace::new(4, 2);
        let disc = build_vector_set(4, &space, 200, 3, 3);
        for v in &disc.dirs[..disc.n_samples] {
            assert!(space.contains_direction(v));
        }
    }

    #[test]
    fn sample_size_formula() {
        // Paper defaults: n = 10K, d = 4, r = 10, δ = 0.03:
        // m = (6·ln(9996) + ln(9991) + ln(10000)) / (2·(0.03 − 1e-4)²).
        let m = paper_sample_size(10_000, 10, 4, 0.03);
        let expect = (6.0 * (9996f64).ln() + (9991f64).ln() + (10_000f64).ln())
            / (2.0 * (0.03 - 1e-4) * (0.03 - 1e-4));
        assert_eq!(m, expect.ceil() as usize);
        // Monotone: smaller δ → more samples.
        assert!(paper_sample_size(10_000, 10, 4, 0.01) > m);
        assert!(paper_sample_size(10_000, 10, 4, 0.1) < m);
    }

    #[test]
    fn sample_size_degenerate_corners() {
        // r <= d and tiny n must not panic or return zero.
        assert!(paper_sample_size(10, 2, 4, 0.05) > 0);
        assert!(paper_sample_size(3, 3, 3, 0.5) > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build_vector_set(3, &FullSpace::new(3), 50, 3, 9);
        let b = build_vector_set(3, &FullSpace::new(3), 50, 3, 9);
        assert_eq!(a.dirs, b.dirs);
    }
}
