//! **HDRRM** — the paper's HD algorithm (Algorithm 3, Theorems 9–11).
//!
//! 1. Discretize the (restricted) function space into `D = Da ∪ Db`.
//! 2. Search the smallest threshold `k` for which [`mod@crate::asms`] returns
//!    at most `r` tuples, with the *improved binary search*: double `k`
//!    until feasible, then binary-search the last gap. (ASMS cost grows
//!    with `k`, so keeping probed thresholds small matters — Section
//!    V-B.2.)
//! 3. Return that set; its certified regret is `∇D(R) ≤ k'`, and Theorems
//!    6/7 transfer the bound to the full space (for any user, with
//!    probability ≥ 1 − δ, the set holds a top-`k'` tuple; all utilities
//!    are within `1 − ε` of `w_{k'}`).
//!
//! During the binary phase every probe needs `Φk` for `k ≤ k_hi`, which is
//! a prefix of `Φ_{k_hi}` — the top-`k_hi` lists are computed once and
//! sliced, provided they fit a memory budget.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rrm_core::{
    basis_indices, cache_bounded, Algorithm, AnytimeSearch, AppliedUpdate, Bounds, Budget, Cutoff,
    Dataset, ExecPolicy, Parallelism, RrmError, Solution, TerminatedBy, UtilitySpace,
    PREPARED_CACHE_CAP,
};
use rrm_skyline::IncrementalSkyline;

use crate::anytime::{regret_over_dirs, threshold_search, uniform_top_set, ThresholdOutcome};
use crate::asms::{asms_with_topk, asms_with_topk_capped};
use crate::common::batch_topk;
use crate::discretize::{build_vector_set_exec, paper_sample_size, Discretization};

/// Tuning knobs for [`hdrrm`]. Defaults mirror the paper's experiments.
#[derive(Debug, Clone, Copy)]
pub struct HdrrmOptions {
    /// Polar grid resolution γ (paper: 6).
    pub gamma: usize,
    /// Failure probability δ for the sampled guarantee (paper: 0.03).
    pub delta: f64,
    /// Override the sample count `m` (default: the Theorem 10 formula,
    /// which can reach tens of thousands — benches scale it down).
    pub m_override: Option<usize>,
    /// RNG seed for `Da`.
    pub seed: u64,
    /// Restrict cover candidates to skyline tuples (sound by Theorem 3;
    /// ablated in `ablation_candidates`).
    pub skyline_candidates: bool,
    /// Force the boundary-tuple basis `B` into the output (the paper's
    /// Algorithm 2/3). The basis powers Theorem 7's `(1-ε)·w_k` utility
    /// floor but consumes up to `d` of the `r` budget slots, measurably
    /// raising the rank-regret on hard data (see the `ablation`
    /// experiment). Disable only when the utility floor is not needed.
    pub include_basis: bool,
    /// Memory budget for caching top-k lists across the binary-search
    /// phase, in entries (`|D| · k_hi`). Above it, lists are recomputed
    /// per probe.
    pub cache_budget_entries: usize,
    /// Bound-and-prune the feasibility probes: abort a greedy cover as
    /// soon as it provably exceeds the size budget `r`. Decision- and
    /// answer-equivalent to running every cover out (greedy picks are
    /// monotone and deterministic); disable only to measure the pruning
    /// win (`repro anytime`).
    pub prune: bool,
    /// Data-parallelism for the direction-batch kernels (top-k scoring,
    /// grid membership). Engine-level contexts override the default;
    /// outputs are identical at any thread count.
    pub exec: ExecPolicy,
}

impl Default for HdrrmOptions {
    fn default() -> Self {
        Self {
            gamma: 6,
            delta: 0.03,
            m_override: None,
            seed: 0xD15C0,
            skyline_candidates: true,
            include_basis: true,
            cache_budget_entries: 64 << 20, // 64M u32 entries = 256 MB
            prune: true,
            exec: ExecPolicy::default(),
        }
    }
}

/// Fraction of the discretization used as the coarse frame (its *prefix*,
/// so coarse infeasibility implies full-frame infeasibility).
const COARSE_FRACTION: usize = 16;
/// Below this many coarse directions the coarse pass is skipped — the
/// full solve is already fast and the extra pass would not pay for
/// itself.
const COARSE_MIN_DIRS: usize = 16;

/// The per-solve probe environment shared by the one-shot and prepared
/// HDRRM searches: everything a feasibility probe needs besides the
/// top-k lists (which the two paths source differently).
struct AsmsSearch<'a> {
    data: &'a Dataset,
    r: usize,
    basis: &'a [u32],
    mask: Option<&'a [bool]>,
    /// Greedy pick cap for bound-and-prune probes (`usize::MAX` when
    /// pruning is disabled).
    pick_cap: usize,
    pol: Parallelism,
}

/// Greedy pick cap for a probe: chosen tuples never overlap the basis,
/// so a cover that picks more than `r - |B|` tuples already proves
/// infeasibility. `usize::MAX` disables pruning.
fn pick_cap(r: usize, basis: &[u32], options: &HdrrmOptions) -> usize {
    if options.prune {
        r - basis.len()
    } else {
        usize::MAX
    }
}

impl AsmsSearch<'_> {
    /// One capped feasibility probe over precomputed lists. Counts the
    /// cover picks as nodes, records prunes, and offers feasible results
    /// to the incumbent (their threshold is a sound frame-relative upper
    /// bound).
    fn probe(
        &self,
        k: usize,
        lists: &[Vec<u32>],
        lower: usize,
        search: &mut AnytimeSearch,
    ) -> Option<Vec<u32>> {
        let probe =
            asms_with_topk_capped(self.data.n(), k, self.basis, lists, self.mask, self.pick_cap);
        search.note_nodes(probe.picks);
        if !probe.complete {
            search.note_pruned_probe();
            return None;
        }
        if probe.q.len() <= self.r {
            search.offer(probe.q.clone(), k, lower);
            Some(probe.q)
        } else {
            None
        }
    }

    /// Offer the deterministic fallback incumbent (basis topped up with
    /// uniform-direction best scorers), so any active cutoff always has
    /// a sound answer to return.
    fn offer_fallback(&self, dirs: &[Vec<f64>], search: &mut AnytimeSearch) {
        let fallback = uniform_top_set(self.data, self.basis, self.r);
        let upper = regret_over_dirs(self.data, &fallback, dirs, self.pol);
        search.offer(fallback, upper, 1);
    }

    /// Coarse-to-fine first incumbent: run the whole threshold search on
    /// the *prefix* `dirs[..m/16]` of the discretization (a subset, so
    /// its probes are cheap and its answer fits `r`), then measure that
    /// answer's regret over the full frame for a sound upper bound.
    /// Coarse probes never consume the deterministic probe budget; their
    /// expanded nodes and prunes are merged into the main report.
    fn coarse_incumbent(&self, dirs: &[Vec<f64>], search: &mut AnytimeSearch) {
        let mc = dirs.len() / COARSE_FRACTION;
        if mc < COARSE_MIN_DIRS {
            return;
        }
        let coarse = &dirs[..mc];
        let mut sub = AnytimeSearch::unlimited();
        let mut cache: Option<(usize, Vec<Vec<u32>>)> = None;
        let outcome = threshold_search(self.data.n(), &mut sub, |k, lower, sub| {
            if cache.as_ref().is_none_or(|(ck, _)| *ck < k) {
                cache = Some((k, batch_topk(self.data, coarse, k, self.pol)));
            }
            let (_, lists) = cache.as_ref().expect("coarse top-k cache just filled");
            Ok(self.probe(k, lists, lower, sub))
        });
        search.report.nodes += sub.report.nodes;
        search.report.pruned_probes += sub.report.pruned_probes;
        let Ok(outcome) = outcome else { return };
        if let Some((_, q)) = outcome.best {
            let upper = regret_over_dirs(self.data, &q, dirs, self.pol);
            search.offer(q, upper, 1);
        }
    }

    /// Assemble the final [`Solution`] from a finished or cut-off search.
    fn finish(
        &self,
        outcome: ThresholdOutcome<Vec<u32>>,
        search: AnytimeSearch,
    ) -> Result<Solution, RrmError> {
        match outcome.terminated {
            TerminatedBy::Completed => {
                // Unreachable `None`: at k = n the universe Dk is empty
                // and ASMS returns exactly the basis, which fits r.
                let (best_k, best_q) = outcome.best.expect("ASMS at k = n returns the basis");
                Solution::new(best_q, Some(best_k), Algorithm::Hdrrm, self.data).map(|s| {
                    s.with_bounds(Bounds { lower: best_k, upper: best_k })
                        .with_report(search.report)
                })
            }
            t => {
                let (q, upper) = search
                    .incumbent
                    .best()
                    .expect("an active cutoff offers a fallback incumbent before searching");
                Solution::new(q, Some(upper), Algorithm::Hdrrm, self.data).map(|s| {
                    s.with_bounds(Bounds { lower: outcome.lower, upper })
                        .with_termination(t)
                        .with_report(search.report)
                })
            }
        }
    }
}

/// Solve RRM (`space = L`) or RRRM (restricted `space`) with HDRRM,
/// running to completion ([`Cutoff::None`]).
///
/// Errors when `r` cannot hold the basis (`r < |B|`; the paper assumes
/// `r ≥ d`), when `d < 2`, or on dimension mismatch.
pub fn hdrrm(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    options: HdrrmOptions,
) -> Result<Solution, RrmError> {
    hdrrm_anytime(data, r, space, options, Cutoff::None, None)
}

/// [`hdrrm`] as an anytime bound-and-prune search.
///
/// The doubling-then-binary threshold search runs under `cutoff`
/// (`probe_budget` threshold probes under [`Cutoff::CounterBudget`]); an
/// early stop returns the best incumbent found so far — the coarse-frame
/// answer, a feasible probe, or the uniform-direction fallback — with
/// certified [`Bounds`] and the [`TerminatedBy`] reason, instead of
/// failing. Under [`Cutoff::None`] the answer is bit-identical to the
/// pre-anytime solver at any thread count.
pub fn hdrrm_anytime(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    options: HdrrmOptions,
    cutoff: Cutoff,
    probe_budget: Option<usize>,
) -> Result<Solution, RrmError> {
    let d = data.dim();
    let n = data.n();
    if d < 2 {
        return Err(RrmError::Unsupported("HDRRM requires d >= 2".into()));
    }
    if space.dim() != d {
        return Err(RrmError::DimensionMismatch { expected: d, got: space.dim() });
    }
    let basis = if options.include_basis { basis_indices(data) } else { Vec::new() };
    if r < basis.len().max(1) {
        return Err(RrmError::OutputSizeTooSmall { requested: r, minimum: basis.len().max(1) });
    }

    let m = options.m_override.unwrap_or_else(|| paper_sample_size(n, r, d, options.delta));
    let disc = build_vector_set_exec(d, space, m, options.gamma, options.seed, options.exec);

    let mask = if options.skyline_candidates {
        let sky = rrm_skyline::skyline(data);
        let mut mask = vec![false; n];
        for &s in &sky {
            mask[s as usize] = true;
        }
        Some(mask)
    } else {
        None
    };

    let env = AsmsSearch {
        data,
        r,
        basis: &basis,
        mask: mask.as_deref(),
        pick_cap: pick_cap(r, &basis, &options),
        pol: options.exec.parallelism,
    };
    let mut search = AnytimeSearch::new(cutoff, probe_budget);
    if search.cutoff() != Cutoff::None {
        env.offer_fallback(&disc.dirs, &mut search);
    }
    env.coarse_incumbent(&disc.dirs, &mut search);

    // Main search (Algorithm 3 lines 2–6). Top-k lists computed for the
    // latest doubling threshold are kept (within the cache budget) and
    // sliced for every smaller probe — the ASMS prefix property.
    let mut cache: Option<(usize, Arc<Vec<Vec<u32>>>)> = None;
    let outcome = threshold_search(n, &mut search, |k, lower, search| {
        let lists = match &cache {
            Some((ck, lists)) if *ck >= k => lists.clone(),
            _ => {
                let lists = Arc::new(batch_topk(data, &disc.dirs, k, options.exec.parallelism));
                if disc.dirs.len().saturating_mul(k) <= options.cache_budget_entries {
                    cache = Some((k, lists.clone()));
                }
                lists
            }
        };
        Ok(env.probe(k, &lists, lower, search))
    })?;
    env.finish(outcome, search)
}

/// HDRRM bound to one dataset and utility space: the prepare-once /
/// query-many form of the paper's HD algorithm.
///
/// Preparation computes the boundary-tuple basis `B` and the skyline
/// candidate mask once. Discretized vector sets (keyed by their sample
/// count `m`, which the Theorem 10 formula ties to the queried `r`) and
/// top-k lists are cached across queries: a repeated query re-runs only
/// the greedy covers, and the binary-search phases of *different* queries
/// share one top-`k` computation through the ASMS prefix property.
///
/// Every query returns exactly what the one-shot [`hdrrm`] / [`hdrrr`]
/// would return for the same inputs — the caches are keyed by the same
/// deterministic seeds the one-shot path uses.
pub struct PreparedHdrrm {
    data: Dataset,
    space: Box<dyn UtilitySpace>,
    options: HdrrmOptions,
    /// The boundary-tuple basis `B` (always computed: RRR needs it even
    /// when `include_basis` is off for RRM).
    basis: Vec<u32>,
    /// Incrementally maintained skyline behind `mask` (present exactly
    /// when `skyline_candidates` is on), so updates patch the candidate
    /// mask instead of re-filtering the dataset.
    sky: Option<IncrementalSkyline>,
    mask: Option<Vec<bool>>,
    discs: Mutex<HashMap<usize, Arc<Discretization>>>,
    /// Per sample count `m`: the largest `k` computed so far and its
    /// top-k lists (every smaller threshold is a prefix).
    topk: Mutex<HashMap<usize, (usize, TopkLists)>>,
}

/// Shared top-k index lists, one per discretized direction.
type TopkLists = Arc<Vec<Vec<u32>>>;

impl PreparedHdrrm {
    pub fn new(
        data: &Dataset,
        space: &dyn UtilitySpace,
        options: HdrrmOptions,
    ) -> Result<Self, RrmError> {
        let d = data.dim();
        if d < 2 {
            return Err(RrmError::Unsupported("HDRRM requires d >= 2".into()));
        }
        if space.dim() != d {
            return Err(RrmError::DimensionMismatch { expected: d, got: space.dim() });
        }
        let basis = basis_indices(data);
        let sky = options.skyline_candidates.then(|| IncrementalSkyline::build(data));
        let mask = sky.as_ref().map(|s| s.mask().to_vec());
        Ok(Self {
            data: data.clone(),
            space: space.clone_box(),
            options,
            basis,
            sky,
            mask,
            discs: Mutex::new(HashMap::new()),
            topk: Mutex::new(HashMap::new()),
        })
    }

    /// The dataset this state was prepared on.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Rebind the prepared state to the post-update dataset, patching the
    /// caches instead of re-preparing:
    ///
    /// * the skyline candidate mask advances through the maintained
    ///   [`IncrementalSkyline`];
    /// * discretizations transfer wholesale — they are pure functions of
    ///   `(d, space, m, γ, seed)`, never of the rows;
    /// * cached top-k lists are patched per direction: survivors keep
    ///   their (remapped) entries, and only directions actually disturbed
    ///   by the batch — a deleted tuple in the list, or an inserted tuple
    ///   outscoring the k-th entry — are re-scored. Untouched prefixes
    ///   survive verbatim, so the repaired cache is entry-for-entry what
    ///   `batch_topk` on the new rows would produce (the scoring kernel's
    ///   determinism contract makes the dot-product trigger exact).
    ///
    /// The basis is recomputed (`O(n·d)`, far below one direction's
    /// re-score). Queries on the patched handle answer bit-identically to
    /// a freshly built [`PreparedHdrrm`] over the same rows.
    pub fn apply_update(&self, upd: &AppliedUpdate) -> Self {
        let data = upd.new.clone();
        let basis = basis_indices(&data);
        let sky = self.sky.clone().map(|mut s| {
            s.apply_update(upd);
            s
        });
        let mask = sky.as_ref().map(|s| s.mask().to_vec());
        let discs: HashMap<usize, Arc<Discretization>> =
            self.discs.lock().expect("discretization cache poisoned").clone();
        let pol = self.options.exec.parallelism;
        let mut topk = HashMap::new();
        for (&m, (k, lists)) in self.topk.lock().expect("top-k cache poisoned").iter() {
            // A cached list without its discretization (evicted) is
            // dropped; a later query rebuilds both identically.
            let Some(disc) = discs.get(&m) else { continue };
            topk.insert(m, (*k, patch_topk(&data, upd, &disc.dirs, *k, lists, pol)));
        }
        Self {
            data,
            space: self.space.clone_box(),
            options: self.options,
            basis,
            sky,
            mask,
            discs: Mutex::new(discs),
            topk: Mutex::new(topk),
        }
    }

    fn disc(&self, m: usize) -> Arc<Discretization> {
        if let Some(disc) = self.discs.lock().expect("discretization cache poisoned").get(&m) {
            return disc.clone();
        }
        // Build outside the lock: concurrent misses duplicate work (the
        // result is deterministic) but never block other queries.
        let disc = Arc::new(build_vector_set_exec(
            self.data.dim(),
            self.space.as_ref(),
            m,
            self.options.gamma,
            self.options.seed,
            self.options.exec,
        ));
        cache_bounded(
            &mut self.discs.lock().expect("discretization cache poisoned"),
            m,
            disc,
            PREPARED_CACHE_CAP,
        )
    }

    /// Top-k lists over the size-`m` discretization, with at least `k`
    /// entries per direction. Within the cache budget, one computation at
    /// the largest requested `k` serves every smaller threshold (the ASMS
    /// prefix property); above it, lists are computed fresh per call —
    /// exactly the one-shot memory/speed trade.
    fn lists(&self, m: usize, k: usize) -> TopkLists {
        let disc = self.disc(m);
        let pol = self.options.exec.parallelism;
        if disc.dirs.len().saturating_mul(k) > self.options.cache_budget_entries {
            return Arc::new(batch_topk(&self.data, &disc.dirs, k, pol));
        }
        if let Some((cached_k, lists)) = self.topk.lock().expect("top-k cache poisoned").get(&m) {
            if *cached_k >= k {
                return lists.clone();
            }
        }
        // Compute outside the lock (batch_topk is the dominant cost);
        // racers duplicate deterministic work instead of serializing.
        let lists = Arc::new(batch_topk(&self.data, &disc.dirs, k, pol));
        let mut cache = self.topk.lock().expect("top-k cache poisoned");
        match cache.get(&m) {
            Some((cached_k, existing)) if *cached_k >= k => existing.clone(),
            Some(_) => {
                // Upgrading an existing entry to a deeper k never grows
                // the entry count.
                cache.insert(m, (k, lists.clone()));
                lists
            }
            None => {
                if cache.len() < PREPARED_CACHE_CAP {
                    cache.insert(m, (k, lists.clone()));
                }
                lists
            }
        }
    }

    /// The effective sample count for an RRM query (budget override, then
    /// option override, then the Theorem 10 formula — identical precedence
    /// to the one-shot [`hdrrm`] behind a budget-applying solver).
    fn rrm_samples(&self, r: usize, budget: &Budget) -> usize {
        budget.samples.or(self.options.m_override).unwrap_or_else(|| {
            paper_sample_size(self.data.n(), r, self.data.dim(), self.options.delta)
        })
    }

    /// RRM for one size budget (identical to [`hdrrm`], including the
    /// anytime behavior: the budget's [`Budget::effective_cutoff`] and
    /// `max_enumerations` probe allowance apply in-solve).
    pub fn solve_rrm(&self, r: usize, budget: &Budget) -> Result<Solution, RrmError> {
        let n = self.data.n();
        let basis: &[u32] = if self.options.include_basis { &self.basis } else { &[] };
        if r < basis.len().max(1) {
            return Err(RrmError::OutputSizeTooSmall { requested: r, minimum: basis.len().max(1) });
        }
        let m = self.rrm_samples(r, budget);
        let disc = self.disc(m);

        let env = AsmsSearch {
            data: &self.data,
            r,
            basis,
            mask: self.mask.as_deref(),
            pick_cap: pick_cap(r, basis, &self.options),
            pol: self.options.exec.parallelism,
        };
        let mut search = AnytimeSearch::new(budget.effective_cutoff(), budget.max_enumerations);
        if search.cutoff() != Cutoff::None {
            env.offer_fallback(&disc.dirs, &mut search);
        }
        env.coarse_incumbent(&disc.dirs, &mut search);

        let outcome = threshold_search(n, &mut search, |k, lower, search| {
            Ok(env.probe(k, &self.lists(m, k), lower, search))
        })?;
        env.finish(outcome, search)
    }

    /// RRR for one threshold (identical to [`hdrrr`]).
    pub fn solve_rrr(&self, k: usize, budget: &Budget) -> Result<Solution, RrmError> {
        if k == 0 {
            return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
        }
        let n = self.data.n();
        let m = budget.samples.or(self.options.m_override).unwrap_or_else(|| {
            paper_sample_size(n, (2 * self.basis.len()).max(8), self.data.dim(), self.options.delta)
        });
        let k = k.min(n);
        let q = asms_with_topk(n, k, &self.basis, &self.lists(m, k), self.mask.as_deref());
        Solution::new(q, Some(k), Algorithm::Hdrrm, &self.data)
    }
}

/// Patch one cached top-k table onto the post-update dataset: remap each
/// direction's survivor entries in place and fully re-score only the
/// directions the batch disturbed.
///
/// A direction needs re-scoring exactly when its cached list is no longer
/// the true top-k of the new rows: a deleted tuple sat in the list (its
/// replacement is unknown), the list was shorter than `k` and rows were
/// inserted, or an inserted row *strictly* outscores the k-th entry.
/// Score ties never displace — inserted rows take the largest indices and
/// the top-k order breaks ties by ascending index — so the strict test is
/// exact, and the kernel's fixed-order-sum contract makes the scalar
/// [`rrm_core::utility::dot`] comparison bit-compatible with
/// [`batch_topk`]'s internal scores. Disturbed directions are re-scored
/// through [`batch_topk`] itself, so every returned list is exactly what
/// a fresh computation over the new rows produces.
fn patch_topk(
    new_data: &Dataset,
    upd: &AppliedUpdate,
    dirs: &[Vec<f64>],
    k: usize,
    lists: &TopkLists,
    pol: Parallelism,
) -> TopkLists {
    let ins_rows: Vec<&[f64]> = upd.inserted.iter().map(|&j| new_data.row(j as usize)).collect();
    let mut out: Vec<Vec<u32>> = Vec::with_capacity(lists.len());
    let mut stale: Vec<usize> = Vec::new();
    for (di, (u, list)) in dirs.iter().zip(lists.iter()).enumerate() {
        let mut remapped = Vec::with_capacity(list.len());
        let mut deleted_in_list = false;
        for &t in list {
            match upd.remap[t as usize] {
                Some(nt) => remapped.push(nt),
                None => {
                    deleted_in_list = true;
                    break;
                }
            }
        }
        let disturbed = deleted_in_list
            || (!ins_rows.is_empty() && {
                remapped.len() < k || {
                    let kth = *remapped.last().expect("top-k lists are non-empty");
                    let floor = rrm_core::utility::dot(u, new_data.row(kth as usize));
                    ins_rows.iter().any(|row| rrm_core::utility::dot(u, row) > floor)
                }
            });
        if disturbed {
            stale.push(di);
            remapped.clear();
        }
        out.push(remapped);
    }
    if !stale.is_empty() {
        let stale_dirs: Vec<Vec<f64>> = stale.iter().map(|&di| dirs[di].clone()).collect();
        let fresh = batch_topk(new_data, &stale_dirs, k, pol);
        for (&slot, computed) in stale.iter().zip(fresh) {
            out[slot] = computed;
        }
    }
    Arc::new(out)
}

/// The RRR (threshold) variant in HD: one ASMS call at threshold `k`
/// returns a small superset of the basis with `∇D(Q) ≤ k` — the MS problem
/// of Definition 7, certified over the discretization.
pub fn hdrrr(
    data: &Dataset,
    k: usize,
    space: &dyn UtilitySpace,
    options: HdrrmOptions,
) -> Result<Solution, RrmError> {
    let d = data.dim();
    let n = data.n();
    if d < 2 {
        return Err(RrmError::Unsupported("HDRRR requires d >= 2".into()));
    }
    if space.dim() != d {
        return Err(RrmError::DimensionMismatch { expected: d, got: space.dim() });
    }
    if k == 0 {
        return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
    }
    let basis = basis_indices(data);
    // The formula's r is unknown for RRR; scale m by the threshold instead.
    let m = options
        .m_override
        .unwrap_or_else(|| paper_sample_size(n, (2 * basis.len()).max(8), d, options.delta));
    let disc = build_vector_set_exec(d, space, m, options.gamma, options.seed, options.exec);
    let mask = if options.skyline_candidates {
        let sky = rrm_skyline::skyline(data);
        let mut mask = vec![false; n];
        for &s in &sky {
            mask[s as usize] = true;
        }
        Some(mask)
    } else {
        None
    };
    let q = crate::asms::asms(
        data,
        k.min(n),
        &basis,
        &disc.dirs,
        mask.as_deref(),
        options.exec.parallelism,
    );
    Solution::new(q, Some(k.min(n)), Algorithm::Hdrrm, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::build_vector_set;
    use rrm_core::{FullSpace, WeakRankingSpace};
    use rrm_data::synthetic::{anticorrelated, correlated, independent};

    fn quick_opts(m: usize) -> HdrrmOptions {
        HdrrmOptions { m_override: Some(m), gamma: 4, ..Default::default() }
    }

    fn regret_over_dirs(data: &Dataset, set: &[u32], dirs: &[Vec<f64>]) -> usize {
        dirs.iter().map(|u| rrm_core::rank::rank_regret_of_set(data, u, set)).max().unwrap()
    }

    #[test]
    fn certificate_holds_over_its_own_discretization() {
        let data = independent(600, 4, 21);
        let opts = quick_opts(400);
        let sol = hdrrm(&data, 10, &FullSpace::new(4), opts).unwrap();
        assert!(sol.size() <= 10);
        let k = sol.certified_regret.unwrap();
        // Rebuild the same D (same seed/options) and verify ∇D(R) ≤ k.
        let disc = build_vector_set(4, &FullSpace::new(4), 400, opts.gamma, opts.seed);
        let reg = regret_over_dirs(&data, &sol.indices, &disc.dirs);
        assert!(reg <= k, "certified {k}, measured over D {reg}");
    }

    #[test]
    fn includes_basis() {
        let data = independent(300, 3, 22);
        let sol = hdrrm(&data, 8, &FullSpace::new(3), quick_opts(200)).unwrap();
        for b in basis_indices(&data) {
            assert!(sol.indices.contains(&b));
        }
    }

    #[test]
    fn rejects_r_below_basis() {
        let data = independent(100, 4, 23);
        let err = hdrrm(&data, 2, &FullSpace::new(4), quick_opts(50));
        assert!(matches!(err, Err(RrmError::OutputSizeTooSmall { .. })));
    }

    #[test]
    fn larger_r_never_certifies_worse() {
        let data = anticorrelated(800, 4, 24);
        let mut prev = usize::MAX;
        for r in [6usize, 10, 14] {
            let sol = hdrrm(&data, r, &FullSpace::new(4), quick_opts(300)).unwrap();
            let k = sol.certified_regret.unwrap();
            assert!(k <= prev, "r={r}: {k} > {prev}");
            prev = k;
        }
    }

    #[test]
    fn correlated_data_gets_tiny_regret() {
        // "The more correlated the attributes, the smaller the output
        // rank-regrets."
        let corr = correlated(2000, 4, 25);
        let anti = anticorrelated(2000, 4, 25);
        let k_corr = hdrrm(&corr, 10, &FullSpace::new(4), quick_opts(300))
            .unwrap()
            .certified_regret
            .unwrap();
        let k_anti = hdrrm(&anti, 10, &FullSpace::new(4), quick_opts(300))
            .unwrap()
            .certified_regret
            .unwrap();
        assert!(k_corr <= k_anti, "correlated {k_corr} vs anti {k_anti}");
    }

    #[test]
    fn restricted_space_certifies_no_worse() {
        let data = anticorrelated(1000, 4, 26);
        let full = hdrrm(&data, 10, &FullSpace::new(4), quick_opts(300)).unwrap();
        let weak = hdrrm(&data, 10, &WeakRankingSpace::new(4, 2), quick_opts(300)).unwrap();
        // The restricted D is "easier": certified regret should not grow
        // beyond sampling noise. Allow equality plus slack of 1 doubling.
        let (kf, kw) = (full.certified_regret.unwrap(), weak.certified_regret.unwrap());
        assert!(kw <= 2 * kf.max(1), "restricted {kw} vs full {kf}");
    }

    #[test]
    fn skyline_mask_matches_unmasked_quality() {
        let data = independent(500, 3, 27);
        let with_mask = hdrrm(&data, 8, &FullSpace::new(3), quick_opts(250)).unwrap();
        let without_mask = hdrrm(
            &data,
            8,
            &FullSpace::new(3),
            HdrrmOptions { skyline_candidates: false, ..quick_opts(250) },
        )
        .unwrap();
        // Theorem 3 guarantees an equally small cover exists inside the
        // skyline, but greedy is not optimal, so allow small divergence.
        let (a, b) = (with_mask.certified_regret.unwrap(), without_mask.certified_regret.unwrap());
        assert!(a <= 2 * b.max(1) && b <= 2 * a.max(1), "masked {a} vs unmasked {b}");
    }

    #[test]
    fn tiny_cache_budget_same_answer() {
        let data = independent(400, 3, 28);
        let a = hdrrm(&data, 8, &FullSpace::new(3), quick_opts(200)).unwrap();
        let b = hdrrm(
            &data,
            8,
            &FullSpace::new(3),
            HdrrmOptions { cache_budget_entries: 0, ..quick_opts(200) },
        )
        .unwrap();
        assert_eq!(a.indices, b.indices);
        assert_eq!(a.certified_regret, b.certified_regret);
    }

    #[test]
    fn hdrrr_threshold_variant() {
        let data = independent(500, 3, 29);
        let opts = quick_opts(300);
        for k in [1usize, 5, 25] {
            let sol = hdrrr(&data, k, &FullSpace::new(3), opts).unwrap();
            assert_eq!(sol.certified_regret, Some(k));
            // Verify over the same discretization it was built from.
            let m = opts.m_override.unwrap();
            let disc = build_vector_set(3, &FullSpace::new(3), m, opts.gamma, opts.seed);
            assert!(regret_over_dirs(&data, &sol.indices, &disc.dirs) <= k);
        }
        // Bigger threshold, same-or-smaller set.
        let small = hdrrr(&data, 2, &FullSpace::new(3), opts).unwrap().size();
        let large = hdrrr(&data, 50, &FullSpace::new(3), opts).unwrap().size();
        assert!(large <= small);
    }

    #[test]
    fn incremental_update_matches_fresh_prepare() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use rrm_core::{apply_updates, UpdateOp};
        let mut rng = StdRng::seed_from_u64(33);
        let opts = quick_opts(64);
        let space = FullSpace::new(4);
        let mut data = independent(200, 4, 31);
        let mut prepared = PreparedHdrrm::new(&data, &space, opts).unwrap();
        let budget = Budget::with_samples(64);
        for batch in 0..3 {
            // Warm the caches before each batch so the patch path has
            // real entries to repair.
            prepared.solve_rrm(8, &budget).unwrap();
            prepared.solve_rrr(5, &budget).unwrap();
            let mut ops: Vec<UpdateOp> = Vec::new();
            for _ in 0..6 {
                let i = rng.random_range(0..data.n());
                if !ops.contains(&UpdateOp::Delete(i)) {
                    ops.push(UpdateOp::Delete(i));
                }
            }
            for _ in 0..6 {
                ops.push(UpdateOp::Insert((0..4).map(|_| rng.random::<f64>()).collect()));
            }
            let upd = apply_updates(&data, &ops).unwrap();
            prepared = prepared.apply_update(&upd);
            let fresh = PreparedHdrrm::new(&upd.new, &space, opts).unwrap();
            let ctx = format!("batch {batch}");
            assert_eq!(prepared.basis, fresh.basis, "{ctx}");
            assert_eq!(prepared.mask, fresh.mask, "{ctx}");
            // The patched top-k cache is entry-for-entry a fresh
            // computation over the new rows.
            for (m, (k, lists)) in prepared.topk.lock().unwrap().iter() {
                let disc = build_vector_set(4, &space, *m, opts.gamma, opts.seed);
                let want = batch_topk(&upd.new, &disc.dirs, *k, Parallelism::Sequential);
                assert_eq!(lists.as_ref(), &want, "{ctx} m={m} k={k}");
            }
            for r in [6usize, 8, 10] {
                assert_eq!(
                    prepared.solve_rrm(r, &budget).unwrap(),
                    fresh.solve_rrm(r, &budget).unwrap(),
                    "{ctx} r={r}"
                );
            }
            for k in [2usize, 5] {
                assert_eq!(
                    prepared.solve_rrr(k, &budget).unwrap(),
                    fresh.solve_rrr(k, &budget).unwrap(),
                    "{ctx} k={k}"
                );
            }
            data = upd.new.clone();
        }
    }

    #[test]
    fn d1_unsupported() {
        let data = Dataset::from_rows(&[[0.5], [0.7]]).unwrap();
        assert!(hdrrm(&data, 1, &FullSpace::new(1), quick_opts(10)).is_err());
    }
}
