//! **ASMS** — the approximate solver for the MS problem (Algorithm 2).
//!
//! Given a threshold `k`, find a small superset `Q ⊇ B` whose rank-regret
//! over the discretized vector set `D` is at most `k`. Lemma 2 reduces
//! this to set cover: the universe is `Dk` (the vectors whose top-k
//! contains no boundary tuple), and tuple `t` covers the vectors whose
//! top-k contains `t`. Chvátal's greedy yields the `1 + ln|Dk|` size
//! factor of Theorem 9.

use rrm_core::{Dataset, Parallelism};
use rrm_setcover::greedy_set_cover_capped;

use crate::common::batch_topk;

/// Run ASMS for threshold `k`. Returns `B ∪ (greedy cover)`, sorted.
///
/// `basis` must be sorted; `dirs` is the discretized vector set `D`.
/// `candidate_mask`, when given, restricts which tuples may be *chosen* by
/// the cover (e.g. to skyline members — sound by Theorem 3); coverage
/// accounting is unaffected. The top-k scoring pass is chunked over
/// `pol`'s threads; the greedy cover itself is sequential (each pick
/// depends on the previous), so the output is identical at any count.
pub fn asms(
    data: &Dataset,
    k: usize,
    basis: &[u32],
    dirs: &[Vec<f64>],
    candidate_mask: Option<&[bool]>,
    pol: Parallelism,
) -> Vec<u32> {
    let topk = batch_topk(data, dirs, k, pol);
    asms_with_topk(data.n(), k, basis, &topk, candidate_mask)
}

/// ASMS on precomputed top-k lists (each list's *prefix of length `k`* is
/// used, so one `top-K` computation serves every `k ≤ K` during HDRRM's
/// binary-search phase).
pub fn asms_with_topk(
    n: usize,
    k: usize,
    basis: &[u32],
    topk: &[Vec<u32>],
    candidate_mask: Option<&[bool]>,
) -> Vec<u32> {
    asms_with_topk_capped(n, k, basis, topk, candidate_mask, usize::MAX).q
}

/// One ASMS feasibility probe: the result set, whether the greedy cover
/// ran to completion, and how many cover picks it expanded.
pub struct AsmsProbe {
    /// `B ∪ (greedy picks)`, sorted and deduplicated. When `complete`,
    /// exactly the uncapped [`asms_with_topk`] output; when aborted, a
    /// strict prefix of it that already exceeds the cap.
    pub q: Vec<u32>,
    /// Whether the cover ran to completion (`false` = aborted past the
    /// pick cap, proving the full output is larger than `basis + cap`).
    pub complete: bool,
    /// Greedy cover picks expanded (search nodes).
    pub picks: u64,
}

/// ASMS with the greedy cover capped at `max_picks` choices — the
/// bound-and-prune feasibility probe used by the anytime HDRRM search.
///
/// Greedy picks are monotone and deterministic, so aborting once the
/// cover cannot fit the caller's size budget is decision-equivalent to
/// running it out: `complete == false` proves the uncapped output has
/// more than `basis.len() + max_picks` tuples, and a complete run returns
/// the identical set the uncapped call would. Chosen tuples never overlap
/// the basis (their directions' top-`k` misses it by construction), so
/// `q.len() == basis.len() + picks` whenever the run completes.
pub fn asms_with_topk_capped(
    n: usize,
    k: usize,
    basis: &[u32],
    topk: &[Vec<u32>],
    candidate_mask: Option<&[bool]>,
    max_picks: usize,
) -> AsmsProbe {
    debug_assert!(basis.windows(2).all(|w| w[0] < w[1]), "basis must be sorted");
    let mut in_basis = vec![false; n];
    for &b in basis {
        in_basis[b as usize] = true;
    }

    // Universe: directions whose top-k misses the basis (the set `Dk`).
    // Inverted lists: tuple -> universe element ids it covers.
    let mut lists: Vec<Vec<u32>> = Vec::new();
    let mut list_of_tuple: Vec<u32> = vec![u32::MAX; n];
    let mut tuple_of_list: Vec<u32> = Vec::new();
    let mut universe = 0u32;
    for list in topk {
        let prefix = &list[..k.min(list.len())];
        if prefix.iter().any(|&t| in_basis[t as usize]) {
            continue; // covered by B; not part of Dk
        }
        let push = |t: u32,
                    lists: &mut Vec<Vec<u32>>,
                    list_of_tuple: &mut Vec<u32>,
                    tuple_of_list: &mut Vec<u32>| {
            let li = list_of_tuple[t as usize];
            if li == u32::MAX {
                list_of_tuple[t as usize] = lists.len() as u32;
                tuple_of_list.push(t);
                lists.push(vec![universe]);
            } else {
                lists[li as usize].push(universe);
            }
        };
        let mut pushed_any = false;
        for &t in prefix {
            if let Some(mask) = candidate_mask {
                if !mask[t as usize] {
                    continue;
                }
            }
            push(t, &mut lists, &mut list_of_tuple, &mut tuple_of_list);
            pushed_any = true;
        }
        if !pushed_any {
            // Score ties can put only non-candidate tuples in a top-k
            // prefix (e.g. duplicated attribute maxima under axis-aligned
            // directions); keep this direction coverable by admitting its
            // own tuples regardless of the mask.
            for &t in prefix {
                push(t, &mut lists, &mut list_of_tuple, &mut tuple_of_list);
            }
        }
        universe += 1;
    }

    let (chosen, complete) = greedy_set_cover_capped(universe as usize, &lists, max_picks);
    let picks = chosen.len() as u64;
    let mut out: Vec<u32> = basis.to_vec();
    out.extend(chosen.into_iter().map(|li| tuple_of_list[li]));
    out.sort_unstable();
    out.dedup();
    AsmsProbe { q: out, complete, picks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrm_core::{basis_indices, FullSpace};
    use rrm_data::synthetic::independent;

    use crate::discretize::build_vector_set;

    /// Rank-regret of `set` over exactly the given directions (the
    /// quantity ASMS certifies: `∇D(Q) ≤ k`).
    fn regret_over_dirs(data: &Dataset, set: &[u32], dirs: &[Vec<f64>]) -> usize {
        dirs.iter().map(|u| rrm_core::rank::rank_regret_of_set(data, u, set)).max().unwrap()
    }

    #[test]
    fn output_contains_basis_and_meets_threshold() {
        let data = independent(400, 3, 11);
        let basis = basis_indices(&data);
        let disc = build_vector_set(3, &FullSpace::new(3), 300, 4, 1);
        for k in [1usize, 3, 10, 50] {
            let q = asms(&data, k, &basis, &disc.dirs, None, Parallelism::Auto);
            for b in &basis {
                assert!(q.contains(b), "k={k}: basis tuple {b} missing");
            }
            let reg = regret_over_dirs(&data, &q, &disc.dirs);
            assert!(reg <= k, "k={k}: ∇D(Q) = {reg}");
        }
    }

    #[test]
    fn size_shrinks_as_k_grows() {
        let data = independent(500, 4, 12);
        let basis = basis_indices(&data);
        let disc = build_vector_set(4, &FullSpace::new(4), 400, 4, 2);
        let small_k = asms(&data, 2, &basis, &disc.dirs, None, Parallelism::Auto).len();
        let large_k = asms(&data, 60, &basis, &disc.dirs, None, Parallelism::Auto).len();
        assert!(
            large_k <= small_k,
            "larger thresholds need no more tuples: k=2 -> {small_k}, k=60 -> {large_k}"
        );
    }

    #[test]
    fn prefix_reuse_equals_direct_computation() {
        let data = independent(300, 3, 13);
        let basis = basis_indices(&data);
        let disc = build_vector_set(3, &FullSpace::new(3), 200, 3, 3);
        let top10 = crate::common::batch_topk(&data, &disc.dirs, 10, Parallelism::Auto);
        for k in [1usize, 4, 7, 10] {
            let via_prefix = asms_with_topk(data.n(), k, &basis, &top10, None);
            let direct = asms(&data, k, &basis, &disc.dirs, None, Parallelism::Auto);
            assert_eq!(via_prefix, direct, "k={k}");
        }
    }

    #[test]
    fn skyline_candidate_mask_still_covers() {
        let data = independent(400, 3, 14);
        let basis = basis_indices(&data);
        let disc = build_vector_set(3, &FullSpace::new(3), 300, 3, 4);
        let sky = rrm_skyline::skyline(&data);
        let mut mask = vec![false; data.n()];
        for &s in &sky {
            mask[s as usize] = true;
        }
        let q = asms(&data, 3, &basis, &disc.dirs, Some(&mask), Parallelism::Auto);
        assert!(regret_over_dirs(&data, &q, &disc.dirs) <= 3);
        // Chosen non-basis tuples are all skyline members.
        for &t in &q {
            assert!(mask[t as usize] || basis.contains(&t));
        }
    }

    #[test]
    fn capped_probe_is_decision_equivalent() {
        let data = independent(400, 3, 17);
        let basis = basis_indices(&data);
        let disc = build_vector_set(3, &FullSpace::new(3), 300, 4, 6);
        let topk = crate::common::batch_topk(&data, &disc.dirs, 10, Parallelism::Auto);
        for k in [1usize, 3, 10] {
            let full = asms_with_topk(data.n(), k, &basis, &topk, None);
            let uncapped_picks = full.len() - basis.len();
            for r in [basis.len(), basis.len() + 1, full.len().saturating_sub(1), full.len()] {
                let cap = r - basis.len();
                let probe = asms_with_topk_capped(data.n(), k, &basis, &topk, None, cap);
                // The "fits in r" decision matches the uncapped run.
                assert_eq!(probe.complete && probe.q.len() <= r, full.len() <= r, "k={k} r={r}");
                if probe.complete {
                    assert_eq!(probe.q, full, "k={k} r={r}");
                }
                assert!(probe.picks <= uncapped_picks as u64 + 1, "k={k} r={r}");
            }
        }
    }

    #[test]
    fn k_equals_n_returns_just_basis() {
        let data = independent(50, 3, 15);
        let basis = basis_indices(&data);
        let disc = build_vector_set(3, &FullSpace::new(3), 100, 3, 5);
        let q = asms(&data, 50, &basis, &disc.dirs, None, Parallelism::Auto);
        assert_eq!(q, basis, "at k = n the universe Dk is empty");
    }

    #[test]
    fn empty_dirs_gives_basis() {
        let data = independent(20, 2, 16);
        let basis = basis_indices(&data);
        let q = asms(&data, 1, &basis, &[], None, Parallelism::Auto);
        assert_eq!(q, basis);
    }
}
