//! Public problem-description types for the simplex solver.

/// Relation of a linear constraint `a·x REL b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// A single linear constraint `coeffs · x REL rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    pub coeffs: Vec<f64>,
    pub relation: Relation,
    pub rhs: f64,
}

impl Constraint {
    pub fn new(coeffs: &[f64], relation: Relation, rhs: f64) -> Self {
        Self { coeffs: coeffs.to_vec(), relation, rhs }
    }

    /// Evaluate the left-hand side at `x`.
    pub fn lhs(&self, x: &[f64]) -> f64 {
        self.coeffs.iter().zip(x).map(|(a, v)| a * v).sum()
    }

    /// Whether `x` satisfies this constraint within tolerance `tol`.
    pub fn satisfied_by(&self, x: &[f64], tol: f64) -> bool {
        let lhs = self.lhs(x);
        match self.relation {
            Relation::Le => lhs <= self.rhs + tol,
            Relation::Ge => lhs >= self.rhs - tol,
            Relation::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// Optimal solution of a linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal assignment of the decision variables (all non-negative).
    pub x: Vec<f64>,
    /// Objective value at `x`, in the original orientation (a maximum for
    /// [`LinearProgram::maximize`], a minimum for [`LinearProgram::minimize`]).
    pub objective: f64,
}

/// Outcome of solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    Optimal(LpSolution),
    Infeasible,
    Unbounded,
}

impl LpOutcome {
    pub fn is_feasible(&self) -> bool {
        !matches!(self, LpOutcome::Infeasible)
    }

    /// The optimal solution, if one exists.
    pub fn optimal(&self) -> Option<&LpSolution> {
        match self {
            LpOutcome::Optimal(sol) => Some(sol),
            _ => None,
        }
    }
}

/// A linear program over non-negative decision variables.
///
/// The canonical form solved here is
/// `opt c·x  s.t.  each constraint,  x ≥ 0`.
/// Variables are implicitly non-negative, which matches every use in this
/// workspace (utility vectors live in the non-negative orthant).
#[derive(Debug, Clone)]
pub struct LinearProgram {
    pub(crate) objective: Vec<f64>,
    pub(crate) maximize: bool,
    pub(crate) constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Maximize `objective · x` subject to the constraints added later.
    pub fn maximize(objective: &[f64]) -> Self {
        Self { objective: objective.to_vec(), maximize: true, constraints: Vec::new() }
    }

    /// Minimize `objective · x` subject to the constraints added later.
    pub fn minimize(objective: &[f64]) -> Self {
        Self { objective: objective.to_vec(), maximize: false, constraints: Vec::new() }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Add a constraint `coeffs · x REL rhs`.
    ///
    /// # Panics
    /// Panics when `coeffs.len()` differs from the number of variables.
    pub fn constrain(&mut self, coeffs: &[f64], relation: Relation, rhs: f64) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.objective.len(),
            "constraint arity must match the objective arity"
        );
        self.constraints.push(Constraint::new(coeffs, relation, rhs));
        self
    }

    /// Add an already-built [`Constraint`].
    pub fn add_constraint(&mut self, c: Constraint) -> &mut Self {
        assert_eq!(c.coeffs.len(), self.objective.len());
        self.constraints.push(c);
        self
    }

    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Solve the program with the two-phase simplex method.
    pub fn solve(&self) -> LpOutcome {
        crate::simplex::solve(self)
    }

    /// Convenience: is the feasible region non-empty?
    pub fn is_feasible(&self) -> bool {
        // Feasibility does not depend on the objective; phase one decides it.
        self.solve().is_feasible()
    }
}
