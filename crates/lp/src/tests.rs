//! Unit tests for the simplex solver and cone helpers.

use crate::cone;
use crate::{LinearProgram, LpOutcome, Relation};

fn assert_optimal(outcome: &LpOutcome, expect_obj: f64) {
    match outcome {
        LpOutcome::Optimal(sol) => {
            assert!(
                (sol.objective - expect_obj).abs() < 1e-7,
                "objective {} != expected {expect_obj}",
                sol.objective
            );
        }
        other => panic!("expected optimal({expect_obj}), got {other:?}"),
    }
}

#[test]
fn maximize_basic_le() {
    // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 => x=4, y=0, obj=12
    let mut lp = LinearProgram::maximize(&[3.0, 2.0]);
    lp.constrain(&[1.0, 1.0], Relation::Le, 4.0);
    lp.constrain(&[1.0, 3.0], Relation::Le, 6.0);
    assert_optimal(&lp.solve(), 12.0);
}

#[test]
fn maximize_interior_vertex() {
    // max x + y s.t. x + 2y <= 4, 3x + y <= 6 => vertex (1.6, 1.2), obj 2.8
    let mut lp = LinearProgram::maximize(&[1.0, 1.0]);
    lp.constrain(&[1.0, 2.0], Relation::Le, 4.0);
    lp.constrain(&[3.0, 1.0], Relation::Le, 6.0);
    let out = lp.solve();
    assert_optimal(&out, 2.8);
    let sol = out.optimal().unwrap();
    assert!((sol.x[0] - 1.6).abs() < 1e-7);
    assert!((sol.x[1] - 1.2).abs() < 1e-7);
}

#[test]
fn minimize_with_ge_needs_phase_one() {
    // min 2x + 3y s.t. x + y >= 10, x >= 2 => (8, 2)? obj = 16+6 = 22
    // actually y=0 allowed: x>=10? x+y>=10 with y=0 -> x=10, obj=20 < 22.
    let mut lp = LinearProgram::minimize(&[2.0, 3.0]);
    lp.constrain(&[1.0, 1.0], Relation::Ge, 10.0);
    lp.constrain(&[1.0, 0.0], Relation::Ge, 2.0);
    assert_optimal(&lp.solve(), 20.0);
}

#[test]
fn equality_constraint() {
    // max x + 2y s.t. x + y = 3, y <= 2 => (1,2), obj 5
    let mut lp = LinearProgram::maximize(&[1.0, 2.0]);
    lp.constrain(&[1.0, 1.0], Relation::Eq, 3.0);
    lp.constrain(&[0.0, 1.0], Relation::Le, 2.0);
    assert_optimal(&lp.solve(), 5.0);
}

#[test]
fn infeasible_detected() {
    let mut lp = LinearProgram::maximize(&[1.0]);
    lp.constrain(&[1.0], Relation::Le, 1.0);
    lp.constrain(&[1.0], Relation::Ge, 2.0);
    assert_eq!(lp.solve(), LpOutcome::Infeasible);
}

#[test]
fn infeasible_equalities() {
    let mut lp = LinearProgram::minimize(&[1.0, 1.0]);
    lp.constrain(&[1.0, 1.0], Relation::Eq, 1.0);
    lp.constrain(&[1.0, 1.0], Relation::Eq, 2.0);
    assert_eq!(lp.solve(), LpOutcome::Infeasible);
}

#[test]
fn unbounded_detected() {
    let mut lp = LinearProgram::maximize(&[1.0, 0.0]);
    lp.constrain(&[0.0, 1.0], Relation::Le, 1.0);
    assert_eq!(lp.solve(), LpOutcome::Unbounded);
}

#[test]
fn negative_rhs_is_normalized() {
    // x - y <= -1 with x,y >= 0 means y >= x + 1.
    // max x + y s.t. x - y <= -1, x + y <= 5 => x=2, y=3.
    let mut lp = LinearProgram::maximize(&[1.0, 1.0]);
    lp.constrain(&[1.0, -1.0], Relation::Le, -1.0);
    lp.constrain(&[1.0, 1.0], Relation::Le, 5.0);
    let out = lp.solve();
    assert_optimal(&out, 5.0);
}

#[test]
fn degenerate_vertex_no_cycle() {
    // Classic degenerate example; must terminate and find obj = 1 at x3 = 1.
    let mut lp = LinearProgram::maximize(&[0.75, -150.0, 0.02, -6.0]);
    lp.constrain(&[0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0);
    lp.constrain(&[0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0);
    lp.constrain(&[0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
    assert_optimal(&lp.solve(), 0.05);
}

#[test]
fn redundant_equality_rows() {
    // Duplicate equality rows create a redundant row in phase one.
    let mut lp = LinearProgram::maximize(&[1.0, 1.0]);
    lp.constrain(&[1.0, 1.0], Relation::Eq, 2.0);
    lp.constrain(&[2.0, 2.0], Relation::Eq, 4.0);
    assert_optimal(&lp.solve(), 2.0);
}

#[test]
fn standard_form_fast_path() {
    let out = crate::solve_standard_form(
        &[3.0, 5.0],
        &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
        &[4.0, 12.0, 18.0],
    );
    assert_optimal(&out, 36.0);
}

#[test]
fn solution_satisfies_all_constraints() {
    let mut lp = LinearProgram::maximize(&[2.0, 1.0, 3.0]);
    lp.constrain(&[1.0, 1.0, 1.0], Relation::Le, 10.0);
    lp.constrain(&[1.0, 0.0, 2.0], Relation::Le, 8.0);
    lp.constrain(&[0.0, 1.0, 0.0], Relation::Ge, 1.0);
    let out = lp.solve();
    let sol = out.optimal().expect("feasible");
    for c in lp.constraints() {
        assert!(c.satisfied_by(&sol.x, 1e-7), "violated: {c:?} at {:?}", sol.x);
    }
}

// ---------------------------------------------------------------- cone ----

#[test]
fn cone_min_dot_full_orthant() {
    // Over the simplex in the full orthant, min of (1, 3) . u is 1 at e1.
    let v = cone::min_dot(&[1.0, 3.0], &[]).unwrap();
    assert!((v - 1.0).abs() < 1e-7);
    let v = cone::max_dot(&[1.0, 3.0], &[]).unwrap();
    assert!((v - 3.0).abs() < 1e-7);
}

#[test]
fn cone_min_dot_weak_ranking() {
    // U = {u1 >= u2}: simplex slice is u1 in [0.5, 1].
    // min of (0, 1)·u = u2 is 0 (u = (1,0)); max is 0.5 (u = (.5,.5)).
    let rows = vec![vec![1.0, -1.0]];
    let lo = cone::min_dot(&[0.0, 1.0], &rows).unwrap();
    let hi = cone::max_dot(&[0.0, 1.0], &rows).unwrap();
    assert!(lo.abs() < 1e-7);
    assert!((hi - 0.5).abs() < 1e-7);
}

#[test]
fn cone_nonempty_checks() {
    assert!(cone::cone_nonempty(3, &[]));
    assert!(cone::cone_nonempty(2, &[vec![1.0, -1.0]]));
    // u1 >= u2 + something impossible in the orthant: u1 <= -1 (as -u1 >= 1
    // cannot be expressed homogeneously; use contradictory rows instead):
    // u1 - u2 >= 0 and u2 - u1 >= 0 forces u1 = u2: still non-empty.
    assert!(cone::cone_nonempty(2, &[vec![1.0, -1.0], vec![-1.0, 1.0]]));
    // -u1 >= 0 and -u2 >= 0 forces u = 0: empty on the simplex slice.
    assert!(!cone::cone_nonempty(2, &[vec![-1.0, 0.0], vec![0.0, -1.0]]));
}

#[test]
fn strict_margin_separable() {
    // Need u with u·(1,0) > u·(0,1): margin row (1,-1). Best margin on the
    // simplex is 1 at u = (1, 0).
    let z = cone::strict_feasibility_margin(2, &[vec![1.0, -1.0]], &[]).unwrap();
    assert!((z - 1.0).abs() < 1e-7);
}

#[test]
fn strict_margin_infeasible_pair() {
    // Rows (1,-1) and (-1,1) can both be >= z only for z <= 0.
    let z = cone::strict_feasibility_margin(2, &[vec![1.0, -1.0], vec![-1.0, 1.0]], &[]).unwrap();
    assert!(z.abs() < 1e-7, "boundary-only feasibility should give margin 0, got {z}");
}

#[test]
fn strict_witness_respects_cone() {
    // Witness for "first attribute strictly better" restricted to u2 >= u1:
    // impossible (u1 - u2 >= z > 0 contradicts u2 - u1 >= 0).
    let w = cone::strict_feasibility_witness(2, &[vec![1.0, -1.0]], &[vec![-1.0, 1.0]], 1e-7);
    assert!(w.is_none());
    // Without the cone restriction a witness exists and favours attr 1.
    let w = cone::strict_feasibility_witness(2, &[vec![1.0, -1.0]], &[], 1e-7).unwrap();
    assert!(w[0] > w[1]);
}
