//! Dense two-phase simplex solver.
//!
//! The rank-regret algorithms need linear programming in three places:
//!
//! 1. **U-dominance tests** for the restricted skyline (`Sky_U(D)`,
//!    Definition 5 of the paper): deciding whether `w(u,t) ≥ w(u,t')` for
//!    every `u` in a convex polyhedral cone `U`.
//! 2. **k-set region feasibility** inside MDRRR: deciding whether a
//!    candidate top-k set is realized by some utility vector — the
//!    `LP(d,n)` term in the paper's complexity analysis.
//! 3. Validity checks for user-supplied restricted spaces.
//!
//! All of these are small (a handful of variables, up to a few thousand
//! constraints), so a dense tableau simplex is the right tool. The solver
//! implements the classic two-phase method with Bland's anti-cycling rule as
//! a fallback after a fixed number of Dantzig pivots.
//!
//! # Example
//!
//! ```
//! use rrm_lp::{LinearProgram, Relation, LpOutcome};
//!
//! // maximize x + y  s.t.  x + 2y <= 4,  3x + y <= 6,  x,y >= 0
//! let mut lp = LinearProgram::maximize(&[1.0, 1.0]);
//! lp.constrain(&[1.0, 2.0], Relation::Le, 4.0);
//! lp.constrain(&[3.0, 1.0], Relation::Le, 6.0);
//! match lp.solve() {
//!     LpOutcome::Optimal(sol) => {
//!         assert!((sol.objective - 2.8).abs() < 1e-9);
//!     }
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! ```

mod simplex;
mod types;

pub mod cone;

pub use simplex::solve_standard_form;
pub use types::{Constraint, LinearProgram, LpOutcome, LpSolution, Relation};

#[cfg(test)]
mod tests;
