//! Dense two-phase simplex on an explicit tableau.
//!
//! The implementation favours robustness over raw speed: the programs solved
//! in this workspace have at most a dozen variables, so numerical stability
//! (tolerances, Bland's rule fallback) matters far more than pivot cost.

use crate::types::{LinearProgram, LpOutcome, LpSolution, Relation};

const EPS: f64 = 1e-9;
/// After this many Dantzig pivots we switch to Bland's rule, which cannot
/// cycle; the bound is generous for the tiny programs we solve.
const DANTZIG_LIMIT: usize = 10_000;
const TOTAL_LIMIT: usize = 100_000;

/// Solve `max c·x  s.t.  A x ≤ b, x ≥ 0` where every entry of `b` is
/// non-negative (so the slack basis is feasible and no phase one is needed).
///
/// This fast path is used by callers that build standard-form programs
/// directly (for instance the set-cover LP relaxation in ablations).
pub fn solve_standard_form(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> LpOutcome {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(b.iter().all(|&v| v >= -EPS), "standard form requires b >= 0");
    let mut lp = LinearProgram::maximize(c);
    for (row, &rhs) in a.iter().zip(b) {
        lp.constrain(row, Relation::Le, rhs);
    }
    lp.solve()
}

/// Internal tableau. Column layout: `n` decision vars, then slack/surplus
/// vars, then artificial vars, then the RHS column.
struct Tableau {
    /// `m + 1` rows (constraints then objective), each `cols + 1` wide.
    rows: Vec<Vec<f64>>,
    /// Basic variable (column index) of each constraint row.
    basis: Vec<usize>,
    /// Total number of structural + slack + artificial columns.
    cols: usize,
    /// Columns `[art_start, cols)` are artificial.
    art_start: usize,
}

impl Tableau {
    fn rhs(&self, row: usize) -> f64 {
        self.rows[row][self.cols]
    }

    fn pivot(&mut self, prow: usize, pcol: usize) {
        let piv = self.rows[prow][pcol];
        debug_assert!(piv.abs() > EPS, "pivot element too small");
        let inv = 1.0 / piv;
        for v in self.rows[prow].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.rows[prow].clone();
        for (r, row) in self.rows.iter_mut().enumerate() {
            if r == prow {
                continue;
            }
            let factor = row[pcol];
            if factor.abs() <= EPS {
                row[pcol] = 0.0;
                continue;
            }
            for (v, p) in row.iter_mut().zip(&pivot_row) {
                *v -= factor * p;
            }
            row[pcol] = 0.0; // exact zero to avoid drift
        }
        self.basis[prow] = pcol;
    }

    /// Run the simplex iterations on the current objective row (last row,
    /// expressed for a minimization problem: we stop when all reduced costs
    /// are ≥ -EPS). `allowed` limits the entering columns (used to keep
    /// artificial variables out during phase two).
    fn iterate(&mut self, allowed: usize) -> SimplexStatus {
        let m = self.basis.len();
        for iter in 0..TOTAL_LIMIT {
            let bland = iter >= DANTZIG_LIMIT;
            let obj = self.rows[m].clone();
            // Entering variable: most negative reduced cost (Dantzig) or the
            // first negative one (Bland).
            let mut enter: Option<usize> = None;
            let mut best = -EPS;
            for (j, &cost) in obj.iter().enumerate().take(allowed) {
                if cost < best {
                    enter = Some(j);
                    if bland {
                        break;
                    }
                    best = cost;
                }
            }
            let Some(pcol) = enter else {
                return SimplexStatus::Optimal;
            };
            // Leaving variable: minimum ratio test. Ties broken by the
            // smallest basis index (part of Bland's rule; harmless always).
            let mut prow: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..m {
                let a = self.rows[r][pcol];
                if a > EPS {
                    let ratio = self.rhs(r) / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && prow.is_some_and(|p| self.basis[r] < self.basis[p]));
                    if better {
                        best_ratio = ratio;
                        prow = Some(r);
                    }
                }
            }
            let Some(prow) = prow else {
                return SimplexStatus::Unbounded;
            };
            self.pivot(prow, pcol);
        }
        SimplexStatus::IterationLimit
    }
}

#[derive(Debug, PartialEq, Eq)]
enum SimplexStatus {
    Optimal,
    Unbounded,
    IterationLimit,
}

pub(crate) fn solve(lp: &LinearProgram) -> LpOutcome {
    let n = lp.num_vars();
    let m = lp.constraints.len();

    // Orient every row so its RHS is non-negative, and count the extra
    // columns we need.
    let mut slack_count = 0usize;
    let mut art_count = 0usize;
    // (coeffs, rhs, slack_sign: -1/0/+1, needs_artificial)
    let mut rows: Vec<(Vec<f64>, f64, i8, bool)> = Vec::with_capacity(m);
    for c in &lp.constraints {
        let mut coeffs = c.coeffs.clone();
        let mut rhs = c.rhs;
        let mut rel = c.relation;
        if rhs < 0.0 {
            for v in &mut coeffs {
                *v = -*v;
            }
            rhs = -rhs;
            rel = match rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        let (sign, art) = match rel {
            Relation::Le => (1i8, false),
            Relation::Ge => (-1i8, true),
            Relation::Eq => (0i8, true),
        };
        if sign != 0 {
            slack_count += 1;
        }
        if art {
            art_count += 1;
        }
        rows.push((coeffs, rhs, sign, art));
    }
    // A `≤` row with rhs ≥ 0 can start with its slack in the basis; rows with
    // surplus or equality need an artificial variable.
    let art_start = n + slack_count;
    let cols = art_start + art_count;

    let mut t = Tableau {
        rows: vec![vec![0.0; cols + 1]; m + 1],
        basis: vec![usize::MAX; m],
        cols,
        art_start,
    };

    let mut next_slack = n;
    let mut next_art = art_start;
    for (r, (coeffs, rhs, sign, art)) in rows.iter().enumerate() {
        for (j, &v) in coeffs.iter().enumerate() {
            t.rows[r][j] = v;
        }
        t.rows[r][cols] = *rhs;
        if *sign != 0 {
            t.rows[r][next_slack] = f64::from(*sign);
            if *sign > 0 {
                t.basis[r] = next_slack;
            }
            next_slack += 1;
        }
        if *art {
            t.rows[r][next_art] = 1.0;
            t.basis[r] = next_art;
            next_art += 1;
        }
        debug_assert_ne!(t.basis[r], usize::MAX);
    }

    // Phase one: minimize the sum of artificial variables. The objective row
    // is the (negated) sum of the rows whose basic variable is artificial.
    if art_count > 0 {
        for j in 0..=cols {
            let mut v = 0.0;
            for r in 0..m {
                if t.basis[r] >= art_start {
                    v += t.rows[r][j];
                }
            }
            t.rows[m][j] = -v;
        }
        for j in art_start..cols {
            t.rows[m][j] = 0.0;
        }
        match t.iterate(cols) {
            SimplexStatus::Optimal => {}
            // Phase one is bounded below by 0, so "unbounded" means a bug.
            SimplexStatus::Unbounded => unreachable!("phase one cannot be unbounded"),
            SimplexStatus::IterationLimit => return LpOutcome::Infeasible,
        }
        // -rhs of the objective row is the phase-one minimum.
        if -t.rows[m][cols] > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive any artificial variable that is still basic (at value 0) out
        // of the basis so phase two never re-enters it.
        for r in 0..m {
            if t.basis[r] >= art_start {
                let pcol = (0..art_start).find(|&j| t.rows[r][j].abs() > EPS);
                match pcol {
                    Some(j) => t.pivot(r, j),
                    // Redundant row: every structural coefficient is zero.
                    None => t.rows[r][cols] = 0.0,
                }
            }
        }
    }

    // Phase two: minimize -c·x (for a maximization) or c·x. Build the
    // reduced-cost row for the current basis.
    let sign = if lp.maximize { -1.0 } else { 1.0 };
    for j in 0..=cols {
        t.rows[m][j] = 0.0;
    }
    for (j, &c) in lp.objective.iter().enumerate() {
        t.rows[m][j] = sign * c;
    }
    // Substitute out the basic variables from the objective row.
    for r in 0..m {
        let b = t.basis[r];
        let factor = t.rows[m][b];
        if factor.abs() > EPS {
            let row = t.rows[r].clone();
            for (v, p) in t.rows[m].iter_mut().zip(&row) {
                *v -= factor * p;
            }
            t.rows[m][b] = 0.0;
        }
    }

    match t.iterate(t.art_start) {
        SimplexStatus::Optimal => {}
        SimplexStatus::Unbounded => return LpOutcome::Unbounded,
        SimplexStatus::IterationLimit => {
            // Extremely defensive: report the best feasible point found.
        }
    }

    let mut x = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            x[t.basis[r]] = t.rhs(r);
        }
    }
    let objective: f64 = lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    LpOutcome::Optimal(LpSolution { x, objective })
}
