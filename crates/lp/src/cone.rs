//! Helpers for polyhedral cones of utility vectors.
//!
//! A restricted utility space `U` is represented by homogeneous rows
//! `A u ≥ 0` intersected with the non-negative orthant. Because rank-regret
//! only depends on the *direction* of a utility vector, every question about
//! `U` can be normalized onto the simplex slice `Σ u[i] = 1`, which turns
//! cone questions into bounded LPs.

use crate::types::{LinearProgram, LpOutcome, Relation};

/// Minimum of `delta · u` over `{u ≥ 0, Σu = 1, A u ≥ 0}`.
///
/// Returns `None` when the region is empty (a degenerate cone).
pub fn min_dot(delta: &[f64], cone_rows: &[Vec<f64>]) -> Option<f64> {
    extremal_dot(delta, cone_rows, false)
}

/// Maximum of `delta · u` over `{u ≥ 0, Σu = 1, A u ≥ 0}`.
pub fn max_dot(delta: &[f64], cone_rows: &[Vec<f64>]) -> Option<f64> {
    extremal_dot(delta, cone_rows, true)
}

fn extremal_dot(delta: &[f64], cone_rows: &[Vec<f64>], maximize: bool) -> Option<f64> {
    let d = delta.len();
    let mut lp =
        if maximize { LinearProgram::maximize(delta) } else { LinearProgram::minimize(delta) };
    lp.constrain(&vec![1.0; d], Relation::Eq, 1.0);
    for row in cone_rows {
        lp.constrain(row, Relation::Ge, 0.0);
    }
    lp.solve().optimal().map(|s| s.objective)
}

/// Does the cone `{u ≥ 0, A u ≥ 0}` contain a non-zero vector?
pub fn cone_nonempty(d: usize, cone_rows: &[Vec<f64>]) -> bool {
    let lp_rows: Vec<Vec<f64>> = cone_rows.to_vec();
    // Any non-zero cone member can be scaled onto the simplex slice.
    min_dot(&vec![0.0; d], &lp_rows).is_some()
}

/// Maximum strict-feasibility margin of a system of homogeneous constraints.
///
/// Finds `max z ≥ 0` such that some `u` with `u ≥ 0`, `Σu = 1`,
/// `A u ≥ 0` (cone rows) satisfies `row · u ≥ z` for every `row` in
/// `strict_rows`. Returns:
///
/// * `None` — no `u` satisfies even the weak system (`z = 0`);
/// * `Some(z*)` — the best margin; the system is *strictly* feasible
///   (an open region, e.g. a k-set's interior) iff `z* > tol` for a small
///   tolerance chosen by the caller.
pub fn strict_feasibility_margin(
    d: usize,
    strict_rows: &[Vec<f64>],
    cone_rows: &[Vec<f64>],
) -> Option<f64> {
    // Variables: u[0..d], z. Maximize z.
    let mut obj = vec![0.0; d + 1];
    obj[d] = 1.0;
    let mut lp = LinearProgram::maximize(&obj);
    let mut simplex_row = vec![1.0; d + 1];
    simplex_row[d] = 0.0;
    lp.constrain(&simplex_row, Relation::Eq, 1.0);
    for row in strict_rows {
        debug_assert_eq!(row.len(), d);
        let mut c = Vec::with_capacity(d + 1);
        c.extend_from_slice(row);
        c.push(-1.0); // row · u - z ≥ 0
        lp.constrain(&c, Relation::Ge, 0.0);
    }
    for row in cone_rows {
        debug_assert_eq!(row.len(), d);
        let mut c = Vec::with_capacity(d + 1);
        c.extend_from_slice(row);
        c.push(0.0);
        lp.constrain(&c, Relation::Ge, 0.0);
    }
    match lp.solve() {
        LpOutcome::Optimal(sol) => Some(sol.objective),
        LpOutcome::Infeasible => None,
        // z is bounded by max |row·u| on the simplex, so this cannot happen;
        // treat it as infeasible defensively.
        LpOutcome::Unbounded => None,
    }
}

/// A witness direction attaining a strictly positive margin, if one exists.
///
/// Same system as [`strict_feasibility_margin`] but returns the utility
/// vector (normalized to the simplex slice) rather than the margin.
pub fn strict_feasibility_witness(
    d: usize,
    strict_rows: &[Vec<f64>],
    cone_rows: &[Vec<f64>],
    tol: f64,
) -> Option<Vec<f64>> {
    let mut obj = vec![0.0; d + 1];
    obj[d] = 1.0;
    let mut lp = LinearProgram::maximize(&obj);
    let mut simplex_row = vec![1.0; d + 1];
    simplex_row[d] = 0.0;
    lp.constrain(&simplex_row, Relation::Eq, 1.0);
    for row in strict_rows {
        let mut c = Vec::with_capacity(d + 1);
        c.extend_from_slice(row);
        c.push(-1.0);
        lp.constrain(&c, Relation::Ge, 0.0);
    }
    for row in cone_rows {
        let mut c = Vec::with_capacity(d + 1);
        c.extend_from_slice(row);
        c.push(0.0);
        lp.constrain(&c, Relation::Ge, 0.0);
    }
    match lp.solve() {
        LpOutcome::Optimal(sol) if sol.objective > tol => Some(sol.x[..d].to_vec()),
        _ => None,
    }
}
