//! Property-based tests of the simplex solver: on randomly generated
//! programs with a known feasible point, the solver must (a) terminate,
//! (b) never report infeasible, (c) return a constraint-satisfying point
//! at least as good as the witness.

use proptest::prelude::*;
use rrm_lp::{LinearProgram, LpOutcome, Relation};

const TOL: f64 = 1e-6;

/// A random LP built around a known feasible witness `x0 ≥ 0`:
/// every constraint is `a·x ≤ a·x0 + slack` with `slack ≥ 0`.
#[derive(Debug, Clone)]
struct Instance {
    c: Vec<f64>,
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    x0: Vec<f64>,
}

fn instance() -> impl Strategy<Value = Instance> {
    (2usize..5, 1usize..8)
        .prop_flat_map(|(nvars, nrows)| {
            let coeff = -50i32..50;
            let pos = 0i32..50;
            (
                proptest::collection::vec(coeff.clone(), nvars),
                proptest::collection::vec(proptest::collection::vec(coeff, nvars), nrows),
                proptest::collection::vec(pos.clone(), nrows),
                proptest::collection::vec(pos, nvars),
            )
        })
        .prop_map(|(c, rows, slack, x0)| {
            let c: Vec<f64> = c.into_iter().map(|v| v as f64 / 10.0).collect();
            let rows: Vec<Vec<f64>> = rows
                .into_iter()
                .map(|r| r.into_iter().map(|v| v as f64 / 10.0).collect())
                .collect();
            let x0: Vec<f64> = x0.into_iter().map(|v| v as f64 / 10.0).collect();
            let rhs: Vec<f64> = rows
                .iter()
                .zip(&slack)
                .map(|(row, &s)| {
                    let lhs: f64 = row.iter().zip(&x0).map(|(a, x)| a * x).sum();
                    lhs + s as f64 / 10.0
                })
                .collect();
            Instance { c, rows, rhs, x0 }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_dominates_known_witness(inst in instance()) {
        let mut lp = LinearProgram::maximize(&inst.c);
        for (row, &b) in inst.rows.iter().zip(&inst.rhs) {
            lp.constrain(row, Relation::Le, b);
        }
        match lp.solve() {
            LpOutcome::Optimal(sol) => {
                // Feasible...
                for c in lp.constraints() {
                    prop_assert!(
                        c.satisfied_by(&sol.x, TOL),
                        "violated {c:?} at {:?}", sol.x
                    );
                }
                prop_assert!(sol.x.iter().all(|&v| v >= -TOL), "negative var: {:?}", sol.x);
                // ...and at least as good as the witness.
                let witness_obj: f64 =
                    inst.c.iter().zip(&inst.x0).map(|(c, x)| c * x).sum();
                prop_assert!(
                    sol.objective >= witness_obj - TOL,
                    "objective {} below witness {witness_obj}", sol.objective
                );
            }
            LpOutcome::Unbounded => {
                // Legitimate when some improving ray exists; nothing to
                // check beyond termination.
            }
            LpOutcome::Infeasible => {
                prop_assert!(false, "program with witness {:?} called infeasible", inst.x0);
            }
        }
    }

    /// Minimization mirrors maximization through negation.
    #[test]
    fn min_max_duality(inst in instance()) {
        let mut max_lp = LinearProgram::maximize(&inst.c);
        let neg: Vec<f64> = inst.c.iter().map(|v| -v).collect();
        let mut min_lp = LinearProgram::minimize(&neg);
        for (row, &b) in inst.rows.iter().zip(&inst.rhs) {
            max_lp.constrain(row, Relation::Le, b);
            min_lp.constrain(row, Relation::Le, b);
        }
        match (max_lp.solve(), min_lp.solve()) {
            (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => {
                prop_assert!((a.objective + b.objective).abs() < 1e-5,
                    "max {} vs -min {}", a.objective, -b.objective);
            }
            (LpOutcome::Unbounded, LpOutcome::Unbounded) => {}
            (a, b) => prop_assert!(false, "outcome mismatch: {a:?} vs {b:?}"),
        }
    }
}
