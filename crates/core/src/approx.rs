//! Sampled-ε approximate solving: the confidence-certified answer tier.
//!
//! For `n` in the millions even preparing an exact solver is expensive.
//! This module promotes the direction-sampling estimators that grew up in
//! `rrm_eval` into first-class *solvers*: draw `m` utility directions from
//! the query space, solve the covering problem exactly over that sample,
//! and report the set's measured worst rank over the sample as its regret.
//!
//! # Confidence semantics
//!
//! For a fixed set `S`, each sampled direction is an independent Bernoulli
//! observation of the event "the rank of `S` under this direction exceeds
//! the reported `k̂`". Over the returned set the observed rate is 0 (by
//! construction `k̂` is the sampled maximum), so by Hoeffding's inequality
//! with `m = ceil(ln(2/δ) / (2ε²))` draws, with probability at least
//! `1 - δ` over the sample, the true direction-space measure on which the
//! rank of `S` exceeds `k̂` is at most `ε`. That statement rides the
//! solution as [`TerminatedBy::Sampled`]`{ eps, delta, directions }`; it is
//! a fidelity certificate, not an early-stop marker.
//!
//! # Determinism
//!
//! Directions are drawn *sequentially* from a seeded [`StdRng`] (the
//! stream is part of the answer's identity); only the per-direction
//! scoring/top-k work is chunked over threads, with fixed chunk boundaries
//! and in-order merges per the [`rrm_par`] contract. Greedy cover runs
//! sequentially under a strict total order. Answers are therefore
//! bit-identical at any thread count (`tests/approx.rs` enforces 1/2/7).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::anytime::{Bounds, TerminatedBy};
use crate::dataset::Dataset;
use crate::error::RrmError;
use crate::exec::{ExecPolicy, Parallelism, SolverCtx};
use crate::kernel;
use crate::problem::{Algorithm, Solution};
use crate::rank;
use crate::solver::{Budget, PreparedSolver, Solver};
use crate::space::UtilitySpace;

/// Default `ε`: tolerated measure of the direction space on which the
/// reported regret may be exceeded.
pub const DEFAULT_EPS: f64 = 0.05;
/// Default `δ`: probability (over the direction draw) that the `ε`
/// statement fails.
pub const DEFAULT_DELTA: f64 = 0.05;
/// Direction-stream seed for [`SampledSolver`] (and `approx::reduce`):
/// constant so sampled answers are reproducible across runs and layers.
pub const DEFAULT_SEED: u64 = 0x5A3D_5EED;
/// Floor on the sampled direction count: even very loose `(ε, δ)` pairs
/// probe a handful of directions so the cover problem is non-degenerate.
const MIN_DIRECTIONS: usize = 16;

/// Hoeffding sample size `m = ceil(ln(2/δ) / (2ε²))` for a one-sided
/// `(ε, δ)` statement about an exceedance rate.
pub fn hoeffding_directions(eps: f64, delta: f64) -> usize {
    let m = ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil();
    (m as usize).max(MIN_DIRECTIONS)
}

/// A sampled-ε fidelity request: the `(ε, δ)` pair of the Hoeffding
/// confidence statement the answer must carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxSpec {
    /// Tolerated exceedance measure, in `(0, 1)`.
    pub eps: f64,
    /// Failure probability of the statement, in `(0, 1)`.
    pub delta: f64,
}

impl Default for ApproxSpec {
    fn default() -> Self {
        Self { eps: DEFAULT_EPS, delta: DEFAULT_DELTA }
    }
}

impl ApproxSpec {
    /// A validated spec (both parameters must lie strictly in `(0, 1)`).
    pub fn new(eps: f64, delta: f64) -> Result<Self, RrmError> {
        let spec = Self { eps, delta };
        spec.validate()?;
        Ok(spec)
    }

    /// Reject parameters outside `(0, 1)` (or non-finite).
    pub fn validate(&self) -> Result<(), RrmError> {
        for (name, v) in [("eps", self.eps), ("delta", self.delta)] {
            if !v.is_finite() || v <= 0.0 || v >= 1.0 {
                return Err(RrmError::Unsupported(format!(
                    "approx {name} must lie strictly between 0 and 1, got {v}"
                )));
            }
        }
        Ok(())
    }

    /// The Hoeffding direction count this spec requires.
    pub fn directions(&self) -> usize {
        hoeffding_directions(self.eps, self.delta)
    }
}

/// Requested answer fidelity, the new first-class request dimension:
/// exact solving (the default) or the sampled-ε tier.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Fidelity {
    /// Exact within the chosen algorithm's frame (the pre-existing tier).
    #[default]
    Exact,
    /// Sampled-ε with a Hoeffding `(eps, delta)` confidence statement.
    Approx { eps: f64, delta: f64 },
}

impl Fidelity {
    /// The approximation spec, when this fidelity is approximate.
    pub fn spec(&self) -> Option<ApproxSpec> {
        match *self {
            Fidelity::Exact => None,
            Fidelity::Approx { eps, delta } => Some(ApproxSpec { eps, delta }),
        }
    }

    pub fn is_approx(&self) -> bool {
        matches!(self, Fidelity::Approx { .. })
    }

    /// Wire/report name: `"exact"` or `"approx"`.
    pub fn name(&self) -> &'static str {
        match self {
            Fidelity::Exact => "exact",
            Fidelity::Approx { .. } => "approx",
        }
    }
}

/// Draw `m` directions from `space`, sequentially from one seeded stream
/// (deterministic regardless of thread count).
pub fn sample_directions(space: &dyn UtilitySpace, m: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m).map(|_| space.sample_direction(&mut rng)).collect()
}

/// Per-direction top-`k` tuple indices (best first, ties by index), in
/// direction order. Scoring is chunked over `pol`; chunk boundaries depend
/// only on the input sizes and results are concatenated in chunk order, so
/// the output is identical at any thread count.
pub fn per_direction_top(
    data: &Dataset,
    dirs: &[Vec<f64>],
    k: usize,
    pol: Parallelism,
) -> Vec<Vec<u32>> {
    assert!(k >= 1, "top-k needs k >= 1");
    let soa = data.soa();
    let chunk = rrm_par::adaptive_chunk(dirs.len(), data.n() * data.dim());
    let per_chunk = rrm_par::par_chunks(dirs, chunk, pol, |_, chunk_dirs| {
        let mut scores: Vec<f64> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        let mut out = Vec::with_capacity(chunk_dirs.len());
        for u in chunk_dirs {
            kernel::scores_into(soa, u, &mut scores);
            let mut top = Vec::new();
            rank::top_k_into(&scores, k, &mut scratch, &mut top);
            out.push(top);
        }
        out
    });
    per_chunk.into_iter().flatten().collect()
}

/// Greedy set cover over the sampled directions: repeatedly pick the tuple
/// present in the most still-uncovered top lists (ties broken by smallest
/// tuple index — a strict total order, so the pick is deterministic no
/// matter how the candidate map is iterated). Returns the picks and
/// whether every direction got covered within `cap`.
fn greedy_cover(tops: &[&[u32]], cap: Option<usize>) -> (Vec<u32>, bool) {
    let m = tops.len();
    let mut covered = vec![false; m];
    let mut remaining = m;
    let mut count: HashMap<u32, usize> = HashMap::new();
    let mut dirs_of: HashMap<u32, Vec<u32>> = HashMap::new();
    for (dj, top) in tops.iter().enumerate() {
        for &i in *top {
            *count.entry(i).or_insert(0) += 1;
            dirs_of.entry(i).or_default().push(dj as u32);
        }
    }
    let mut picks = Vec::new();
    while remaining > 0 {
        if cap.is_some_and(|c| picks.len() >= c) {
            return (picks, false);
        }
        let (&best, _) = count
            .iter()
            .filter(|&(_, &c)| c > 0)
            .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then(ib.cmp(ia)))
            .expect("an uncovered direction always has an unpicked top tuple");
        picks.push(best);
        for dj in dirs_of.remove(&best).unwrap_or_default() {
            let dj = dj as usize;
            if !covered[dj] {
                covered[dj] = true;
                remaining -= 1;
                for t in tops[dj] {
                    if let Some(c) = count.get_mut(t) {
                        *c = c.saturating_sub(1);
                    }
                }
            }
        }
        count.remove(&best);
    }
    (picks, true)
}

/// The sampled RRM solve with every knob explicit; [`SampledSolver`] and
/// the engine's approximate dispatch both route here. `samples` overrides
/// the Hoeffding direction count derived from `spec` (the `Budget.samples`
/// contract every randomized solver honours).
pub fn solve_rrm_sampled_with(
    data: &Dataset,
    r: usize,
    space: &dyn UtilitySpace,
    spec: ApproxSpec,
    samples: Option<usize>,
    seed: u64,
    exec: ExecPolicy,
) -> Result<Solution, RrmError> {
    if r == 0 {
        return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
    }
    if space.dim() != data.dim() {
        return Err(RrmError::DimensionMismatch { expected: data.dim(), got: space.dim() });
    }
    spec.validate()?;
    let n = data.n();
    let m = samples.unwrap_or_else(|| spec.directions()).max(1);
    let dirs = sample_directions(space, m, seed);
    let pol = exec.parallelism;

    // Doubling phase over the rank threshold k: find some k whose greedy
    // cover fits in r picks. Each round recomputes the per-direction
    // top-k lists (O(m·n) via quickselect); the binary phase below never
    // rescoreds — top-k lists are nested, so smaller thresholds are
    // prefixes of the feasible round's lists.
    let mut k = 1usize;
    let mut prev_infeasible = 0usize;
    let (tops, k_feasible, picks) = loop {
        let tops = per_direction_top(data, &dirs, k, pol);
        let slices: Vec<&[u32]> = tops.iter().map(|t| t.as_slice()).collect();
        let (picks, full) = greedy_cover(&slices, Some(r));
        if full {
            break (tops, k, picks);
        }
        if k >= n {
            // At k = n every list is the whole dataset, so one pick covers
            // everything; reaching here means a broken invariant.
            return Err(RrmError::Internal("sampled greedy cover infeasible even at k = n".into()));
        }
        prev_infeasible = k;
        k = (k * 2).min(n);
    };

    // Binary phase: tightest k the greedy cover still fits at, slicing
    // prefixes of the feasible round's lists.
    let mut lo = prev_infeasible + 1;
    let mut hi = k_feasible;
    let mut best = picks;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let slices: Vec<&[u32]> = tops.iter().map(|t| &t[..mid.min(t.len())]).collect();
        match greedy_cover(&slices, Some(r)) {
            (picks, true) => {
                hi = mid;
                best = picks;
            }
            _ => lo = mid + 1,
        }
    }

    // The reported regret is the *measured* sampled maximum of the chosen
    // set — sound regardless of how the heuristic search got there.
    let k_hat = rank::max_rank_regret(data, &dirs, &best, pol).expect("m >= 1");
    Ok(Solution::new(best, Some(k_hat), Algorithm::Sampled, data)?
        .with_bounds(Bounds { lower: 1, upper: k_hat })
        .with_termination(TerminatedBy::Sampled {
            eps: spec.eps,
            delta: spec.delta,
            directions: m,
        }))
}

/// The sampled RRR solve: smallest greedy cover at threshold `k` over the
/// sampled directions (every direction is covered by its own rank-1 tuple,
/// so the cover always exists). See [`solve_rrm_sampled_with`] for the
/// knob and determinism contracts.
pub fn solve_rrr_sampled_with(
    data: &Dataset,
    k: usize,
    space: &dyn UtilitySpace,
    spec: ApproxSpec,
    samples: Option<usize>,
    seed: u64,
    exec: ExecPolicy,
) -> Result<Solution, RrmError> {
    if k == 0 {
        return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
    }
    if space.dim() != data.dim() {
        return Err(RrmError::DimensionMismatch { expected: data.dim(), got: space.dim() });
    }
    spec.validate()?;
    let m = samples.unwrap_or_else(|| spec.directions()).max(1);
    let dirs = sample_directions(space, m, seed);
    let pol = exec.parallelism;
    let tops = per_direction_top(data, &dirs, k.min(data.n()), pol);
    let slices: Vec<&[u32]> = tops.iter().map(|t| t.as_slice()).collect();
    let (picks, full) = greedy_cover(&slices, None);
    debug_assert!(full, "uncapped greedy cover always completes");
    let k_hat = rank::max_rank_regret(data, &dirs, &picks, pol).expect("m >= 1");
    Ok(Solution::new(picks, Some(k_hat), Algorithm::Sampled, data)?
        .with_bounds(Bounds { lower: 1, upper: k_hat })
        .with_termination(TerminatedBy::Sampled {
            eps: spec.eps,
            delta: spec.delta,
            directions: m,
        }))
}

/// Options for [`SampledSolver`]: the fallback fidelity when the budget
/// carries none, the direction-stream seed, and the execution policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledOptions {
    /// Fidelity used when the `Budget` carries no [`ApproxSpec`].
    pub spec: ApproxSpec,
    /// Seed of the sequential direction stream (part of the answer's
    /// identity, like every randomized solver's seed in this workspace).
    pub seed: u64,
    /// Data-parallelism for scoring/top-k. Engine-level [`SolverCtx`]
    /// policies override this default.
    pub exec: ExecPolicy,
}

impl Default for SampledOptions {
    fn default() -> Self {
        Self { spec: ApproxSpec::default(), seed: DEFAULT_SEED, exec: ExecPolicy::default() }
    }
}

/// The sampled-ε tier as a registered [`Solver`]: `Algorithm::Sampled` in
/// the engine roster, dispatched like any exact algorithm but answering
/// with a Hoeffding-certified sampled solution.
#[derive(Debug, Clone, Default)]
pub struct SampledSolver {
    pub options: SampledOptions,
}

impl SampledSolver {
    fn effective(&self, budget: &Budget, ctx: &SolverCtx) -> (ApproxSpec, ExecPolicy) {
        (budget.approx.unwrap_or(self.options.spec), ctx.exec.or(self.options.exec))
    }
}

impl Solver for SampledSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Sampled
    }

    fn solve_rrm_ctx(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        self.ensure_supported(data, space)?;
        let (spec, exec) = self.effective(budget, ctx);
        solve_rrm_sampled_with(data, r, space, spec, budget.samples, self.options.seed, exec)
    }

    fn solve_rrr_ctx(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        self.ensure_supported(data, space)?;
        let (spec, exec) = self.effective(budget, ctx);
        solve_rrr_sampled_with(data, k, space, spec, budget.samples, self.options.seed, exec)
    }

    fn prepare_ctx(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
        ctx: &SolverCtx,
    ) -> Result<Box<dyn PreparedSolver>, RrmError> {
        self.ensure_supported(data, space)?;
        let mut options = self.options;
        options.exec = ctx.exec.or(options.exec);
        // Warm the column-major scoring layout now: it is the only
        // dataset-shaped state the sampled tier reuses across queries.
        let _ = data.soa();
        Ok(Box::new(PreparedSampled { options, data: data.clone(), space: space.clone_box() }))
    }
}

/// [`SampledSolver`] bound to one dataset + space. The SoA scoring layout
/// is built at prepare time and shared (via the dataset's internal `Arc`)
/// by every query; directions are re-drawn per query from the constant
/// seed, so prepared answers match the one-shot path bit for bit.
pub struct PreparedSampled {
    options: SampledOptions,
    data: Dataset,
    space: Box<dyn UtilitySpace>,
}

impl PreparedSolver for PreparedSampled {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Sampled
    }

    fn dataset(&self) -> &Dataset {
        &self.data
    }

    fn solve_rrm(&self, r: usize, budget: &Budget) -> Result<Solution, RrmError> {
        let spec = budget.approx.unwrap_or(self.options.spec);
        solve_rrm_sampled_with(
            &self.data,
            r,
            self.space.as_ref(),
            spec,
            budget.samples,
            self.options.seed,
            self.options.exec,
        )
    }

    fn solve_rrr(&self, k: usize, budget: &Budget) -> Result<Solution, RrmError> {
        let spec = budget.approx.unwrap_or(self.options.spec);
        solve_rrr_sampled_with(
            &self.data,
            k,
            self.space.as_ref(),
            spec,
            budget.samples,
            self.options.seed,
            self.options.exec,
        )
    }
}

/// A dataset shrunk by sampled top-rank screening, with the certificate
/// needed to transfer solutions back to the full data.
#[derive(Debug, Clone)]
pub struct Reduced {
    /// The reduced dataset (rows of `kept`, in ascending original order).
    pub data: Dataset,
    /// Original indices of the kept rows, ascending.
    pub kept: Vec<u32>,
    /// The per-direction depth `L` the reduction certifies: for every
    /// sampled direction and every `k ≤ L`, the top-`k` of the reduced
    /// data maps (through `kept`) to exactly the top-`k` of the full data.
    pub rank_fidelity: usize,
    /// Number of sampled directions the screen used.
    pub directions: usize,
}

impl Reduced {
    /// Map reduced-row indices back to original dataset indices.
    pub fn original_indices(&self, reduced: &[u32]) -> Vec<u32> {
        reduced.iter().map(|&i| self.kept[i as usize]).collect()
    }
}

/// Shrink `data` to the union of per-direction top-`per_direction` tuples
/// over `m` sampled directions — the coreset fed to exact solvers on the
/// approximate path.
///
/// Candidate-loss certificate: scores are per-tuple, so dropping rows
/// never changes a kept row's score, and `kept` is ascending so the
/// index tie-break order is preserved. Hence for every *sampled* direction
/// `u` and every `k ≤ per_direction`, `top_k(u, reduced)` maps through
/// [`Reduced::original_indices`] to `top_k(u, full)` — any solution whose
/// sampled regret is at most `per_direction` transfers with its sampled
/// regret unchanged. Directions outside the sample are covered only by the
/// Hoeffding statement of the re-evaluation the engine performs after
/// solving on the coreset.
pub fn reduce(
    data: &Dataset,
    space: &dyn UtilitySpace,
    per_direction: usize,
    m: usize,
    seed: u64,
    exec: ExecPolicy,
) -> Result<Reduced, RrmError> {
    if per_direction == 0 {
        return Err(RrmError::Unsupported("reduce needs a per-direction depth >= 1".into()));
    }
    if m == 0 {
        return Err(RrmError::Unsupported("reduce needs at least one direction".into()));
    }
    if space.dim() != data.dim() {
        return Err(RrmError::DimensionMismatch { expected: data.dim(), got: space.dim() });
    }
    let dirs = sample_directions(space, m, seed);
    let depth = per_direction.min(data.n());
    let tops = per_direction_top(data, &dirs, depth, exec.parallelism);
    let mut kept: Vec<u32> = tops.into_iter().flatten().collect();
    kept.sort_unstable();
    kept.dedup();
    Ok(Reduced { data: data.subset(&kept), kept, rank_fidelity: depth, directions: m })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::FullSpace;

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn hoeffding_count_matches_the_formula() {
        // eps = 0.1, delta = 0.05: ln(40) / 0.02 = 184.44… -> 185.
        assert_eq!(hoeffding_directions(0.1, 0.05), 185);
        // Loose parameters hit the floor.
        assert_eq!(hoeffding_directions(0.5, 0.5), MIN_DIRECTIONS);
        // Tighter eps dominates quadratically.
        assert!(hoeffding_directions(0.01, 0.05) > 50 * hoeffding_directions(0.1, 0.05));
        assert_eq!(ApproxSpec { eps: 0.1, delta: 0.05 }.directions(), 185);
    }

    #[test]
    fn spec_validation_rejects_out_of_range() {
        assert!(ApproxSpec::new(0.1, 0.05).is_ok());
        for (eps, delta) in [(0.0, 0.1), (1.0, 0.1), (0.1, 0.0), (0.1, 1.0), (-0.2, 0.1)] {
            let err = ApproxSpec::new(eps, delta).unwrap_err();
            assert!(err.to_string().contains("between 0 and 1"), "{eps},{delta}: {err}");
        }
        assert!(ApproxSpec::new(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn fidelity_roundtrips_its_spec() {
        assert_eq!(Fidelity::default(), Fidelity::Exact);
        assert_eq!(Fidelity::Exact.spec(), None);
        assert!(!Fidelity::Exact.is_approx());
        assert_eq!(Fidelity::Exact.name(), "exact");
        let f = Fidelity::Approx { eps: 0.1, delta: 0.02 };
        assert_eq!(f.spec(), Some(ApproxSpec { eps: 0.1, delta: 0.02 }));
        assert!(f.is_approx());
        assert_eq!(f.name(), "approx");
    }

    #[test]
    fn greedy_cover_is_deterministic_and_minimal_on_small_cases() {
        // Directions 0,1 covered by tuple 3; direction 2 only by tuple 7.
        let tops: Vec<&[u32]> = vec![&[3, 5], &[3, 9], &[7]];
        let (picks, full) = greedy_cover(&tops, None);
        assert!(full);
        assert_eq!(picks, vec![3, 7]);
        // Capped below the needed size: reports failure.
        let (_, full) = greedy_cover(&tops, Some(1));
        assert!(!full);
        // Ties break to the smallest tuple index.
        let tops: Vec<&[u32]> = vec![&[8, 2], &[2, 8]];
        let (picks, full) = greedy_cover(&tops, Some(1));
        assert!(full);
        assert_eq!(picks, vec![2]);
    }

    #[test]
    fn sampled_rrm_finds_the_paper_optimum_on_table1() {
        let data = table1();
        let spec = ApproxSpec { eps: 0.05, delta: 0.05 };
        let sol = solve_rrm_sampled_with(
            &data,
            1,
            &FullSpace::new(2),
            spec,
            None,
            DEFAULT_SEED,
            ExecPolicy::sequential(),
        )
        .unwrap();
        // Table I: the best single representative is t3 (index 2), regret 3.
        assert_eq!(sol.indices, vec![2]);
        assert_eq!(sol.certified_regret, Some(3));
        assert_eq!(sol.algorithm, Algorithm::Sampled);
        let m = spec.directions();
        assert_eq!(
            sol.terminated_by,
            TerminatedBy::Sampled { eps: 0.05, delta: 0.05, directions: m }
        );
        assert_eq!(sol.bounds, Some(Bounds { lower: 1, upper: 3 }));
    }

    #[test]
    fn sampled_rrr_covers_the_threshold() {
        let data = table1();
        let sol = solve_rrr_sampled_with(
            &data,
            3,
            &FullSpace::new(2),
            ApproxSpec::default(),
            Some(256),
            DEFAULT_SEED,
            ExecPolicy::sequential(),
        )
        .unwrap();
        assert!(sol.certified_regret.unwrap() <= 3);
        assert_eq!(sol.size(), 1, "threshold 3 is achievable with t3 alone");
        // Threshold 1 needs every sampled rank-1 tuple.
        let sol = solve_rrr_sampled_with(
            &data,
            1,
            &FullSpace::new(2),
            ApproxSpec::default(),
            Some(256),
            DEFAULT_SEED,
            ExecPolicy::sequential(),
        )
        .unwrap();
        assert_eq!(sol.certified_regret, Some(1));
        assert!(sol.size() >= 2);
    }

    #[test]
    fn sampled_answers_are_bit_identical_across_thread_counts() {
        let data = table1();
        let solver = SampledSolver::default();
        let space = FullSpace::new(2);
        let budget = Budget::with_samples(128);
        let baseline = solver
            .solve_rrm_ctx(
                &data,
                2,
                &space,
                &budget,
                &SolverCtx::with_exec(ExecPolicy::sequential()),
            )
            .unwrap();
        for threads in [2usize, 7] {
            let ctx = SolverCtx::with_exec(ExecPolicy::threads(threads));
            assert_eq!(
                solver.solve_rrm_ctx(&data, 2, &space, &budget, &ctx).unwrap(),
                baseline,
                "threads={threads}"
            );
            let prepared = solver.prepare_ctx(&data, &space, &ctx).unwrap();
            assert_eq!(prepared.solve_rrm(2, &budget).unwrap(), baseline, "threads={threads}");
        }
    }

    #[test]
    fn budget_spec_overrides_the_solver_default() {
        let data = table1();
        let solver = SampledSolver::default();
        let budget = Budget::with_approx(ApproxSpec { eps: 0.2, delta: 0.2 });
        let sol = solver
            .solve_rrm_ctx(&data, 1, &FullSpace::new(2), &budget, &SolverCtx::default())
            .unwrap();
        match sol.terminated_by {
            TerminatedBy::Sampled { eps, delta, directions } => {
                assert_eq!((eps, delta), (0.2, 0.2));
                assert_eq!(directions, hoeffding_directions(0.2, 0.2));
            }
            other => panic!("expected a sampled certificate, got {other:?}"),
        }
    }

    #[test]
    fn zero_parameters_stay_typed_errors() {
        let data = table1();
        let solver = SampledSolver::default();
        let ctx = SolverCtx::default();
        assert!(matches!(
            solver.solve_rrm_ctx(&data, 0, &FullSpace::new(2), &Budget::UNLIMITED, &ctx),
            Err(RrmError::OutputSizeTooSmall { .. })
        ));
        assert!(matches!(
            solver.solve_rrr_ctx(&data, 0, &FullSpace::new(2), &Budget::UNLIMITED, &ctx),
            Err(RrmError::Unsupported(_))
        ));
        let bad = Budget::with_approx(ApproxSpec { eps: 2.0, delta: 0.1 });
        assert!(matches!(
            solver.solve_rrm_ctx(&data, 1, &FullSpace::new(2), &bad, &ctx),
            Err(RrmError::Unsupported(_))
        ));
    }

    #[test]
    fn reduce_preserves_sampled_top_k_prefixes() {
        let data = table1();
        let space = FullSpace::new(2);
        let depth = 3;
        let m = 64;
        let red = reduce(&data, &space, depth, m, DEFAULT_SEED, ExecPolicy::sequential()).unwrap();
        assert!(red.data.n() <= data.n());
        assert_eq!(red.rank_fidelity, depth);
        assert_eq!(red.directions, m);
        assert!(red.kept.windows(2).all(|w| w[0] < w[1]), "kept must be ascending");
        // The certificate: for every sampled direction and k <= depth, the
        // reduced top-k maps to the full top-k.
        let dirs = sample_directions(&space, m, DEFAULT_SEED);
        for k in 1..=depth {
            let full_tops = per_direction_top(&data, &dirs, k, Parallelism::Sequential);
            let red_tops = per_direction_top(&red.data, &dirs, k, Parallelism::Sequential);
            for (f, r) in full_tops.iter().zip(&red_tops) {
                assert_eq!(&red.original_indices(r), f, "k={k}");
            }
        }
    }

    #[test]
    fn reduce_rejects_degenerate_parameters() {
        let data = table1();
        let space = FullSpace::new(2);
        assert!(reduce(&data, &space, 0, 8, 1, ExecPolicy::sequential()).is_err());
        assert!(reduce(&data, &space, 2, 0, 1, ExecPolicy::sequential()).is_err());
        assert!(reduce(&data, &FullSpace::new(3), 2, 8, 1, ExecPolicy::sequential()).is_err());
    }
}
