//! Execution policy: how much data parallelism solvers may use.
//!
//! [`ExecPolicy`] wraps the [`Parallelism`] knob of [`rrm_par`] and rides
//! [`SolverCtx`] through [`Solver::prepare`] and the one-shot solve paths,
//! so one engine-level setting (CLI `--threads`, `RRM_THREADS`, or a
//! [`Parallelism`] chosen in code) reaches every chunked kernel in the
//! workspace — rank counting, top-k batches, greedy scoring, crossing
//! enumeration, brute-force rank tables.
//!
//! The policy is strictly about *speed*: every kernel riding it uses fixed
//! chunk boundaries and ordered merges (see the [`rrm_par`] crate docs),
//! so solutions are bit-identical at any thread count.
//! `tests/parallel_parity.rs` enforces that for all eight algorithms.
//!
//! [`Solver::prepare`]: crate::Solver::prepare

pub use rrm_par::Parallelism;

/// Data-parallelism policy carried into solver kernels.
///
/// Wraps [`Parallelism`] so future execution knobs (chunk sizing, NUMA
/// pinning) extend this struct instead of every solver signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ExecPolicy {
    /// Thread-count policy for chunked kernels.
    pub parallelism: Parallelism,
}

impl ExecPolicy {
    /// Honour `RRM_THREADS`, else use all cores (the default).
    pub fn auto() -> Self {
        Self { parallelism: Parallelism::Auto }
    }

    /// Run every kernel inline on the calling thread.
    pub fn sequential() -> Self {
        Self { parallelism: Parallelism::Sequential }
    }

    /// Exactly `n` worker threads (`0` = all cores).
    pub fn threads(n: usize) -> Self {
        Self { parallelism: Parallelism::fixed(n) }
    }

    /// The resolved worker count this policy yields right now.
    pub fn effective_threads(self) -> usize {
        self.parallelism.threads()
    }

    /// Combine with a fallback: an explicit (non-[`Parallelism::Auto`])
    /// policy wins, otherwise the fallback applies. Solvers use this to
    /// let an engine-level [`SolverCtx`] override their options' default
    /// without clobbering a policy that was set on the options directly.
    pub fn or(self, fallback: ExecPolicy) -> ExecPolicy {
        if self.parallelism == Parallelism::Auto {
            fallback
        } else {
            self
        }
    }
}

/// Per-call context handed by engines to [`Solver`] entry points
/// ([`Solver::prepare`], `solve_rrm_ctx`, `solve_rrr_ctx`). Prepared
/// solvers capture the policy at prepare time, so every later query runs
/// under it.
///
/// [`Solver`]: crate::Solver
/// [`Solver::prepare`]: crate::Solver::prepare
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverCtx {
    /// Data-parallelism policy for the call.
    pub exec: ExecPolicy,
}

impl SolverCtx {
    /// Context carrying the given execution policy.
    pub fn with_exec(exec: ExecPolicy) -> Self {
        Self { exec }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_map_to_parallelism() {
        assert_eq!(ExecPolicy::auto().parallelism, Parallelism::Auto);
        assert_eq!(ExecPolicy::sequential().parallelism, Parallelism::Sequential);
        assert_eq!(ExecPolicy::threads(4).parallelism, Parallelism::Fixed(4));
        assert_eq!(ExecPolicy::threads(1).parallelism, Parallelism::Sequential);
        // threads(0) = all cores explicitly — resolved now, not deferred
        // to Auto, so RRM_THREADS cannot override the explicit request.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert_eq!(ExecPolicy::threads(0).effective_threads(), cores);
        assert_ne!(ExecPolicy::threads(0).parallelism, Parallelism::Auto);
        assert_eq!(ExecPolicy::sequential().effective_threads(), 1);
        assert_eq!(ExecPolicy::threads(5).effective_threads(), 5);
    }

    #[test]
    fn or_prefers_explicit_policies() {
        let auto = ExecPolicy::auto();
        let seq = ExecPolicy::sequential();
        let four = ExecPolicy::threads(4);
        assert_eq!(auto.or(seq), seq, "auto defers to the fallback");
        assert_eq!(seq.or(four), seq, "explicit policy wins");
        assert_eq!(four.or(seq), four);
        assert_eq!(auto.or(auto), auto);
    }

    #[test]
    fn ctx_default_is_auto() {
        assert_eq!(SolverCtx::default().exec, ExecPolicy::auto());
        assert_eq!(SolverCtx::with_exec(ExecPolicy::threads(2)).exec, ExecPolicy::threads(2));
    }
}
