//! Problem statements and solver outputs.
//!
//! Solvers live in `rrm-2d` and `rrm-hd`; this module defines the shared
//! contract: what a problem instance asks for and what a [`Solution`]
//! reports back.

use std::sync::Arc;

use crate::anytime::{Bounds, SearchReport, TerminatedBy};
use crate::dataset::Dataset;
use crate::error::RrmError;
use crate::solver::DimRange;

/// The rank-regret *minimization* problem (Definition 3 / 4): find a set of
/// at most `r` tuples minimizing `∇U(S)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrmProblem {
    /// Output size bound `r ≥ 1`.
    pub r: usize,
}

/// The rank-regret *representative* problem (the dual, from Asudeh et al.):
/// find a minimum-size set with `∇U(S) ≤ k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RrrProblem {
    /// Rank-regret threshold `k ≥ 1`.
    pub k: usize,
}

/// Which algorithm produced a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Exact 2D dynamic program (this paper, Section IV).
    TwoDRrm,
    /// 2D baseline of Asudeh et al. with the 2k rank relaxation.
    TwoDRrr,
    /// HD discretize-and-cover algorithm (this paper, Section V).
    Hdrrm,
    /// Exact k-set enumeration baseline (Asudeh et al.).
    Mdrrr,
    /// Randomized k-set baseline (Asudeh et al.).
    MdrrrR,
    /// Space-partitioning heuristic baseline (Asudeh et al.).
    Mdrc,
    /// Regret-ratio (RMS) baseline optimizing the wrong objective.
    Mdrms,
    /// Exhaustive search over candidate subsets (tests/benches only).
    BruteForce,
    /// Sampled-ε approximate tier: exact cover over a Hoeffding-sized
    /// direction sample, regret certified over the sample
    /// (`rrm_core::approx`).
    Sampled,
}

impl Algorithm {
    /// Every variant, in the paper's presentation order. The engine
    /// registry and the CLI `--algo` flag iterate this list.
    pub const ALL: [Algorithm; 9] = [
        Algorithm::TwoDRrm,
        Algorithm::TwoDRrr,
        Algorithm::Hdrrm,
        Algorithm::Mdrrr,
        Algorithm::MdrrrR,
        Algorithm::Mdrc,
        Algorithm::Mdrms,
        Algorithm::BruteForce,
        Algorithm::Sampled,
    ];

    /// Position of this variant in [`Algorithm::ALL`] — a dense index for
    /// registry tables, so engines can look solvers up in O(1) instead of
    /// scanning their roster.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Parse a user-facing algorithm name (case-insensitive; `-`/`_`
    /// ignored, so `mdrrr-r` and `MDRRRr` both resolve). The error lists
    /// every valid name, so a typo on the CLI is self-correcting.
    pub fn from_name(name: &str) -> Result<Algorithm, RrmError> {
        let canon = |s: &str| -> String {
            s.chars().filter(|c| *c != '-' && *c != '_').collect::<String>().to_lowercase()
        };
        let wanted = canon(name);
        Algorithm::ALL.into_iter().find(|a| canon(a.name()) == wanted).ok_or_else(|| {
            let valid: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
            RrmError::Unsupported(format!(
                "unknown algorithm {name:?}; valid names: {}",
                valid.join(", ")
            ))
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            Algorithm::TwoDRrm => "2DRRM",
            Algorithm::TwoDRrr => "2DRRR",
            Algorithm::Hdrrm => "HDRRM",
            Algorithm::Mdrrr => "MDRRR",
            Algorithm::MdrrrR => "MDRRRr",
            Algorithm::Mdrc => "MDRC",
            Algorithm::Mdrms => "MDRMS",
            Algorithm::BruteForce => "BruteForce",
            Algorithm::Sampled => "Sampled",
        }
    }

    /// Does the algorithm certify a rank-regret bound on its output
    /// (the "Guarantee on rank-regret" row of Table III)? The sampled-ε
    /// tier reports a *probabilistic* `(ε, δ)` statement, not a
    /// worst-case bound, so it answers `false` here.
    pub fn has_regret_guarantee(self) -> bool {
        matches!(
            self,
            Algorithm::TwoDRrm | Algorithm::Hdrrm | Algorithm::Mdrrr | Algorithm::BruteForce
        )
    }

    /// Can the algorithm handle a restricted utility space (the "Suitable
    /// for RRRM" row of Table III)?
    pub fn supports_restricted_space(self) -> bool {
        matches!(
            self,
            Algorithm::TwoDRrm
                | Algorithm::Hdrrm
                | Algorithm::MdrrrR
                | Algorithm::Mdrms
                | Algorithm::BruteForce
                | Algorithm::Sampled
        )
    }

    /// Is the algorithm an anytime bound-and-prune search that honours
    /// in-solve [`Cutoff`]s (time budget, gap target, counter budget)?
    /// These are the hard HD solvers: when cut mid-search they return
    /// their best incumbent with certified [`Bounds`] instead of
    /// failing, so a serving deadline yields a partial answer with a
    /// gap rather than `deadline_exceeded`.
    ///
    /// [`Cutoff`]: crate::anytime::Cutoff
    pub fn is_cuttable(self) -> bool {
        matches!(self, Algorithm::Hdrrm | Algorithm::Mdrrr | Algorithm::MdrrrR | Algorithm::Mdrc)
    }

    /// Dataset dimensionalities the algorithm accepts: the 2D algorithms
    /// are exact-but-planar, everything else needs `d ≥ 2`, and brute
    /// force works from `d = 1` up (on tiny inputs).
    pub fn supported_dims(self) -> DimRange {
        match self {
            Algorithm::TwoDRrm | Algorithm::TwoDRrr => DimRange::exactly(2),
            Algorithm::BruteForce => DimRange::at_least(1),
            _ => DimRange::at_least(2),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A representative set chosen by a solver.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Selected tuple indices, sorted ascending, deduplicated.
    pub indices: Vec<u32>,
    /// A rank-regret value the solver *certifies* for its output, when it
    /// has one:
    /// * 2DRRM — the exact `∇U(S)` (optimal);
    /// * HDRRM — `∇D(S)` over the discretized vector set (Theorem 10 (1));
    /// * MDRRR — the threshold `k` met over all enumerated k-sets;
    /// * baselines without guarantees — `None`.
    pub certified_regret: Option<usize>,
    /// Which algorithm produced this solution.
    pub algorithm: Algorithm,
    /// Anytime bounds on the optimal rank-regret within the solver's
    /// frame, when the solver tracks them (the cuttable HD solvers);
    /// `None` for the exact / heuristic solvers that don't.
    pub bounds: Option<Bounds>,
    /// Why the solve returned ([`TerminatedBy::Completed`] unless an
    /// in-solve cutoff fired).
    pub terminated_by: TerminatedBy,
    /// Anytime search statistics (nodes, prunes, gap-vs-time curve).
    /// Wall-clock data — deliberately excluded from `PartialEq` so
    /// parity tests compare answers, not timings.
    pub report: Option<Arc<SearchReport>>,
}

/// Equality compares the answer (indices, certificate, algorithm) and
/// its deterministic anytime annotations (bounds, termination reason),
/// but *not* the wall-clock [`SearchReport`].
impl PartialEq for Solution {
    fn eq(&self, other: &Self) -> bool {
        self.indices == other.indices
            && self.certified_regret == other.certified_regret
            && self.algorithm == other.algorithm
            && self.bounds == other.bounds
            && self.terminated_by == other.terminated_by
    }
}

impl Solution {
    /// Normalize and validate a raw index list against a dataset.
    ///
    /// A violation (empty output, out-of-range index) is a solver bug; it
    /// surfaces as [`RrmError::Internal`] so a misbehaving baseline
    /// reports an error through the facade instead of crashing it.
    pub fn new(
        mut indices: Vec<u32>,
        certified_regret: Option<usize>,
        algorithm: Algorithm,
        data: &Dataset,
    ) -> Result<Self, RrmError> {
        if indices.is_empty() {
            return Err(RrmError::Internal(format!(
                "{algorithm} returned an empty representative set"
            )));
        }
        indices.sort_unstable();
        indices.dedup();
        let n = data.n() as u32;
        if let Some(&bad) = indices.iter().find(|&&i| i >= n) {
            return Err(RrmError::Internal(format!(
                "{algorithm} returned tuple index {bad}, out of range for n = {n}"
            )));
        }
        Ok(Self {
            indices,
            certified_regret,
            algorithm,
            bounds: None,
            terminated_by: TerminatedBy::Completed,
            report: None,
        })
    }

    /// Attach anytime bounds (builder style).
    pub fn with_bounds(mut self, bounds: Bounds) -> Self {
        self.bounds = Some(bounds);
        self
    }

    /// Record why the solve returned (builder style).
    pub fn with_termination(mut self, terminated_by: TerminatedBy) -> Self {
        self.terminated_by = terminated_by;
        self
    }

    /// Attach the search report (builder style).
    pub fn with_report(mut self, report: SearchReport) -> Self {
        self.report = Some(Arc::new(report));
        self
    }

    /// The relative optimality gap certified by [`Solution::bounds`]
    /// (`Some(0.0)` = proven optimal within the solver's frame; `None`
    /// when the solver tracks no bounds).
    pub fn gap(&self) -> Option<f64> {
        self.bounds.map(|b| b.gap())
    }

    /// Number of tuples in the representative set.
    pub fn size(&self) -> usize {
        self.indices.len()
    }

    /// The selected tuples as a standalone dataset (e.g. for display).
    pub fn materialize(&self, data: &Dataset) -> Dataset {
        data.subset(&self.indices)
    }

    /// Rank-regret expressed as a percentage of the dataset size — the
    /// paper's suggestion for making rank-regret comparable across dataset
    /// sizes ("divide rank-regrets by n").
    pub fn regret_percent(&self, data: &Dataset) -> Option<f64> {
        self.certified_regret.map(|k| 100.0 * k as f64 / data.n() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::from_rows(&[[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]]).unwrap()
    }

    #[test]
    fn solution_normalizes_indices() {
        let s = Solution::new(vec![2, 0, 2], Some(1), Algorithm::TwoDRrm, &data()).unwrap();
        assert_eq!(s.indices, vec![0, 2]);
        assert_eq!(s.size(), 2);
        assert_eq!(s.algorithm.name(), "2DRRM");
    }

    #[test]
    fn solution_rejects_bad_index() {
        let err = Solution::new(vec![5], None, Algorithm::Mdrc, &data()).unwrap_err();
        assert!(matches!(&err, RrmError::Internal(msg) if msg.contains("out of range")), "{err}");
    }

    #[test]
    fn solution_rejects_empty() {
        let err = Solution::new(vec![], None, Algorithm::Mdrc, &data()).unwrap_err();
        assert!(matches!(&err, RrmError::Internal(msg) if msg.contains("empty")), "{err}");
    }

    #[test]
    fn algorithm_names_round_trip() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::from_name(a.name()).unwrap(), a);
            assert_eq!(Algorithm::from_name(&a.name().to_lowercase()).unwrap(), a);
        }
        assert_eq!(Algorithm::from_name("mdrrr-r").unwrap(), Algorithm::MdrrrR);
        assert_eq!(Algorithm::from_name("brute_force").unwrap(), Algorithm::BruteForce);
        let err = Algorithm::from_name("mdrx").unwrap_err();
        assert!(err.to_string().contains("valid names"), "{err}");
        assert!(err.to_string().contains("MDRC"), "{err}");
    }

    #[test]
    fn index_is_the_position_in_all() {
        for (i, a) in Algorithm::ALL.into_iter().enumerate() {
            assert_eq!(a.index(), i, "{a}");
        }
    }

    #[test]
    fn supported_dims_match_table() {
        assert!(Algorithm::TwoDRrm.supported_dims().contains(2));
        assert!(!Algorithm::TwoDRrm.supported_dims().contains(3));
        assert!(Algorithm::Hdrrm.supported_dims().contains(6));
        assert!(!Algorithm::Hdrrm.supported_dims().contains(1));
        assert!(Algorithm::BruteForce.supported_dims().contains(1));
        assert!(Algorithm::Sampled.supported_dims().contains(8));
        assert!(!Algorithm::Sampled.supported_dims().contains(1));
    }

    #[test]
    fn materialize_and_percent() {
        let s = Solution::new(vec![1], Some(3), Algorithm::Hdrrm, &data()).unwrap();
        let m = s.materialize(&data());
        assert_eq!(m.n(), 1);
        assert_eq!(m.row(0), &[0.5, 0.5]);
        assert!((s.regret_percent(&data()).unwrap() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn table_iii_capability_matrix() {
        // "Guarantee on rank-regret": MDRRR yes, MDRRRr no, MDRC no, HDRRM yes.
        assert!(Algorithm::Mdrrr.has_regret_guarantee());
        assert!(!Algorithm::MdrrrR.has_regret_guarantee());
        assert!(!Algorithm::Mdrc.has_regret_guarantee());
        assert!(Algorithm::Hdrrm.has_regret_guarantee());
        // "Suitable for RRRM": MDRRR no, MDRRRr yes, MDRC no, HDRRM yes.
        assert!(!Algorithm::Mdrrr.supports_restricted_space());
        assert!(Algorithm::MdrrrR.supports_restricted_space());
        assert!(!Algorithm::Mdrc.supports_restricted_space());
        assert!(Algorithm::Hdrrm.supports_restricted_space());
        // The sampled tier: restricted spaces yes (it samples whatever
        // space the request names), worst-case guarantee no (its
        // certificate is the probabilistic (ε, δ) statement).
        assert!(Algorithm::Sampled.supports_restricted_space());
        assert!(!Algorithm::Sampled.has_regret_guarantee());
        assert!(!Algorithm::Sampled.is_cuttable());
    }

    #[test]
    fn cuttable_set_is_the_hard_hd_solvers() {
        let cuttable: Vec<Algorithm> =
            Algorithm::ALL.into_iter().filter(|a| a.is_cuttable()).collect();
        assert_eq!(
            cuttable,
            vec![Algorithm::Hdrrm, Algorithm::Mdrrr, Algorithm::MdrrrR, Algorithm::Mdrc]
        );
    }

    #[test]
    fn solution_equality_ignores_the_search_report() {
        let base = Solution::new(vec![1], Some(3), Algorithm::Hdrrm, &data()).unwrap();
        let with_report = base.clone().with_report(SearchReport {
            nodes: 42,
            pruned_probes: 7,
            first_incumbent_seconds: Some(0.001),
            curve: vec![(0.001, Bounds { lower: 1, upper: 3 })],
        });
        assert_eq!(base, with_report, "wall-clock report must not affect equality");
        let with_bounds = base.clone().with_bounds(Bounds { lower: 1, upper: 3 });
        assert_ne!(base, with_bounds, "bounds are part of the answer");
        let cut = base.clone().with_termination(TerminatedBy::Counter);
        assert_ne!(base, cut, "termination reason is part of the answer");
        assert_eq!(with_bounds.gap(), Some(Bounds { lower: 1, upper: 3 }.gap()));
        assert_eq!(base.gap(), None);
    }

    #[test]
    fn problem_descriptors() {
        let p = RrmProblem { r: 5 };
        let q = RrrProblem { k: 10 };
        assert_eq!(p.r, 5);
        assert_eq!(q.k, 10);
    }
}
