//! Ranks, top-k sets `Φk(u, D)` and k-th scores `w_k(u, D)`.
//!
//! The paper assumes no two tuples share a utility (Section II). Real and
//! synthetic data do contain ties, so every routine here breaks ties by
//! tuple index: tuple `i` outranks tuple `j` when `score_i > score_j`, or
//! when the scores are equal and `i < j`. This yields a strict total order
//! for every utility vector, making all algorithms deterministic.

use crate::dataset::Dataset;
use crate::exec::Parallelism;
use crate::kernel::{self, ScoreScratch};
use crate::utility;

/// Does tuple (score `a`, index `ia`) outrank tuple (score `b`, index `ib`)?
#[inline]
pub fn outranks(a: f64, ia: u32, b: f64, ib: u32) -> bool {
    a > b || (a == b && ia < ib)
}

/// 1-based rank of the tuple at `index` among `scores`
/// (`∇u(t)` in the paper: one plus the number of tuples that outrank it).
pub fn rank_of_index(scores: &[f64], index: u32) -> usize {
    let s = scores[index as usize];
    let mut above = 0usize;
    for (j, &v) in scores.iter().enumerate() {
        if outranks(v, j as u32, s, index) {
            above += 1;
        }
    }
    above + 1
}

/// 1-based rank of tuple `index` in `data` under utility vector `u`.
pub fn rank_of_tuple(data: &Dataset, u: &[f64], index: u32) -> usize {
    let scores = utility::utilities(data, u);
    rank_of_index(&scores, index)
}

/// Rank-regret of a tuple set for one utility vector
/// (`∇u(S) = min_{t∈S} ∇u(t)`, Definition 1).
///
/// One-shot convenience over [`rank_regret_of_set_into`]; loops over many
/// directions should hold a [`ScoreScratch`] and call the `_into` form so
/// the hot path stays allocation-free.
pub fn rank_regret_of_set(data: &Dataset, u: &[f64], indices: &[u32]) -> usize {
    rank_regret_of_set_into(data, u, indices, &mut ScoreScratch::new())
}

/// Scratch-reusing rank-regret of a set: routes through the blocked
/// scoring kernel's fused reduction, so no `n`-length score vector is
/// ever allocated — only a small reusable tile inside `scratch`.
/// Bit-identical to scoring with [`utility::utilities`] and calling
/// [`rank_regret_from_scores`].
pub fn rank_regret_of_set_into(
    data: &Dataset,
    u: &[f64],
    indices: &[u32],
    scratch: &mut ScoreScratch,
) -> usize {
    assert!(!indices.is_empty(), "rank-regret of an empty set is undefined");
    kernel::rank_regret_of_set(data.soa(), u, indices, scratch)
}

/// Rank-regret of a set given precomputed scores for the whole dataset.
pub fn rank_regret_from_scores(scores: &[f64], indices: &[u32]) -> usize {
    // The best member of S under the tie-broken order.
    let mut best_i = indices[0];
    let mut best_s = scores[best_i as usize];
    for &i in &indices[1..] {
        let s = scores[i as usize];
        if outranks(s, i, best_s, best_i) {
            best_s = s;
            best_i = i;
        }
    }
    rank_of_index(scores, best_i)
}

/// Worst-case (maximum) rank-regret of a set over `dirs`: the sampled
/// estimate `∇D(S)` the search-based solvers bound against. Parallel form
/// of `dirs.iter().map(|u| rank_regret_of_set(..)).max()`.
pub fn max_rank_regret(
    data: &Dataset,
    dirs: &[Vec<f64>],
    indices: &[u32],
    pol: Parallelism,
) -> Option<usize> {
    assert!(!indices.is_empty(), "rank-regret of an empty set is undefined");
    let chunk_size = rrm_par::adaptive_chunk(dirs.len(), data.n() * data.dim());
    rrm_par::par_map_reduce(
        dirs,
        chunk_size,
        pol,
        |_, chunk| {
            // One scratch per chunk: the whole chunk's scoring runs
            // allocation-free through the fused kernel.
            let mut scratch = ScoreScratch::new();
            chunk
                .iter()
                .map(|u| rank_regret_of_set_into(data, u, indices, &mut scratch))
                .max()
                .expect("chunk >= 1")
        },
        usize::max,
    )
}

/// Rank-regret of a set under every direction in `dirs`, in direction
/// order: the batch form the search-based solvers and estimators build on.
/// Scoring runs through the fused kernel with per-chunk scratch reuse.
pub fn batch_rank_regret(
    data: &Dataset,
    dirs: &[Vec<f64>],
    indices: &[u32],
    pol: Parallelism,
) -> Vec<usize> {
    assert!(!indices.is_empty(), "rank-regret of an empty set is undefined");
    let chunk_size = rrm_par::adaptive_chunk(dirs.len(), data.n() * data.dim());
    let per_chunk = rrm_par::par_chunks(dirs, chunk_size, pol, |_, chunk| {
        let mut scratch = ScoreScratch::new();
        chunk
            .iter()
            .map(|u| rank_regret_of_set_into(data, u, indices, &mut scratch))
            .collect::<Vec<usize>>()
    });
    per_chunk.into_iter().flatten().collect()
}

/// The top-k of a score vector.
#[derive(Debug, Clone, PartialEq)]
pub struct TopK {
    /// Indices of the top-k tuples, best first.
    pub indices: Vec<u32>,
    /// The k-th highest score, `w_k(u, D)`.
    pub threshold: f64,
}

/// Compute `Φk` (the top-k tuple indices, best first) and `w_k`.
///
/// `k` is clamped to `scores.len()`. Runs in `O(n + k log k)` via
/// quickselect plus a sort of the selected prefix.
pub fn top_k(scores: &[f64], k: usize) -> TopK {
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    top_k_into(scores, k, &mut scratch, &mut out);
    let threshold = scores[*out.last().expect("k >= 1") as usize];
    TopK { indices: out, threshold }
}

/// Buffer-reusing form of [`top_k`]: fills `out` with the top-k indices
/// (best first) using `scratch` as working storage.
pub fn top_k_into(scores: &[f64], k: usize, scratch: &mut Vec<u32>, out: &mut Vec<u32>) {
    let n = scores.len();
    assert!(n > 0, "top-k of an empty score vector");
    assert!(k > 0, "k must be at least 1");
    let k = k.min(n);

    scratch.clear();
    scratch.extend(0..n as u32);
    let cmp = |&a: &u32, &b: &u32| {
        // Descending by score, ascending by index: strict total order.
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .expect("scores must be finite")
            .then(a.cmp(&b))
    };
    if k < n {
        scratch.select_nth_unstable_by(k - 1, cmp);
        scratch.truncate(k);
    }
    scratch.sort_unstable_by(cmp);
    out.clear();
    out.extend_from_slice(scratch);
}

/// `w_k(u, D)`: the k-th highest score.
pub fn kth_score(scores: &[f64], k: usize) -> f64 {
    top_k(scores, k).threshold
}

/// Full descending argsort of `scores` (ties by index). `O(n log n)`.
pub fn argsort_desc(scores: &[f64]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .expect("scores must be finite")
            .then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_with_distinct_scores() {
        let scores = [0.2, 0.9, 0.5, 0.7];
        assert_eq!(rank_of_index(&scores, 1), 1);
        assert_eq!(rank_of_index(&scores, 3), 2);
        assert_eq!(rank_of_index(&scores, 2), 3);
        assert_eq!(rank_of_index(&scores, 0), 4);
    }

    #[test]
    fn ranks_break_ties_by_index() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(rank_of_index(&scores, 0), 1);
        assert_eq!(rank_of_index(&scores, 1), 2);
        assert_eq!(rank_of_index(&scores, 2), 3);
    }

    #[test]
    fn rank_regret_of_sets() {
        let d = Dataset::from_rows(&[[0.0, 1.0], [0.4, 0.95], [0.57, 0.75]]).unwrap();
        let u = [0.25, 0.75];
        // Scores: t0 = 0.75, t1 = 0.8125, t2 = 0.705 -> order t1, t0, t2.
        assert_eq!(rank_regret_of_set(&d, &u, &[0, 2]), 2);
        assert_eq!(rank_regret_of_set(&d, &u, &[1]), 1);
        assert_eq!(rank_regret_of_set(&d, &u, &[2]), 3);
        assert_eq!(rank_regret_of_set(&d, &u, &[0, 1, 2]), 1);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn rank_regret_empty_set_panics() {
        let d = Dataset::from_rows(&[[1.0]]).unwrap();
        rank_regret_of_set(&d, &[1.0], &[]);
    }

    #[test]
    fn top_k_matches_sort() {
        let scores = [0.3, 0.1, 0.9, 0.9, 0.2, 0.5];
        let tk = top_k(&scores, 3);
        assert_eq!(tk.indices, vec![2, 3, 5]); // 0.9(i2), 0.9(i3), 0.5
        assert_eq!(tk.threshold, 0.5);
        let full = top_k(&scores, 6);
        assert_eq!(full.indices, argsort_desc(&scores));
    }

    #[test]
    fn top_k_clamps_k() {
        let scores = [1.0, 2.0];
        let tk = top_k(&scores, 10);
        assert_eq!(tk.indices, vec![1, 0]);
        assert_eq!(tk.threshold, 1.0);
    }

    #[test]
    fn top_one() {
        let scores = [0.3, 0.8, 0.5];
        let tk = top_k(&scores, 1);
        assert_eq!(tk.indices, vec![1]);
        assert_eq!(tk.threshold, 0.8);
    }

    #[test]
    fn kth_score_value() {
        let scores = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(kth_score(&scores, 1), 4.0);
        assert_eq!(kth_score(&scores, 3), 2.0);
        assert_eq!(kth_score(&scores, 4), 1.0);
    }

    #[test]
    fn argsort_desc_total_order() {
        let scores = [0.5, 0.5, 0.1];
        assert_eq!(argsort_desc(&scores), vec![0, 1, 2]);
    }

    #[test]
    fn rank_of_tuple_via_dataset() {
        let d = Dataset::from_rows(&[[1.0, 0.0], [0.0, 1.0]]).unwrap();
        assert_eq!(rank_of_tuple(&d, &[1.0, 0.0], 0), 1);
        assert_eq!(rank_of_tuple(&d, &[1.0, 0.0], 1), 2);
        assert_eq!(rank_of_tuple(&d, &[0.0, 1.0], 0), 2);
    }

    #[test]
    fn max_rank_regret_matches_serial_at_any_thread_count() {
        let d = Dataset::from_rows(&[[0.0, 1.0], [0.4, 0.95], [0.57, 0.75], [1.0, 0.0]]).unwrap();
        let dirs: Vec<Vec<f64>> =
            (0..97).map(|i| vec![i as f64 / 96.0, 1.0 - i as f64 / 96.0]).collect();
        let set = [0u32, 2];
        let serial = dirs.iter().map(|u| rank_regret_of_set(&d, u, &set)).max();
        for pol in [Parallelism::Sequential, Parallelism::Fixed(2), Parallelism::Fixed(7)] {
            assert_eq!(max_rank_regret(&d, &dirs, &set, pol), serial, "{pol:?}");
        }
        assert_eq!(max_rank_regret(&d, &[], &set, Parallelism::Sequential), None);
    }

    #[test]
    fn batch_rank_regret_matches_per_direction_calls() {
        let d = Dataset::from_rows(&[[0.0, 1.0], [0.4, 0.95], [0.57, 0.75], [1.0, 0.0]]).unwrap();
        let dirs: Vec<Vec<f64>> =
            (0..53).map(|i| vec![i as f64 / 52.0, 1.0 - i as f64 / 52.0]).collect();
        let set = [1u32, 3];
        let expected: Vec<usize> = dirs.iter().map(|u| rank_regret_of_set(&d, u, &set)).collect();
        for pol in [Parallelism::Sequential, Parallelism::Fixed(2), Parallelism::Fixed(7)] {
            assert_eq!(batch_rank_regret(&d, &dirs, &set, pol), expected, "{pol:?}");
        }
        assert!(batch_rank_regret(&d, &[], &set, Parallelism::Sequential).is_empty());
    }

    #[test]
    fn into_form_reuses_scratch_and_matches_scores_path() {
        let d = Dataset::from_rows(&[[0.0, 1.0], [0.4, 0.95], [0.57, 0.75], [1.0, 0.0]]).unwrap();
        let mut scratch = crate::kernel::ScoreScratch::new();
        for i in 0..20 {
            let t = i as f64 / 19.0;
            let u = vec![t, 1.0 - t];
            let scores = utility::utilities(&d, &u);
            assert_eq!(
                rank_regret_of_set_into(&d, &u, &[0, 2], &mut scratch),
                rank_regret_from_scores(&scores, &[0, 2])
            );
        }
    }

    #[test]
    fn rank_regret_from_scores_picks_best_member() {
        let scores = [0.9, 0.8, 0.7, 0.6];
        assert_eq!(rank_regret_from_scores(&scores, &[3, 1]), 2);
        assert_eq!(rank_regret_from_scores(&scores, &[3]), 4);
    }
}
