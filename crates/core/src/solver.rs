//! The shared solver contract: every rank-regret algorithm in the
//! workspace — the paper's 2DRRM/HDRRM and the Table III baselines —
//! implements [`Solver`], so engines, benchmarks and tests can treat
//! "an algorithm" as a value.
//!
//! The trait folds in the capability matrix that used to live only on
//! [`Algorithm`]: whether the solver certifies a rank-regret bound,
//! whether it accepts restricted utility spaces (the RRRM variant), and
//! which dataset dimensionalities it handles. Callers check capabilities
//! through [`Solver::ensure_supported`] and get a uniform
//! [`RrmError::Unsupported`] instead of per-algorithm ad-hoc failures.
//!
//! [`Budget`] is the cross-algorithm resource knob: each solver maps the
//! caps onto its own machinery (k-set enumeration limits, LP call limits,
//! sampled-direction counts) and ignores the ones that do not apply.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::anytime::Cutoff;
use crate::approx::ApproxSpec;
use crate::dataset::Dataset;
use crate::error::RrmError;
use crate::exec::{ExecPolicy, SolverCtx};
use crate::problem::{Algorithm, Solution};
use crate::rank;
use crate::space::UtilitySpace;

/// The dataset dimensionalities a solver accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimRange {
    /// Smallest accepted `d`.
    pub min: usize,
    /// Largest accepted `d` (`None` = unbounded).
    pub max: Option<usize>,
}

impl DimRange {
    pub const fn exactly(d: usize) -> Self {
        Self { min: d, max: Some(d) }
    }

    pub const fn at_least(min: usize) -> Self {
        Self { min, max: None }
    }

    pub fn contains(&self, d: usize) -> bool {
        d >= self.min && self.max.is_none_or(|m| d <= m)
    }
}

impl std::fmt::Display for DimRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.max {
            Some(m) if m == self.min => write!(f, "d = {}", self.min),
            Some(m) => write!(f, "{} <= d <= {}", self.min, m),
            None => write!(f, "d >= {}", self.min),
        }
    }
}

/// Cross-algorithm resource budget. `Default` means unlimited: each
/// solver falls back to its own options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Budget {
    /// Cap on enumerated candidate structures (k-sets, partition cells,
    /// threshold probes in the anytime searches).
    pub max_enumerations: Option<usize>,
    /// Cap on LP feasibility checks.
    pub max_lp_calls: Option<usize>,
    /// Override for sampled-direction counts in randomized solvers
    /// (HDRRM's `|Da|`, MDRRRr/MDRMS direction samples).
    pub samples: Option<usize>,
    /// In-solve cutoff for the anytime (cuttable) solvers. With
    /// [`Cutoff::None`] the counters above still fold into an implicit
    /// [`Cutoff::CounterBudget`] via [`Budget::effective_cutoff`], so
    /// exhausting a counter yields a gap-annotated partial `Solution`
    /// instead of ad-hoc truncation.
    pub cutoff: Cutoff,
    /// Requested approximation fidelity, set when the request asked for
    /// the sampled-ε tier (`Request::approx`). The sampled solver reads
    /// its `(eps, delta)` from here; exact solvers ignore it (the engine
    /// routes approximate requests away from them or through
    /// `approx::reduce` first).
    pub approx: Option<ApproxSpec>,
}

impl Budget {
    pub const UNLIMITED: Budget = Budget {
        max_enumerations: None,
        max_lp_calls: None,
        samples: None,
        cutoff: Cutoff::None,
        approx: None,
    };

    /// Budget with a sampled-direction override, the knob benchmarks use
    /// most.
    pub fn with_samples(samples: usize) -> Self {
        Budget { samples: Some(samples), ..Budget::UNLIMITED }
    }

    /// Budget with an explicit in-solve cutoff.
    pub fn with_cutoff(cutoff: Cutoff) -> Self {
        Budget { cutoff, ..Budget::UNLIMITED }
    }

    /// Budget carrying a sampled-ε fidelity request.
    pub fn with_approx(spec: ApproxSpec) -> Self {
        Budget { approx: Some(spec), ..Budget::UNLIMITED }
    }

    /// The cutoff the anytime solvers actually run under: an explicit
    /// cutoff wins; otherwise a set *work* counter (`max_enumerations` /
    /// `max_lp_calls`) folds into the deterministic
    /// [`Cutoff::CounterBudget`]; otherwise none. A `samples` override
    /// merely parameterizes the problem frame — it cannot exhaust
    /// mid-search, so it does not imply a cutoff.
    pub fn effective_cutoff(&self) -> Cutoff {
        match self.cutoff {
            Cutoff::None if self.max_enumerations.is_some() || self.max_lp_calls.is_some() => {
                Cutoff::CounterBudget
            }
            c => c,
        }
    }
}

/// A rank-regret algorithm as a value: both problem directions plus the
/// capability queries of the paper's Table III.
pub trait Solver: Send + Sync {
    /// Which [`Algorithm`] this solver implements.
    fn algorithm(&self) -> Algorithm;

    /// Rank-regret *minimization* (RRM / RRRM): best set of ≤ `r` tuples
    /// under an explicit execution context — the trait's one canonical
    /// entry point (the pre-session positional 4-arg wrapper is gone;
    /// pass `&SolverCtx::default()` for auto parallelism).
    ///
    /// The context's [`ExecPolicy`] only controls how many threads the
    /// solver's chunked kernels use — solutions are bit-identical at any
    /// thread count (`tests/parallel_parity.rs` enforces this).
    fn solve_rrm_ctx(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError>;

    /// Rank-regret *representative* (RRR): smallest set with regret ≤ `k`,
    /// under an explicit execution context (see [`Solver::solve_rrm_ctx`]
    /// for the determinism contract and the canonical-entry-point note).
    fn solve_rrr_ctx(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError>;

    /// Display name (the paper's spelling, e.g. `MDRRRr`).
    fn name(&self) -> &'static str {
        self.algorithm().name()
    }

    /// Does the solver certify a rank-regret bound for its output?
    fn has_regret_guarantee(&self) -> bool {
        self.algorithm().has_regret_guarantee()
    }

    /// Can the solver handle restricted utility spaces (RRRM)?
    fn supports_restricted_space(&self) -> bool {
        self.algorithm().supports_restricted_space()
    }

    /// Accepted dataset dimensionalities.
    fn supported_dims(&self) -> DimRange {
        self.algorithm().supported_dims()
    }

    /// Bind this solver to one dataset + utility space, building all the
    /// dataset-dependent state (Pareto frontiers, discretization grids,
    /// candidate pools, ...) **once** so that many queries with varying
    /// `r`/`k` can be answered cheaply through the returned
    /// [`PreparedSolver`].
    ///
    /// The prepared handle is `Send + Sync`; read-only queries against it
    /// may run concurrently. Results are *identical* to the one-shot
    /// [`Solver::solve_rrm_ctx`]/[`Solver::solve_rrr_ctx`] paths —
    /// preparation is purely a caching contract, never an approximation.
    ///
    /// Capability checks ([`Solver::ensure_supported`]) run here, so a
    /// prepared handle never fails a query for capability reasons.
    ///
    /// Convenience form of [`Solver::prepare_ctx`] under the default
    /// [`SolverCtx`].
    fn prepare(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
    ) -> Result<Box<dyn PreparedSolver>, RrmError> {
        self.prepare_ctx(data, space, &SolverCtx::default())
    }

    /// [`Solver::prepare`] under an explicit execution context. The
    /// prepared handle *captures* the context's [`ExecPolicy`]: every
    /// later query runs its chunked kernels under that policy (queries
    /// stay bit-identical to sequential execution either way).
    ///
    /// The default implementation reports that the solver has no prepared
    /// mode; every solver shipped in this workspace overrides it.
    fn prepare_ctx(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
        ctx: &SolverCtx,
    ) -> Result<Box<dyn PreparedSolver>, RrmError> {
        let _ = (data, space, ctx);
        Err(RrmError::Unsupported(format!("{} has no prepared (session) mode", self.name())))
    }

    /// Uniform capability check: dimensionality and space restrictions.
    /// Engines call this once before dispatch so every capability mismatch
    /// surfaces as the same graceful [`RrmError::Unsupported`].
    fn ensure_supported(&self, data: &Dataset, space: &dyn UtilitySpace) -> Result<(), RrmError> {
        let dims = self.supported_dims();
        if !dims.contains(data.dim()) {
            return Err(RrmError::Unsupported(format!(
                "{} requires {dims}, got d = {}",
                self.name(),
                data.dim()
            )));
        }
        if space.dim() != data.dim() {
            return Err(RrmError::DimensionMismatch { expected: data.dim(), got: space.dim() });
        }
        if !space.is_full() && !self.supports_restricted_space() {
            return Err(RrmError::Unsupported(format!(
                "{} does not support restricted utility spaces (Table III)",
                self.name()
            )));
        }
        Ok(())
    }
}

/// A [`Solver`] bound to one dataset and utility space: the
/// *prepare-once / query-many* half of the API.
///
/// Construction happens through [`Solver::prepare`], which front-loads all
/// per-dataset work; `solve_rrm`/`solve_rrr` then answer individual
/// queries cheaply and repeatedly. Handles are `Send + Sync` so one
/// prepared instance can serve concurrent read-only queries (the serving
/// workload of the paper: many users, one dataset, varying `r`/`k`).
///
/// Implementations must return exactly what the one-shot path returns for
/// the same query — cached state is a performance contract, not a
/// different algorithm. `tests/session_parity.rs` enforces this for every
/// registered solver.
pub trait PreparedSolver: Send + Sync {
    /// Which [`Algorithm`] answered.
    fn algorithm(&self) -> Algorithm;

    /// The dataset this handle was prepared on.
    fn dataset(&self) -> &Dataset;

    /// Rank-regret *minimization* for one size budget `r`.
    fn solve_rrm(&self, r: usize, budget: &Budget) -> Result<Solution, RrmError>;

    /// Rank-regret *representative* for one threshold `k`.
    fn solve_rrr(&self, k: usize, budget: &Budget) -> Result<Solution, RrmError>;

    /// Display name (the paper's spelling).
    fn name(&self) -> &'static str {
        self.algorithm().name()
    }

    /// Incrementally rebind this handle to the post-update dataset,
    /// patching cached state instead of re-deriving it from scratch.
    ///
    /// Returns `None` when the solver's state is not incrementally
    /// maintainable (the default): callers fall back to a fresh
    /// [`Solver::prepare`] against `upd.new`. When `Some`, the returned
    /// handle must answer every query **bit-identically** to a freshly
    /// prepared handle over `upd.new` — incremental maintenance is a
    /// performance contract, never an approximation (the same contract as
    /// [`Solver::prepare`] itself; `tests/incremental.rs` enforces it).
    fn apply_update(&self, upd: &crate::update::AppliedUpdate) -> Option<Box<dyn PreparedSolver>> {
        let _ = upd;
        None
    }
}

/// Cap for prepared-solver side caches keyed by *request-supplied* values
/// (budget sample counts, enumeration limits). A long-lived session
/// answering untrusted requests must not grow memory with every distinct
/// budget it sees: entries up to the cap are cached for the session's
/// lifetime, further variants are computed but not retained.
pub const PREPARED_CACHE_CAP: usize = 16;

/// Insert-or-reuse with a size bound: returns the cached value for `key`
/// when present; otherwise caches `value` if the map holds fewer than
/// `cap` entries, and returns it either way (uncached beyond the cap —
/// correct but unamortized, which is the right failure mode for a
/// hostile stream of distinct budgets).
pub fn cache_bounded<K: Eq + std::hash::Hash, V: Clone>(
    map: &mut HashMap<K, V>,
    key: K,
    value: V,
    cap: usize,
) -> V {
    if let Some(existing) = map.get(&key) {
        return existing.clone();
    }
    if map.len() < cap {
        map.insert(key, value.clone());
    }
    value
}

/// Generic RRR fallback for solvers with no native representative mode
/// (MDRC, MDRMS): exponential-then-binary search over the size budget
/// `r`, accepting the smallest `r` whose solution's rank-regret —
/// *estimated* on a deterministic direction sample — meets the threshold.
///
/// The result inherits the inner solver's (lack of) certificate:
/// `certified_regret` is `None`, because the estimate is not a guarantee.
pub fn rrr_via_rrm_search(
    solver: &dyn Solver,
    data: &Dataset,
    k: usize,
    space: &dyn UtilitySpace,
    budget: &Budget,
    ctx: &SolverCtx,
) -> Result<Solution, RrmError> {
    rrr_via_rrm_search_with(solver.name(), data, k, space, budget, ctx.exec, |r| {
        solver.solve_rrm_ctx(data, r, space, budget, ctx)
    })
}

/// The closure-driven core of [`rrr_via_rrm_search`]: `solve_rrm` answers
/// one size probe. Prepared solvers pass their memoized query path here so
/// the whole exponential/binary search reuses cached per-dataset state
/// while producing exactly the one-shot results. The per-probe regret
/// estimate (the `O(m · n · d)` inner loop) is chunked over `exec`'s
/// threads; its direction sample is drawn once, sequentially, so the
/// estimate is identical at any thread count.
pub fn rrr_via_rrm_search_with(
    name: &str,
    data: &Dataset,
    k: usize,
    space: &dyn UtilitySpace,
    budget: &Budget,
    exec: ExecPolicy,
    mut solve_rrm: impl FnMut(usize) -> Result<Solution, RrmError>,
) -> Result<Solution, RrmError> {
    if k == 0 {
        return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
    }
    let n = data.n();
    let m = budget.samples.unwrap_or(512).max(1);
    let mut rng = StdRng::seed_from_u64(0x5EA7C4);
    let dirs: Vec<Vec<f64>> = (0..m).map(|_| space.sample_direction(&mut rng)).collect();
    let estimate = |sol: &Solution| -> usize {
        rank::max_rank_regret(data, &dirs, &sol.indices, exec.parallelism)
            .expect("at least one direction")
    };
    let mut attempt = |r: usize| -> Result<Option<(Solution, usize)>, RrmError> {
        match solve_rrm(r) {
            Ok(sol) => {
                let est = estimate(&sol);
                Ok(Some((sol, est)))
            }
            // "This r is below the solver's minimum output size" is an
            // expected probe outcome; the search just moves to a larger r.
            Err(RrmError::OutputSizeTooSmall { .. }) => Ok(None),
            // Everything else — notably `Internal` contract violations —
            // must surface, not be mistaken for infeasibility.
            Err(e) => Err(e),
        }
    };

    // Exponential phase: find any feasible size, remembering the largest
    // size already proven infeasible so the binary phase does not re-probe
    // below it (same scheme as `mdrrr_rrm` and `rrm_via_rrr_2d`).
    let mut hi = 1usize;
    let mut largest_infeasible = 0usize;
    let mut feasible: Option<(usize, Solution)> = None;
    loop {
        if let Some((sol, est)) = attempt(hi)? {
            if est <= k {
                feasible = Some((hi, sol));
                break;
            }
        }
        if hi >= n {
            break;
        }
        largest_infeasible = hi;
        hi = (hi * 2).min(n);
    }
    let (mut hi, mut best) = match feasible {
        Some((r, sol)) => (r, sol),
        None => {
            return Err(RrmError::Unsupported(format!(
                "{name} could not reach rank-regret <= {k} even with r = {n}"
            )))
        }
    };

    // Binary phase: shrink to the smallest feasible size.
    let mut lo = largest_infeasible + 1;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match attempt(mid)? {
            Some((sol, est)) if est <= k => {
                hi = mid;
                best = sol;
            }
            _ => lo = mid + 1,
        }
    }
    Ok(best)
}

/// Options for [`BruteForceSolver`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BruteForceOptions {
    /// Directions sampled to evaluate each candidate subset.
    pub samples: usize,
    /// RNG seed for the direction sample.
    pub seed: u64,
    /// Refuse datasets larger than this (subset enumeration blows up).
    pub max_tuples: usize,
    /// Data-parallelism for the per-direction rank tables. Engine-level
    /// contexts ([`SolverCtx`]) override the default.
    pub exec: ExecPolicy,
}

impl Default for BruteForceOptions {
    fn default() -> Self {
        Self { samples: 4096, seed: 0xB01_DFACE, max_tuples: 20, exec: ExecPolicy::default() }
    }
}

/// Exhaustive search over candidate subsets, the reference implementation
/// behind tests and the parity harness. Exact over its sampled direction
/// set; only usable on tiny datasets (`n ≤ max_tuples`).
#[derive(Debug, Clone, Default)]
pub struct BruteForceSolver {
    pub options: BruteForceOptions,
}

impl BruteForceSolver {
    /// Per-direction ranks of every tuple: `ranks[dir][tuple]`.
    ///
    /// Directions are drawn sequentially (the RNG stream is part of the
    /// algorithm's identity), then the `O(n²)`-per-direction rank counting
    /// — the table's dominant cost — is chunked over the exec policy's
    /// threads. Per-direction rows are independent, so the table is
    /// identical at any thread count.
    fn rank_table(&self, data: &Dataset, space: &dyn UtilitySpace, m: usize) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let dirs: Vec<Vec<f64>> = (0..m).map(|_| space.sample_direction(&mut rng)).collect();
        let n = data.n();
        let soa = data.soa();
        // O(n²) rank counting dominates each direction's cost.
        let chunk = rrm_par::adaptive_chunk(dirs.len(), n * n);
        let per_chunk =
            rrm_par::par_chunks(&dirs, chunk, self.options.exec.parallelism, |_, dirs_chunk| {
                let mut scratch = crate::kernel::ScoreScratch::new();
                let mut rows = vec![Vec::new(); dirs_chunk.len()];
                crate::kernel::for_each_scores(soa, dirs_chunk, &mut scratch, |di, scores| {
                    rows[di] = (0..n as u32).map(|i| rank::rank_of_index(scores, i)).collect();
                });
                rows
            });
        per_chunk.into_iter().flatten().collect()
    }

    /// Best subset of size ≤ `r`: minimal worst-case (over directions)
    /// best-member rank. Returns `(indices, regret)`.
    fn best_subset(ranks: &[Vec<usize>], n: usize, r: usize) -> (Vec<u32>, usize) {
        let r = r.min(n);
        let mut best_set: Vec<u32> = Vec::new();
        let mut best_regret = usize::MAX;
        // Enumerate subsets of size exactly r (regret is monotone in set
        // growth, so smaller subsets never beat the best r-subset).
        let mut subset: Vec<u32> = (0..r as u32).collect();
        loop {
            let mut worst = 0usize;
            for per_dir in ranks {
                let best_rank = subset.iter().map(|&i| per_dir[i as usize]).min().expect("r >= 1");
                worst = worst.max(best_rank);
                if worst >= best_regret {
                    break; // cannot beat the incumbent
                }
            }
            if worst < best_regret {
                best_regret = worst;
                best_set = subset.clone();
            }
            // Next lexicographic r-combination of 0..n.
            let mut i = r;
            loop {
                if i == 0 {
                    return (best_set, best_regret);
                }
                i -= 1;
                if (subset[i] as usize) < n - (r - i) {
                    subset[i] += 1;
                    for j in i + 1..r {
                        subset[j] = subset[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    fn check_size(&self, data: &Dataset) -> Result<(), RrmError> {
        if data.n() > self.options.max_tuples {
            return Err(RrmError::Unsupported(format!(
                "brute force enumerates subsets; n = {} exceeds max_tuples = {}",
                data.n(),
                self.options.max_tuples
            )));
        }
        Ok(())
    }

    /// A copy of this solver with the context's execution policy applied
    /// (an explicit engine policy overrides the options' default).
    fn with_ctx(&self, ctx: &SolverCtx) -> BruteForceSolver {
        let mut options = self.options;
        options.exec = ctx.exec.or(options.exec);
        BruteForceSolver { options }
    }
}

impl Solver for BruteForceSolver {
    fn algorithm(&self) -> Algorithm {
        Algorithm::BruteForce
    }

    fn solve_rrm_ctx(
        &self,
        data: &Dataset,
        r: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        if r == 0 {
            return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
        }
        self.check_size(data)?;
        self.ensure_supported(data, space)?;
        let solver = self.with_ctx(ctx);
        let m = budget.samples.unwrap_or(solver.options.samples).max(1);
        let ranks = solver.rank_table(data, space, m);
        let (set, regret) = Self::best_subset(&ranks, data.n(), r);
        Solution::new(set, Some(regret), Algorithm::BruteForce, data)
    }

    fn solve_rrr_ctx(
        &self,
        data: &Dataset,
        k: usize,
        space: &dyn UtilitySpace,
        budget: &Budget,
        ctx: &SolverCtx,
    ) -> Result<Solution, RrmError> {
        if k == 0 {
            return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
        }
        self.check_size(data)?;
        self.ensure_supported(data, space)?;
        let solver = self.with_ctx(ctx);
        let m = budget.samples.unwrap_or(solver.options.samples).max(1);
        let ranks = solver.rank_table(data, space, m);
        // Smallest r whose optimum meets the threshold. The full set
        // always contains each direction's rank-1 tuple, so this
        // terminates with regret 1 at the latest.
        for r in 1..=data.n() {
            let (set, regret) = Self::best_subset(&ranks, data.n(), r);
            if regret <= k {
                return Solution::new(set, Some(regret), Algorithm::BruteForce, data);
            }
        }
        Err(RrmError::Internal("brute force failed to reach regret 1 with the full dataset".into()))
    }

    fn prepare_ctx(
        &self,
        data: &Dataset,
        space: &dyn UtilitySpace,
        ctx: &SolverCtx,
    ) -> Result<Box<dyn PreparedSolver>, RrmError> {
        self.check_size(data)?;
        self.ensure_supported(data, space)?;
        Ok(Box::new(PreparedBruteForce {
            options: self.with_ctx(ctx).options,
            data: data.clone(),
            space: space.clone_box(),
            tables: Mutex::new(HashMap::new()),
        }))
    }
}

/// [`BruteForceSolver`] bound to one dataset: the per-direction rank table
/// (the expensive `O(m · n log n)` part) is computed once per sample count
/// and shared by every query; each query is then just the subset
/// enumeration.
pub struct PreparedBruteForce {
    options: BruteForceOptions,
    data: Dataset,
    space: Box<dyn UtilitySpace>,
    /// Rank tables keyed by the effective sample count `m` (the budget can
    /// override the option, so different queries may need different
    /// tables; each is deterministic per `m`).
    tables: Mutex<HashMap<usize, Arc<Vec<Vec<usize>>>>>,
}

impl PreparedBruteForce {
    fn table(&self, budget: &Budget) -> Arc<Vec<Vec<usize>>> {
        let m = budget.samples.unwrap_or(self.options.samples).max(1);
        if let Some(table) = self.tables.lock().expect("rank-table cache poisoned").get(&m) {
            return table.clone();
        }
        // Compute outside the lock: concurrent misses duplicate the
        // deterministic work instead of blocking each other.
        let solver = BruteForceSolver { options: self.options };
        let table = Arc::new(solver.rank_table(&self.data, self.space.as_ref(), m));
        cache_bounded(
            &mut self.tables.lock().expect("rank-table cache poisoned"),
            m,
            table,
            PREPARED_CACHE_CAP,
        )
    }
}

impl PreparedSolver for PreparedBruteForce {
    fn algorithm(&self) -> Algorithm {
        Algorithm::BruteForce
    }

    fn dataset(&self) -> &Dataset {
        &self.data
    }

    fn solve_rrm(&self, r: usize, budget: &Budget) -> Result<Solution, RrmError> {
        if r == 0 {
            return Err(RrmError::OutputSizeTooSmall { requested: 0, minimum: 1 });
        }
        let ranks = self.table(budget);
        let (set, regret) = BruteForceSolver::best_subset(&ranks, self.data.n(), r);
        Solution::new(set, Some(regret), Algorithm::BruteForce, &self.data)
    }

    fn solve_rrr(&self, k: usize, budget: &Budget) -> Result<Solution, RrmError> {
        if k == 0 {
            return Err(RrmError::Unsupported("rank-regret thresholds start at 1".into()));
        }
        let ranks = self.table(budget);
        for r in 1..=self.data.n() {
            let (set, regret) = BruteForceSolver::best_subset(&ranks, self.data.n(), r);
            if regret <= k {
                return Solution::new(set, Some(regret), Algorithm::BruteForce, &self.data);
            }
        }
        Err(RrmError::Internal("brute force failed to reach regret 1 with the full dataset".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{FullSpace, WeakRankingSpace};

    /// The default execution context, for one-shot solves in tests.
    fn ctx() -> SolverCtx {
        SolverCtx::default()
    }

    fn table1() -> Dataset {
        Dataset::from_rows(&[
            [0.0, 1.0],
            [0.4, 0.95],
            [0.57, 0.75],
            [0.79, 0.6],
            [0.2, 0.5],
            [0.35, 0.3],
            [1.0, 0.0],
        ])
        .unwrap()
    }

    /// A solver that violates its contract on every RRM call.
    struct BrokenSolver;

    impl Solver for BrokenSolver {
        fn algorithm(&self) -> Algorithm {
            Algorithm::Mdrc
        }
        fn solve_rrm_ctx(
            &self,
            data: &Dataset,
            _r: usize,
            _space: &dyn UtilitySpace,
            _budget: &Budget,
            _ctx: &SolverCtx,
        ) -> Result<Solution, RrmError> {
            // Empty output: the contract violation Solution::new now types.
            Solution::new(vec![], None, Algorithm::Mdrc, data)
        }
        fn solve_rrr_ctx(
            &self,
            data: &Dataset,
            k: usize,
            space: &dyn UtilitySpace,
            budget: &Budget,
            ctx: &SolverCtx,
        ) -> Result<Solution, RrmError> {
            rrr_via_rrm_search(self, data, k, space, budget, ctx)
        }
    }

    #[test]
    fn rrr_search_propagates_internal_errors() {
        // The RRR-via-RRM fallback must surface a misbehaving inner
        // solver's Internal error, not translate it into "infeasible".
        let err = BrokenSolver
            .solve_rrr_ctx(
                &table1(),
                3,
                &FullSpace::new(2),
                &Budget::with_samples(16),
                &SolverCtx::default(),
            )
            .unwrap_err();
        assert!(matches!(&err, RrmError::Internal(msg) if msg.contains("empty")), "{err}");
    }

    #[test]
    fn dim_range_contains() {
        assert!(DimRange::exactly(2).contains(2));
        assert!(!DimRange::exactly(2).contains(3));
        assert!(DimRange::at_least(2).contains(17));
        assert!(!DimRange::at_least(2).contains(1));
        assert_eq!(DimRange::exactly(2).to_string(), "d = 2");
        assert_eq!(DimRange::at_least(2).to_string(), "d >= 2");
    }

    #[test]
    fn budget_default_is_unlimited() {
        assert_eq!(Budget::default(), Budget::UNLIMITED);
        assert_eq!(Budget::with_samples(100).samples, Some(100));
    }

    #[test]
    fn effective_cutoff_folds_counters() {
        use std::time::Duration;
        // Unlimited: no cutoff at all.
        assert_eq!(Budget::UNLIMITED.effective_cutoff(), Cutoff::None);
        // A samples override is a frame parameter, not a work counter.
        assert_eq!(Budget::with_samples(10).effective_cutoff(), Cutoff::None);
        // Any set work counter folds into the deterministic counter cutoff.
        let b = Budget { max_enumerations: Some(5), ..Budget::UNLIMITED };
        assert_eq!(b.effective_cutoff(), Cutoff::CounterBudget);
        let b = Budget { max_lp_calls: Some(5), ..Budget::UNLIMITED };
        assert_eq!(b.effective_cutoff(), Cutoff::CounterBudget);
        // An explicit cutoff wins over the counter fold.
        let b = Budget {
            max_enumerations: Some(5),
            cutoff: Cutoff::TimeBudget(Duration::from_millis(50)),
            ..Budget::UNLIMITED
        };
        assert_eq!(b.effective_cutoff(), Cutoff::TimeBudget(Duration::from_millis(50)));
        assert_eq!(
            Budget::with_cutoff(Cutoff::GapAtMost(0.25)).effective_cutoff(),
            Cutoff::GapAtMost(0.25)
        );
    }

    #[test]
    fn brute_force_finds_the_paper_example_optimum() {
        // Table I: the best single representative is t3 (index 2) with
        // rank-regret 3.
        let solver = BruteForceSolver::default();
        let sol = solver
            .solve_rrm_ctx(&table1(), 1, &FullSpace::new(2), &Budget::default(), &ctx())
            .unwrap();
        assert_eq!(sol.indices, vec![2]);
        assert_eq!(sol.certified_regret, Some(3));
        assert_eq!(sol.algorithm, Algorithm::BruteForce);
    }

    #[test]
    fn brute_force_rrr_matches_duality() {
        let solver = BruteForceSolver::default();
        // Threshold 3 is achievable with one tuple (t3), so RRR returns 1.
        let sol = solver
            .solve_rrr_ctx(&table1(), 3, &FullSpace::new(2), &Budget::default(), &ctx())
            .unwrap();
        assert_eq!(sol.size(), 1);
        // Threshold 1 needs every envelope tuple.
        let sol = solver
            .solve_rrr_ctx(&table1(), 1, &FullSpace::new(2), &Budget::default(), &ctx())
            .unwrap();
        assert_eq!(sol.certified_regret, Some(1));
        assert!(sol.size() >= 2);
    }

    #[test]
    fn brute_force_respects_restricted_space() {
        let solver = BruteForceSolver::default();
        let sol = solver
            .solve_rrm_ctx(&table1(), 1, &WeakRankingSpace::new(2, 1), &Budget::default(), &ctx())
            .unwrap();
        assert!(sol.certified_regret.unwrap() <= 3);
    }

    #[test]
    fn brute_force_rejects_large_inputs() {
        let rows: Vec<[f64; 2]> = (0..50).map(|i| [i as f64, 50.0 - i as f64]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let solver = BruteForceSolver::default();
        let err = solver
            .solve_rrm_ctx(&data, 2, &FullSpace::new(2), &Budget::default(), &ctx())
            .unwrap_err();
        assert!(matches!(err, RrmError::Unsupported(_)));
    }

    #[test]
    fn ensure_supported_reports_uniform_errors() {
        let solver = BruteForceSolver::default();
        // Space dimension mismatch.
        let err = solver.ensure_supported(&table1(), &FullSpace::new(3)).unwrap_err();
        assert!(matches!(err, RrmError::DimensionMismatch { expected: 2, got: 3 }));
    }

    #[test]
    fn cache_bounded_stops_growing_at_the_cap() {
        let mut map: HashMap<usize, usize> = HashMap::new();
        for key in 0..10 {
            assert_eq!(cache_bounded(&mut map, key, key * 10, 3), key * 10);
        }
        assert_eq!(map.len(), 3, "entries beyond the cap must not be retained");
        // Cached keys keep returning the stored value...
        assert_eq!(cache_bounded(&mut map, 0, 999, 3), 0);
        // ...and uncached keys still compute correctly, just unretained.
        assert_eq!(cache_bounded(&mut map, 42, 420, 3), 420);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn prepared_brute_force_matches_one_shot_across_queries() {
        let solver = BruteForceSolver::default();
        let space = FullSpace::new(2);
        let budget = Budget::with_samples(256);
        let prepared = solver.prepare(&table1(), &space).unwrap();
        assert_eq!(prepared.algorithm(), Algorithm::BruteForce);
        assert_eq!(prepared.dataset().n(), 7);
        // One handle answers many r and k values, identically to one-shot.
        for r in 1..=4 {
            let one_shot = solver.solve_rrm_ctx(&table1(), r, &space, &budget, &ctx()).unwrap();
            assert_eq!(prepared.solve_rrm(r, &budget).unwrap(), one_shot, "r={r}");
        }
        for k in 1..=3 {
            let one_shot = solver.solve_rrr_ctx(&table1(), k, &space, &budget, &ctx()).unwrap();
            assert_eq!(prepared.solve_rrr(k, &budget).unwrap(), one_shot, "k={k}");
        }
        // Zero parameters stay typed errors on the prepared path too.
        assert!(matches!(prepared.solve_rrm(0, &budget), Err(RrmError::OutputSizeTooSmall { .. })));
        assert!(matches!(prepared.solve_rrr(0, &budget), Err(RrmError::Unsupported(_))));
    }

    #[test]
    fn prepare_rejects_what_one_shot_rejects() {
        // Oversized dataset and capability mismatches fail at prepare time,
        // so a handle that exists can always answer.
        let rows: Vec<[f64; 2]> = (0..50).map(|i| [i as f64, 50.0 - i as f64]).collect();
        let big = Dataset::from_rows(&rows).unwrap();
        let solver = BruteForceSolver::default();
        assert!(matches!(solver.prepare(&big, &FullSpace::new(2)), Err(RrmError::Unsupported(_))));
        assert!(matches!(
            solver.prepare(&table1(), &FullSpace::new(3)),
            Err(RrmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn default_prepare_reports_no_prepared_mode() {
        // A custom solver that does not override `prepare` degrades
        // gracefully instead of panicking.
        let Err(err) = BrokenSolver.prepare(&table1(), &FullSpace::new(2)) else {
            panic!("default prepare must not succeed");
        };
        assert!(matches!(&err, RrmError::Unsupported(msg) if msg.contains("prepared")), "{err}");
    }

    #[test]
    fn brute_force_is_bit_identical_across_thread_counts() {
        use crate::exec::ExecPolicy;
        let solver = BruteForceSolver::default();
        let space = FullSpace::new(2);
        let budget = Budget::with_samples(128);
        let baseline = solver
            .solve_rrm_ctx(
                &table1(),
                2,
                &space,
                &budget,
                &SolverCtx::with_exec(ExecPolicy::sequential()),
            )
            .unwrap();
        for threads in [2usize, 7] {
            let ctx = SolverCtx::with_exec(ExecPolicy::threads(threads));
            assert_eq!(
                solver.solve_rrm_ctx(&table1(), 2, &space, &budget, &ctx).unwrap(),
                baseline,
                "threads={threads}"
            );
            let prepared = solver.prepare_ctx(&table1(), &space, &ctx).unwrap();
            assert_eq!(prepared.solve_rrm(2, &budget).unwrap(), baseline, "threads={threads}");
        }
    }

    #[test]
    fn budget_sample_override_is_honoured() {
        let solver = BruteForceSolver::default();
        // One sampled direction: the certificate is that direction's rank.
        let sol = solver
            .solve_rrm_ctx(&table1(), 1, &FullSpace::new(2), &Budget::with_samples(1), &ctx())
            .unwrap();
        assert!(sol.certified_regret.unwrap() <= 3);
    }
}
