//! The [`Dataset`] type: `n` tuples over `d` numeric attributes.
//!
//! Values are stored row-major in one flat allocation so batch scoring (the
//! hot path of every algorithm) walks memory linearly.

use crate::error::RrmError;
use crate::kernel::Soa;
use std::sync::{Arc, OnceLock};

/// An immutable collection of `n` tuples with `d` attributes each.
///
/// Conventions from the paper: larger values are preferred on every
/// attribute; attribute ranges are typically normalized to `[0, 1]`
/// (see [`Dataset::normalize`]), though nothing in this crate requires it —
/// rank-regret is shift invariant (Theorem 1), so algorithms operate on raw
/// values too.
#[derive(Debug, Clone)]
pub struct Dataset {
    d: usize,
    values: Vec<f64>,
    /// Lazily built column-major mirror ([`crate::kernel::Soa`]); shared by
    /// clones via `Arc` so a prepared handle pays the transpose once.
    soa: OnceLock<Arc<Soa>>,
}

/// Equality is over the logical contents only; whether the SoA mirror has
/// been built yet is an implementation detail.
impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.d == other.d && self.values == other.values
    }
}

impl Dataset {
    /// Internal constructor for already-validated buffers.
    #[inline]
    pub(crate) fn raw(d: usize, values: Vec<f64>) -> Self {
        Self { d, values, soa: OnceLock::new() }
    }

    /// The lazy-init cell behind [`Dataset::soa`](crate::kernel).
    #[inline]
    pub(crate) fn soa_cell(&self) -> &OnceLock<Arc<Soa>> {
        &self.soa
    }
    /// Build a dataset from per-tuple rows.
    ///
    /// Fails when rows are empty, ragged, or contain non-finite values.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self, RrmError> {
        let Some(first) = rows.first() else {
            return Err(RrmError::EmptyDataset);
        };
        let d = first.as_ref().len();
        if d == 0 {
            return Err(RrmError::DimensionMismatch { expected: 1, got: 0 });
        }
        let mut values = Vec::with_capacity(rows.len() * d);
        for (i, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            if row.len() != d {
                return Err(RrmError::DimensionMismatch { expected: d, got: row.len() });
            }
            // Validate while copying: the error names the first offending
            // row instead of forcing callers to re-scan their input.
            if let Some(&bad) = row.iter().find(|v| !v.is_finite()) {
                return Err(RrmError::NonFiniteValue { row: i, value: bad });
            }
            values.extend_from_slice(row);
        }
        Ok(Self::raw(d, values))
    }

    /// Build a dataset from a row-major flat buffer of `n * d` values.
    pub fn from_flat(d: usize, values: Vec<f64>) -> Result<Self, RrmError> {
        if d == 0 || values.is_empty() {
            return Err(RrmError::EmptyDataset);
        }
        if !values.len().is_multiple_of(d) {
            return Err(RrmError::DimensionMismatch { expected: d, got: values.len() % d });
        }
        if let Some((i, &bad)) = values.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(RrmError::NonFiniteValue { row: i / d, value: bad });
        }
        Ok(Self::raw(d, values))
    }

    /// Number of tuples `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.values.len() / self.d
    }

    /// Number of attributes `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The `i`-th tuple as a slice of length `d`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.d..(i + 1) * self.d]
    }

    /// Iterate over all tuples in index order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.values.chunks_exact(self.d)
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn flat(&self) -> &[f64] {
        &self.values
    }

    /// A new dataset containing only the tuples at `indices`, in order.
    pub fn subset(&self, indices: &[u32]) -> Dataset {
        let mut values = Vec::with_capacity(indices.len() * self.d);
        for &i in indices {
            values.extend_from_slice(self.row(i as usize));
        }
        Dataset::raw(self.d, values)
    }

    /// Min-max normalize every attribute to `[0, 1]`.
    ///
    /// Constant attributes (max = min) map to `0.0` for every tuple, which
    /// preserves ranking behaviour (a constant attribute never discriminates).
    pub fn normalize(&self) -> Dataset {
        let d = self.d;
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for row in self.rows() {
            for (j, &v) in row.iter().enumerate() {
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
        }
        let mut values = Vec::with_capacity(self.values.len());
        for row in self.rows() {
            for (j, &v) in row.iter().enumerate() {
                let span = hi[j] - lo[j];
                values.push(if span > 0.0 { (v - lo[j]) / span } else { 0.0 });
            }
        }
        Dataset::raw(d, values)
    }

    /// Shift every tuple by a constant per-attribute offset `lambda`
    /// (the transformation of Theorem 1: `t'[j] = t[j] + λ[j]`).
    ///
    /// RRM/RRRM solutions are invariant under this transformation; the RMS
    /// baseline's are not, which `examples/shift_invariance.rs` demonstrates.
    pub fn shift(&self, lambda: &[f64]) -> Dataset {
        assert_eq!(lambda.len(), self.d, "shift vector arity must equal d");
        let mut values = Vec::with_capacity(self.values.len());
        for row in self.rows() {
            for (j, &v) in row.iter().enumerate() {
                values.push(v + lambda[j]);
            }
        }
        Dataset::raw(self.d, values)
    }

    /// Negate the listed attributes (for smaller-is-better columns such as
    /// price), then the usual larger-preferred convention applies.
    pub fn negate_attributes(&self, attrs: &[usize]) -> Dataset {
        let mut values = self.values.clone();
        for row in values.chunks_exact_mut(self.d) {
            for &j in attrs {
                row[j] = -row[j];
            }
        }
        Dataset::raw(self.d, values)
    }

    /// Keep only the listed attributes (projection), preserving tuple order.
    pub fn project(&self, attrs: &[usize]) -> Result<Dataset, RrmError> {
        if attrs.is_empty() {
            return Err(RrmError::EmptyDataset);
        }
        for &j in attrs {
            if j >= self.d {
                return Err(RrmError::DimensionMismatch { expected: self.d, got: j });
            }
        }
        let mut values = Vec::with_capacity(self.n() * attrs.len());
        for row in self.rows() {
            for &j in attrs {
                values.push(row[j]);
            }
        }
        Ok(Dataset::raw(attrs.len(), values))
    }

    /// First `m` tuples as a new dataset (used by the size sweeps in the
    /// experiment harness, mirroring the paper's "varied the dataset size").
    pub fn prefix(&self, m: usize) -> Dataset {
        let m = m.min(self.n());
        Dataset::raw(self.d, self.values[..m * self.d].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(&[[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let d = small();
        assert_eq!(d.n(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.row(1), &[0.5, 0.5]);
        assert_eq!(d.rows().count(), 3);
        assert_eq!(d.flat().len(), 6);
    }

    #[test]
    fn rejects_empty() {
        let rows: Vec<[f64; 2]> = vec![];
        assert!(matches!(Dataset::from_rows(&rows), Err(RrmError::EmptyDataset)));
        assert!(Dataset::from_flat(2, vec![]).is_err());
    }

    #[test]
    fn rejects_ragged() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            Dataset::from_rows(&rows),
            Err(RrmError::DimensionMismatch { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let rows = vec![vec![1.0, f64::NAN]];
        assert!(matches!(Dataset::from_rows(&rows), Err(RrmError::NonFiniteValue { row: 0, .. })));
        let rows = vec![vec![1.0, f64::INFINITY]];
        assert!(Dataset::from_rows(&rows).is_err());
    }

    #[test]
    fn non_finite_error_names_the_first_bad_row() {
        // Row 2 is the first offender; the error must say so even though
        // row 3 is also bad.
        let rows = vec![vec![0.0, 1.0], vec![0.5, 0.5], vec![f64::NAN, 0.1], vec![1.0, f64::NAN]];
        let err = Dataset::from_rows(&rows).unwrap_err();
        assert!(matches!(err, RrmError::NonFiniteValue { row: 2, .. }), "{err}");
        assert!(err.to_string().contains("row 2"), "{err}");
        // from_flat computes the row from the flat offset.
        let err = Dataset::from_flat(2, vec![0.0, 1.0, 0.5, f64::INFINITY]).unwrap_err();
        assert!(
            matches!(err, RrmError::NonFiniteValue { row: 1, value } if value.is_infinite()),
            "{err}"
        );
    }

    #[test]
    fn rejects_misaligned_flat() {
        assert!(Dataset::from_flat(2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn subset_keeps_order() {
        let d = small();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.row(0), &[0.9, 0.1]);
        assert_eq!(s.row(1), &[0.1, 0.9]);
    }

    #[test]
    fn normalize_maps_to_unit_range() {
        let d = Dataset::from_rows(&[[10.0, -5.0], [20.0, 5.0], [15.0, 0.0]]).unwrap();
        let n = d.normalize();
        assert_eq!(n.row(0), &[0.0, 0.0]);
        assert_eq!(n.row(1), &[1.0, 1.0]);
        assert_eq!(n.row(2), &[0.5, 0.5]);
    }

    #[test]
    fn normalize_constant_attribute() {
        let d = Dataset::from_rows(&[[3.0, 1.0], [3.0, 2.0]]).unwrap();
        let n = d.normalize();
        assert_eq!(n.row(0)[0], 0.0);
        assert_eq!(n.row(1)[0], 0.0);
    }

    #[test]
    fn shift_adds_offsets() {
        let d = small();
        let s = d.shift(&[1.0, -1.0]);
        assert!((s.row(0)[0] - 1.1).abs() < 1e-12);
        assert!((s.row(0)[1] + 0.1).abs() < 1e-12);
    }

    #[test]
    fn negate_and_project() {
        let d = small();
        let neg = d.negate_attributes(&[0]);
        assert_eq!(neg.row(2), &[-0.9, 0.1]);
        let p = d.project(&[1]).unwrap();
        assert_eq!(p.dim(), 1);
        assert_eq!(p.row(0), &[0.9]);
        assert!(d.project(&[5]).is_err());
        assert!(d.project(&[]).is_err());
    }

    #[test]
    fn prefix_truncates() {
        let d = small();
        assert_eq!(d.prefix(2).n(), 2);
        assert_eq!(d.prefix(10).n(), 3);
    }
}
