//! Incremental dataset updates: the [`UpdateOp`] batch language and the
//! [`AppliedUpdate`] context that prepared solvers patch themselves with.
//!
//! An update batch is applied atomically to an immutable [`Dataset`],
//! producing a *new* dataset plus the bookkeeping incremental maintainers
//! need: the old→new index remap (monotone over survivors, so relative
//! index order — and therefore every index-ascending tie-break in the
//! solvers — is preserved), the new indices of inserted rows (always the
//! largest indices, appended after every survivor), and the old indices
//! that were deleted.
//!
//! Semantics:
//!
//! - `Delete(i)` refers to the **pre-batch** index `i`; deletes inside one
//!   batch do not shift each other. Out-of-range or duplicate deletes
//!   reject the whole batch.
//! - `Insert(row)` appends `row` after all survivors, in op order. Rows
//!   must match the dataset's arity and be finite, exactly like
//!   [`Dataset::from_rows`].
//! - Survivors keep their relative order; the batch must leave at least
//!   one tuple (a dataset is never empty).

use crate::dataset::Dataset;
use crate::error::RrmError;

/// One dataset mutation inside an update batch.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Append a new tuple (after all surviving tuples).
    Insert(Vec<f64>),
    /// Remove the tuple at this **pre-batch** index.
    Delete(usize),
}

/// The result of applying one update batch: the old and new datasets plus
/// the index bookkeeping incremental maintainers consume.
#[derive(Debug, Clone)]
pub struct AppliedUpdate {
    /// The dataset the batch was applied to.
    pub old: Dataset,
    /// The post-batch dataset.
    pub new: Dataset,
    /// `remap[old_index]` is the tuple's new index, or `None` if deleted.
    /// Monotone over survivors: `i < j` surviving implies
    /// `remap[i] < remap[j]`.
    pub remap: Vec<Option<u32>>,
    /// New indices of the inserted rows, in op order (always a contiguous
    /// suffix `new.n() - inserted.len() .. new.n()`).
    pub inserted: Vec<u32>,
    /// Old indices of the deleted rows, ascending.
    pub deleted: Vec<u32>,
}

impl AppliedUpdate {
    /// Number of surviving (non-deleted, non-inserted) tuples.
    pub fn survivors(&self) -> usize {
        self.old.n() - self.deleted.len()
    }
}

/// Apply `ops` to `data`, validating the whole batch before touching
/// anything (an invalid op rejects the batch atomically).
pub fn apply_updates(data: &Dataset, ops: &[UpdateOp]) -> Result<AppliedUpdate, RrmError> {
    let n = data.n();
    let d = data.dim();

    // Validate first: deletes in range and distinct, inserts well-formed.
    let mut delete_mask = vec![false; n];
    let mut deleted: Vec<u32> = Vec::new();
    let mut inserted_rows: Vec<&[f64]> = Vec::new();
    for op in ops {
        match op {
            UpdateOp::Delete(i) => {
                if *i >= n {
                    return Err(RrmError::Unsupported(format!(
                        "delete index {i} out of range for n = {n}"
                    )));
                }
                if delete_mask[*i] {
                    return Err(RrmError::Unsupported(format!(
                        "duplicate delete of index {i} in one batch"
                    )));
                }
                delete_mask[*i] = true;
                deleted.push(*i as u32);
            }
            UpdateOp::Insert(row) => {
                if row.len() != d {
                    return Err(RrmError::DimensionMismatch { expected: d, got: row.len() });
                }
                if let Some(&bad) = row.iter().find(|v| !v.is_finite()) {
                    return Err(RrmError::NonFiniteValue {
                        row: n + inserted_rows.len(),
                        value: bad,
                    });
                }
                inserted_rows.push(row);
            }
        }
    }
    deleted.sort_unstable();
    let survivors = n - deleted.len();
    if survivors + inserted_rows.len() == 0 {
        return Err(RrmError::EmptyDataset);
    }

    // Build the new flat buffer and the old→new remap in one pass.
    let new_n = survivors + inserted_rows.len();
    let mut values = Vec::with_capacity(new_n * d);
    let mut remap: Vec<Option<u32>> = Vec::with_capacity(n);
    let mut next = 0u32;
    for (i, row) in data.rows().enumerate() {
        if delete_mask[i] {
            remap.push(None);
        } else {
            values.extend_from_slice(row);
            remap.push(Some(next));
            next += 1;
        }
    }
    let mut inserted: Vec<u32> = Vec::with_capacity(inserted_rows.len());
    for row in &inserted_rows {
        values.extend_from_slice(row);
        inserted.push(next);
        next += 1;
    }

    let new = Dataset::from_flat(d, values)?;
    Ok(AppliedUpdate { old: data.clone(), new, remap, inserted, deleted })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(&[[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]]).unwrap()
    }

    #[test]
    fn insert_appends_and_delete_drops() {
        let upd = apply_updates(&small(), &[UpdateOp::Delete(1), UpdateOp::Insert(vec![0.3, 0.7])])
            .unwrap();
        assert_eq!(upd.new.n(), 3);
        assert_eq!(upd.new.row(0), &[0.1, 0.9]);
        assert_eq!(upd.new.row(1), &[0.9, 0.1]);
        assert_eq!(upd.new.row(2), &[0.3, 0.7]);
        assert_eq!(upd.remap, vec![Some(0), None, Some(1)]);
        assert_eq!(upd.inserted, vec![2]);
        assert_eq!(upd.deleted, vec![1]);
        assert_eq!(upd.survivors(), 2);
    }

    #[test]
    fn deletes_use_pre_batch_indices() {
        // Deleting 0 and 2 leaves old row 1, regardless of op order.
        let upd = apply_updates(&small(), &[UpdateOp::Delete(2), UpdateOp::Delete(0)]).unwrap();
        assert_eq!(upd.new.n(), 1);
        assert_eq!(upd.new.row(0), &[0.5, 0.5]);
        assert_eq!(upd.deleted, vec![0, 2]);
        assert_eq!(upd.remap, vec![None, Some(0), None]);
    }

    #[test]
    fn rejects_bad_batches_atomically() {
        let d = small();
        assert!(matches!(apply_updates(&d, &[UpdateOp::Delete(7)]), Err(RrmError::Unsupported(_))));
        assert!(matches!(
            apply_updates(&d, &[UpdateOp::Delete(1), UpdateOp::Delete(1)]),
            Err(RrmError::Unsupported(_))
        ));
        assert!(matches!(
            apply_updates(&d, &[UpdateOp::Insert(vec![1.0])]),
            Err(RrmError::DimensionMismatch { expected: 2, got: 1 })
        ));
        assert!(matches!(
            apply_updates(&d, &[UpdateOp::Insert(vec![1.0, f64::NAN])]),
            Err(RrmError::NonFiniteValue { .. })
        ));
        assert!(matches!(
            apply_updates(&d, &[UpdateOp::Delete(0), UpdateOp::Delete(1), UpdateOp::Delete(2)]),
            Err(RrmError::EmptyDataset)
        ));
    }

    #[test]
    fn delete_all_with_insert_is_allowed() {
        let upd = apply_updates(
            &small(),
            &[
                UpdateOp::Delete(0),
                UpdateOp::Delete(1),
                UpdateOp::Delete(2),
                UpdateOp::Insert(vec![0.2, 0.8]),
            ],
        )
        .unwrap();
        assert_eq!(upd.new.n(), 1);
        assert_eq!(upd.inserted, vec![0]);
    }

    #[test]
    fn remap_is_monotone_over_survivors() {
        let rows: Vec<[f64; 2]> = (0..10).map(|i| [i as f64, 10.0 - i as f64]).collect();
        let data = Dataset::from_rows(&rows).unwrap();
        let upd = apply_updates(&data, &[UpdateOp::Delete(3), UpdateOp::Delete(7)]).unwrap();
        let survivors: Vec<u32> = upd.remap.iter().flatten().copied().collect();
        assert!(survivors.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(survivors.len(), 8);
    }
}
