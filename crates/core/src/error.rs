//! Error type shared across the rank-regret crates.

use std::fmt;

/// Errors produced by dataset construction and the solvers.
///
/// # API stability
///
/// The enum is `#[non_exhaustive]`: future releases may add variants (new
/// solver preconditions, new session-level failures) without a breaking
/// change, so downstream `match`es must keep a wildcard arm. Match on the
/// variants you can handle and treat the rest generically via [`Display`].
///
/// [`Display`]: std::fmt::Display
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RrmError {
    /// A dataset must contain at least one tuple and one attribute.
    EmptyDataset,
    /// Mismatched arity (ragged rows, wrong-size utility vector, ...).
    DimensionMismatch { expected: usize, got: usize },
    /// NaN or infinite attribute value, with the 0-based index of the
    /// first offending row so callers can point at the bad input record.
    NonFiniteValue {
        /// 0-based index of the first row containing the value.
        row: usize,
        /// The offending value.
        value: f64,
    },
    /// The requested output size cannot be honoured (e.g. HDRRM requires
    /// `r ≥ |B|` so the basis fits in the result).
    OutputSizeTooSmall { requested: usize, minimum: usize },
    /// The restricted utility space is empty or unusable for this operation
    /// (e.g. a non-polyhedral space passed to an LP-based routine).
    InvalidSpace(String),
    /// An algorithm-specific precondition failed.
    Unsupported(String),
    /// A solver violated its own contract (empty output, out-of-range
    /// index, ...). Surfaced as an error instead of a panic so a
    /// misbehaving baseline cannot crash the engine.
    Internal(String),
}

impl fmt::Display for RrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrmError::EmptyDataset => write!(f, "dataset must be non-empty"),
            RrmError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            RrmError::NonFiniteValue { row, value } => {
                write!(f, "non-finite attribute value {value} in row {row}")
            }
            RrmError::OutputSizeTooSmall { requested, minimum } => {
                write!(f, "output size {requested} too small; need at least {minimum}")
            }
            RrmError::InvalidSpace(msg) => write!(f, "invalid utility space: {msg}"),
            RrmError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            RrmError::Internal(msg) => write!(f, "internal solver error: {msg}"),
        }
    }
}

impl std::error::Error for RrmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(RrmError::EmptyDataset.to_string(), "dataset must be non-empty");
        assert!(RrmError::DimensionMismatch { expected: 3, got: 2 }
            .to_string()
            .contains("expected 3"));
        assert!(RrmError::OutputSizeTooSmall { requested: 2, minimum: 4 }
            .to_string()
            .contains("at least 4"));
        assert!(RrmError::InvalidSpace("empty cone".into()).to_string().contains("empty cone"));
        let e = RrmError::NonFiniteValue { row: 7, value: f64::NAN };
        assert!(e.to_string().contains("non-finite"));
        assert!(e.to_string().contains("row 7"), "{e}");
        assert!(RrmError::Unsupported("x".into()).to_string().contains("unsupported"));
        assert!(RrmError::Internal("empty set".into()).to_string().contains("empty set"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(RrmError::EmptyDataset);
        assert!(e.to_string().contains("non-empty"));
    }
}
