//! Anytime bound-and-prune machinery shared by the hard HD solvers.
//!
//! The hard solvers (HDRRM, MDRRR, MDRRRr, MDRC) are restructured as
//! *anytime* searches: they maintain a best-so-far [`Incumbent`] with an
//! upper bound on its rank-regret, tighten a lower bound as thresholds
//! are proven infeasible, and can be cut off mid-search — by wall clock,
//! by a target optimality gap, or by the deterministic counter budget —
//! returning the incumbent annotated with certified [`Bounds`] instead
//! of failing.
//!
//! Determinism contract: under [`Cutoff::None`], [`Cutoff::GapAtMost`]
//! and [`Cutoff::CounterBudget`] the stopping decision depends only on
//! deterministic state (bounds and probe counts), so results are
//! bit-identical at any thread count. Only [`Cutoff::TimeBudget`] may
//! vary run-to-run — and then the reported gap certifies whatever was
//! returned.
//!
//! The shape follows ddo-style branch-and-bound (shared incumbent,
//! relaxed/restricted bounds, pluggable cutoffs) mapped onto the
//! doubling-then-binary threshold search the solvers share.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Certified bounds on the optimal achievable rank-regret at the moment
/// the search stopped: the optimum lies in `[lower, upper]`, and the
/// returned solution achieves rank-regret at most `upper` (within the
/// solver's own frame — exact for MDRRR, discretized for HDRRM, sampled
/// for MDRRRr).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Largest threshold proven infeasible, plus one (1 when nothing is
    /// proven yet).
    pub lower: usize,
    /// Rank-regret certified for the returned set.
    pub upper: usize,
}

impl Bounds {
    /// Relative optimality gap `(upper - lower) / upper` in `[0, 1]`:
    /// `0.0` means the answer is proven optimal within the solver's
    /// frame.
    pub fn gap(&self) -> f64 {
        if self.upper == 0 || self.upper <= self.lower {
            0.0
        } else {
            (self.upper - self.lower) as f64 / self.upper as f64
        }
    }
}

/// Why a solve returned when it did.
///
/// `Eq` is deliberately absent: the [`TerminatedBy::Sampled`] variant
/// carries the `(eps, delta)` floats of its confidence statement, so the
/// enum (like [`Cutoff`]) only offers `PartialEq`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TerminatedBy {
    /// The search ran to its natural end (gap 0 within its frame).
    #[default]
    Completed,
    /// A wall-clock [`Cutoff::TimeBudget`] expired mid-search.
    Time,
    /// The bounds reached the requested [`Cutoff::GapAtMost`] target.
    Gap,
    /// A deterministic counter budget ([`Cutoff::CounterBudget`], folded
    /// in from the `Budget` counters) was exhausted.
    Counter,
    /// The answer is a sampled-ε approximation: `directions` utility
    /// directions were drawn from the query space, enough that by
    /// Hoeffding's inequality, with probability at least `1 - delta`
    /// over the draw, the fraction of the direction space on which the
    /// set's rank exceeds the reported regret is at most `eps`. The
    /// solve itself ran to its natural end — this is a fidelity
    /// statement, not an early stop.
    Sampled { eps: f64, delta: f64, directions: usize },
}

impl TerminatedBy {
    pub fn name(self) -> &'static str {
        match self {
            TerminatedBy::Completed => "completed",
            TerminatedBy::Time => "time",
            TerminatedBy::Gap => "gap",
            TerminatedBy::Counter => "counter",
            TerminatedBy::Sampled { .. } => "sampled",
        }
    }

    /// `true` for the variants that mean "an in-solve cutoff fired and
    /// the answer may be sub-optimal within the solver's frame" — i.e.
    /// everything except a natural completion or a sampled-fidelity
    /// answer (which completed its search over the sampled directions).
    pub fn is_early_stop(self) -> bool {
        matches!(self, TerminatedBy::Time | TerminatedBy::Gap | TerminatedBy::Counter)
    }
}

/// When an anytime solver should stop early.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Cutoff {
    /// Run to completion.
    #[default]
    None,
    /// Stop once this much wall clock has elapsed (nondeterministic:
    /// results may vary run to run, the reported gap stays sound).
    TimeBudget(Duration),
    /// Stop once the relative optimality gap is at most this value
    /// (deterministic: the gap is a function of the bounds alone).
    GapAtMost(f64),
    /// Stop when the `Budget` probe counter (`max_enumerations`) is
    /// exhausted (deterministic).
    CounterBudget,
}

/// Thread-safe best-so-far solution: an index set plus the rank-regret
/// bound certified for it. Updates are monotone — an offer only wins if
/// its bound is strictly better — so concurrent probes can share one
/// incumbent without ordering concerns.
#[derive(Debug, Default)]
pub struct Incumbent {
    best: Mutex<Option<(Vec<u32>, usize)>>,
}

impl Incumbent {
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer a candidate with a certified upper bound; keeps it only if
    /// it beats the current incumbent. Returns whether it was installed.
    pub fn offer(&self, indices: Vec<u32>, upper: usize) -> bool {
        let mut best = self.best.lock().expect("incumbent lock");
        match best.as_ref() {
            Some((_, have)) if *have <= upper => false,
            _ => {
                *best = Some((indices, upper));
                true
            }
        }
    }

    /// The current best set and its certified bound, if any.
    pub fn best(&self) -> Option<(Vec<u32>, usize)> {
        self.best.lock().expect("incumbent lock").clone()
    }

    /// The current certified upper bound, if any.
    pub fn upper(&self) -> Option<usize> {
        self.best.lock().expect("incumbent lock").as_ref().map(|(_, u)| *u)
    }
}

/// Search statistics attached to an anytime [`Solution`]: node and
/// prune accounting plus the gap-vs-time curve. Wall-clock fields are
/// nondeterministic, which is why the report is excluded from
/// `Solution` equality.
///
/// [`Solution`]: crate::problem::Solution
#[derive(Debug, Clone, Default)]
pub struct SearchReport {
    /// Search nodes expanded: greedy cover selections plus threshold /
    /// cell probes.
    pub nodes: u64,
    /// Probes aborted early because their cover provably could not beat
    /// the feasibility cap (the bound-and-prune win; the skipped nodes
    /// are measured against a no-pruning baseline by `repro anytime`).
    pub pruned_probes: u64,
    /// Seconds from solve start to the first incumbent.
    pub first_incumbent_seconds: Option<f64>,
    /// `(seconds, bounds)` at each bounds improvement, in time order.
    pub curve: Vec<(f64, Bounds)>,
}

/// Per-solve driver state for an anytime search: the cutoff, the shared
/// incumbent, the deterministic probe budget, and the (wall-clock)
/// report being accumulated.
#[derive(Debug)]
pub struct AnytimeSearch {
    cutoff: Cutoff,
    started: Instant,
    /// Remaining probe budget under [`Cutoff::CounterBudget`]; `None`
    /// means unlimited.
    probes_left: Option<usize>,
    pub incumbent: Incumbent,
    pub report: SearchReport,
}

impl AnytimeSearch {
    /// A search under `cutoff`; `probe_budget` is the deterministic
    /// probe allowance consumed by [`AnytimeSearch::take_probe`] (only
    /// enforced under [`Cutoff::CounterBudget`]).
    pub fn new(cutoff: Cutoff, probe_budget: Option<usize>) -> Self {
        let probes_left = match cutoff {
            Cutoff::CounterBudget => probe_budget,
            _ => None,
        };
        Self {
            cutoff,
            started: Instant::now(),
            probes_left,
            incumbent: Incumbent::new(),
            report: SearchReport::default(),
        }
    }

    /// A search that never stops early (still counts nodes).
    pub fn unlimited() -> Self {
        Self::new(Cutoff::None, None)
    }

    pub fn cutoff(&self) -> Cutoff {
        self.cutoff
    }

    /// Seconds since the solve started.
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Count one expanded search node (a greedy pick or a probe).
    pub fn note_node(&mut self) {
        self.report.nodes += 1;
    }

    /// Count `n` expanded search nodes at once.
    pub fn note_nodes(&mut self, n: u64) {
        self.report.nodes += n;
    }

    /// Count one probe aborted early by the feasibility cap.
    pub fn note_pruned_probe(&mut self) {
        self.report.pruned_probes += 1;
    }

    /// Consume one unit of the deterministic probe budget. Returns
    /// `false` when the budget is exhausted (the caller should stop and
    /// return its incumbent).
    pub fn take_probe(&mut self) -> bool {
        match self.probes_left.as_mut() {
            None => true,
            Some(0) => false,
            Some(left) => {
                *left -= 1;
                true
            }
        }
    }

    /// Install a new incumbent; stamps the first-incumbent time and the
    /// gap-vs-time curve when it wins.
    pub fn offer(&mut self, indices: Vec<u32>, upper: usize, lower: usize) {
        if self.incumbent.offer(indices, upper) {
            let t = self.elapsed_seconds();
            self.report.first_incumbent_seconds.get_or_insert(t);
            self.report.curve.push((t, Bounds { lower, upper: upper.max(lower) }));
        }
    }

    /// Should the search stop *before* the next unit of work, given the
    /// current bounds? Deterministic cutoffs (gap, counter) are checked
    /// from deterministic state only; the time budget reads the clock.
    pub fn should_stop(&self, bounds: Bounds) -> Option<TerminatedBy> {
        match self.cutoff {
            Cutoff::None => None,
            Cutoff::TimeBudget(limit) => {
                (self.started.elapsed() >= limit).then_some(TerminatedBy::Time)
            }
            Cutoff::GapAtMost(target) => (self.incumbent.upper().is_some()
                && bounds.gap() <= target)
                .then_some(TerminatedBy::Gap),
            Cutoff::CounterBudget => (self.probes_left == Some(0)).then_some(TerminatedBy::Counter),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_relative_and_clamped() {
        assert_eq!(Bounds { lower: 3, upper: 3 }.gap(), 0.0);
        assert_eq!(Bounds { lower: 5, upper: 3 }.gap(), 0.0, "crossed bounds clamp to 0");
        let g = Bounds { lower: 1, upper: 4 }.gap();
        assert!((g - 0.75).abs() < 1e-12, "{g}");
        assert_eq!(Bounds { lower: 0, upper: 0 }.gap(), 0.0);
    }

    #[test]
    fn incumbent_updates_are_monotone() {
        let inc = Incumbent::new();
        assert!(inc.best().is_none());
        assert!(inc.offer(vec![1, 2], 10));
        assert!(!inc.offer(vec![3], 10), "ties do not replace");
        assert!(!inc.offer(vec![3], 12), "worse bounds do not replace");
        assert!(inc.offer(vec![3], 7));
        assert_eq!(inc.best(), Some((vec![3], 7)));
        assert_eq!(inc.upper(), Some(7));
    }

    #[test]
    fn counter_budget_is_deterministic_and_exhaustible() {
        let mut s = AnytimeSearch::new(Cutoff::CounterBudget, Some(2));
        let b = Bounds { lower: 1, upper: 100 };
        assert!(s.should_stop(b).is_none());
        assert!(s.take_probe());
        assert!(s.take_probe());
        assert!(!s.take_probe(), "third probe exceeds the budget");
        assert_eq!(s.should_stop(b), Some(TerminatedBy::Counter));
    }

    #[test]
    fn probe_budget_only_binds_under_counter_cutoff() {
        let mut s = AnytimeSearch::new(Cutoff::None, Some(1));
        for _ in 0..10 {
            assert!(s.take_probe());
        }
        assert!(s.should_stop(Bounds { lower: 1, upper: 9 }).is_none());
    }

    #[test]
    fn gap_cutoff_needs_an_incumbent() {
        let mut s = AnytimeSearch::new(Cutoff::GapAtMost(0.5), None);
        let tight = Bounds { lower: 3, upper: 4 };
        assert!(s.should_stop(tight).is_none(), "no incumbent yet");
        s.offer(vec![0], 4, 3);
        assert_eq!(s.should_stop(tight), Some(TerminatedBy::Gap));
        assert!(s.should_stop(Bounds { lower: 1, upper: 4 }).is_none(), "gap too wide");
    }

    #[test]
    fn offer_stamps_first_incumbent_and_curve() {
        let mut s = AnytimeSearch::unlimited();
        s.offer(vec![0], 50, 1);
        s.offer(vec![0], 60, 1); // loses: no new curve point
        s.offer(vec![1], 20, 4);
        assert_eq!(s.report.curve.len(), 2);
        assert_eq!(s.report.curve[0].1, Bounds { lower: 1, upper: 50 });
        assert_eq!(s.report.curve[1].1, Bounds { lower: 4, upper: 20 });
        assert!(s.report.first_incumbent_seconds.is_some());
        let t0 = s.report.first_incumbent_seconds.unwrap();
        assert!(t0 <= s.report.curve[1].0);
    }

    #[test]
    fn time_budget_zero_stops_immediately() {
        let s = AnytimeSearch::new(Cutoff::TimeBudget(Duration::ZERO), None);
        assert_eq!(s.should_stop(Bounds { lower: 1, upper: 2 }), Some(TerminatedBy::Time));
    }
}
