//! Cache-blocked SoA scoring kernels: the one hot path under every solver.
//!
//! Every algorithm in the workspace spends its time in batch direction
//! scoring — `O(|D| · n · d)` dot products behind `batch_topk`, the rank
//! kernels, MDRC's probe evaluation and the sampled estimators. This
//! module makes that path fast on a single core:
//!
//! * **SoA layout.** [`Soa`] is a column-major mirror of the dataset
//!   ([`Dataset::soa`] builds it once per dataset and shares it across
//!   clones via `Arc`, so a prepared handle pays the transpose exactly
//!   once). Columnar storage turns the inner loop into independent
//!   per-tuple lanes that LLVM autovectorizes *without* reassociating any
//!   floating-point sum.
//! * **Cache blocking.** [`for_each_scores`] scores a tile of
//!   [`DIR_TILE`] directions against [`TUPLE_TILE`]-tuple column tiles
//!   (a mini-GEMM): each ~8 KiB column tile is reused by every direction
//!   in the tile while it is hot in L1/L2, instead of re-streaming the
//!   whole `n·d` dataset from memory once per direction.
//! * **d-specialized inner loops.** Dimensions 2..=8 get fully unrolled
//!   kernels (monomorphized via `const D`); other dimensions fall back to
//!   a generic column-sweep with the same summation order.
//! * **Zero steady-state allocation.** All entry points write into
//!   caller-owned [`ScoreScratch`] / tile buffers; the fused reductions
//!   ([`max_score`], [`count_above`], [`count_outranking`],
//!   [`rank_regret_of_set`]) never materialize an `n`-length score vector
//!   at all.
//!
//! # Determinism contract
//!
//! Every score is the fixed-order sum `((u₀·t₀ + u₁·t₁) + u₂·t₂) + …` —
//! exactly the order of the scalar reference [`crate::utility::dot`] —
//! regardless of tile sizes, dimension specialization, or the
//! [`Parallelism`](crate::Parallelism) of the caller. SIMD applies across
//! *tuples* (independent output lanes), never across the `d` terms of one
//! dot product, so blocked results are **bit-identical** to the naive
//! path. `tests/kernel_parity.rs` enforces this property over random
//! `n`, `d` and tile sizes.

use crate::dataset::Dataset;
use crate::rank::outranks;

/// Directions scored per tile: how many times each hot column tile is
/// reused before it leaves cache.
pub const DIR_TILE: usize = 8;

/// Tuples per column tile: 1024 `f64`s = 8 KiB per column, so a full
/// `d = 4` tile (32 KiB) sits in L1 and `d = 8` (64 KiB) in L2.
pub const TUPLE_TILE: usize = 1024;

/// Column-major (structure-of-arrays) mirror of a [`Dataset`]:
/// `col(j)[i]` is attribute `j` of tuple `i`. Built by [`Dataset::soa`].
#[derive(Debug)]
pub struct Soa {
    n: usize,
    d: usize,
    /// `n * d` values, column-major: `cols[j * n + i] = row(i)[j]`.
    cols: Box<[f64]>,
}

impl Soa {
    /// Transpose a row-major buffer (`values[i * d + j]`) into columns.
    pub(crate) fn build(d: usize, values: &[f64]) -> Soa {
        let n = values.len() / d;
        let mut cols = vec![0.0f64; values.len()].into_boxed_slice();
        for (i, row) in values.chunks_exact(d).enumerate() {
            for (j, &v) in row.iter().enumerate() {
                cols[j * n + i] = v;
            }
        }
        Soa { n, d, cols }
    }

    /// Number of tuples `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of attributes `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Column `j` as a contiguous slice of length `n`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.cols[j * self.n..(j + 1) * self.n]
    }

    /// Score of a single tuple, summed in the kernel's fixed `j`-ascending
    /// order (bit-identical to [`crate::utility::dot`] on the row).
    #[inline]
    pub fn score_one(&self, u: &[f64], i: usize) -> f64 {
        debug_assert_eq!(u.len(), self.d);
        let mut acc = 0.0;
        for (j, &w) in u.iter().enumerate() {
            acc += w * self.cols[j * self.n + i];
        }
        acc
    }
}

/// Fully unrolled scoring of one tuple range for a compile-time dimension:
/// `dst[i] = Σ_j u[j] · col(j)[i0 + i]`, `j` ascending. The equal-length
/// re-slices let LLVM drop bounds checks and vectorize across `i`.
fn score_range_fixed<const D: usize>(soa: &Soa, u: &[f64], i0: usize, dst: &mut [f64]) {
    let len = dst.len();
    let w: [f64; D] = std::array::from_fn(|j| u[j]);
    let cols: [&[f64]; D] = std::array::from_fn(|j| &soa.cols[j * soa.n + i0..][..len]);
    for i in 0..len {
        let mut acc = w[0] * cols[0][i];
        for j in 1..D {
            acc += w[j] * cols[j][i];
        }
        dst[i] = acc;
    }
}

/// Generic fallback for dimensions outside the specialized range: one
/// vectorizable column sweep per attribute. Per-element accumulation is
/// still `j`-ascending, so results match the specialized kernels bit for
/// bit.
fn score_range_generic(soa: &Soa, u: &[f64], i0: usize, dst: &mut [f64]) {
    let len = dst.len();
    let c0 = &soa.cols[i0..][..len];
    for i in 0..len {
        dst[i] = u[0] * c0[i];
    }
    for (j, &w) in u.iter().enumerate().skip(1) {
        let cj = &soa.cols[j * soa.n + i0..][..len];
        for i in 0..len {
            dst[i] += w * cj[i];
        }
    }
}

/// Score tuples `i0 .. i0 + dst.len()` under direction `u` into `dst`,
/// dispatching to the `d`-specialized kernel.
#[inline]
pub fn score_range_into(soa: &Soa, u: &[f64], i0: usize, dst: &mut [f64]) {
    assert_eq!(u.len(), soa.d, "utility vector arity must equal d");
    assert!(i0 + dst.len() <= soa.n);
    match soa.d {
        2 => score_range_fixed::<2>(soa, u, i0, dst),
        3 => score_range_fixed::<3>(soa, u, i0, dst),
        4 => score_range_fixed::<4>(soa, u, i0, dst),
        5 => score_range_fixed::<5>(soa, u, i0, dst),
        6 => score_range_fixed::<6>(soa, u, i0, dst),
        7 => score_range_fixed::<7>(soa, u, i0, dst),
        8 => score_range_fixed::<8>(soa, u, i0, dst),
        _ => score_range_generic(soa, u, i0, dst),
    }
}

/// Caller-owned working storage for the blocked kernels. Reuse one
/// instance across calls to keep the steady state allocation-free.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    /// Score block: `dir_tile * n` values, one row per in-tile direction.
    buf: Vec<f64>,
    /// Small per-tile buffer for the fused reductions.
    tile: Vec<f64>,
}

impl ScoreScratch {
    /// A fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Blocked batch scoring with explicit tile sizes: calls
/// `consume(dir_index, scores)` for every direction, in direction order,
/// with the full `n`-length score vector. Tile sizes affect only the
/// memory access pattern — outputs are bit-identical for any
/// `dir_tile, tuple_tile >= 1`.
pub fn for_each_scores_tiled<U: AsRef<[f64]>>(
    soa: &Soa,
    dirs: &[U],
    dir_tile: usize,
    tuple_tile: usize,
    scratch: &mut ScoreScratch,
    mut consume: impl FnMut(usize, &[f64]),
) {
    let (n, dir_tile, tuple_tile) = (soa.n, dir_tile.max(1), tuple_tile.max(1));
    let mut g0 = 0;
    while g0 < dirs.len() {
        let tile = &dirs[g0..(g0 + dir_tile).min(dirs.len())];
        scratch.buf.resize(tile.len() * n, 0.0);
        let mut i0 = 0;
        while i0 < n {
            let i1 = (i0 + tuple_tile).min(n);
            for (dd, u) in tile.iter().enumerate() {
                score_range_into(soa, u.as_ref(), i0, &mut scratch.buf[dd * n + i0..dd * n + i1]);
            }
            i0 = i1;
        }
        for dd in 0..tile.len() {
            consume(g0 + dd, &scratch.buf[dd * n..(dd + 1) * n]);
        }
        g0 += tile.len();
    }
}

/// [`for_each_scores_tiled`] at the default [`DIR_TILE`] × [`TUPLE_TILE`]
/// blocking — the entry point every batch consumer uses.
pub fn for_each_scores<U: AsRef<[f64]>>(
    soa: &Soa,
    dirs: &[U],
    scratch: &mut ScoreScratch,
    consume: impl FnMut(usize, &[f64]),
) {
    for_each_scores_tiled(soa, dirs, DIR_TILE, TUPLE_TILE, scratch, consume)
}

/// Score every tuple under one direction into `out` (cleared first): the
/// blocked, bit-identical equivalent of [`crate::utility::utilities_into`].
pub fn scores_into(soa: &Soa, u: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.resize(soa.n, 0.0);
    let mut i0 = 0;
    while i0 < soa.n {
        let i1 = (i0 + TUPLE_TILE).min(soa.n);
        score_range_into(soa, u, i0, &mut out[i0..i1]);
        i0 = i1;
    }
}

/// Fused top-1: the maximum score under `u`, folded in ascending tuple
/// order (bit-identical to `scores.fold(NEG_INFINITY, f64::max)`),
/// without materializing the score vector.
pub fn max_score(soa: &Soa, u: &[f64], scratch: &mut ScoreScratch) -> f64 {
    let mut best = f64::NEG_INFINITY;
    let mut i0 = 0;
    while i0 < soa.n {
        let i1 = (i0 + TUPLE_TILE).min(soa.n);
        scratch.tile.resize(i1 - i0, 0.0);
        score_range_into(soa, u, i0, &mut scratch.tile[..i1 - i0]);
        for &s in &scratch.tile[..i1 - i0] {
            best = best.max(s);
        }
        i0 = i1;
    }
    best
}

/// Fused rank counting: how many tuples score **strictly above**
/// `threshold` under `u`. `rank = count_above + 1` is the estimators'
/// rank of a set whose best score is `threshold`.
pub fn count_above(soa: &Soa, u: &[f64], threshold: f64, scratch: &mut ScoreScratch) -> usize {
    let mut above = 0usize;
    let mut i0 = 0;
    while i0 < soa.n {
        let i1 = (i0 + TUPLE_TILE).min(soa.n);
        scratch.tile.resize(i1 - i0, 0.0);
        score_range_into(soa, u, i0, &mut scratch.tile[..i1 - i0]);
        for &s in &scratch.tile[..i1 - i0] {
            above += (s > threshold) as usize;
        }
        i0 = i1;
    }
    above
}

/// Fused tie-broken rank counting: how many tuples *outrank* the tuple
/// with score `best_score` and index `best_index` under the workspace's
/// strict total order (score descending, index ascending).
pub fn count_outranking(
    soa: &Soa,
    u: &[f64],
    best_score: f64,
    best_index: u32,
    scratch: &mut ScoreScratch,
) -> usize {
    let mut above = 0usize;
    let mut i0 = 0;
    while i0 < soa.n {
        let i1 = (i0 + TUPLE_TILE).min(soa.n);
        scratch.tile.resize(i1 - i0, 0.0);
        score_range_into(soa, u, i0, &mut scratch.tile[..i1 - i0]);
        for (off, &s) in scratch.tile[..i1 - i0].iter().enumerate() {
            above += outranks(s, (i0 + off) as u32, best_score, best_index) as usize;
        }
        i0 = i1;
    }
    above
}

/// Fused rank-regret of a set under one direction: pick the set's best
/// member by the tie-broken order, then count the tuples outranking it —
/// all through the blocked kernel, with no `n`-length score vector.
/// Bit-identical to [`crate::rank::rank_regret_of_set`].
pub fn rank_regret_of_set(
    soa: &Soa,
    u: &[f64],
    indices: &[u32],
    scratch: &mut ScoreScratch,
) -> usize {
    assert!(!indices.is_empty(), "rank-regret of an empty set is undefined");
    let mut best_i = indices[0];
    let mut best_s = soa.score_one(u, best_i as usize);
    for &i in &indices[1..] {
        let s = soa.score_one(u, i as usize);
        if outranks(s, i, best_s, best_i) {
            best_s = s;
            best_i = i;
        }
    }
    count_outranking(soa, u, best_s, best_i, scratch) + 1
}

impl Dataset {
    /// The column-major (SoA) mirror of this dataset, built on first use
    /// and shared by clones (an `Arc` travels with the handle), so a
    /// prepared solver pays the transpose once and every scoring kernel
    /// afterwards runs on the blocked fast path.
    pub fn soa(&self) -> &Soa {
        self.soa_cell().get_or_init(|| std::sync::Arc::new(Soa::build(self.dim(), self.flat())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility;

    fn dataset(n: usize, d: usize, seed: u64) -> Dataset {
        // Small deterministic LCG: no external deps in rrm_core tests.
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let values: Vec<f64> = (0..n * d).map(|_| next()).collect();
        Dataset::from_flat(d, values).unwrap()
    }

    fn direction(d: usize, seed: u64) -> Vec<f64> {
        (0..d).map(|j| ((seed + j as u64 * 7) % 13) as f64 / 13.0 + 0.01).collect()
    }

    /// Independent scalar reference: row-major `dot` per tuple. The
    /// public batch paths route through this module, so parity tests must
    /// not use them as the baseline.
    fn naive_scores(data: &Dataset, u: &[f64]) -> Vec<f64> {
        data.rows().map(|row| utility::dot(u, row)).collect()
    }

    #[test]
    fn soa_mirrors_rows() {
        let data = dataset(17, 3, 1);
        let soa = data.soa();
        assert_eq!(soa.n(), 17);
        assert_eq!(soa.dim(), 3);
        for i in 0..17 {
            for j in 0..3 {
                assert_eq!(soa.col(j)[i], data.row(i)[j]);
            }
        }
    }

    #[test]
    fn soa_is_shared_across_clones() {
        let data = dataset(8, 2, 2);
        let a = data.soa() as *const Soa;
        let clone = data.clone();
        assert_eq!(a, clone.soa() as *const Soa, "clones must share the built mirror");
    }

    #[test]
    fn blocked_scores_match_naive_bitwise_for_all_dims() {
        for d in 1..=10 {
            let data = dataset(533, d, d as u64);
            let dirs: Vec<Vec<f64>> = (0..19).map(|s| direction(d, s as u64)).collect();
            let mut scratch = ScoreScratch::new();
            let mut seen = 0;
            for_each_scores(data.soa(), &dirs, &mut scratch, |di, scores| {
                let naive = naive_scores(&data, &dirs[di]);
                assert_eq!(scores.len(), naive.len());
                for (a, b) in scores.iter().zip(&naive) {
                    assert_eq!(a.to_bits(), b.to_bits(), "d={d} dir={di}");
                }
                seen += 1;
            });
            assert_eq!(seen, 19);
        }
    }

    #[test]
    fn tile_sizes_do_not_change_bits() {
        let data = dataset(777, 4, 9);
        let dirs: Vec<Vec<f64>> = (0..11).map(|s| direction(4, s as u64)).collect();
        let mut reference: Vec<Vec<f64>> = Vec::new();
        let mut scratch = ScoreScratch::new();
        for_each_scores(data.soa(), &dirs, &mut scratch, |_, s| reference.push(s.to_vec()));
        for (dir_tile, tuple_tile) in [(1, 1), (1, 64), (3, 100), (16, 777), (8, 100_000)] {
            for_each_scores_tiled(
                data.soa(),
                &dirs,
                dir_tile,
                tuple_tile,
                &mut scratch,
                |di, s| {
                    assert_eq!(s, reference[di].as_slice(), "tiles {dir_tile}x{tuple_tile}");
                },
            );
        }
    }

    #[test]
    fn fused_reductions_match_score_vector() {
        let data = dataset(401, 5, 3);
        let soa = data.soa();
        let mut scratch = ScoreScratch::new();
        for s in 0..7u64 {
            let u = direction(5, s);
            let scores = naive_scores(&data, &u);
            let naive_max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(max_score(soa, &u, &mut scratch).to_bits(), naive_max.to_bits());
            let t = scores[200];
            assert_eq!(
                count_above(soa, &u, t, &mut scratch),
                scores.iter().filter(|&&v| v > t).count()
            );
            let set = [7u32, 200, 399];
            assert_eq!(
                rank_regret_of_set(soa, &u, &set, &mut scratch),
                crate::rank::rank_regret_from_scores(&scores, &set)
            );
        }
    }

    #[test]
    fn n_smaller_than_one_tile() {
        let data = dataset(3, 4, 4);
        let dirs = vec![direction(4, 0)];
        let mut scratch = ScoreScratch::new();
        let mut got = Vec::new();
        for_each_scores(data.soa(), &dirs, &mut scratch, |_, s| got = s.to_vec());
        assert_eq!(got, naive_scores(&data, &dirs[0]));
        let mut out = Vec::new();
        scores_into(data.soa(), &dirs[0], &mut out);
        assert_eq!(out, got);
    }

    #[test]
    fn empty_direction_list_is_a_no_op() {
        let data = dataset(10, 2, 5);
        let dirs: Vec<Vec<f64>> = Vec::new();
        let mut scratch = ScoreScratch::new();
        for_each_scores(data.soa(), &dirs, &mut scratch, |_, _| panic!("no dirs to consume"));
    }

    #[test]
    fn score_one_matches_dot() {
        let data = dataset(50, 6, 6);
        let u = direction(6, 1);
        let soa = data.soa();
        for i in [0usize, 17, 49] {
            assert_eq!(soa.score_one(&u, i).to_bits(), utility::dot(&u, data.row(i)).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let data = dataset(4, 3, 7);
        let mut out = vec![0.0; 4];
        score_range_into(data.soa(), &[1.0], 0, &mut out);
    }
}
