//! Random sampling primitives shared by spaces, generators and estimators.
//!
//! `rand_distr` is outside the allowed dependency set, so the Gaussian
//! sampler is a hand-rolled Box–Muller transform.

use rand::Rng;
use rand::RngCore;

/// One standard normal variate (Box–Muller).
pub fn gauss(rng: &mut dyn RngCore) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A pair of independent standard normal variates (both Box–Muller outputs).
pub fn gauss_pair(rng: &mut dyn RngCore) -> (f64, f64) {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Uniform direction on the unit sphere intersected with the non-negative
/// orthant (the sphere surface `S` of Section V-A): absolute values of i.i.d.
/// Gaussians, L2-normalized.
pub fn orthant_direction(d: usize, rng: &mut dyn RngCore) -> Vec<f64> {
    loop {
        let v: Vec<f64> = (0..d).map(|_| gauss(rng).abs()).collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            return v.iter().map(|x| x / norm).collect();
        }
    }
}

/// Uniform point on the standard (d-1)-simplex (non-negative, sums to 1):
/// normalized i.i.d. exponentials.
pub fn simplex_point(d: usize, rng: &mut dyn RngCore) -> Vec<f64> {
    loop {
        let v: Vec<f64> = (0..d)
            .map(|_| {
                let u: f64 = 1.0 - rng.random::<f64>();
                -u.ln()
            })
            .collect();
        let s: f64 = v.iter().sum();
        if s > 1e-12 {
            return v.iter().map(|x| x / s).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gauss_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let g = gauss(&mut rng);
            sum += g;
            sum2 += g * g;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gauss_pair_independent_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mut cov = 0.0;
        for _ in 0..n {
            let (a, b) = gauss_pair(&mut rng);
            cov += a * b;
        }
        assert!((cov / n as f64).abs() < 0.02);
    }

    #[test]
    fn orthant_direction_is_unit_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let u = orthant_direction(4, &mut rng);
            assert_eq!(u.len(), 4);
            assert!(u.iter().all(|&x| x >= 0.0));
            let norm: f64 = u.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn orthant_direction_covers_all_axes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut max_per_axis = [0.0f64; 3];
        for _ in 0..1000 {
            let u = orthant_direction(3, &mut rng);
            for (m, &v) in max_per_axis.iter_mut().zip(&u) {
                *m = m.max(v);
            }
        }
        // Every axis should get close to 1 somewhere in 1000 draws.
        assert!(max_per_axis.iter().all(|&m| m > 0.9), "{max_per_axis:?}");
    }

    #[test]
    fn simplex_point_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = simplex_point(5, &mut rng);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }
}
